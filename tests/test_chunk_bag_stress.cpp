// Concurrency stress for the OBIM chunk bag: many producers and
// consumers moving chunks through per-node stacks with stealing.
#include "queues/chunk_bag.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace smq {
namespace {

TEST(ChunkBagStress, ProducersConsumersExactlyOnce) {
  constexpr unsigned kNodes = 2;
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr std::uint64_t kChunksPerProducer = 3000;
  constexpr std::uint32_t kTasksPerChunk = 8;

  ChunkBag bag(kNodes);
  std::atomic<std::uint64_t> produced_chunks{0};
  std::atomic<bool> producing{true};
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;

  {
    std::vector<std::jthread> workers;
    for (unsigned p = 0; p < kProducers; ++p) {
      workers.emplace_back([&, p] {
        for (std::uint64_t c = 0; c < kChunksPerProducer; ++c) {
          auto* chunk = new Chunk();
          for (std::uint32_t i = 0; i < kTasksPerChunk; ++i) {
            const std::uint64_t id =
                (p * kChunksPerProducer + c) * kTasksPerChunk + i;
            chunk->push(Task{id, id});
          }
          bag.push_chunk(p % kNodes, chunk);
          produced_chunks.fetch_add(1);
        }
        if (produced_chunks.load() == kProducers * kChunksPerProducer) {
          producing.store(false, std::memory_order_release);
        }
      });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
      workers.emplace_back([&, c] {
        std::vector<std::uint64_t> local;
        while (true) {
          Chunk* chunk = bag.pop_chunk(c % kNodes);
          if (chunk == nullptr) {
            if (!producing.load(std::memory_order_acquire) &&
                bag.looks_empty()) {
              break;
            }
            continue;
          }
          while (!chunk->empty()) local.push_back(chunk->pop().payload);
          delete chunk;
        }
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  // Drain any chunk that slipped past the consumers' exit check.
  while (Chunk* chunk = bag.pop_chunk(0)) {
    while (!chunk->empty()) ++seen[chunk->pop().payload];
    delete chunk;
  }

  const std::uint64_t expected =
      kProducers * kChunksPerProducer * kTasksPerChunk;
  EXPECT_EQ(seen.size(), expected);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

TEST(ChunkBagStress, TreiberModeExactlyOnceWithReclamation) {
  // The lock-free stack variant: pops race under epoch pins, drained
  // chunks go through limbo instead of immediate delete (that is what
  // makes the racing top/next reads safe), and the allocator's live
  // counter must converge back to the leftovers only.
  constexpr unsigned kNodes = 2;
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr std::uint64_t kChunksPerProducer = 3000;
  constexpr std::uint32_t kTasksPerChunk = 8;

  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  ChunkAlloc alloc;
  {
    EpochManager epochs(kProducers + kConsumers);
    ChunkBag bag(kNodes, &epochs);
    std::atomic<std::uint64_t> produced_chunks{0};
    std::atomic<bool> producing{true};

    {
      std::vector<std::jthread> workers;
      for (unsigned p = 0; p < kProducers; ++p) {
        workers.emplace_back([&, p] {
          for (std::uint64_t c = 0; c < kChunksPerProducer; ++c) {
            Chunk* chunk = alloc.make();
            for (std::uint32_t i = 0; i < kTasksPerChunk; ++i) {
              const std::uint64_t id =
                  (p * kChunksPerProducer + c) * kTasksPerChunk + i;
              chunk->push(Task{id, id});
            }
            bag.push_chunk(p % kNodes, chunk);
            produced_chunks.fetch_add(1);
          }
          if (produced_chunks.load() == kProducers * kChunksPerProducer) {
            producing.store(false, std::memory_order_release);
          }
        });
      }
      for (unsigned c = 0; c < kConsumers; ++c) {
        const unsigned tid = kProducers + c;
        workers.emplace_back([&, c, tid] {
          std::vector<std::uint64_t> local;
          while (true) {
            Chunk* chunk;
            {
              EpochManager::Guard guard(&epochs, tid);
              chunk = bag.pop_chunk(c % kNodes);
            }
            if (chunk == nullptr) {
              if (!producing.load(std::memory_order_acquire) &&
                  bag.looks_empty()) {
                break;
              }
              continue;
            }
            while (!chunk->empty()) local.push_back(chunk->pop().payload);
            bag.retire_chunk(tid, chunk, alloc);
          }
          std::lock_guard<std::mutex> guard(merge_mutex);
          for (const std::uint64_t id : local) ++seen[id];
        });
      }
    }
    // Drain stragglers on the main thread (everyone else has joined, so
    // pinning is about exercising the API, not safety).
    while (true) {
      EpochManager::Guard guard(&epochs, 0);
      Chunk* chunk = bag.pop_chunk(0);
      if (chunk == nullptr) break;
      while (!chunk->empty()) ++seen[chunk->pop().payload];
      bag.retire_chunk(0, chunk, alloc);
    }
    // ~EpochManager drain_all()s the limbo into alloc.free.
  }
  EXPECT_EQ(alloc.live.load(), 0) << "chunks leaked through limbo";
  EXPECT_EQ(alloc.bytes(), 0u);

  const std::uint64_t expected =
      kProducers * kChunksPerProducer * kTasksPerChunk;
  EXPECT_EQ(seen.size(), expected);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

TEST(ChunkBagStress, TaskCounterConvergesToZero) {
  ChunkBag bag(1);
  for (int i = 0; i < 100; ++i) {
    auto* chunk = new Chunk();
    chunk->push(Task{1, 1});
    chunk->push(Task{2, 2});
    bag.push_chunk(0, chunk);
  }
  EXPECT_EQ(bag.approx_tasks(), 200);
  while (Chunk* chunk = bag.pop_chunk(0)) delete chunk;
  EXPECT_EQ(bag.approx_tasks(), 0);
  EXPECT_TRUE(bag.looks_empty());
}

}  // namespace
}  // namespace smq
