// Concurrency stress tests for the SMQ's cross-thread protocol: an
// owner continuously publishing batches while multiple stealers race,
// and parameterized whole-system sweeps over (threads, p_steal,
// steal_size) checking the global no-loss/no-duplication invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "core/heap_with_stealing.h"
#include "core/stealing_multiqueue.h"
#include "sched/executor.h"

namespace smq {
namespace {

// Owner drains its queue (add + extract) while stealers hammer
// try_steal. Every task must surface exactly once, across owner pops
// and successful steals.
TEST(HeapWithStealingStress, OwnerVsStealersExactlyOnce) {
  constexpr std::uint64_t kTasks = 60000;
  constexpr int kStealers = 3;
  HeapWithStealingBuffer<DAryHeap<Task, 4>> queue(4);

  std::atomic<bool> owner_done{false};
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;

  auto record = [&](const std::vector<Task>& tasks) {
    std::lock_guard<std::mutex> guard(merge_mutex);
    for (const Task& t : tasks) ++seen[t.payload];
  };

  {
    std::vector<std::jthread> stealers;
    for (int s = 0; s < kStealers; ++s) {
      stealers.emplace_back([&] {
        std::vector<Task> batch;
        std::vector<Task> mine;
        while (!owner_done.load(std::memory_order_acquire)) {
          batch.clear();
          if (queue.try_steal(batch) > 0) {
            mine.insert(mine.end(), batch.begin(), batch.end());
          }
        }
        record(mine);
      });
    }

    std::jthread owner([&] {
      std::vector<Task> mine;
      std::vector<Task> claimed;
      std::uint64_t next_id = 0;
      // Interleave adds and owner-pops; owner-pop follows the real SMQ
      // protocol (classify, pop heap or reclaim own buffer).
      while (true) {
        for (int i = 0; i < 16 && next_id < kTasks; ++i, ++next_id) {
          queue.add_local(Task{next_id % 97, next_id});
        }
        const OwnerPopSource src = queue.classify_pop();
        if (src == OwnerPopSource::kEmpty) {
          if (next_id >= kTasks) break;
          continue;
        }
        if (src == OwnerPopSource::kHeap) {
          mine.push_back(queue.pop_heap());
        } else {
          claimed.clear();
          if (queue.reclaim_buffer(claimed) > 0) {
            mine.insert(mine.end(), claimed.begin(), claimed.end());
          }
        }
      }
      record(mine);
      owner_done.store(true, std::memory_order_release);
    });
  }

  std::uint64_t total = 0;
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id << " surfaced " << count << " times";
    ++total;
  }
  EXPECT_EQ(total, kTasks);
}

// Whole-system property sweep: for every (threads, p_steal, steal_size)
// combination, an executor-driven counter cascade completes exactly.
using SmqParam = std::tuple<unsigned, double, std::size_t>;

class SmqParamSweep : public ::testing::TestWithParam<SmqParam> {};

TEST_P(SmqParamSweep, CascadeExecutesExactly) {
  const auto [threads, p_steal, steal_size] = GetParam();
  StealingMultiQueue<> sched(
      threads, {.steal_size = steal_size, .p_steal = p_steal, .seed = 31});

  // Ternary cascade of depth 7 => (3^8 - 1) / 2 tasks.
  constexpr std::uint64_t kDepth = 7;
  std::vector<Task> seeds{Task{0, 0}};
  std::atomic<std::uint64_t> executed{0};
  run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (t.priority < kDepth) {
          for (int i = 0; i < 3; ++i) ctx.push(Task{t.priority + 1, 0});
        }
      },
      threads);
  std::uint64_t expected = 0, power = 1;
  for (std::uint64_t d = 0; d <= kDepth; ++d, power *= 3) expected += power;
  EXPECT_EQ(executed.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SmqParamSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0.0, 0.125, 1.0),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{64})),
    [](const ::testing::TestParamInfo<SmqParam>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 1000)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace smq
