// Shared scheduler factories for the algorithm test suites: every
// algorithm is validated against its sequential oracle under every
// scheduler family the paper evaluates.
#pragma once

#include <memory>
#include <string>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"

namespace smq::testing {

struct SmqHeapFactory {
  static constexpr const char* kName = "SmqHeap";
  using Type = StealingMultiQueue<DAryHeap<Task, 4>>;
  static Type make(unsigned threads) {
    return Type(threads, {.steal_size = 4, .p_steal = 0.25, .seed = 17});
  }
};

struct SmqSkipListFactory {
  static constexpr const char* kName = "SmqSkipList";
  using Type = StealingMultiQueue<SequentialSkipList>;
  static Type make(unsigned threads) {
    return Type(threads, {.steal_size = 2, .p_steal = 0.5, .seed = 18});
  }
};

struct ClassicMqFactory {
  static constexpr const char* kName = "ClassicMq";
  using Type = ClassicMultiQueue;
  static Type make(unsigned threads) {
    return Type(threads, {.queue_multiplier = 4, .seed = 19});
  }
};

struct OptimizedMqFactory {
  static constexpr const char* kName = "OptimizedMq";
  using Type = OptimizedMultiQueue;
  static Type make(unsigned threads) {
    OptimizedMqConfig cfg;
    cfg.insert_policy = InsertPolicy::kBatching;
    cfg.insert_batch = 4;
    cfg.delete_policy = DeletePolicy::kBatching;
    cfg.delete_batch = 4;
    cfg.seed = 20;
    return Type(threads, cfg);
  }
};

struct ReldFactory {
  static constexpr const char* kName = "Reld";
  using Type = ReldQueue;
  static Type make(unsigned threads) { return Type(threads, {.seed = 21}); }
};

struct SprayListFactory {
  static constexpr const char* kName = "SprayList";
  using Type = SprayList;
  static Type make(unsigned threads) { return Type(threads, {.seed = 22}); }
};

struct ObimFactory {
  static constexpr const char* kName = "Obim";
  using Type = Obim;
  static Type make(unsigned threads) {
    return Type(threads, {.chunk_size = 8, .delta_shift = 6});
  }
};

struct PmodFactory {
  static constexpr const char* kName = "Pmod";
  using Type = Pmod;
  static Type make(unsigned threads) {
    return Type(threads, {.chunk_size = 8, .delta_shift = 4});
  }
};

using AllSchedulerFactories =
    ::testing::Types<SmqHeapFactory, SmqSkipListFactory, ClassicMqFactory,
                     OptimizedMqFactory, ReldFactory, SprayListFactory,
                     ObimFactory, PmodFactory>;

}  // namespace smq::testing
