// Service-mode soak: thousands of small queries through the persistent
// pool, watching the scheduler's memory footprint for a steady-state
// plateau (the property epoch reclamation exists to provide), label
// epochs surviving their 16-bit wrap, and a reclaiming spraylist
// exercising quiesce-on-park. Sizes shrink under TSan (the stress
// variant still runs, just smaller — TSan execution is ~10x slower).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "algorithms/astar.h"
#include "registry/graph_registry.h"
#include "registry/params.h"
#include "registry/service_factory.h"
#include "service/service_driver.h"
#include "service/versioned_labels.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SMQ_SOAK_TSAN 1
#endif
#endif
#ifndef SMQ_SOAK_TSAN
#define SMQ_SOAK_TSAN 0
#endif

namespace smq {
namespace {

constexpr bool kUnderTsan = SMQ_SOAK_TSAN != 0;

GraphInstance small_road() {
  ParamMap params;
  params.set("vertices", "800");
  params.set("seed", "31");
  return GraphRegistry::instance().create("road", params);
}

struct TrajectoryPoint {
  std::size_t queries = 0;
  std::size_t footprint = 0;
};

/// CI artifact hook: when SMQ_SOAK_TRAJECTORY_JSON names a file, dump
/// the footprint-over-queries curve there for the workflow to upload.
void maybe_write_trajectory(const std::string& label,
                            const std::vector<TrajectoryPoint>& points) {
  const char* path = std::getenv("SMQ_SOAK_TRAJECTORY_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << "{\"soak\":\"" << label << "\",\"trajectory\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"queries\":" << points[i].queries
        << ",\"footprint_bytes\":" << points[i].footprint << '}';
  }
  out << "]}\n";
}

/// Drive `total` queries in bursts through `service`, sampling the
/// footprint after each burst. Returns the trajectory; validates a
/// subsample of distances against the sequential oracle.
std::vector<TrajectoryPoint> soak(QueryService& service,
                                  const GraphInstance& gi, std::size_t total,
                                  std::size_t burst) {
  const std::vector<Query> queries = make_query_set(gi, total, /*seed=*/21);
  std::vector<TrajectoryPoint> trajectory;
  std::size_t done = 0;
  while (done < total) {
    const std::size_t n = std::min(burst, total - done);
    std::vector<QueryTicket> tickets;
    tickets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tickets.push_back(service.submit(queries[done + i]));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const QueryResult r = tickets[i].get();
      if ((done + i) % 16 == 0) {
        const auto ref =
            sequential_astar(*gi.graph, queries[done + i].source,
                             queries[done + i].target, gi.weight_scale);
        EXPECT_EQ(r.distance, ref.distance) << "query " << done + i;
      }
    }
    done += n;
    trajectory.push_back({done, service.memory_footprint()});
  }
  return trajectory;
}

/// The plateau assertion: after the warmup prefix the footprint must
/// stop growing (modulo slack for in-flight limbo and pool ragged
/// edges). An unreclaimed leak grows linearly in the query count and
/// blows well past this.
void expect_plateau(const std::vector<TrajectoryPoint>& trajectory,
                    std::size_t warmup_points) {
  ASSERT_GT(trajectory.size(), warmup_points);
  std::size_t warmup_max = 0;
  for (std::size_t i = 0; i < warmup_points; ++i) {
    warmup_max = std::max(warmup_max, trajectory[i].footprint);
  }
  ASSERT_GT(warmup_max, 0u) << "scheduler reported no footprint at all";
  std::size_t later_max = 0;
  for (std::size_t i = warmup_points; i < trajectory.size(); ++i) {
    later_max = std::max(later_max, trajectory[i].footprint);
  }
  EXPECT_LE(later_max, warmup_max * 3 / 2 + (64u << 10))
      << "footprint still growing after warmup: " << warmup_max << " -> "
      << later_max << " bytes";
}

TEST(ServiceSoak, SmqSkiplistFootprintPlateaus) {
  const std::size_t total = kUnderTsan ? 600 : 3000;
  const GraphInstance gi = small_road();
  ParamMap params;
  auto service = make_service("smq-skiplist", 4, params, gi,
                              ServiceOptions{.lanes = 8, .batch_size = 8});
  const auto trajectory = soak(*service, gi, total, /*burst=*/100);
  service->stop();
  EXPECT_EQ(service->queries_completed(), total);
  maybe_write_trajectory("smq-skiplist", trajectory);
  // A third of the bursts is warmup: free lists fill to the working set.
  expect_plateau(trajectory, trajectory.size() / 3);
}

TEST(ServiceSoak, ReclaimingSpraylistStaysBoundedAndCorrect) {
  // The EBR path end to end: every op pins, unlinked nodes retire, and
  // parked workers quiesce between bursts so limbo drains even while
  // the pool idles. ASan turns any premature free into a hard failure.
  const std::size_t total = kUnderTsan ? 300 : 1200;
  const GraphInstance gi = small_road();
  ParamMap params;
  params.set("reclaim", "epoch");
  auto service = make_service("spraylist", 4, params, gi,
                              ServiceOptions{.lanes = 8, .batch_size = 8});
  const auto trajectory = soak(*service, gi, total, /*burst=*/60);
  service->stop();
  EXPECT_EQ(service->queries_completed(), total);
  maybe_write_trajectory("spraylist-epoch", trajectory);
  expect_plateau(trajectory, trajectory.size() / 3);
}

TEST(ServiceSoak, SingleLaneChurnsLabelEpochs) {
  // One lane: every query bumps the same VersionedLabels epoch, so a
  // long stream exercises the per-query invalidation path the service
  // relies on instead of clearing O(V) labels between queries.
  const std::size_t total = kUnderTsan ? 200 : 800;
  const GraphInstance gi = small_road();
  ParamMap params;
  auto service = make_service("smq-skiplist", 2, params, gi,
                              ServiceOptions{.lanes = 1, .batch_size = 4});
  const auto trajectory = soak(*service, gi, total, /*burst=*/50);
  service->stop();
  EXPECT_EQ(service->queries_completed(), total);
  expect_plateau(trajectory, trajectory.size() / 3);
}

TEST(ServiceSoak, LabelsSurviveEpochWraparound) {
  // Drive one VersionedLabels lane through its full 16-bit epoch space
  // twice, spot-checking correctness around every scrub boundary — the
  // lane a long-lived service reuses for its 65534th query must behave
  // exactly like its first.
  VersionedLabels labels(64);
  const std::uint64_t laps = 2 * VersionedLabels::kEpochLimit + 10;
  std::uint64_t last = 0;
  for (std::uint64_t i = 0; i < laps; ++i) {
    const std::uint64_t e = labels.new_epoch();
    ASSERT_NE(e, 0u);
    ASSERT_LT(e, VersionedLabels::kEpochLimit);
    if (e < last) {
      // Just wrapped: the scrub must have invalidated every slot.
      for (std::size_t v = 0; v < 64; ++v) {
        ASSERT_EQ(labels.load(v, e), VersionedLabels::kUnreached)
            << "slot " << v << " leaked through the wrap at lap " << i;
      }
    }
    last = e;
    // Light per-epoch churn so stale values exist to leak.
    labels.store(i % 64, i + 1, e);
    ASSERT_EQ(labels.load(i % 64, e), i + 1);
    ASSERT_EQ(labels.load((i + 1) % 64, e), VersionedLabels::kUnreached);
  }
}

}  // namespace
}  // namespace smq
