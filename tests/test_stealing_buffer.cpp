// Tests for the seqlock stealing buffer (paper Listing 4 metadata word).
#include "core/stealing_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sched/task.h"

namespace smq {
namespace {

std::vector<Task> tasks_upto(std::size_t n) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) tasks.push_back(Task{i, i * 10});
  return tasks;
}

TEST(StealingBuffer, StartsStolen) {
  StealingBuffer buf(4);
  EXPECT_TRUE(buf.is_stolen());
  EXPECT_EQ(buf.top_priority(), Task::kInfinity);
  std::vector<Task> out;
  EXPECT_EQ(buf.try_claim(out), 0u);
}

TEST(StealingBuffer, PublishThenClaim) {
  StealingBuffer buf(4);
  const auto tasks = tasks_upto(4);
  buf.publish(tasks.data(), tasks.size());
  EXPECT_FALSE(buf.is_stolen());
  EXPECT_EQ(buf.top_priority(), 0u);

  std::vector<Task> out;
  EXPECT_EQ(buf.try_claim(out), 4u);
  EXPECT_TRUE(buf.is_stolen());
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].priority, i);
    EXPECT_EQ(out[i].payload, i * 10);
  }
}

TEST(StealingBuffer, SecondClaimFails) {
  StealingBuffer buf(4);
  const auto tasks = tasks_upto(2);
  buf.publish(tasks.data(), tasks.size());
  std::vector<Task> out1, out2;
  EXPECT_EQ(buf.try_claim(out1), 2u);
  EXPECT_EQ(buf.try_claim(out2), 0u);
  EXPECT_TRUE(out2.empty());
}

TEST(StealingBuffer, EpochAdvancesPerPublish) {
  StealingBuffer buf(2);
  const auto tasks = tasks_upto(2);
  const std::uint64_t e0 = buf.epoch();
  buf.publish(tasks.data(), 2);
  EXPECT_EQ(buf.epoch(), e0 + 1);
  std::vector<Task> out;
  buf.try_claim(out);
  buf.publish(tasks.data(), 1);
  EXPECT_EQ(buf.epoch(), e0 + 2);
}

TEST(StealingBuffer, EmptyPublishClaimable) {
  StealingBuffer buf(4);
  buf.publish(nullptr, 0);
  EXPECT_FALSE(buf.is_stolen());
  EXPECT_EQ(buf.top_priority(), Task::kInfinity);  // empty batch
  std::vector<Task> out;
  EXPECT_EQ(buf.try_claim(out), 0u);  // claims 0 tasks...
  EXPECT_TRUE(buf.is_stolen());       // ...but flips the flag
}

TEST(StealingBuffer, ClaimAppendsToOut) {
  StealingBuffer buf(2);
  const auto tasks = tasks_upto(2);
  buf.publish(tasks.data(), 2);
  std::vector<Task> out{Task{99, 99}};
  EXPECT_EQ(buf.try_claim(out), 2u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].priority, 99u);
  EXPECT_EQ(out[1].priority, 0u);
}

// Concurrency: exactly one of N claimers wins each published batch, and
// every published task is claimed exactly once overall.
TEST(StealingBuffer, ExactlyOneClaimerWins) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  StealingBuffer buf(3);
  std::atomic<int> winners{0};
  std::atomic<std::uint64_t> claimed_sum{0};
  std::atomic<bool> go{false};
  std::atomic<int> round_done{0};

  std::uint64_t expected_sum = 0;

  std::vector<std::jthread> threads;
  std::atomic<std::uint64_t> round_epoch{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t last_seen = 0;
      while (true) {
        const std::uint64_t e = round_epoch.load(std::memory_order_acquire);
        if (e == ~0ull) return;
        if (e == last_seen) continue;
        last_seen = e;
        std::vector<Task> out;
        if (buf.try_claim(out) > 0) {
          winners.fetch_add(1);
          std::uint64_t sum = 0;
          for (const Task& task : out) sum += task.priority;
          claimed_sum.fetch_add(sum);
        }
        round_done.fetch_add(1);
      }
    });
  }
  (void)go;
  for (int round = 1; round <= kRounds; ++round) {
    const std::uint64_t base = static_cast<std::uint64_t>(round) * 100;
    Task batch[3] = {Task{base, 0}, Task{base + 1, 0}, Task{base + 2, 0}};
    expected_sum += 3 * base + 3;
    buf.publish(batch, 3);
    round_done.store(0);
    round_epoch.store(static_cast<std::uint64_t>(round),
                      std::memory_order_release);
    while (round_done.load(std::memory_order_acquire) < kThreads) {
    }
    ASSERT_TRUE(buf.is_stolen()) << "someone must have claimed";
  }
  round_epoch.store(~0ull);
  threads.clear();

  EXPECT_EQ(winners.load(), kRounds);
  EXPECT_EQ(claimed_sum.load(), expected_sum);
}

}  // namespace
}  // namespace smq
