// Unit + property tests for the sequential d-ary heap (SMQ local queue).
#include "queues/d_ary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/task.h"
#include "support/rng.h"

namespace smq {
namespace {

TEST(DAryHeap, StartsEmpty) {
  DAryHeap<Task, 4> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_EQ(heap.try_pop(), std::nullopt);
}

TEST(DAryHeap, SingleElementRoundTrip) {
  DAryHeap<Task, 4> heap;
  heap.push(Task{42, 7});
  EXPECT_FALSE(heap.empty());
  EXPECT_EQ(heap.top().priority, 42u);
  const Task t = heap.pop();
  EXPECT_EQ(t.priority, 42u);
  EXPECT_EQ(t.payload, 7u);
  EXPECT_TRUE(heap.empty());
}

TEST(DAryHeap, PopsInPriorityOrder) {
  DAryHeap<Task, 4> heap;
  for (std::uint64_t p : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0}) {
    heap.push(Task{p, p});
  }
  for (std::uint64_t expect = 0; expect < 10; ++expect) {
    EXPECT_EQ(heap.pop().priority, expect);
  }
}

TEST(DAryHeap, DuplicatePrioritiesAllPop) {
  DAryHeap<Task, 4> heap;
  for (std::uint64_t i = 0; i < 100; ++i) heap.push(Task{7, i});
  std::vector<bool> seen(100, false);
  for (int i = 0; i < 100; ++i) {
    const Task t = heap.pop();
    EXPECT_EQ(t.priority, 7u);
    seen[t.payload] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

template <unsigned D>
void random_property_check(std::uint64_t seed, std::size_t count) {
  DAryHeap<Task, D> heap;
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t p = rng.next_below(1000);
    heap.push(Task{p, i});
    expected.push_back(p);
    ASSERT_TRUE(heap.is_valid_heap());
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(heap.pop().priority, expected[i]) << "at pop " << i;
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DAryHeap, RandomAgainstSortD2) { random_property_check<2>(1, 500); }
TEST(DAryHeap, RandomAgainstSortD4) { random_property_check<4>(2, 500); }
TEST(DAryHeap, RandomAgainstSortD8) { random_property_check<8>(3, 500); }

TEST(DAryHeap, InterleavedPushPop) {
  DAryHeap<Task, 4> heap;
  Xoshiro256 rng(99);
  std::vector<std::uint64_t> mirror;
  for (int round = 0; round < 2000; ++round) {
    if (mirror.empty() || rng.next_bool(0.6)) {
      const std::uint64_t p = rng.next_below(10000);
      heap.push(Task{p, 0});
      mirror.push_back(p);
    } else {
      const auto it = std::min_element(mirror.begin(), mirror.end());
      ASSERT_EQ(heap.pop().priority, *it);
      mirror.erase(it);
    }
  }
  ASSERT_TRUE(heap.is_valid_heap());
}

TEST(DAryHeap, ClearResets) {
  DAryHeap<Task, 4> heap;
  for (std::uint64_t i = 0; i < 10; ++i) heap.push(Task{i, i});
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.push(Task{1, 1});
  EXPECT_EQ(heap.pop().priority, 1u);
}

// Parameterized sweep over sizes: heap sorts correctly at every size.
class DAryHeapSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DAryHeapSizeSweep, SortsAtSize) {
  random_property_check<4>(GetParam() * 7919 + 1, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DAryHeapSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 17, 64, 257,
                                           1024));

}  // namespace
}  // namespace smq
