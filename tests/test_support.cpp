// Tests for the support layer: RNG, spinlock, padding, timer, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/cli.h"
#include "support/padding.h"
#include "support/rng.h"
#include "support/spinlock.h"
#include "support/timer.h"

namespace smq {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.next_bool(0.125);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.125, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ThreadSeedsDistinct) {
  std::set<std::uint64_t> seeds;
  for (unsigned tid = 0; tid < 64; ++tid) seeds.insert(thread_seed(42, tid));
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(Padding, NoFalseSharingLayout) {
  std::vector<Padded<int>> slots(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&slots[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&slots[1].value);
  EXPECT_GE(b - a, kFalseSharingRange);
}

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  std::int64_t counter = 0;
  constexpr int kIters = 20000;
  auto worker = [&] {
    for (int i = 0; i < kIters; ++i) {
      lock.lock();
      ++counter;
      lock.unlock();
    }
  };
  {
    std::jthread t1(worker), t2(worker), t3(worker);
  }
  EXPECT_EQ(counter, 3 * kIters);
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  Spinlock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  t.reset();
  EXPECT_LT(t.millis(), 15.0);
}

TEST(Cli, ParsesOptionsAndFlags) {
  // Note: a bare "--flag" followed by a non-option would consume it as a
  // value, so flags go last or use "--flag=1".
  const char* argv[] = {"prog",    "pos1", "--alpha", "3",
                        "--beta=x", "--gamma", "2.5",  "--flag"};
  ArgParser args(8, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta"), "x");
  EXPECT_TRUE(args.has_flag("flag"));
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0), 2.5);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, TablePrinterAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1.00"});
  table.add_row({"longer", "2.50"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("2.50"), std::string::npos);
}

TEST(Cli, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(2.0, 1), "2.0");
}

TEST(Cli, ParseThreadListAcceptsSweeps) {
  const auto counts = parse_thread_list("1,4,8");
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 4u);
  EXPECT_EQ(counts[2], 8u);
}

TEST(Cli, ParseThreadListRejectsZeroAndGarbage) {
  EXPECT_THROW(parse_thread_list("0"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("4,0,8"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("-2"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("four"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("4x"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list(""), std::invalid_argument);
  EXPECT_THROW(parse_thread_list(",,"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("99999999999999999999"), std::invalid_argument);
}

TEST(Cli, OversubscriptionWarning) {
  // Warns only when some requested count exceeds the machine.
  EXPECT_EQ(oversubscription_warning({1, 2, 4}, 4), "");
  const std::string warning = oversubscription_warning({2, 8}, 4);
  EXPECT_NE(warning.find("8"), std::string::npos);
  EXPECT_NE(warning.find("4 hardware"), std::string::npos);
  EXPECT_NE(warning.find("oversubscription"), std::string::npos);
  // Unknown hardware concurrency (0) must stay silent.
  EXPECT_EQ(oversubscription_warning({64}, 0), "");
}

TEST(Cli, EditDistanceBasics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("thread", "threads"), 1u);
}

TEST(Cli, NearestNameSuggestsCloseTypos) {
  const std::vector<std::string> known{"threads", "sched", "graph", "queries"};
  EXPECT_EQ(nearest_name("thread", known), "threads");
  EXPECT_EQ(nearest_name("shced", known), "sched");
  EXPECT_EQ(nearest_name("queriess", known), "queries");
  // Nothing plausibly close: no suggestion beats a wrong suggestion.
  EXPECT_EQ(nearest_name("zzzzzz", known), "");
}

TEST(Cli, UnknownFlagMessage) {
  const std::vector<std::string> known{"threads", "sched"};
  EXPECT_EQ(unknown_flag_message("thraeds", known),
            "unknown option --thraeds (did you mean --threads?)");
  EXPECT_EQ(unknown_flag_message("zzzzzz", known), "unknown option --zzzzzz");
}

}  // namespace
}  // namespace smq
