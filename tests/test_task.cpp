// Tests for the Task value type and its strict total order.
#include "sched/task.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace smq {
namespace {

TEST(Task, PriorityOrdersFirst) {
  EXPECT_LT((Task{1, 100}), (Task{2, 0}));
  EXPECT_GT((Task{5, 0}), (Task{4, 999}));
}

TEST(Task, PayloadBreaksTies) {
  EXPECT_LT((Task{3, 1}), (Task{3, 2}));
  EXPECT_EQ((Task{3, 2}), (Task{3, 2}));
}

TEST(Task, DefaultIsInfinity) {
  const Task t;
  EXPECT_EQ(t.priority, Task::kInfinity);
  EXPECT_EQ(t, kNoTask);
  EXPECT_LT((Task{0, 0}), kNoTask);
}

TEST(Task, TotalOrderIsStrict) {
  std::vector<Task> tasks{{2, 1}, {1, 2}, {2, 0}, {1, 1}, {0, 5}};
  std::sort(tasks.begin(), tasks.end());
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_LT(tasks[i - 1], tasks[i]);
  }
  EXPECT_EQ(tasks.front().priority, 0u);
  EXPECT_EQ(tasks.back(), (Task{2, 1}));
}

TEST(Task, TriviallyCopyable16Bytes) {
  static_assert(std::is_trivially_copyable_v<Task>);
  static_assert(sizeof(Task) == 16);
  SUCCEED();
}

}  // namespace
}  // namespace smq
