// Structural property tests for the graph generators — these properties
// are what makes the synthetic graphs valid stand-ins for Table 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/sssp.h"
#include "graph/generators.h"

namespace smq {
namespace {

TEST(GeneratorProperties, RoadLikeFullyConnected) {
  // Road networks are (essentially) connected: BFS from 0 reaches all.
  const Graph g = make_road_like(2500, {.seed = 81});
  const SequentialBfsResult bfs = sequential_bfs(g, 0);
  EXPECT_EQ(bfs.visited, g.num_vertices());
}

TEST(GeneratorProperties, RoadLikeHighDiameter) {
  // Key road property: diameter ~ lattice side, far above log n.
  const Graph g = make_road_like(2500, {.seed = 82});  // 50x50
  const SequentialBfsResult bfs = sequential_bfs(g, 0);
  const std::uint64_t max_level =
      *std::max_element(bfs.levels.begin(), bfs.levels.end());
  EXPECT_GE(max_level, 20u);  // >> log2(2500) ~ 11
}

TEST(GeneratorProperties, RmatLowDiameterCore) {
  // Key social property: the reachable core is shallow.
  const Graph g = make_rmat(12, {.seed = 83});
  const SequentialBfsResult bfs = sequential_bfs(g, 0);
  std::uint64_t max_level = 0;
  for (const std::uint64_t level : bfs.levels) {
    if (level != DistanceArray::kUnreached) {
      max_level = std::max(max_level, level);
    }
  }
  EXPECT_GT(bfs.visited, g.num_vertices() / 4);  // sizable core
  EXPECT_LE(max_level, 12u);                     // shallow
}

TEST(GeneratorProperties, RmatDegreeSkewIsHeavyTailed) {
  const Graph g = make_rmat(12, {.seed = 84});
  std::vector<std::size_t> degrees(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees[v] = g.out_degree(v);
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  // Top 1% of vertices own a disproportionate share of edges.
  const std::size_t top = g.num_vertices() / 100;
  std::size_t top_edges = 0;
  for (std::size_t i = 0; i < top; ++i) top_edges += degrees[i];
  EXPECT_GT(top_edges * 5, g.num_edges())
      << "top 1% should hold >20% of edges in a power-law graph";
}

TEST(GeneratorProperties, GridDistancesClosedForm) {
  // Unit-weight grid: dist((0,0) -> (r,c)) = r + c.
  const VertexId w = 9, h = 7;
  const Graph g = make_grid2d(w, h);
  const SequentialSsspResult ref = sequential_sssp(g, 0);
  for (VertexId r = 0; r < h; ++r) {
    for (VertexId c = 0; c < w; ++c) {
      EXPECT_EQ(ref.distances[r * w + c], static_cast<std::uint64_t>(r + c));
    }
  }
}

TEST(GeneratorProperties, PathDistancesLinear) {
  const Graph g = make_path(50, 7);
  const SequentialSsspResult ref = sequential_sssp(g, 10);
  for (VertexId v = 0; v < 50; ++v) {
    const std::uint64_t hops = v > 10 ? v - 10 : 10 - v;
    EXPECT_EQ(ref.distances[v], hops * 7);
  }
}

TEST(GeneratorProperties, RoadLikeShortcutsShortenPaths) {
  // With shortcuts disabled, lattice distances dominate those of the
  // same lattice with shortcuts (same seed => same base weights).
  RoadLikeOptions with{.seed = 85, .shortcut_fraction = 0.2};
  RoadLikeOptions without{.seed = 85, .shortcut_fraction = 0.0};
  const Graph g_with = make_road_like(900, with);
  const Graph g_without = make_road_like(900, without);
  const auto d_with = sequential_sssp(g_with, 0).distances;
  const auto d_without = sequential_sssp(g_without, 0).distances;
  std::uint64_t improved = 0;
  for (VertexId v = 0; v < g_without.num_vertices(); ++v) {
    ASSERT_LE(d_with[v], d_without[v]) << "adding edges cannot hurt";
    improved += d_with[v] < d_without[v];
  }
  EXPECT_GT(improved, 0u);
}

}  // namespace
}  // namespace smq
