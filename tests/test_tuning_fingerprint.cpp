// Fingerprint extraction + nearest-neighbor table resolution (ISSUE
// satellite): class boundaries on synthetic graphs, exact /
// nearest-threads / nearest-fingerprint / default lookups, and the
// deterministic tie-breaking that makes `--sched auto` reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tuning/fingerprint.h"
#include "tuning/metrics_table.h"

namespace smq::tuning {
namespace {

Graph ring_graph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % n), 100});
    edges.push_back({static_cast<VertexId>((v + 1) % n), v, 100});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph star_graph(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) {
    edges.push_back({0, v, 7});
    edges.push_back({v, 0, 7});
  }
  return Graph::from_edges(n, std::move(edges));
}

// ---- classification boundaries ---------------------------------------------

TEST(Fingerprint, ClassifyDegreesBoundaries) {
  // Tight bounded-degree distributions are roads...
  EXPECT_EQ(classify_degrees(4.0, 8, 0.10), GraphClass::kRoad);
  EXPECT_EQ(classify_degrees(2.5, 12, 0.75), GraphClass::kRoad);
  // ...until either road bar breaks: degree 13, or cv just over 0.75.
  EXPECT_EQ(classify_degrees(2.5, 13, 0.75), GraphClass::kUniform);
  EXPECT_EQ(classify_degrees(2.5, 12, 0.76), GraphClass::kUniform);
  // Power-law signatures: heavy tail (cv > 1) or a hub 16x the mean.
  EXPECT_EQ(classify_degrees(8.0, 40, 1.01), GraphClass::kSocial);
  EXPECT_EQ(classify_degrees(8.0, 129, 0.5), GraphClass::kSocial);
  EXPECT_EQ(classify_degrees(8.0, 128, 0.5), GraphClass::kUniform);
  // Sparse graphs clamp the hub bar at 16 absolute (max(avg, 1)).
  EXPECT_EQ(classify_degrees(0.5, 17, 0.5), GraphClass::kSocial);
  // Erdos-Renyi-like: moderate spread, no hubs.
  EXPECT_EQ(classify_degrees(8.0, 20, 0.35), GraphClass::kUniform);
}

TEST(Fingerprint, GraphClassNamesRoundTrip) {
  for (GraphClass cls :
       {GraphClass::kRoad, GraphClass::kUniform, GraphClass::kSocial}) {
    auto parsed = parse_graph_class(to_string(cls));
    ASSERT_TRUE(parsed.has_value()) << to_string(cls);
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(parse_graph_class("lattice").has_value());
  EXPECT_FALSE(parse_graph_class("").has_value());
}

TEST(Fingerprint, RingGraphFingerprintsAsRoad) {
  const Graph g = ring_graph(256);
  const WorkloadFingerprint fp = fingerprint_graph(g);
  EXPECT_EQ(fp.vertices, 256u);
  EXPECT_EQ(fp.edges, 512u);
  EXPECT_DOUBLE_EQ(fp.avg_degree, 2.0);
  EXPECT_EQ(fp.max_degree, 2u);
  EXPECT_NEAR(fp.degree_cv, 0.0, 1e-9);
  EXPECT_EQ(fp.max_weight, 100u);
  EXPECT_FALSE(fp.has_coordinates);
  EXPECT_EQ(fp.cls, GraphClass::kRoad);
}

TEST(Fingerprint, StarGraphFingerprintsAsSocial) {
  const Graph g = star_graph(256);
  const WorkloadFingerprint fp = fingerprint_graph(g);
  EXPECT_EQ(fp.max_degree, 255u) << "the hub must dominate";
  EXPECT_GT(fp.degree_cv, 1.0);
  EXPECT_EQ(fp.cls, GraphClass::kSocial);
}

TEST(Fingerprint, DistancePrefersSameClassAndSize) {
  WorkloadFingerprint fp;
  fp.vertices = 4096;
  fp.avg_degree = 4.0;
  fp.max_weight = 300;
  fp.cls = GraphClass::kRoad;
  const double same = fingerprint_distance(fp, GraphClass::kRoad, 4096, 4.0, 300);
  const double bigger =
      fingerprint_distance(fp, GraphClass::kRoad, 1u << 20, 4.0, 300);
  const double other_class =
      fingerprint_distance(fp, GraphClass::kSocial, 4096, 4.0, 300);
  EXPECT_NEAR(same, 0.0, 1e-9);
  EXPECT_GT(bigger, same);
  // A class mismatch dominates any plausible size difference.
  EXPECT_GT(other_class, bigger);
}

// ---- table resolution ------------------------------------------------------

MetricsRow make_row(const std::string& cls, const std::string& algo,
                    unsigned threads, const std::string& preset,
                    double tps = 1e6) {
  MetricsRow row;
  row.graph_class = cls;
  row.algorithm = algo;
  row.threads = threads;
  row.preset = preset;
  row.tasks_per_sec = tps;
  row.speedup_vs_seq = 1.0;
  row.confidence = 0.5;
  row.graph = "test";
  row.vertices = 4096;
  row.edges = 16384;
  row.avg_degree = 4.0;
  row.max_weight = 255;
  row.reps = 3;
  return row;
}

WorkloadFingerprint road_fp() {
  WorkloadFingerprint fp;
  fp.vertices = 4096;
  fp.edges = 16384;
  fp.avg_degree = 4.0;
  fp.max_degree = 4;
  fp.degree_cv = 0.1;
  fp.max_weight = 255;
  fp.cls = GraphClass::kRoad;
  return fp;
}

const std::function<bool(const std::string&)> kAllRegistered =
    [](const std::string&) { return true; };

TEST(Resolution, ExactMatchWins) {
  MetricsTable table;
  table.upsert(make_row("road", "sssp", 4, "smq-p8"));
  table.upsert(make_row("road", "sssp", 2, "mq-c4"));
  const Resolution r =
      resolve_preset(table, road_fp(), "sssp", 4, kAllRegistered);
  EXPECT_EQ(r.preset, "smq-p8");
  EXPECT_EQ(r.match, MatchKind::kExact);
  EXPECT_NE(r.why.find("exact"), std::string::npos);
}

TEST(Resolution, NearestThreadsFallsBackWithinClass) {
  MetricsTable table;
  table.upsert(make_row("road", "sssp", 2, "mq-c4"));
  table.upsert(make_row("road", "sssp", 16, "smq-p16"));
  // 8 threads: gap 6 to 2t, gap 8 to 16t -> the 2t row.
  Resolution r = resolve_preset(table, road_fp(), "sssp", 8, kAllRegistered);
  EXPECT_EQ(r.preset, "mq-c4");
  EXPECT_EQ(r.match, MatchKind::kNearestThreads);
  // Equidistant (9 threads: gap 7 both ways) ties to the smaller count.
  r = resolve_preset(table, road_fp(), "sssp", 9, kAllRegistered);
  EXPECT_EQ(r.preset, "mq-c4");
  EXPECT_EQ(r.match, MatchKind::kNearestThreads);
}

TEST(Resolution, NearestFingerprintCrossesClasses) {
  MetricsTable table;
  table.upsert(make_row("uniform", "sssp", 4, "reld-c4"));
  table.upsert(make_row("social", "sssp", 4, "mq-opt-full"));
  // No road rows at all: a road fingerprint resolves via the closest
  // recorded fingerprint (both rows share size, so class order breaks
  // the tie deterministically -> same result every run).
  const Resolution r1 =
      resolve_preset(table, road_fp(), "sssp", 4, kAllRegistered);
  const Resolution r2 =
      resolve_preset(table, road_fp(), "sssp", 4, kAllRegistered);
  EXPECT_EQ(r1.match, MatchKind::kNearestFingerprint);
  EXPECT_EQ(r1.preset, r2.preset);
  EXPECT_NE(r1.why.find("nearest"), std::string::npos);
}

TEST(Resolution, UnregisteredPresetRowsAreSkipped) {
  MetricsTable table;
  table.upsert(make_row("road", "sssp", 4, "future-preset"));
  table.upsert(make_row("road", "sssp", 2, "smq-p8"));
  const Resolution r = resolve_preset(
      table, road_fp(), "sssp", 4,
      [](const std::string& name) { return name != "future-preset"; });
  // The exact row names a preset this binary lacks: fall through to the
  // nearest usable row instead of failing.
  EXPECT_EQ(r.preset, "smq-p8");
  EXPECT_EQ(r.match, MatchKind::kNearestThreads);
}

TEST(Resolution, EmptyTableFallsBackToPaperDefault) {
  MetricsTable table;
  const Resolution r =
      resolve_preset(table, road_fp(), "sssp", 4, kAllRegistered);
  EXPECT_EQ(r.preset, std::string(kFallbackPreset));
  EXPECT_EQ(r.match, MatchKind::kDefault);
}

TEST(Resolution, AlgorithmsDoNotCrossContaminate) {
  MetricsTable table;
  table.upsert(make_row("road", "bfs", 4, "obim-d4"));
  const Resolution r =
      resolve_preset(table, road_fp(), "sssp", 4, kAllRegistered);
  // The only row is for bfs; sssp must not inherit it via the
  // same-class path (the fingerprint stage is also algorithm-gated).
  EXPECT_EQ(r.preset, std::string(kFallbackPreset));
  EXPECT_EQ(r.match, MatchKind::kDefault);
}

TEST(MetricsTableIo, FindUpsertAndSortAreDeterministic) {
  MetricsTable table;
  table.upsert(make_row("uniform", "sssp", 4, "a"));
  table.upsert(make_row("road", "bfs", 2, "b"));
  table.upsert(make_row("road", "bfs", 1, "c"));
  // Upsert replaces on key match instead of duplicating.
  table.upsert(make_row("road", "bfs", 2, "d"));
  ASSERT_EQ(table.rows.size(), 3u);
  const MetricsRow* hit = table.find("road", "bfs", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->preset, "d");
  EXPECT_EQ(table.find("road", "bfs", 8), nullptr);
  table.sort();
  EXPECT_EQ(table.rows[0].graph_class, "road");
  EXPECT_EQ(table.rows[0].threads, 1u);
  EXPECT_EQ(table.rows[1].threads, 2u);
  EXPECT_EQ(table.rows[2].graph_class, "uniform");
}

TEST(MetricsTableIo, ParseTextRejectsBadSchemas) {
  EXPECT_THROW(MetricsTable::parse_text("{}", "test"), std::runtime_error);
  EXPECT_THROW(
      MetricsTable::parse_text(
          R"({"format": "other", "version": 1, "rows": []})", "test"),
      std::runtime_error);
  EXPECT_THROW(
      MetricsTable::parse_text(
          R"({"format": "smq-tuning-table", "version": 99, "rows": []})",
          "test"),
      std::runtime_error);
  // A minimal valid row parses and defaults the optional fields.
  const MetricsTable table = MetricsTable::parse_text(
      R"({"format": "smq-tuning-table", "version": 1, "rows": [
            {"graph_class": "road", "algorithm": "sssp", "threads": 2,
             "preset": "smq-p8"}]})",
      "test");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0].preset, "smq-p8");
  EXPECT_DOUBLE_EQ(table.rows[0].tasks_per_sec, 0.0);
}

}  // namespace
}  // namespace smq::tuning
