// Tests for the classic Multi-Queue (paper Listing 1).
#include "queues/classic_multiqueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/topology.h"

namespace smq {
namespace {

TEST(ClassicMultiQueue, QueueCountIsCTimesThreads) {
  ClassicMultiQueue mq(4, {.queue_multiplier = 3});
  EXPECT_EQ(mq.num_queues(), 12u);
  EXPECT_EQ(mq.num_threads(), 4u);
}

TEST(ClassicMultiQueue, SingleThreadRoundTrip) {
  ClassicMultiQueue mq(1, {.queue_multiplier = 4});
  for (std::uint64_t p = 0; p < 50; ++p) mq.push(0, Task{p, p});
  EXPECT_EQ(mq.approx_size(), 50u);
  std::vector<std::uint64_t> got;
  while (auto t = mq.try_pop(0)) got.push_back(t->priority);
  ASSERT_EQ(got.size(), 50u);
  std::sort(got.begin(), got.end());
  for (std::uint64_t p = 0; p < 50; ++p) EXPECT_EQ(got[p], p);
}

TEST(ClassicMultiQueue, TwoChoiceKeepsRankModerate) {
  // The structural property behind the O(m) expected rank: pops are not
  // exact, but the average rank error stays near the number of queues,
  // far below random single-choice.
  const unsigned kThreads = 4;
  ClassicMultiQueue mq(kThreads, {.queue_multiplier = 2, .seed = 3});
  const std::uint64_t kTasks = 20000;
  for (std::uint64_t p = 0; p < kTasks; ++p) mq.push(0, Task{p, p});
  std::uint64_t popped = 0;
  double rank_error_sum = 0;
  while (auto t = mq.try_pop(0)) {
    // Rank error lower bound: how far behind the global front this pop is.
    rank_error_sum +=
        static_cast<double>(t->priority > popped ? t->priority - popped : 0);
    ++popped;
  }
  ASSERT_EQ(popped, kTasks);
  const double mean_error = rank_error_sum / static_cast<double>(kTasks);
  // m = 8 queues: expected rank O(m); allow generous slack.
  EXPECT_LT(mean_error, 64.0);
}

TEST(ClassicMultiQueue, ConcurrentNoLossNoDuplication) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  ClassicMultiQueue mq(kThreads, {.queue_multiplier = 4, .seed = 5});

  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          mq.push(tid, Task{i, tid * kPerThread + i});
          if (i % 2 == 1) {
            if (auto t = mq.try_pop(tid)) local.push_back(t->payload);
          }
        }
        while (auto t = mq.try_pop(tid)) local.push_back(t->payload);
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  while (auto t = mq.try_pop(0)) ++seen[t->payload];

  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

TEST(ClassicMultiQueue, NumaWeightedSamplingStillCorrect) {
  const unsigned kThreads = 4;
  Topology topo(kThreads, 2);
  ClassicMultiQueue mq(kThreads, {.queue_multiplier = 2,
                                  .seed = 7,
                                  .topology = &topo,
                                  .numa_weight_k = 16.0});
  for (std::uint64_t p = 0; p < 1000; ++p) mq.push(p % kThreads, Task{p, p});
  std::map<std::uint64_t, int> seen;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    while (auto t = mq.try_pop(tid)) ++seen[t->payload];
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ClassicMultiQueue, EmptyPopReturnsNullopt) {
  ClassicMultiQueue mq(2, {});
  EXPECT_FALSE(mq.try_pop(0).has_value());
  mq.push(0, Task{1, 1});
  EXPECT_TRUE(mq.try_pop(1).has_value());
  EXPECT_FALSE(mq.try_pop(1).has_value());
}

}  // namespace
}  // namespace smq
