// SchedulerService: lifecycle, versioned labels, and correctness of
// concurrent query streams against the sequential A* oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algorithms/astar.h"
#include "graph/generators.h"
#include "registry/graph_registry.h"
#include "registry/params.h"
#include "registry/service_factory.h"
#include "scheduler_fixtures.h"
#include "service/scheduler_service.h"
#include "service/service_driver.h"
#include "service/versioned_labels.h"

namespace smq {
namespace {

using testing::SmqHeapFactory;
using ConcreteService = SchedulerService<SmqHeapFactory::Type>;

GraphInstance road_instance(VertexId vertices, std::uint64_t seed = 5) {
  GraphInstance gi;
  gi.graph = std::make_shared<Graph>(make_road_like(vertices, {.seed = seed}));
  gi.name = "road-test";
  gi.default_target = gi.graph->num_vertices() - 1;
  return gi;
}

std::unique_ptr<ConcreteService> make_concrete(
    const GraphInstance& gi, unsigned workers, ServiceOptions opts = {}) {
  opts.weight_scale = gi.weight_scale;
  return std::make_unique<ConcreteService>(
      gi.graph, workers, opts, workers,
      SmqConfig{.steal_size = 4, .p_steal = 0.25, .seed = 17});
}

// ---- VersionedLabels -------------------------------------------------------

TEST(VersionedLabels, FreshSlotsUnreached) {
  VersionedLabels labels(16);
  const std::uint64_t e = labels.new_epoch();
  for (std::size_t v = 0; v < 16; ++v) {
    EXPECT_EQ(labels.load(v, e), VersionedLabels::kUnreached);
  }
}

TEST(VersionedLabels, StoreLoadRelax) {
  VersionedLabels labels(4);
  const std::uint64_t e = labels.new_epoch();
  labels.store(0, 7, e);
  EXPECT_EQ(labels.load(0, e), 7u);
  EXPECT_TRUE(labels.relax_min(0, 3, e));
  EXPECT_EQ(labels.load(0, e), 3u);
  EXPECT_FALSE(labels.relax_min(0, 3, e));
  EXPECT_FALSE(labels.relax_min(0, 9, e));
  EXPECT_TRUE(labels.relax_min(1, 5, e));  // unreached always loses
}

TEST(VersionedLabels, NewEpochInvalidatesOldWrites) {
  VersionedLabels labels(4);
  const std::uint64_t e1 = labels.new_epoch();
  labels.store(2, 11, e1);
  const std::uint64_t e2 = labels.new_epoch();
  EXPECT_EQ(labels.load(2, e2), VersionedLabels::kUnreached);
  // A write under e1 is also invisible to e2's relax_min floor.
  EXPECT_TRUE(labels.relax_min(2, 999, e2));
  EXPECT_EQ(labels.load(2, e2), 999u);
}

TEST(VersionedLabels, EpochWraparoundScrubs) {
  VersionedLabels labels(8);
  std::uint64_t e = 0;
  // Drive through the full 16-bit epoch space; the wrap scrubs and
  // restarts at 1 without ever issuing epoch 0.
  for (std::uint64_t i = 0; i < VersionedLabels::kEpochLimit + 10; ++i) {
    e = labels.new_epoch();
    ASSERT_NE(e, 0u);
    ASSERT_LT(e, VersionedLabels::kEpochLimit);
  }
  EXPECT_EQ(labels.load(3, e), VersionedLabels::kUnreached);
  labels.store(3, 1, e);
  EXPECT_EQ(labels.load(3, e), 1u);
}

// ---- lifecycle -------------------------------------------------------------

TEST(SchedulerServiceLifecycle, StartStopIdempotent) {
  const GraphInstance gi = road_instance(256);
  auto service = make_concrete(gi, 2);
  service->start();  // already running: no-op
  EXPECT_TRUE(service->accepting());
  EXPECT_EQ(service->num_workers(), 2u);
  EXPECT_EQ(service->num_lanes(), 4u);  // default 2x workers
  service->stop();
  service->stop();  // idempotent
  EXPECT_FALSE(service->accepting());
  EXPECT_THROW(service->start(), std::logic_error);
}

TEST(SchedulerServiceLifecycle, SubmitAfterStopThrows) {
  const GraphInstance gi = road_instance(256);
  auto service = make_concrete(gi, 2);
  service->stop();
  EXPECT_THROW(service->submit({0, 10}), std::runtime_error);
  EXPECT_THROW(service->submit({5, 5}), std::runtime_error);
}

TEST(SchedulerServiceLifecycle, SubmitOutOfRangeThrows) {
  const GraphInstance gi = road_instance(256);
  auto service = make_concrete(gi, 2);
  EXPECT_THROW(service->submit({0, 256}), std::invalid_argument);
  EXPECT_THROW(service->submit({256, 0}), std::invalid_argument);
  service->stop();
}

TEST(SchedulerServiceLifecycle, DestructorStops) {
  const GraphInstance gi = road_instance(256);
  {
    auto service = make_concrete(gi, 2);
    (void)service->run({0, 100});
  }  // destructor joins the pool; a hang here fails via test timeout
}

// ---- correctness vs the sequential oracle ----------------------------------

TEST(SchedulerServiceQueries, SingleQueryMatchesOracle) {
  const GraphInstance gi = road_instance(1000);
  auto service = make_concrete(gi, 2);
  // The road generator may round the lattice down; stay in range.
  const Query q{3, gi.graph->num_vertices() - 7};
  const QueryResult r = service->run(q);
  const auto ref =
      sequential_astar(*gi.graph, q.source, q.target, gi.weight_scale);
  EXPECT_EQ(r.distance, ref.distance);
  EXPECT_GT(r.tasks, 0u);
  EXPECT_GT(r.latency_seconds, 0.0);
  EXPECT_EQ(service->queries_completed(), 1u);
  EXPECT_EQ(service->latency_histogram().count(), 1u);
  service->stop();
  EXPECT_GT(service->worker_stats().pops, 0u);
}

TEST(SchedulerServiceQueries, SourceEqualsTargetIsZero) {
  const GraphInstance gi = road_instance(256);
  auto service = make_concrete(gi, 2);
  const QueryResult r = service->run({42, 42});
  EXPECT_EQ(r.distance, 0u);
  EXPECT_EQ(r.tasks, 0u);
  EXPECT_EQ(service->queries_completed(), 1u);
  service->stop();
}

TEST(SchedulerServiceQueries, UnreachableTargetReported) {
  // Two disconnected path components: 0..63 and 64..127.
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 64; ++v) edges.push_back({v, v + 1, 1});
  for (VertexId v = 64; v + 1 < 128; ++v) edges.push_back({v, v + 1, 1});
  GraphInstance gi;
  gi.graph = std::make_shared<Graph>(Graph::from_edges(128, std::move(edges)));
  auto service = make_concrete(gi, 2);
  EXPECT_EQ(service->run({0, 100}).distance, QueryResult::kUnreached);
  EXPECT_EQ(service->run({0, 63}).distance, 63u);
  service->stop();
}

TEST(SchedulerServiceQueries, ManyQueriesSequentialOracle) {
  // Through the registry-erased factory, as smq_run builds it.
  GraphRegistry& graphs = GraphRegistry::instance();
  ParamMap params;
  params.set("vertices", "2000");
  params.set("seed", "9");
  const GraphInstance gi = graphs.create("road", params);
  auto service = make_service("smq", 4, params, gi);
  const std::vector<Query> queries = make_query_set(gi, 64, /*seed=*/3);
  std::vector<QueryTicket> tickets;
  tickets.reserve(queries.size());
  for (const Query& q : queries) tickets.push_back(service->submit(q));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult r = tickets[i].get();
    const auto ref = sequential_astar(*gi.graph, queries[i].source,
                                      queries[i].target, gi.weight_scale);
    EXPECT_EQ(r.distance, ref.distance) << "query " << i;
  }
  EXPECT_EQ(service->queries_completed(), queries.size());
  service->stop();
}

TEST(SchedulerServiceQueries, ConcurrentSubmitters) {
  constexpr unsigned kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 32;
  const GraphInstance gi = road_instance(1500, /*seed=*/11);
  auto service = make_concrete(gi, 4);
  std::vector<std::vector<Query>> sets;
  for (unsigned s = 0; s < kSubmitters; ++s) {
    sets.push_back(make_query_set(gi, kPerSubmitter, /*seed=*/100 + s));
  }
  std::vector<std::vector<QueryResult>> results(kSubmitters);
  {
    std::vector<std::jthread> submitters;
    for (unsigned s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        std::vector<QueryTicket> tickets;
        for (const Query& q : sets[s]) tickets.push_back(service->submit(q));
        for (auto& t : tickets) results[s].push_back(t.get());
      });
    }
  }
  for (unsigned s = 0; s < kSubmitters; ++s) {
    for (std::size_t i = 0; i < kPerSubmitter; ++i) {
      const auto ref = sequential_astar(*gi.graph, sets[s][i].source,
                                        sets[s][i].target, gi.weight_scale);
      EXPECT_EQ(results[s][i].distance, ref.distance)
          << "submitter " << s << " query " << i;
    }
  }
  EXPECT_EQ(service->queries_completed(), kSubmitters * kPerSubmitter);
  EXPECT_EQ(service->latency_histogram().count(), kSubmitters * kPerSubmitter);
  service->stop();
}

TEST(SchedulerServiceQueries, LaneChurnWithSingleLane) {
  // One lane forces every query to reuse the same labels through fresh
  // epochs, with queries queued behind the busy lane.
  const GraphInstance gi = road_instance(800, /*seed=*/13);
  auto service = make_concrete(gi, 2, ServiceOptions{.lanes = 1});
  EXPECT_EQ(service->num_lanes(), 1u);
  const std::vector<Query> queries = make_query_set(gi, 50, /*seed=*/4);
  std::vector<QueryTicket> tickets;
  for (const Query& q : queries) tickets.push_back(service->submit(q));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto ref = sequential_astar(*gi.graph, queries[i].source,
                                      queries[i].target, gi.weight_scale);
    EXPECT_EQ(tickets[i].get().distance, ref.distance) << "query " << i;
  }
  service->stop();
}

TEST(SchedulerServiceQueries, UnbatchedLoopMatchesBatched) {
  const GraphInstance gi = road_instance(1000, /*seed=*/17);
  const std::vector<Query> queries = make_query_set(gi, 24, /*seed=*/6);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
    auto service =
        make_concrete(gi, 3, ServiceOptions{.batch_size = batch});
    for (const Query& q : queries) {
      const auto ref =
          sequential_astar(*gi.graph, q.source, q.target, gi.weight_scale);
      EXPECT_EQ(service->run(q).distance, ref.distance)
          << "batch=" << batch;
    }
    service->stop();
  }
}

TEST(SchedulerServiceQueries, DijkstraFallbackWithoutCoordinates) {
  // No coordinates: heuristic must degrade to 0 (p2p Dijkstra) and still
  // match the oracle (which degrades identically).
  GraphInstance gi;
  gi.graph =
      std::make_shared<Graph>(make_erdos_renyi(600, 3600, /*seed=*/23));
  auto service = make_concrete(gi, 2);
  const std::vector<Query> queries = make_query_set(gi, 16, /*seed=*/8);
  for (const Query& q : queries) {
    const auto ref =
        sequential_astar(*gi.graph, q.source, q.target, gi.weight_scale);
    EXPECT_EQ(service->run(q).distance, ref.distance);
  }
  service->stop();
}

// ---- driver plumbing -------------------------------------------------------

TEST(ServiceDriver, QuerySetIsSeededAndInRange) {
  const GraphInstance gi = road_instance(500);
  const auto a = make_query_set(gi, 40, 7);
  const auto b = make_query_set(gi, 40, 7);
  const auto c = make_query_set(gi, 40, 8);
  ASSERT_EQ(a.size(), 40u);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_LT(a[i].source, 500u);
    EXPECT_LT(a[i].target, 500u);
    EXPECT_NE(a[i].source, a[i].target);
    any_differs |= a[i].source != c[i].source || a[i].target != c[i].target;
  }
  EXPECT_TRUE(any_differs);
}

TEST(ServiceDriver, DriveModesMatchReference) {
  const GraphInstance gi = road_instance(900, /*seed=*/19);
  const std::vector<Query> queries = make_query_set(gi, 32, /*seed=*/2);
  const ServiceReference ref = measure_service_reference(gi, queries, 1);
  ASSERT_EQ(ref.distances.size(), queries.size());

  auto service = make_concrete(gi, 4);
  // Closed loop, then open loop at a rate the pool can absorb.
  for (const double qps : {0.0, 2000.0}) {
    const DriveResult drive = drive_service(*service, queries, qps, 1);
    ASSERT_EQ(drive.results.size(), queries.size());
    EXPECT_GT(drive.seconds, 0.0);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(drive.results[i].distance, ref.distances[i]) << "qps=" << qps;
    }
  }
  service->stop();

  const DriveResult spawn = drive_spawn_per_query(gi, "smq", ParamMap{}, 2,
                                                  queries, /*batch_size=*/8);
  ASSERT_EQ(spawn.results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(spawn.results[i].distance, ref.distances[i]);
  }
}

TEST(ServiceFactory, UnknownSchedulerThrows) {
  const GraphInstance gi = road_instance(256);
  EXPECT_THROW(make_service("nope", 2, ParamMap{}, gi), std::invalid_argument);
  EXPECT_THROW(service_effective_threads("nope", 2), std::invalid_argument);
}

TEST(ServiceFactory, StressManyShortQueries) {
  // The TSan-gated stress: small graph, many short queries, more lanes
  // than workers, submissions racing completions.
  GraphRegistry& graphs = GraphRegistry::instance();
  ParamMap params;
  params.set("vertices", "600");
  params.set("seed", "29");
  const GraphInstance gi = graphs.create("road", params);
  auto service =
      make_service("smq", 4, params, gi, ServiceOptions{.lanes = 8});
  const std::vector<Query> queries = make_query_set(gi, 200, /*seed=*/12);
  std::vector<QueryTicket> tickets;
  tickets.reserve(queries.size());
  for (const Query& q : queries) tickets.push_back(service->submit(q));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto ref = sequential_astar(*gi.graph, queries[i].source,
                                      queries[i].target, gi.weight_scale);
    EXPECT_EQ(tickets[i].get().distance, ref.distance) << "query " << i;
  }
  service->stop();
  EXPECT_EQ(service->queries_completed(), queries.size());
}

}  // namespace
}  // namespace smq
