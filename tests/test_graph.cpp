// Tests for the CSR graph, generators, and DIMACS I/O.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <span>
#include <sstream>
#include <utility>

#include "graph/dimacs.h"
#include "graph/generators.h"

namespace smq {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, CsrConstruction) {
  std::vector<Edge> edges{{0, 1, 10}, {0, 2, 20}, {1, 2, 30}, {2, 0, 40}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.neighbors(1)[0].to, 2u);
  EXPECT_EQ(g.neighbors(1)[0].weight, 30u);
}

TEST(Graph, ToEdgesRoundTrip) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}};
  const Graph g = Graph::from_edges(4, edges);
  auto back = g.to_edges();
  ASSERT_EQ(back.size(), 4u);
  std::uint64_t weight_sum = 0;
  for (const Edge& e : back) weight_sum += e.weight;
  EXPECT_EQ(weight_sum, 10u);
}

TEST(Graph, IsolatedVerticesHaveNoNeighbors) {
  const Graph g = Graph::from_edges(5, {{0, 4, 1}});
  for (VertexId v = 1; v < 4; ++v) EXPECT_EQ(g.out_degree(v), 0u);
}

TEST(Graph, FromCsrMatchesFromEdges) {
  const std::vector<Edge> edges{{0, 1, 10}, {0, 2, 20}, {1, 2, 30}, {2, 0, 40}};
  const Graph a = Graph::from_edges(3, edges);
  const Graph b = Graph::from_csr(
      std::vector<std::size_t>(a.offsets().begin(), a.offsets().end()),
      std::vector<Graph::Neighbor>(a.adjacency().begin(), a.adjacency().end()));
  ASSERT_EQ(b.num_vertices(), a.num_vertices());
  ASSERT_EQ(b.num_edges(), a.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(b.neighbors(v).size(), a.neighbors(v).size());
    for (std::size_t i = 0; i < a.neighbors(v).size(); ++i) {
      EXPECT_EQ(b.neighbors(v)[i].to, a.neighbors(v)[i].to);
      EXPECT_EQ(b.neighbors(v)[i].weight, a.neighbors(v)[i].weight);
    }
  }
  EXPECT_FALSE(b.is_mapped());
}

TEST(Graph, FromCsrRejectsMalformedInput) {
  using Nbr = Graph::Neighbor;
  // Empty offsets array (no implicit |V|=0 allowed).
  EXPECT_THROW(Graph::from_csr({}, {}), std::invalid_argument);
  // offsets[0] != 0.
  EXPECT_THROW(Graph::from_csr({1, 1}, {Nbr{0, 1}}), std::invalid_argument);
  // Non-monotonic offsets.
  EXPECT_THROW(Graph::from_csr({0, 2, 1}, {Nbr{0, 1}}), std::invalid_argument);
  // back() disagrees with adjacency size.
  EXPECT_THROW(Graph::from_csr({0, 2}, {Nbr{0, 1}}), std::invalid_argument);
  // Neighbor target out of range.
  EXPECT_THROW(Graph::from_csr({0, 1}, {Nbr{5, 1}}), std::invalid_argument);
}

/// Build a "mapped" graph over heap arrays owned by a shared backing,
/// mirroring what load_binary_graph_mmap produces without needing a file.
Graph make_backed_graph() {
  struct Backing {
    std::vector<std::size_t> offsets{0, 2, 3, 3};
    std::vector<Graph::Neighbor> adjacency{{1, 10}, {2, 20}, {2, 30}};
  };
  auto backing = std::make_shared<Backing>();
  std::span<const std::size_t> off(backing->offsets);
  std::span<const Graph::Neighbor> adj(backing->adjacency);
  return Graph::from_mapped(off, adj, backing);
}

TEST(Graph, MappedGraphReadsThroughViews) {
  const Graph g = make_backed_graph();
  EXPECT_TRUE(g.is_mapped());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.neighbors(0)[1].weight, 20u);
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(Graph, MappedCopySharesBackingAndOutlivesOriginal) {
  Graph copy;
  {
    const Graph g = make_backed_graph();
    copy = g;  // shares the backing shared_ptr, no deep copy
  }
  EXPECT_TRUE(copy.is_mapped());
  EXPECT_EQ(copy.neighbors(1)[0].to, 2u);
}

TEST(Graph, OwnedCopyIsDeepAndMoveKeepsViewsValid) {
  Graph a = Graph::from_edges(3, {{0, 1, 10}, {1, 2, 20}});
  const Graph copy = a;
  EXPECT_NE(copy.adjacency().data(), a.adjacency().data());

  const Graph::Neighbor* before = a.adjacency().data();
  const Graph moved = std::move(a);
  // Vector moves keep heap buffers: views must follow the new owner.
  EXPECT_EQ(moved.adjacency().data(), before);
  EXPECT_EQ(moved.num_edges(), 2u);
  EXPECT_EQ(moved.neighbors(1)[0].weight, 20u);
}

TEST(Generators, GridHasExpectedShape) {
  const Graph g = make_grid2d(4, 3);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 4x3 grid: horizontal (3*3) + vertical (4*2) undirected = 17 * 2 arcs.
  EXPECT_EQ(g.num_edges(), 34u);
}

TEST(Generators, PathIsConnectedChain) {
  const Graph g = make_path(5, 3);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected edges
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(2).size(), 2u);
}

TEST(Generators, RoadLikeHasCoordinatesAndSymmetry) {
  const Graph g = make_road_like(400);
  EXPECT_GE(g.num_vertices(), 400u);
  EXPECT_FALSE(g.coordinates().empty());
  EXPECT_EQ(g.coordinates().x.size(), g.num_vertices());
  // Every vertex connected (lattice base): degree >= 2.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.out_degree(v), 2u) << "vertex " << v;
  }
}

TEST(Generators, RoadLikeWeightsDominateDistance) {
  // Admissibility precondition for A*: weight >= euclid * scale.
  const double scale = 100.0;
  const Graph g = make_road_like(400, {.seed = 9, .weight_scale = scale});
  const Coordinates& c = g.coordinates();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Graph::Neighbor& n : g.neighbors(v)) {
      const double dx = c.x[v] - c.x[n.to];
      const double dy = c.y[v] - c.y[n.to];
      const double dist = std::sqrt(dx * dx + dy * dy);
      EXPECT_GE(n.weight + 1e-9, dist * scale) << v << "->" << n.to;
    }
  }
}

TEST(Generators, RmatSizeAndSkew) {
  const Graph g = make_rmat(10, {.seed = 5, .edge_factor = 8});
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 8192u);
  // Power-law skew: the max out-degree should far exceed the mean (8).
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.out_degree(v));
  }
  EXPECT_GT(max_degree, 32u);
}

TEST(Generators, RmatWeightsWithinPaperRange) {
  const Graph g = make_rmat(8, {.seed = 6, .max_weight = 255});
  for (const Edge& e : g.to_edges()) EXPECT_LE(e.weight, 255u);
}

TEST(Generators, ErdosRenyiEdgeCount) {
  const Graph g = make_erdos_renyi(100, 500, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(Generators, DeterministicForSeed) {
  const Graph a = make_rmat(8, {.seed = 77});
  const Graph b = make_rmat(8, {.seed = 77});
  EXPECT_EQ(a.to_edges().size(), b.to_edges().size());
  const auto ea = a.to_edges(), eb = b.to_edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_EQ(ea[i].weight, eb[i].weight);
  }
}

TEST(Dimacs, ParseBasicFile) {
  std::istringstream in(
      "c comment line\n"
      "p sp 3 2\n"
      "a 1 2 5\n"
      "a 2 3 7\n");
  const Graph g = read_dimacs_gr(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 5u);
}

TEST(Dimacs, RejectsMalformedInput) {
  std::istringstream missing_header("a 1 2 5\n");
  EXPECT_THROW(read_dimacs_gr(missing_header), std::runtime_error);
  std::istringstream bad_vertex("p sp 2 1\na 1 9 5\n");
  EXPECT_THROW(read_dimacs_gr(bad_vertex), std::runtime_error);
  std::istringstream bad_tag("p sp 2 1\nz 1 2 3\n");
  EXPECT_THROW(read_dimacs_gr(bad_tag), std::runtime_error);
}

TEST(Dimacs, WriteReadRoundTrip) {
  const Graph g = make_erdos_renyi(50, 200, 3);
  std::stringstream buffer;
  write_dimacs_gr(buffer, g);
  const Graph back = read_dimacs_gr(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  const auto ea = g.to_edges(), eb = back.to_edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_EQ(ea[i].weight, eb[i].weight);
  }
}

TEST(Dimacs, CoordinatesParse) {
  std::istringstream gr("p sp 2 1\na 1 2 3\n");
  Graph g = read_dimacs_gr(gr);
  std::istringstream co("v 1 -73000000 41000000\nv 2 -74000000 42000000\n");
  read_dimacs_co(co, g);
  ASSERT_FALSE(g.coordinates().empty());
  EXPECT_DOUBLE_EQ(g.coordinates().x[0], -73000000.0);
  EXPECT_DOUBLE_EQ(g.coordinates().y[1], 42000000.0);
}

}  // namespace
}  // namespace smq
