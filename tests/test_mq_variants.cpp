// Tests for the optimized Multi-Queue variants (Appendix C combos).
#include "queues/mq_variants.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace smq {
namespace {

struct Combo {
  InsertPolicy insert;
  DeletePolicy del;
  const char* name;
};

class MqVariantCombos : public ::testing::TestWithParam<Combo> {};

OptimizedMqConfig combo_config(const Combo& combo) {
  OptimizedMqConfig cfg;
  cfg.insert_policy = combo.insert;
  cfg.delete_policy = combo.del;
  cfg.p_insert_change = 0.25;
  cfg.p_delete_change = 0.25;
  cfg.insert_batch = 8;
  cfg.delete_batch = 8;
  return cfg;
}

TEST_P(MqVariantCombos, SingleThreadRoundTripWithFlush) {
  OptimizedMultiQueue mq(1, combo_config(GetParam()));
  for (std::uint64_t p = 0; p < 100; ++p) mq.push(0, Task{p, p});
  mq.flush(0);  // insert batching buffers otherwise hold tasks back
  std::vector<std::uint64_t> got;
  while (auto t = mq.try_pop(0)) got.push_back(t->payload);
  EXPECT_EQ(got.size(), 100u);
}

TEST_P(MqVariantCombos, ConcurrentNoLossNoDuplication) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  OptimizedMultiQueue mq(kThreads, combo_config(GetParam()));

  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          mq.push(tid, Task{i, tid * kPerThread + i});
          if (i % 4 == 3) {
            if (auto t = mq.try_pop(tid)) local.push_back(t->payload);
          }
        }
        mq.flush(tid);
        while (auto t = mq.try_pop(tid)) local.push_back(t->payload);
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    mq.flush(tid);
    while (auto t = mq.try_pop(tid)) ++seen[t->payload];
  }

  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MqVariantCombos,
    ::testing::Values(
        Combo{InsertPolicy::kTemporalLocality, DeletePolicy::kTemporalLocality,
              "tl_tl"},
        Combo{InsertPolicy::kTemporalLocality, DeletePolicy::kBatching,
              "tl_b"},
        Combo{InsertPolicy::kBatching, DeletePolicy::kTemporalLocality,
              "b_tl"},
        Combo{InsertPolicy::kBatching, DeletePolicy::kBatching, "b_b"}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return info.param.name;
    });

TEST(MqVariants, InsertBatchingDefersUntilFullOrFlush) {
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kBatching;
  cfg.delete_policy = DeletePolicy::kBatching;
  cfg.insert_batch = 10;
  cfg.delete_batch = 1;
  OptimizedMultiQueue mq(1, cfg);
  for (std::uint64_t p = 0; p < 5; ++p) mq.push(0, Task{p, p});
  // Fewer than insert_batch tasks: nothing visible yet.
  EXPECT_EQ(mq.approx_size(), 0u);
  mq.flush(0);
  EXPECT_EQ(mq.approx_size(), 5u);
}

TEST(MqVariants, DeleteBatchingServesBufferedTasksInOrder) {
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kTemporalLocality;
  cfg.p_insert_change = 0.0;  // sticky: every task lands in one queue
  cfg.delete_policy = DeletePolicy::kBatching;
  cfg.delete_batch = 4;
  OptimizedMultiQueue mq(1, cfg);
  for (std::uint64_t p : {9, 3, 7, 1}) mq.push(0, Task{p, p});
  EXPECT_EQ(mq.try_pop(0)->priority, 1u);
  EXPECT_EQ(mq.try_pop(0)->priority, 3u);
  EXPECT_EQ(mq.try_pop(0)->priority, 7u);
  EXPECT_EQ(mq.try_pop(0)->priority, 9u);
}

TEST(MqVariants, TemporalLocalityNeverChangesWithZeroProbability) {
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kTemporalLocality;
  cfg.delete_policy = DeletePolicy::kTemporalLocality;
  cfg.p_insert_change = 0.0;  // after the first sample, stick forever
  cfg.p_delete_change = 0.0;
  OptimizedMultiQueue mq(1, cfg);
  for (std::uint64_t p = 0; p < 20; ++p) mq.push(0, Task{p, p});
  // All in one queue + sticky delete queue: exact priority order.
  std::uint64_t count = 0;
  while (auto t = mq.try_pop(0)) {
    EXPECT_EQ(t->priority, count);
    ++count;
  }
  EXPECT_EQ(count, 20u);
}

}  // namespace
}  // namespace smq
