// BFS correctness across every scheduler family.
#include "algorithms/bfs.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "scheduler_fixtures.h"

namespace smq {
namespace {

template <typename Factory>
class BfsAllSchedulers : public ::testing::Test {};

TYPED_TEST_SUITE(BfsAllSchedulers, smq::testing::AllSchedulerFactories);

template <typename Factory>
void check_bfs(const Graph& g, VertexId source, unsigned threads) {
  const SequentialBfsResult ref = sequential_bfs(g, source);
  auto sched = Factory::make(threads);
  const ShortestPathResult got = parallel_bfs(g, source, sched, threads);
  for (std::size_t v = 0; v < ref.levels.size(); ++v) {
    ASSERT_EQ(got.distances[v], ref.levels[v])
        << Factory::kName << " level differs at vertex " << v;
  }
}

TYPED_TEST(BfsAllSchedulers, RoadGraph) {
  check_bfs<TypeParam>(make_road_like(900, {.seed = 11}), 0, 4);
}

TYPED_TEST(BfsAllSchedulers, SocialGraph) {
  check_bfs<TypeParam>(make_rmat(9, {.seed = 12}), 0, 4);
}

TYPED_TEST(BfsAllSchedulers, Grid) {
  check_bfs<TypeParam>(make_grid2d(20, 20), 0, 2);
}

TEST(SequentialBfs, LevelsOnPath) {
  const Graph g = make_path(5);
  const SequentialBfsResult ref = sequential_bfs(g, 2);
  EXPECT_EQ(ref.levels[2], 0u);
  EXPECT_EQ(ref.levels[0], 2u);
  EXPECT_EQ(ref.levels[4], 2u);
  EXPECT_EQ(ref.visited, 5u);
}

TEST(SequentialBfs, UnreachableStaysInfinity) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1}});
  const SequentialBfsResult ref = sequential_bfs(g, 0);
  EXPECT_EQ(ref.levels[2], DistanceArray::kUnreached);
  EXPECT_EQ(ref.visited, 2u);
}

}  // namespace
}  // namespace smq
