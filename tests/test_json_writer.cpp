// The streaming JSON writer behind smq_run's machine-readable results.
#include "support/json_writer.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace smq {
namespace {

TEST(JsonWriter, FlatObject) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.member("name", "smq");
  json.member("threads", 8u);
  json.member("seconds", 0.5);
  json.member("valid", true);
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"smq\",\n"
            "  \"threads\": 8,\n"
            "  \"seconds\": 0.5,\n"
            "  \"valid\": true\n"
            "}");
}

TEST(JsonWriter, NestedContainers) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("results").begin_array();
  json.begin_object();
  json.member("t", 1);
  json.end_object();
  json.begin_object();
  json.member("t", 2);
  json.end_object();
  json.end_array();
  json.member("after", "x");
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"results\": [\n"
            "    {\n"
            "      \"t\": 1\n"
            "    },\n"
            "    {\n"
            "      \"t\": 2\n"
            "    }\n"
            "  ],\n"
            "  \"after\": \"x\"\n"
            "}");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.key("empty_list").begin_array();
  json.end_array();
  json.key("empty_obj").begin_object();
  json.end_object();
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"empty_list\": [],\n"
            "  \"empty_obj\": {}\n"
            "}");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.member("quote\"back\\slash", "line\nbreak\ttab");
  json.end_object();
  EXPECT_NE(os.str().find("\"quote\\\"back\\\\slash\""), std::string::npos);
  EXPECT_NE(os.str().find("\"line\\nbreak\\ttab\""), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(1.25);
  json.end_array();
  EXPECT_EQ(os.str(),
            "[\n"
            "  null,\n"
            "  null,\n"
            "  1.25\n"
            "]");
}

TEST(JsonWriter, RootArrayOfNumbers) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_array();
  json.value(static_cast<std::int64_t>(-3));
  json.value(static_cast<std::uint64_t>(18446744073709551615ull));
  json.end_array();
  EXPECT_TRUE(json.complete());
  EXPECT_NE(os.str().find("-3"), std::string::npos);
  EXPECT_NE(os.str().find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace smq
