// Fixture: operator form on an atomic (implicit seq_cst) — must trip
// the [order] rule.
#pragma once

#include <atomic>

namespace fixture {

class Counter {
 public:
  void bump() { hits_++; }  // implicit seq_cst RMW

 private:
  std::atomic<long> hits_{0};
};

}  // namespace fixture
