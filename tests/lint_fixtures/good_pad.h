// Fixture: per-thread slots wrapped in Padded<> — must lint clean.
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {

template <typename T>
struct Padded {
  alignas(64) T value;
};

struct Slot {
  long hits = 0;
};

class Tracker {
 public:
  explicit Tracker(unsigned num_threads) : slots_(num_threads) {}

  void bump(unsigned tid) { ++slots_[tid].value.hits; }

 private:
  std::vector<Padded<Slot>> slots_;
};

}  // namespace fixture
