// Fixture: atomic load without an explicit memory order — must trip
// the [order] rule.
#pragma once

#include <atomic>

namespace fixture {

class Counter {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }

  long read() const { return hits_.load(); }  // implicit seq_cst

 private:
  mutable std::atomic<long> hits_{0};
};

}  // namespace fixture
