// Fixture: seq_cst with a written justification — must lint clean.
#pragma once

#include <atomic>

namespace fixture {

class Flag {
 public:
  void publish() {
    // smq-lint: seq-cst store-load fence against the scanner thread
    state_.store(1, std::memory_order_seq_cst);
  }

 private:
  std::atomic<int> state_{0};
};

}  // namespace fixture
