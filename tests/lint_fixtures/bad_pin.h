// Fixture: SMQ_REQUIRES_PIN call with no Guard in scope — must trip the
// [pin] rule.
#pragma once

struct EpochManager {
  struct Guard {
    Guard(EpochManager*, unsigned) {}
  };
};

#define SMQ_REQUIRES_PIN

namespace fixture {

struct Bag {
  int* pop_node(unsigned tid) SMQ_REQUIRES_PIN;
};

inline int drain(Bag& bag) {
  int* node = bag.pop_node(0);  // unpinned dereference window
  return node ? *node : 0;
}

}  // namespace fixture
