// Fixture: std::rand / wall-clock seeding — must trip the [rand] rule
// (runs must reproduce from --seed).
#pragma once

#include <cstdlib>
#include <ctime>

namespace fixture {

inline unsigned wall_clock_seed() {
  return static_cast<unsigned>(std::time(nullptr));
}

}  // namespace fixture
