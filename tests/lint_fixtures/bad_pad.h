// Fixture: per-thread slots without padding — adjacent slots share a
// cache line and ping-pong under write traffic. Must trip [pad].
#pragma once

#include <vector>

namespace fixture {

struct Slot {
  long hits = 0;
};

class Tracker {
 public:
  explicit Tracker(unsigned num_threads) : slots_(num_threads) {}

  void bump(unsigned tid) { ++slots_[tid].hits; }

 private:
  std::vector<Slot> slots_;
};

}  // namespace fixture
