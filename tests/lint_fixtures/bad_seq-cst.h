// Fixture: seq_cst without a waiver comment — must trip the [seq-cst]
// rule.
#pragma once

#include <atomic>

namespace fixture {

class Flag {
 public:
  void publish() { state_.store(1, std::memory_order_seq_cst); }

 private:
  std::atomic<int> state_{0};
};

}  // namespace fixture
