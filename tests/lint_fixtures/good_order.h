// Fixture: every atomic op states its memory order — must lint clean.
#pragma once

#include <atomic>

namespace fixture {

class Counter {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }

  long read() const { return hits_.load(std::memory_order_acquire); }

  bool claim(long expected) {
    return hits_.compare_exchange_strong(expected, expected + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

 private:
  mutable std::atomic<long> hits_{0};
};

}  // namespace fixture
