// Fixture: the rand ban can be waived with a reason — must lint clean.
#pragma once

#include <cstdlib>

namespace fixture {

inline int jitter() {
  // smq-lint: rand-ok fixture demonstrating the waiver syntax
  return std::rand() % 3;
}

}  // namespace fixture
