// Fixture: SMQ_REQUIRES_PIN call inside an EpochManager::Guard scope —
// must lint clean.
#pragma once

struct EpochManager {
  struct Guard {
    Guard(EpochManager*, unsigned) {}
  };
};

#define SMQ_REQUIRES_PIN

namespace fixture {

struct Bag {
  int* pop_node(unsigned tid) SMQ_REQUIRES_PIN;
};

inline int drain(Bag& bag, EpochManager* epochs) {
  EpochManager::Guard guard(epochs, 0);
  int* node = bag.pop_node(0);
  return node ? *node : 0;
}

}  // namespace fixture
