// Fixture: a SMQ_REQUIRES_PIN function may call other marked functions
// without its own Guard (the pin obligation moves to its callers) —
// must lint clean.
#pragma once

struct EpochManager {
  struct Guard {
    Guard(EpochManager*, unsigned) {}
  };
};

#define SMQ_REQUIRES_PIN

namespace fixture {

struct Bag {
  int* pop_node(unsigned tid) SMQ_REQUIRES_PIN;

  int drain_one(unsigned tid) SMQ_REQUIRES_PIN {
    int* node = pop_node(tid);
    return node ? *node : 0;
  }
};

}  // namespace fixture
