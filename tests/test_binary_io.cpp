// Tests for the binary CSR graph cache: v2 (direct-CSR, mmap-able)
// round-trips, v1 read compatibility, and the corruption fixtures a
// trusted-on-disk format must reject — bad magic, bad version,
// truncated arrays, oversized counts (which must throw, not attempt a
// multi-exabyte allocation), and inconsistent CSR offsets.
#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "graph/generators.h"

namespace smq {
namespace {

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree differs at " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_EQ(na[i].weight, nb[i].weight);
    }
  }
}

std::string serialized(const Graph& g) {
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  return buffer.str();
}

/// Write `bytes` to a temp file and return its path.
std::string temp_file(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

/// Patch 8 little-endian bytes at `offset`.
void patch_u64(std::string& bytes, std::size_t offset, std::uint64_t value) {
  ASSERT_LE(offset + 8, bytes.size());
  std::memcpy(bytes.data() + offset, &value, 8);
}

// v2 layout constants mirrored by the corruption fixtures below.
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kVerticesOffset = 16;
constexpr std::size_t kEdgesOffset = 24;

TEST(BinaryIo, RoundTripPlainGraph) {
  const Graph g = make_erdos_renyi(200, 1500, 9);
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const Graph back = read_binary_graph(buffer);
  expect_graphs_equal(g, back);
  EXPECT_TRUE(back.coordinates().empty());
}

TEST(BinaryIo, RoundTripWithCoordinates) {
  const Graph g = make_road_like(400, {.seed = 10});
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const Graph back = read_binary_graph(buffer);
  expect_graphs_equal(g, back);
  ASSERT_FALSE(back.coordinates().empty());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(back.coordinates().x[v], g.coordinates().x[v]);
    EXPECT_DOUBLE_EQ(back.coordinates().y[v], g.coordinates().y[v]);
  }
}

TEST(BinaryIo, RoundTripEmptyGraph) {
  const Graph g = Graph::from_edges(3, {});
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const Graph back = read_binary_graph(buffer);
  EXPECT_EQ(back.num_vertices(), 3u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST(BinaryIo, V2HeaderIsAlignmentPadded) {
  // The offsets section must start at byte 64 so an mmap of the file
  // yields 8-aligned arrays; |V|=0,|E|=0, no coords => exactly the
  // header plus one u64 offset entry.
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(serialized(g).size(), kHeaderSize + 8);
}

TEST(BinaryIo, V1ReadCompat) {
  const Graph g = make_road_like(300, {.seed = 4});
  std::stringstream buffer;
  write_binary_graph_v1(buffer, g);
  const Graph back = read_binary_graph(buffer);
  expect_graphs_equal(g, back);
  ASSERT_FALSE(back.coordinates().empty());
  EXPECT_DOUBLE_EQ(back.coordinates().x[7], g.coordinates().x[7]);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a graph file at all";
  EXPECT_THROW(read_binary_graph(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsBadVersion) {
  std::string bytes = serialized(make_erdos_renyi(20, 40, 2));
  const std::uint32_t version = 99;
  std::memcpy(bytes.data() + 8, &version, 4);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary_graph(in), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncation) {
  const std::string full = serialized(make_erdos_renyi(50, 100, 11));
  // Every cut point must throw: inside the header, inside the offsets
  // array, inside the adjacency array.
  for (const std::size_t cut : {std::size_t{10}, kHeaderSize + 7,
                                full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(read_binary_graph(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(BinaryIo, RejectsOversizedVertexCount) {
  // A corrupt header claiming 2^60 vertices must fail fast on the
  // remaining-bytes bound, not allocate an 8-exabyte offsets array.
  std::string bytes = serialized(make_erdos_renyi(20, 40, 2));
  patch_u64(bytes, kVerticesOffset, 1ull << 60);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary_graph(in), std::runtime_error);
}

TEST(BinaryIo, RejectsOversizedEdgeCount) {
  std::string bytes = serialized(make_erdos_renyi(20, 40, 2));
  patch_u64(bytes, kEdgesOffset, 1ull << 60);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary_graph(in), std::runtime_error);
}

TEST(BinaryIo, RejectsOversizedV1Count) {
  const Graph g = make_erdos_renyi(20, 40, 2);
  std::stringstream buffer;
  write_binary_graph_v1(buffer, g);
  std::string bytes = buffer.str();
  // v1: magic(8) + version(4) + V(4), then the `from` vector count.
  patch_u64(bytes, 16, 1ull << 60);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary_graph(in), std::runtime_error);
}

TEST(BinaryIo, RejectsInconsistentCsrOffsets) {
  std::string bytes = serialized(make_erdos_renyi(30, 90, 3));
  // offsets[1] lives at header+8; pushing it past offsets[2] breaks
  // monotonicity, which from_csr must reject.
  patch_u64(bytes, kHeaderSize + 8, 1ull << 40);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary_graph(in), std::invalid_argument);
}

TEST(BinaryIo, RejectsOutOfRangeTarget) {
  std::string bytes = serialized(make_erdos_renyi(30, 90, 3));
  // First adjacency entry's `to` field, after the 31-entry offsets
  // array: patch to a vertex id far beyond |V|.
  const std::size_t adjacency_start = kHeaderSize + 31 * 8;
  const std::uint32_t bogus = 1u << 20;
  ASSERT_LE(adjacency_start + 4, bytes.size());
  std::memcpy(bytes.data() + adjacency_start, &bogus, 4);
  std::stringstream in(bytes);
  EXPECT_THROW(read_binary_graph(in), std::invalid_argument);
}

TEST(BinaryIo, FileRoundTrip) {
  const Graph g = make_rmat(8, {.seed = 12});
  const std::string path = ::testing::TempDir() + "/smq_graph_test.bin";
  save_binary_graph(path, g);
  const Graph back = load_binary_graph(path);
  expect_graphs_equal(g, back);
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(load_binary_graph("/nonexistent/nope.bin"),
               std::runtime_error);
  EXPECT_THROW(load_binary_graph_mmap("/nonexistent/nope.bin"),
               std::runtime_error);
}

// ---- mmap path -------------------------------------------------------------

TEST(BinaryIoMmap, EquivalentToStreamLoad) {
  const Graph g = make_road_like(500, {.seed = 21});
  const std::string path = temp_file("smq_mmap_eq.bin", serialized(g));

  const Graph streamed = load_binary_graph(path);
  const Graph mapped = load_binary_graph_mmap(path);
  expect_graphs_equal(streamed, mapped);
  expect_graphs_equal(g, mapped);

  ASSERT_FALSE(mapped.coordinates().empty());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(mapped.coordinates().x[v], g.coordinates().x[v]);
    EXPECT_DOUBLE_EQ(mapped.coordinates().y[v], g.coordinates().y[v]);
  }
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_FALSE(streamed.is_mapped());
#endif
  std::remove(path.c_str());
}

TEST(BinaryIoMmap, CopiesShareMappingAndOutliveOriginal) {
  const Graph g = make_erdos_renyi(100, 400, 5);
  const std::string path = temp_file("smq_mmap_copy.bin", serialized(g));
  Graph copy;
  {
    const Graph mapped = load_binary_graph_mmap(path);
    copy = mapped;  // shares the mapping's backing handle
  }
  // The original is gone; the copy's backing keeps the mapping alive.
  expect_graphs_equal(g, copy);
  std::remove(path.c_str());
}

TEST(BinaryIoMmap, V1FileFallsBackToStreamReader) {
  const Graph g = make_erdos_renyi(60, 240, 8);
  std::stringstream buffer;
  write_binary_graph_v1(buffer, g);
  const std::string path = temp_file("smq_mmap_v1.bin", buffer.str());
  const Graph back = load_binary_graph_mmap(path);
  expect_graphs_equal(g, back);
  EXPECT_FALSE(back.is_mapped());  // v1 rebuilds an owned edge list
  std::remove(path.c_str());
}

TEST(BinaryIoMmap, RejectsCorruptFiles) {
  const std::string good = serialized(make_erdos_renyi(30, 90, 3));

  std::string bad_version = good;
  const std::uint32_t version = 99;
  std::memcpy(bad_version.data() + 8, &version, 4);

  std::string oversized = good;
  patch_u64(oversized, kEdgesOffset, 1ull << 60);

  std::string bad_offsets = good;
  patch_u64(bad_offsets, kHeaderSize + 8, 1ull << 40);

  const struct {
    const char* name;
    const std::string& bytes;
  } cases[] = {
      {"bad_magic", std::string("garbage-not-a-graph-file-012345678901234567"
                                "8901234567890123456789012345678901234567")},
      {"bad_version", bad_version},
      {"oversized_count", oversized},
      {"inconsistent_offsets", bad_offsets},
      {"truncated", good.substr(0, good.size() - 9)},
  };
  for (const auto& c : cases) {
    const std::string path =
        temp_file(std::string("smq_mmap_corrupt_") + c.name + ".bin", c.bytes);
    EXPECT_ANY_THROW(load_binary_graph_mmap(path)) << c.name;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace smq
