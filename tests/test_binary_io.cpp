// Tests for the binary CSR graph cache.
#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace smq {
namespace {

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree differs at " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_EQ(na[i].weight, nb[i].weight);
    }
  }
}

TEST(BinaryIo, RoundTripPlainGraph) {
  const Graph g = make_erdos_renyi(200, 1500, 9);
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const Graph back = read_binary_graph(buffer);
  expect_graphs_equal(g, back);
  EXPECT_TRUE(back.coordinates().empty());
}

TEST(BinaryIo, RoundTripWithCoordinates) {
  const Graph g = make_road_like(400, {.seed = 10});
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const Graph back = read_binary_graph(buffer);
  expect_graphs_equal(g, back);
  ASSERT_FALSE(back.coordinates().empty());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(back.coordinates().x[v], g.coordinates().x[v]);
    EXPECT_DOUBLE_EQ(back.coordinates().y[v], g.coordinates().y[v]);
  }
}

TEST(BinaryIo, RoundTripEmptyGraph) {
  const Graph g = Graph::from_edges(3, {});
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const Graph back = read_binary_graph(buffer);
  EXPECT_EQ(back.num_vertices(), 3u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a graph file at all";
  EXPECT_THROW(read_binary_graph(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncation) {
  const Graph g = make_erdos_renyi(50, 100, 11);
  std::stringstream buffer;
  write_binary_graph(buffer, g);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_binary_graph(truncated), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const Graph g = make_rmat(8, {.seed = 12});
  const std::string path = ::testing::TempDir() + "/smq_graph_test.bin";
  save_binary_graph(path, g);
  const Graph back = load_binary_graph(path);
  expect_graphs_equal(g, back);
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(load_binary_graph("/nonexistent/nope.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace smq
