// Boruvka MST correctness: forest weight must equal Kruskal's, for every
// scheduler and for disconnected graphs.
#include "algorithms/boruvka.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "scheduler_fixtures.h"

namespace smq {
namespace {

template <typename Factory>
class BoruvkaAllSchedulers : public ::testing::Test {};

TYPED_TEST_SUITE(BoruvkaAllSchedulers, smq::testing::AllSchedulerFactories);

template <typename Factory>
void check_mst(const Graph& g, unsigned threads) {
  const SequentialMstResult ref = sequential_kruskal(g);
  auto sched = Factory::make(threads);
  const MstResult got = parallel_boruvka(g, sched, threads);
  EXPECT_EQ(got.total_weight, ref.total_weight) << Factory::kName;
  EXPECT_EQ(got.edges_in_forest, ref.edges_in_forest) << Factory::kName;
}

TYPED_TEST(BoruvkaAllSchedulers, RoadGraph) {
  check_mst<TypeParam>(make_road_like(400, {.seed = 31}), 4);
}

TYPED_TEST(BoruvkaAllSchedulers, RandomMultigraph) {
  check_mst<TypeParam>(make_erdos_renyi(200, 2000, 32), 4);
}

TYPED_TEST(BoruvkaAllSchedulers, WeightedGrid) {
  check_mst<TypeParam>(make_grid2d(15, 15, /*unit_weights=*/false, 33), 2);
}

TEST(SequentialKruskal, KnownTriangle) {
  const Graph g = Graph::from_edges(
      3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 2}, {2, 1, 2}, {0, 2, 10}, {2, 0, 10}});
  const SequentialMstResult ref = sequential_kruskal(g);
  EXPECT_EQ(ref.total_weight, 3u);
  EXPECT_EQ(ref.edges_in_forest, 2u);
}

TEST(SequentialKruskal, DisconnectedForest) {
  const Graph g = Graph::from_edges(
      4, {{0, 1, 5}, {1, 0, 5}, {2, 3, 7}, {3, 2, 7}});
  const SequentialMstResult ref = sequential_kruskal(g);
  EXPECT_EQ(ref.total_weight, 12u);
  EXPECT_EQ(ref.edges_in_forest, 2u);
}

TEST(ParallelBoruvka, DisconnectedForestAcrossThreads) {
  const Graph g = Graph::from_edges(
      6, {{0, 1, 5}, {1, 0, 5}, {2, 3, 7}, {3, 2, 7}, {4, 5, 9}, {5, 4, 9}});
  StealingMultiQueue<> sched(3, {.p_steal = 0.5});
  const MstResult got = parallel_boruvka(g, sched, 3);
  EXPECT_EQ(got.total_weight, 21u);
  EXPECT_EQ(got.edges_in_forest, 3u);
}

TEST(ParallelBoruvka, EmptyGraphNoEdges) {
  const Graph g = Graph::from_edges(4, {});
  StealingMultiQueue<> sched(2);
  const MstResult got = parallel_boruvka(g, sched, 2);
  EXPECT_EQ(got.total_weight, 0u);
  EXPECT_EQ(got.edges_in_forest, 0u);
}

TEST(UnionFindTest, FindAndLink) {
  UnionFind uf(5);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(uf.find(v), v);
  uf.link(1, 0);
  uf.link(2, 0);
  EXPECT_EQ(uf.find(1), 0u);
  EXPECT_EQ(uf.find(2), 0u);
  EXPECT_TRUE(uf.same_component(1, 2));
  EXPECT_FALSE(uf.same_component(1, 3));
}

TEST(UnionFindTest, PathHalvingCompresses) {
  UnionFind uf(4);
  uf.link(1, 0);
  uf.link(2, 1);
  uf.link(3, 2);
  EXPECT_EQ(uf.find(3), 0u);
  // After compression, repeated finds stay cheap and correct.
  EXPECT_EQ(uf.find(3), 0u);
  EXPECT_EQ(uf.find(2), 0u);
}

}  // namespace
}  // namespace smq
