// Executor termination and exact-count invariants under EVERY scheduler
// family: deep cascades, wide fan-outs, and priority-dependent spawning.
#include <gtest/gtest.h>

#include <atomic>

#include "sched/executor.h"
#include "scheduler_fixtures.h"

namespace smq {
namespace {

template <typename Factory>
class ExecutorAllSchedulers : public ::testing::Test {};

TYPED_TEST_SUITE(ExecutorAllSchedulers, smq::testing::AllSchedulerFactories);

TYPED_TEST(ExecutorAllSchedulers, DeepChainCompletes) {
  // A single chain of 20k tasks: worst case for termination detection
  // (always exactly one live task).
  auto sched = TypeParam::make(4);
  std::vector<Task> seeds{Task{0, 20000}};
  std::atomic<std::uint64_t> executed{0};
  run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (t.payload > 0) ctx.push(Task{t.priority + 1, t.payload - 1});
      },
      4);
  EXPECT_EQ(executed.load(), 20001u) << TypeParam::kName;
}

TYPED_TEST(ExecutorAllSchedulers, WideFanOutCompletes) {
  // One root spawning 20k leaves: worst case for a single queue.
  auto sched = TypeParam::make(4);
  std::vector<Task> seeds{Task{0, 0}};
  std::atomic<std::uint64_t> executed{0};
  run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (t.payload == 0) {
          for (std::uint64_t i = 1; i <= 20000; ++i) {
            ctx.push(Task{i % 100, i});
          }
        }
      },
      4);
  EXPECT_EQ(executed.load(), 20001u) << TypeParam::kName;
}

TYPED_TEST(ExecutorAllSchedulers, PriorityDependentSpawning) {
  // Tasks spawn children only below a priority ceiling; the total count
  // is scheduler-independent (a fixed binary tree).
  auto sched = TypeParam::make(2);
  std::vector<Task> seeds{Task{0, 1}};
  std::atomic<std::uint64_t> executed{0};
  run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (t.priority < 12) {
          ctx.push(Task{t.priority + 1, t.payload * 2});
          ctx.push(Task{t.priority + 1, t.payload * 2 + 1});
        }
      },
      2);
  EXPECT_EQ(executed.load(), (1u << 13) - 1) << TypeParam::kName;
}

TYPED_TEST(ExecutorAllSchedulers, RepeatedRunsOnFreshSchedulers) {
  // The same factory must be reusable across runs (no global state).
  for (int round = 0; round < 3; ++round) {
    auto sched = TypeParam::make(3);
    std::vector<Task> seeds;
    for (std::uint64_t i = 0; i < 300; ++i) seeds.push_back(Task{i, i});
    std::atomic<std::uint64_t> sum{0};
    run_parallel(
        sched, seeds,
        [&](Task t, auto&) { sum.fetch_add(t.payload); }, 3);
    EXPECT_EQ(sum.load(), 300u * 299 / 2) << TypeParam::kName << round;
  }
}

}  // namespace
}  // namespace smq
