// Tests for the SprayList relaxed priority queue baseline.
#include "queues/spraylist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace smq {
namespace {

TEST(SprayList, SingleThreadIsExact) {
  SprayList spray(1);
  for (std::uint64_t p : {5, 2, 8, 1}) spray.push(0, Task{p, p});
  for (std::uint64_t expect : {1, 2, 5, 8}) {
    auto t = spray.try_pop(0);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->priority, expect);
  }
  EXPECT_FALSE(spray.try_pop(0).has_value());
}

TEST(SprayList, MultiThreadRelaxedButBounded) {
  // Pops may come out of order, but sprays land in a bounded prefix, so
  // the mean rank error must stay modest.
  SprayList spray(4, {.seed = 11});
  constexpr std::uint64_t kTasks = 10000;
  for (std::uint64_t p = 0; p < kTasks; ++p) spray.push(0, Task{p, p});
  std::uint64_t popped = 0;
  double error_sum = 0;
  while (auto t = spray.try_pop(1)) {
    error_sum += static_cast<double>(
        t->priority > popped ? t->priority - popped : 0);
    ++popped;
  }
  EXPECT_EQ(popped, kTasks);
  // Relaxed but bounded: uniform-random pops would average ~kTasks/4
  // displacement; sprays must stay orders of magnitude tighter.
  EXPECT_LT(error_sum / static_cast<double>(kTasks), 1500.0);
}

TEST(SprayList, ConcurrentNoLossNoDuplication) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  SprayList spray(kThreads, {.seed = 12});
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t id = tid * kPerThread + i;
          spray.push(tid, Task{id, id});
          if (i % 2 == 0) {
            if (auto t = spray.try_pop(tid)) local.push_back(t->payload);
          }
        }
        while (auto t = spray.try_pop(tid)) local.push_back(t->payload);
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  while (auto t = spray.try_pop(0)) ++seen[t->payload];
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

}  // namespace
}  // namespace smq
