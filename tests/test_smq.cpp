// Tests for the Stealing Multi-Queue (the paper's core contribution).
#include "core/stealing_multiqueue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "queues/skiplist.h"
#include "sched/task.h"

namespace smq {
namespace {

using HeapSmq = StealingMultiQueue<DAryHeap<Task, 4>>;
using SkipSmq = StealingMultiQueue<SequentialSkipList>;

template <typename Q>
class SmqTyped : public ::testing::Test {};

using SmqTypes = ::testing::Types<HeapSmq, SkipSmq>;
TYPED_TEST_SUITE(SmqTyped, SmqTypes);

TYPED_TEST(SmqTyped, SingleThreadDrainsEverything) {
  TypeParam smq(1, {.steal_size = 4, .p_steal = 0.5});
  for (std::uint64_t p = 0; p < 100; ++p) smq.push(0, Task{p, p});
  std::vector<std::uint64_t> got;
  while (auto t = smq.try_pop(0)) got.push_back(t->priority);
  ASSERT_EQ(got.size(), 100u);
  std::sort(got.begin(), got.end());
  for (std::uint64_t p = 0; p < 100; ++p) EXPECT_EQ(got[p], p);
}

TYPED_TEST(SmqTyped, SingleThreadRespectsPriorityOrder) {
  // With one thread there is nobody to steal from; pops must come out in
  // exact priority order (modulo the batch already in the buffer, which
  // also holds the best tasks).
  TypeParam smq(1, {.steal_size = 1, .p_steal = 0.0});
  for (std::uint64_t p : {5, 2, 9, 1, 7}) smq.push(0, Task{p, p});
  std::vector<std::uint64_t> got;
  while (auto t = smq.try_pop(0)) got.push_back(t->priority);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 5, 7, 9}));
}

TYPED_TEST(SmqTyped, CrossThreadStealWorks) {
  TypeParam smq(2, {.steal_size = 2, .p_steal = 1.0});
  // Thread 0 owns all tasks; thread 1 steals the published batch. Tasks
  // still in the owner's heap stay invisible until the owner republishes
  // (by touching its queue), exactly as in Listing 4.
  for (std::uint64_t p = 0; p < 10; ++p) smq.push(0, Task{p, p});
  auto stolen = smq.try_pop(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->priority, 0u);  // the published batch held the best task
  EXPECT_GT(smq.steals(1), 0u);

  // Owner and thief alternate; between them every task must surface.
  std::vector<std::uint64_t> got{stolen->priority};
  while (got.size() < 10) {
    if (auto t = smq.try_pop(0)) got.push_back(t->priority);  // owner refills
    if (auto t = smq.try_pop(1)) got.push_back(t->priority);
  }
  EXPECT_FALSE(smq.try_pop(0).has_value());
  std::sort(got.begin(), got.end());
  for (std::uint64_t p = 0; p < 10; ++p) EXPECT_EQ(got[p], p);
}

TYPED_TEST(SmqTyped, NoStealWhenLocalBetter) {
  TypeParam smq(2, {.steal_size = 1, .p_steal = 1.0});
  smq.push(0, Task{100, 0});  // victim's visible top: 100
  smq.push(1, Task{1, 1});    // local top: 1 — better, never steal
  const auto t = smq.try_pop(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->priority, 1u);
  EXPECT_EQ(smq.steals(1), 0u);
}

TYPED_TEST(SmqTyped, ConcurrentNoLossNoDuplication) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  TypeParam smq(kThreads, {.steal_size = 4, .p_steal = 0.25, .seed = 9});

  std::atomic<std::uint64_t> popped_count{0};
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;

  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        std::vector<std::uint64_t> local_seen;
        // Interleave pushes and pops.
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t id = tid * kPerThread + i;
          smq.push(tid, Task{id, id});
          if (i % 3 == 0) {
            if (auto t = smq.try_pop(tid)) {
              local_seen.push_back(t->payload);
              popped_count.fetch_add(1);
            }
          }
        }
        // Drain phase.
        while (auto t = smq.try_pop(tid)) {
          local_seen.push_back(t->payload);
          popped_count.fetch_add(1);
        }
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local_seen) ++seen[id];
      });
    }
  }

  // A lone racing claim can leave a few tasks in a thread's local queue;
  // drain once more from thread 0's perspective.
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    while (auto t = smq.try_pop(tid)) {
      std::lock_guard<std::mutex> guard(merge_mutex);
      ++seen[t->payload];
      popped_count.fetch_add(1);
    }
  }

  EXPECT_EQ(popped_count.load(), kThreads * kPerThread);
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id << " popped " << count << " times";
  }
}

TYPED_TEST(SmqTyped, StolenBufferConsumedBeforeNewSteals) {
  TypeParam smq(2, {.steal_size = 3, .p_steal = 1.0});
  // The first add publishes a 1-task batch {5}; the owner's first pop
  // reclaims it and republishes the next batch {6, 7} from the heap.
  smq.push(0, Task{5, 5});
  smq.push(0, Task{6, 6});
  smq.push(0, Task{7, 7});
  ASSERT_EQ(smq.try_pop(0)->priority, 5u);

  // Thread 1 steals the batch {6, 7}: first pop returns 6 via a steal,
  // second returns 7 from the local stolen-task buffer, no new steal.
  auto first = smq.try_pop(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, 6u);
  const std::uint64_t steals_before = smq.steals(1);
  ASSERT_GT(steals_before, 0u);
  auto second = smq.try_pop(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->priority, 7u);
  EXPECT_EQ(smq.steals(1), steals_before);
}

TEST(SmqConfigTest, DefaultsMatchPaper) {
  const SmqConfig cfg;
  EXPECT_EQ(cfg.steal_size, 4u);
  EXPECT_DOUBLE_EQ(cfg.p_steal, 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(cfg.numa_weight_k, 8.0);
}

}  // namespace
}  // namespace smq
