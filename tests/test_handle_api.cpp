// The per-thread handle API (scheduler_traits.h): concept coverage over
// every scheduler family, the TidHandle shim for legacy tid-indexed
// schedulers, handle lifetime/reuse across runs, flush-before-termination
// through handles, and a conformance check that the handle and tid call
// paths drive identical state on a fixed seed.
#include "sched/scheduler_traits.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/sequential_scheduler.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"
#include "registry/adapters.h"
#include "registry/scheduler_registry.h"
#include "sched/executor.h"

namespace smq {
namespace {

// ---- concept coverage -----------------------------------------------------

// The seven registered scheduler families all expose native handles ...
static_assert(HandleScheduler<StealingMultiQueue<>>);
static_assert(HandleScheduler<StealingMultiQueue<SequentialSkipList>>);
static_assert(HandleScheduler<ClassicMultiQueue>);
static_assert(HandleScheduler<OptimizedMultiQueue>);
static_assert(HandleScheduler<Obim>);
static_assert(HandleScheduler<Pmod>);
static_assert(HandleScheduler<ReldQueue>);
static_assert(HandleScheduler<GlobalHeapScheduler>);
static_assert(HandleScheduler<SequentialScheduler>);
// SprayList gained a native handle with epoch reclamation (the batch ops
// pin once per batch, which a TidHandle shim could not express).
static_assert(HandleScheduler<SprayList>);
// ... and the type-erasure boundary forwards them.
static_assert(HandleScheduler<AnyScheduler>);

// Anchor schedulers intentionally left on the tid surface run through
// the TidHandle shim, which itself models the handle concept.
static_assert(!HandleScheduler<GlobalSkipListScheduler>);
static_assert(!HandleScheduler<ChunkBagScheduler>);
static_assert(SchedulerHandle<TidHandle<GlobalSkipListScheduler>>);
static_assert(SchedulerHandle<TidHandle<ChunkBagScheduler>>);
static_assert(std::same_as<HandleOf<SprayList>, SprayList::Handle>);
static_assert(std::same_as<HandleOf<GlobalSkipListScheduler>,
                           TidHandle<GlobalSkipListScheduler>>);
static_assert(std::same_as<HandleOf<SmqHeap>, SmqHeap::Handle>);

// ---- the adapter fallback on a minimal tid-only scheduler -----------------

/// The smallest thing the legacy concept accepts: push/try_pop/
/// num_threads and nothing else. Exists to prove a scheduler written
/// before the handle API keeps running through handle_adapted unchanged.
class MinimalTidScheduler {
 public:
  explicit MinimalTidScheduler(unsigned num_threads)
      : num_threads_(num_threads) {}

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned /*tid*/, Task t) {
    lock_.lock();
    tasks_.push_back(t);
    lock_.unlock();
  }

  std::optional<Task> try_pop(unsigned /*tid*/) {
    lock_.lock();
    std::optional<Task> out;
    if (!tasks_.empty()) {
      out = tasks_.back();
      tasks_.pop_back();
    }
    lock_.unlock();
    return out;
  }

 private:
  unsigned num_threads_;
  Spinlock lock_;
  std::vector<Task> tasks_;
};

static_assert(PriorityScheduler<MinimalTidScheduler>);
static_assert(!HandleScheduler<MinimalTidScheduler>);
static_assert(
    std::same_as<HandleOf<MinimalTidScheduler>, TidHandle<MinimalTidScheduler>>);

TEST(HandleApi, TidOnlySchedulerRunsThroughTheShim) {
  MinimalTidScheduler sched(2);
  auto h0 = handle_adapted(sched, 0);
  auto h1 = handle_adapted(sched, 1);
  EXPECT_EQ(h0.thread_id(), 0u);
  EXPECT_EQ(h1.thread_id(), 1u);

  // Batch ops fall back to per-task loops; flush and collect_stats are
  // no-ops probed away by the shim.
  const std::vector<Task> tasks{Task{3, 30}, Task{1, 10}, Task{2, 20}};
  h0.push_batch(std::span<const Task>(tasks));
  h0.flush();
  ThreadStats st;
  h0.collect_stats(st);
  EXPECT_EQ(st.steals, 0u);

  std::vector<Task> out;
  EXPECT_EQ(h1.try_pop_batch(out, 10), 3u);
  EXPECT_FALSE(h1.try_pop().has_value());
}

TEST(HandleApi, TidOnlySchedulerRunsUnderBothExecutorLoops) {
  // The executor must drive a pre-handle scheduler through the shim in
  // both the per-task and the batched loop.
  for (const std::size_t batch_size : {1ul, 8ul}) {
    MinimalTidScheduler sched(2);
    std::vector<Task> seeds;
    for (std::uint64_t i = 0; i < 64; ++i) seeds.push_back(Task{i, i});
    std::atomic<std::uint64_t> executed{0};
    const RunResult run = run_parallel(
        sched, std::span<const Task>(seeds),
        [&](Task t, auto& ctx) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (t.priority < 64) ctx.push(Task{100, t.payload});
        },
        2, ExecutorOptions{.batch_size = batch_size});
    EXPECT_EQ(executed.load(), 128u) << "batch_size=" << batch_size;
    EXPECT_EQ(run.stats.pops, 128u);
  }
}

// ---- handle lifetime and reuse --------------------------------------------

TEST(HandleApi, HandlesStayValidAcrossRunsAndReacquisition) {
  StealingMultiQueue<> sched(2, {.p_steal = 0.25, .seed = 5});
  auto h0 = sched.handle(0);

  // Use before a run...
  h0.push(Task{7, 77});
  ASSERT_TRUE(h0.try_pop().has_value());

  // ...two full executor runs on the same scheduler instance...
  for (int round = 0; round < 2; ++round) {
    std::vector<Task> seeds;
    for (std::uint64_t i = 0; i < 100; ++i) seeds.push_back(Task{i, i});
    std::atomic<std::uint64_t> executed{0};
    run_parallel(
        sched, std::span<const Task>(seeds),
        [&](Task, auto&) { executed.fetch_add(1, std::memory_order_relaxed); },
        2);
    EXPECT_EQ(executed.load(), 100u) << "round " << round;
  }

  // ...and the pre-run handle still views the same (now drained) state,
  // interchangeably with a freshly acquired one.
  EXPECT_FALSE(h0.try_pop().has_value());
  h0.push(Task{1, 11});
  auto h0_again = sched.handle(0);
  const std::optional<Task> t = h0_again.try_pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->payload, 11u);
}

TEST(HandleApi, ErasedHandleMatchesTidSurface) {
  AnyScheduler sched = SchedulerRegistry::instance().create("smq", 2, {});
  AnyScheduler::Handle h1 = sched.handle(1);
  EXPECT_EQ(h1.thread_id(), 1u);

  h1.push(Task{5, 55});
  h1.flush();
  // The erased handle views the same thread slot the tid surface indexes.
  const std::optional<Task> t = sched.try_pop(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->payload, 55u);

  // Stats collected through the handle equal the tid collection.
  ThreadStats via_handle, via_tid;
  h1.collect_stats(via_handle);
  sched.collect_stats(1, via_tid);
  EXPECT_EQ(via_handle.steals, via_tid.steals);
  EXPECT_EQ(via_handle.sampled_accesses, via_tid.sampled_accesses);
}

// ---- flush-before-termination through handles -----------------------------

TEST(HandleApi, BufferedInsertsPublishThroughHandleFlush) {
  // mq-opt with a large insert batch: pushes sit in the thread-local
  // buffer until flush. Another thread's handle must see them only
  // after ours flushes.
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kBatching;
  cfg.insert_batch = 64;
  cfg.seed = 9;
  OptimizedMultiQueue sched(2, cfg);
  auto h0 = sched.handle(0);
  auto h1 = sched.handle(1);

  for (std::uint64_t i = 0; i < 10; ++i) h0.push(Task{i, i});
  EXPECT_FALSE(h1.try_pop().has_value()) << "unflushed pushes leaked";
  h0.flush();
  std::vector<Task> out;
  EXPECT_EQ(h1.try_pop_batch(out, 100), 10u);
}

TEST(HandleApi, ExecutorTerminatesWithBufferedHandlesAtEveryBatchSize) {
  // The executor's termination protocol flushes through the handle; a
  // partially filled insert buffer must never strand tasks or hang the
  // run, in either loop.
  for (const std::size_t batch_size : {1ul, 5ul, 64ul}) {
    OptimizedMqConfig cfg;
    cfg.insert_policy = InsertPolicy::kBatching;
    cfg.insert_batch = 64;  // guaranteed partially-filled buffers
    cfg.delete_policy = DeletePolicy::kBatching;
    cfg.delete_batch = 4;
    OptimizedMultiQueue sched(2, cfg);
    std::vector<Task> seeds{Task{0, 0}};
    std::atomic<std::uint64_t> executed{0};
    run_parallel(
        sched, std::span<const Task>(seeds),
        [&](Task t, auto& ctx) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (t.priority < 6) {
            for (int i = 0; i < 3; ++i) {
              ctx.push(Task{t.priority + 1, t.payload * 3 + i});
            }
          }
        },
        2, ExecutorOptions{.batch_size = batch_size});
    std::uint64_t expected = 0, power = 1;
    for (int level = 0; level <= 6; ++level, power *= 3) expected += power;
    EXPECT_EQ(executed.load(), expected) << "batch_size=" << batch_size;
  }
}

// ---- handle/tid conformance on a fixed seed -------------------------------

/// Drive one scheduler through handles and an identically seeded twin
/// through the tid calls with the same operation sequence; every state
/// transition (RNG draws, steal counters, popped order) must match.
template <typename S, typename MakeFn>
void expect_handle_tid_conformance(MakeFn make, unsigned threads) {
  S via_handle = make();
  S via_tid = make();

  std::vector<typename S::Handle> handles;
  for (unsigned tid = 0; tid < threads; ++tid) {
    handles.push_back(via_handle.handle(tid));
  }

  // Interleaved pushes...
  for (std::uint64_t i = 0; i < 300; ++i) {
    const unsigned tid = static_cast<unsigned>(i % threads);
    const Task t{(i * 37) % 101, i};
    handles[tid].push(t);
    via_tid.push(tid, t);
  }
  for (unsigned tid = 0; tid < threads; ++tid) {
    handles[tid].flush();
    flush_if_supported(via_tid, tid);
  }

  // ...then a full interleaved drain; the pop sequences must be
  // identical because both instances make the same seeded decisions.
  std::vector<std::uint64_t> popped_handle, popped_tid;
  for (int round = 0; round < 400; ++round) {
    const unsigned tid = static_cast<unsigned>(round % threads);
    if (std::optional<Task> t = handles[tid].try_pop()) {
      popped_handle.push_back(t->payload);
    }
    if (std::optional<Task> t = via_tid.try_pop(tid)) {
      popped_tid.push_back(t->payload);
    }
  }
  EXPECT_EQ(popped_handle, popped_tid);
  EXPECT_EQ(popped_handle.size(), 300u);

  // Scheduler-private stats agree path for path.
  for (unsigned tid = 0; tid < threads; ++tid) {
    ThreadStats h_stats, t_stats;
    handles[tid].collect_stats(h_stats);
    collect_stats_if_supported(via_tid, tid, t_stats);
    EXPECT_EQ(h_stats.steals, t_stats.steals) << "tid " << tid;
    EXPECT_EQ(h_stats.steal_fails, t_stats.steal_fails) << "tid " << tid;
    EXPECT_EQ(h_stats.sampled_accesses, t_stats.sampled_accesses)
        << "tid " << tid;
    EXPECT_EQ(h_stats.remote_accesses, t_stats.remote_accesses)
        << "tid " << tid;
  }
}

TEST(HandleApi, HandleAndTidPathsConformOnFixedSeed) {
  expect_handle_tid_conformance<StealingMultiQueue<>>(
      [] {
        return StealingMultiQueue<>(2, {.p_steal = 0.25, .seed = 1234});
      },
      2);
  expect_handle_tid_conformance<ClassicMultiQueue>(
      [] { return ClassicMultiQueue(2, {.queue_multiplier = 2, .seed = 99}); },
      2);
  expect_handle_tid_conformance<ReldQueue>(
      [] { return ReldQueue(2, {.queue_multiplier = 2, .seed = 7}); }, 2);
}

TEST(HandleApi, HandleAndTidPathsConformForBufferedMq) {
  // The buffered variant moves state on both push (insert buffer) and
  // pop (delete buffer) — the strongest conformance case.
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kBatching;
  cfg.insert_batch = 8;
  cfg.delete_policy = DeletePolicy::kBatching;
  cfg.delete_batch = 4;
  cfg.seed = 4321;
  // OptimizedMultiQueue is not copyable; build via a factory lambda.
  expect_handle_tid_conformance<OptimizedMultiQueue>(
      [cfg] { return OptimizedMultiQueue(2, cfg); }, 2);
}

}  // namespace
}  // namespace smq
