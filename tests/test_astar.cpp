// A* correctness: must find exact shortest distances (the heuristic is
// admissible by construction) under every scheduler.
#include "algorithms/astar.h"

#include <gtest/gtest.h>

#include "algorithms/sssp.h"
#include "graph/generators.h"
#include "scheduler_fixtures.h"

namespace smq {
namespace {

template <typename Factory>
class AStarAllSchedulers : public ::testing::Test {};

TYPED_TEST_SUITE(AStarAllSchedulers, smq::testing::AllSchedulerFactories);

TYPED_TEST(AStarAllSchedulers, MatchesDijkstraOnRoadGraph) {
  const Graph g = make_road_like(900, {.seed = 21});
  const VertexId source = 0;
  const VertexId target = g.num_vertices() - 1;
  const SequentialSsspResult dijkstra = sequential_sssp(g, source);

  auto sched = TypeParam::make(4);
  const AStarResult got = parallel_astar(g, source, target, sched, 4);
  EXPECT_EQ(got.distance, dijkstra.distances[target]) << TypeParam::kName;
}

TYPED_TEST(AStarAllSchedulers, NearbyTargetShortCircuit) {
  const Graph g = make_road_like(400, {.seed = 22});
  auto sched = TypeParam::make(2);
  const SequentialSsspResult dijkstra = sequential_sssp(g, 0);
  const AStarResult got = parallel_astar(g, 0, 1, sched, 2);
  EXPECT_EQ(got.distance, dijkstra.distances[1]);
}

TEST(SequentialAStar, MatchesDijkstraManyPairs) {
  const Graph g = make_road_like(400, {.seed = 23});
  const SequentialSsspResult dijkstra = sequential_sssp(g, 0);
  for (VertexId target : {1u, 7u, 57u, 200u, g.num_vertices() - 1}) {
    const SequentialAStarResult got = sequential_astar(g, 0, target);
    EXPECT_EQ(got.distance, dijkstra.distances[target]) << target;
  }
}

TEST(SequentialAStar, HeuristicPrunesExpansion) {
  // A* should expand no more nodes than Dijkstra-to-quiescence (and
  // usually far fewer on a spatial graph).
  const Graph g = make_road_like(2500, {.seed = 24});
  const VertexId target = 55;  // close to source 0 in lattice order
  const SequentialAStarResult astar = sequential_astar(g, 0, target);
  const SequentialSsspResult dijkstra = sequential_sssp(g, 0);
  EXPECT_EQ(astar.distance, dijkstra.distances[target]);
  EXPECT_LT(astar.expanded, g.num_vertices());
}

TEST(SequentialAStar, UnreachableTargetReportsInfinity) {
  const Graph g = Graph::from_edges(4, {{0, 1, 1}, {2, 3, 1}});
  const SequentialAStarResult got = sequential_astar(g, 0, 3);
  EXPECT_EQ(got.distance, DistanceArray::kUnreached);
}

TEST(EquirectangularHeuristicTest, ZeroWithoutCoordinates) {
  const Graph g = make_erdos_renyi(10, 20, 1);  // no coordinates
  const EquirectangularHeuristic h(g, 5, 100.0);
  EXPECT_EQ(h(0), 0u);  // degrades to Dijkstra
}

TEST(EquirectangularHeuristicTest, ZeroAtTarget) {
  const Graph g = make_road_like(100, {.seed = 25});
  const EquirectangularHeuristic h(g, 7, 100.0);
  EXPECT_EQ(h(7), 0u);
}

}  // namespace
}  // namespace smq
