// Tests for HeapWithStealingBuffer: owner/stealer protocol of Listing 4.
#include "core/heap_with_stealing.h"

#include <gtest/gtest.h>

#include <vector>

#include "queues/skiplist.h"
#include "sched/task.h"

namespace smq {
namespace {

template <typename Q>
class HeapWithStealingTyped : public ::testing::Test {};

using LocalQueueTypes = ::testing::Types<DAryHeap<Task, 4>, SequentialSkipList>;
TYPED_TEST_SUITE(HeapWithStealingTyped, LocalQueueTypes);

TYPED_TEST(HeapWithStealingTyped, EmptyQueueClassifiesEmpty) {
  HeapWithStealingBuffer<TypeParam> q(4);
  EXPECT_EQ(q.classify_pop(), OwnerPopSource::kEmpty);
  EXPECT_EQ(q.local_top_priority(), Task::kInfinity);
  EXPECT_EQ(q.steal_top_priority(), Task::kInfinity);
}

TYPED_TEST(HeapWithStealingTyped, AddFillsBufferForStealers) {
  HeapWithStealingBuffer<TypeParam> q(4);
  q.add_local(Task{10, 1});
  // First add triggers a fill (buffer starts stolen): task is visible.
  EXPECT_EQ(q.steal_top_priority(), 10u);
  EXPECT_EQ(q.heap_size(), 0u);  // moved into the buffer
}

TYPED_TEST(HeapWithStealingTyped, BufferHoldsBestTasks) {
  HeapWithStealingBuffer<TypeParam> q(2);
  for (std::uint64_t p : {50, 10, 30, 20, 40}) q.add_local(Task{p, p});
  // Buffer was filled at first add (task 50); subsequent adds go to the
  // heap. Stealers see the buffer head.
  EXPECT_EQ(q.steal_top_priority(), 50u);
  // Owner sees min(buffer head, heap top) = 10.
  EXPECT_EQ(q.local_top_priority(), 10u);
}

TYPED_TEST(HeapWithStealingTyped, OwnerDrainsInPriorityOrderViaReclaim) {
  HeapWithStealingBuffer<TypeParam> q(2);
  for (std::uint64_t p : {5, 3, 1, 4, 2}) q.add_local(Task{p, p});
  std::vector<std::uint64_t> popped;
  while (true) {
    const OwnerPopSource src = q.classify_pop();
    if (src == OwnerPopSource::kEmpty) break;
    if (src == OwnerPopSource::kHeap) {
      popped.push_back(q.pop_heap().priority);
    } else {
      std::vector<Task> claimed;
      ASSERT_GT(q.reclaim_buffer(claimed), 0u);
      for (const Task& t : claimed) popped.push_back(t.priority);
    }
  }
  // Every task comes out exactly once; order is priority-sorted within
  // each source decision.
  ASSERT_EQ(popped.size(), 5u);
  std::vector<std::uint64_t> sorted = popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TYPED_TEST(HeapWithStealingTyped, StealTakesWholeBatch) {
  HeapWithStealingBuffer<TypeParam> q(3);
  q.add_local(Task{7, 0});  // fills buffer with {7}
  for (std::uint64_t p : {1, 2, 3}) q.add_local(Task{p, p});
  std::vector<Task> stolen;
  EXPECT_EQ(q.try_steal(stolen), 1u);  // batch was {7}
  EXPECT_EQ(stolen[0].priority, 7u);
  // After the steal the buffer is stolen until the owner refills.
  EXPECT_EQ(q.steal_top_priority(), Task::kInfinity);
  // Owner's next classify refills from the heap: best 3 tasks visible.
  (void)q.classify_pop();
  EXPECT_EQ(q.steal_top_priority(), 1u);
}

TYPED_TEST(HeapWithStealingTyped, RefillAfterStealExposesNextBatch) {
  HeapWithStealingBuffer<TypeParam> q(2);
  for (std::uint64_t p = 1; p <= 6; ++p) q.add_local(Task{p, p});
  std::vector<Task> stolen;
  ASSERT_GT(q.try_steal(stolen), 0u);
  (void)q.classify_pop();  // owner refills
  std::vector<Task> second;
  ASSERT_GT(q.try_steal(second), 0u);
  // Batches must not overlap.
  for (const Task& a : stolen) {
    for (const Task& b : second) EXPECT_NE(a.payload, b.payload);
  }
}

TYPED_TEST(HeapWithStealingTyped, StealSizeOneBehavesLikeSingleTask) {
  HeapWithStealingBuffer<TypeParam> q(1);
  q.add_local(Task{4, 4});
  q.add_local(Task{2, 2});
  std::vector<Task> stolen;
  EXPECT_EQ(q.try_steal(stolen), 1u);
  EXPECT_EQ(stolen[0].priority, 4u);
}

}  // namespace
}  // namespace smq
