// Preset conformance: every key in the scheduler registry — builtins and
// the full preset namespace (obim-d*, pmod-d*, mq-c*, smq-p*, smq-sl-p*,
// mq-tl-p*, reld-c*, mq-opt-*) — must actually execute: SSSP and BFS on
// a random graph at 1 and 4 threads, validated against the sequential
// oracle. No future preset can land unexecuted, because this suite
// enumerates the registry listing rather than naming schedulers.
//
// Also the static/virtual consistency self-check: every key with a
// static-dispatch row must resolve to the same underlying config on
// both paths. Presets share one param-resolution function
// (resolve_preset_params) between their virtual factory and
// run_static_dispatch, and this test pins that equivalence down at the
// config-struct level.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/stealing_multiqueue.h"
#include "queues/chunk_bag.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/skiplist.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_configs.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"

namespace smq {
namespace {

const GraphInstance& small_graph() {
  static const GraphInstance* inst = [] {
    ParamMap params;
    params.set("vertices", "400");
    params.set("seed", "5");
    return new GraphInstance(GraphRegistry::instance().create("rand", params));
  }();
  return *inst;
}

/// The acceptance matrix of this PR: the full registry listing x
/// {sssp, bfs} x {1, 4} threads, every cell validated against the
/// sequential oracle.
TEST(PresetConformance, EveryRegisteredSchedulerSolvesSsspAndBfsExactly) {
  const GraphInstance& inst = small_graph();
  ASSERT_GE(SchedulerRegistry::instance().entries().size(), 45u)
      << "the preset namespace shrank; did a registration go missing?";
  for (const char* algo_name : {"sssp", "bfs"}) {
    const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
    ASSERT_NE(algo, nullptr);
    const AlgoReference ref = algo->make_reference(inst, {});
    for (const SchedulerEntry& entry :
         SchedulerRegistry::instance().entries()) {
      for (const unsigned requested : {1u, 4u}) {
        SCOPED_TRACE(std::string(algo_name) + "/" + entry.name +
                     "/threads=" + std::to_string(requested));
        const unsigned threads = effective_threads(entry, requested);
        AnyScheduler sched = entry.make(threads, {});
        ASSERT_TRUE(static_cast<bool>(sched));
        const AlgoResult result = algo->run(inst, sched, threads, {}, &ref);
        EXPECT_TRUE(result.validated);
        EXPECT_TRUE(result.valid) << entry.name << " failed the oracle";
      }
    }
  }
}

/// Pinned preset knobs must win over conflicting caller params — that
/// is the contract that makes a preset a fixed figure configuration.
TEST(PresetConformance, PinnedKnobsWinOverCallerParams) {
  ParamMap conflicting;
  conflicting.set("p-insert", "1");
  conflicting.set("p-delete", "1");
  conflicting.set("insert-policy", "batch");
  AnyScheduler sched =
      SchedulerRegistry::instance().create("mq-tl-p16", 2, conflicting);
  auto* mq = sched.get_if<OptimizedMultiQueue>();
  ASSERT_NE(mq, nullptr);
  EXPECT_EQ(mq->config().insert_policy, InsertPolicy::kTemporalLocality);
  EXPECT_DOUBLE_EQ(mq->config().p_insert_change, 1.0 / 16);
  EXPECT_DOUBLE_EQ(mq->config().p_delete_change, 1.0 / 16);
}

/// Preset defaults only fill gaps; explicit caller params survive.
TEST(PresetConformance, PresetDefaultsYieldToCallerParams) {
  ParamMap params;
  params.set("p-insert", "1/4");
  AnyScheduler sched =
      SchedulerRegistry::instance().create("mq-opt-stick", 2, params);
  auto* mq = sched.get_if<OptimizedMultiQueue>();
  ASSERT_NE(mq, nullptr);
  EXPECT_EQ(mq->config().insert_policy, InsertPolicy::kTemporalLocality);
  EXPECT_EQ(mq->config().delete_policy, DeletePolicy::kTemporalLocality);
  EXPECT_DOUBLE_EQ(mq->config().p_insert_change, 0.25);      // caller
  EXPECT_DOUBLE_EQ(mq->config().p_delete_change, 1.0 / 16);  // default
}

/// Obim clamps chunk_size into [1, Chunk::kCapacity] at construction;
/// mirror it so the config comparison checks what actually runs.
ObimConfig clamped(ObimConfig cfg) {
  if (cfg.chunk_size == 0) cfg.chunk_size = 1;
  if (cfg.chunk_size > Chunk::kCapacity) cfg.chunk_size = Chunk::kCapacity;
  return cfg;
}

/// The registry self-check (ISSUE 4 satellite): every key with a
/// static-dispatch row — including every preset whose family has one —
/// must hand the same underlying config to the static path as the
/// virtual factory builds. A mismatch here means `--dispatch static`
/// would silently benchmark a different configuration.
TEST(PresetConformance, StaticDispatchResolvesTheSameConfigAsVirtual) {
  using SmqHeap = StealingMultiQueue<DAryHeap<Task, 4>>;
  using SmqSkipList = StealingMultiQueue<SequentialSkipList>;
  const unsigned threads = 4;
  unsigned checked = 0;
  for (const SchedulerEntry& entry : SchedulerRegistry::instance().entries()) {
    if (!has_static_dispatch(entry.name)) continue;
    SCOPED_TRACE(entry.name);
    const std::string family = entry.family.empty() ? entry.name : entry.family;
    // What run_static_dispatch feeds the family's config builder...
    const ParamMap resolved = resolve_preset_params(entry, {});
    // ...versus the concrete scheduler the virtual factory constructed.
    AnyScheduler sched = entry.make(threads, {});
    std::shared_ptr<Topology> topo;
    if (family == "smq") {
      auto* s = sched.get_if<SmqHeap>();
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->config(), make_smq_config(threads, resolved, topo));
    } else if (family == "smq-skiplist") {
      auto* s = sched.get_if<SmqSkipList>();
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->config(), make_smq_config(threads, resolved, topo));
    } else if (family == "mq") {
      auto* s = sched.get_if<ClassicMultiQueue>();
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->config(), make_classic_mq_config(threads, resolved, topo));
    } else if (family == "mq-opt") {
      auto* s = sched.get_if<OptimizedMultiQueue>();
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->config(), make_optimized_mq_config(threads, resolved, topo));
    } else if (family == "obim") {
      auto* s = sched.get_if<Obim>();
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->config(), clamped(make_obim_config(threads, resolved, topo)));
    } else if (family == "pmod") {
      auto* s = sched.get_if<Pmod>();
      ASSERT_NE(s, nullptr);
      ObimConfig expected = make_pmod_config(threads, resolved, topo);
      expected.adaptive = true;  // the Pmod constructor's one amendment
      EXPECT_EQ(s->config(), clamped(expected));
    } else {
      ADD_FAILURE() << "static family '" << family
                    << "' has no config check; add one here";
    }
    ++checked;
  }
  // smq(+6 presets), smq-skiplist(+5), mq(+5), mq-opt(+10), obim(+6),
  // pmod(+6): the check must cover the whole static-capable namespace.
  EXPECT_GE(checked, 44u);
}

/// Static dispatch must execute preset keys end to end (not merely
/// resolve them): run a representative of each family through
/// run_static_dispatch and validate against the oracle.
TEST(PresetConformance, StaticDispatchRunsPresetKeysEndToEnd) {
  const GraphInstance& inst = small_graph();
  const AlgorithmEntry* sssp = AlgorithmRegistry::instance().find("sssp");
  ASSERT_NE(sssp, nullptr);
  const AlgoReference ref = sssp->make_reference(inst, {});
  for (const char* preset : {"smq-p8", "smq-sl-p4", "mq-c2", "mq-tl-p16",
                             "mq-opt-full", "obim-d4", "pmod-d2"}) {
    SCOPED_TRACE(preset);
    ASSERT_TRUE(has_static_dispatch(preset));
    const std::optional<AlgoResult> result =
        run_static_dispatch(preset, "sssp", inst, 2, {}, &ref);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->validated);
    EXPECT_TRUE(result->valid);
  }
  // The long tail stays virtual-only — and says so via the predicate.
  EXPECT_FALSE(has_static_dispatch("reld-c2"));
  EXPECT_FALSE(has_static_dispatch("chunk-bag"));
  EXPECT_FALSE(has_static_dispatch("no-such-sched"));
}

}  // namespace
}  // namespace smq
