// Tests for the shared label-correcting substrate (DistanceArray).
#include "algorithms/relax.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace smq {
namespace {

TEST(DistanceArray, InitializesUnreached) {
  DistanceArray dist(4);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(dist.load(v), DistanceArray::kUnreached);
  }
}

TEST(DistanceArray, RelaxMinOnlyImproves) {
  DistanceArray dist(1);
  EXPECT_TRUE(dist.relax_min(0, 10));
  EXPECT_FALSE(dist.relax_min(0, 10));  // equal: no improvement
  EXPECT_FALSE(dist.relax_min(0, 11));
  EXPECT_TRUE(dist.relax_min(0, 9));
  EXPECT_EQ(dist.load(0), 9u);
}

TEST(DistanceArray, SnapshotMatchesLoads) {
  DistanceArray dist(3);
  dist.store(0, 5);
  dist.relax_min(2, 7);
  const auto snap = dist.snapshot();
  EXPECT_EQ(snap[0], 5u);
  EXPECT_EQ(snap[1], DistanceArray::kUnreached);
  EXPECT_EQ(snap[2], 7u);
}

TEST(DistanceArray, ConcurrentRelaxKeepsMinimum) {
  DistanceArray dist(1);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        // Each thread relaxes with values (t+1)*kPerThread down to
        // t*kPerThread+1; the global minimum is 1 (from thread 0).
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          dist.relax_min(0, (static_cast<std::uint64_t>(t) + 1) * kPerThread - i);
        }
      });
    }
  }
  EXPECT_EQ(dist.load(0), 1u);
}

TEST(DistanceArray, ExactlyOneWinnerPerImprovement) {
  // Concurrent relax_min to the same value: only one thread may win.
  DistanceArray dist(1);
  std::atomic<int> winners{0};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&] {
        if (dist.relax_min(0, 42)) winners.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(winners.load(), 1);
}

}  // namespace
}  // namespace smq
