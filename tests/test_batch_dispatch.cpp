// Tests for the batched + static-dispatch hot path: batch push/pop
// round-trips on every registered scheduler, dispatch-mode equivalence
// against the sequential oracle, and executor termination with batching
// at awkward batch sizes.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/stealing_multiqueue.h"
#include "queues/mq_variants.h"
#include "registry/adapters.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"
#include "sched/executor.h"

namespace smq {
namespace {

// The batch concepts must detect the native implementations and the
// erased boundary alike.
static_assert(BatchPushScheduler<StealingMultiQueue<>>);
static_assert(BatchPopScheduler<StealingMultiQueue<>>);
static_assert(BatchPushScheduler<OptimizedMultiQueue>);
static_assert(BatchPopScheduler<OptimizedMultiQueue>);
static_assert(BatchPushScheduler<GlobalHeapScheduler>);
static_assert(BatchPopScheduler<GlobalHeapScheduler>);
static_assert(BatchPushScheduler<AnyScheduler>);
static_assert(BatchPopScheduler<AnyScheduler>);

TEST(BatchDispatch, RoundTripOnEveryRegisteredScheduler) {
  constexpr unsigned kThreads = 2;
  constexpr std::uint64_t kTasks = 200;
  for (const SchedulerEntry& entry : SchedulerRegistry::instance().entries()) {
    const unsigned threads = effective_threads(entry, kThreads);
    AnyScheduler sched = entry.make(threads, {});

    std::vector<Task> tasks;
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      tasks.push_back(Task{i % 37, i});
    }
    // Split the batch across the available tids.
    const std::size_t half = threads > 1 ? kTasks / 2 : kTasks;
    sched.push_batch(0, std::span<const Task>(tasks.data(), half));
    if (threads > 1) {
      sched.push_batch(1, std::span<const Task>(tasks.data() + half,
                                                kTasks - half));
    }
    for (unsigned tid = 0; tid < threads; ++tid) sched.flush(tid);

    // Drain through the batch interface, alternating tids. Single pops
    // can transiently fail (e.g. a failed steal), so only stop after
    // repeated empty rounds from every tid.
    std::multiset<std::uint64_t> popped;
    std::vector<Task> out;
    int consecutive_empty = 0;
    while (popped.size() < kTasks && consecutive_empty < 64) {
      bool any = false;
      for (unsigned tid = 0; tid < threads; ++tid) {
        out.clear();
        const std::size_t n = sched.try_pop_batch(tid, out, 7);
        ASSERT_EQ(n, out.size()) << entry.name;
        for (const Task& t : out) popped.insert(t.payload);
        any = any || n > 0;
      }
      consecutive_empty = any ? 0 : consecutive_empty + 1;
    }

    std::multiset<std::uint64_t> expected;
    for (const Task& t : tasks) expected.insert(t.payload);
    EXPECT_EQ(popped, expected) << "scheduler: " << entry.name;
  }
}

TEST(BatchDispatch, DispatchModesAgreeWithOracle) {
  ParamMap params;
  params.set("vertices", "2500");
  params.set("seed", "11");
  const GraphInstance graph =
      GraphRegistry::instance().create("rand", params);
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find("sssp");
  ASSERT_NE(algo, nullptr);
  const AlgoReference ref = algo->make_reference(graph, params);

  for (const std::string& name : static_dispatch_keys()) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    ASSERT_NE(entry, nullptr) << name;
    const unsigned threads = effective_threads(*entry, 4);

    // Virtual.
    {
      AnyScheduler sched = entry->make(threads, params);
      const AlgoResult result = algo->run(graph, sched, threads, params, &ref);
      EXPECT_TRUE(result.validated && result.valid) << name << " virtual";
      EXPECT_EQ(result.answer, ref.reference_answer) << name << " virtual";
    }
    // Batched (awkward batch size on purpose).
    {
      ParamMap batched = params;
      batched.set("batch-size", "13");
      AnyScheduler sched = entry->make(threads, batched);
      const AlgoResult result = algo->run(graph, sched, threads, batched, &ref);
      EXPECT_TRUE(result.validated && result.valid) << name << " batched";
      EXPECT_EQ(result.answer, ref.reference_answer) << name << " batched";
    }
    // Static.
    {
      const std::optional<AlgoResult> result =
          run_static_dispatch(name, "sssp", graph, threads, params, &ref);
      ASSERT_TRUE(result.has_value()) << name;
      EXPECT_TRUE(result->validated && result->valid) << name << " static";
      EXPECT_EQ(result->answer, ref.reference_answer) << name << " static";
    }
  }
}

TEST(BatchDispatch, StaticDispatchCoversAllRegisteredAlgorithms) {
  ParamMap params;
  params.set("vertices", "400");
  params.set("seed", "3");
  const GraphInstance graph = GraphRegistry::instance().create("rand", params);
  for (const AlgorithmEntry& algo : AlgorithmRegistry::instance().entries()) {
    const AlgoReference ref = algo.make_reference(graph, params);
    const std::optional<AlgoResult> result =
        run_static_dispatch("smq", algo.name, graph, 2, params, &ref);
    ASSERT_TRUE(result.has_value()) << algo.name;
    EXPECT_TRUE(result->validated && result->valid) << algo.name;
  }
  EXPECT_FALSE(
      run_static_dispatch("spraylist", "sssp", graph, 2, params, nullptr)
          .has_value());
  EXPECT_FALSE(run_static_dispatch("smq", "no-such-algo", graph, 2, params,
                                   nullptr)
                   .has_value());
}

/// Cascading workload: every task of priority p < depth spawns `fanout`
/// children; exact total = sum of fanout^level.
std::uint64_t run_cascade(AnyScheduler& sched, unsigned threads,
                          std::size_t batch_size, std::uint64_t depth,
                          std::uint64_t fanout) {
  std::atomic<std::uint64_t> executed{0};
  const Task seed{0, 0};
  run_parallel(
      sched, std::span<const Task>(&seed, 1),
      [&](Task t, auto& ctx) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (t.priority < depth) {
          for (std::uint64_t i = 0; i < fanout; ++i) {
            ctx.push(Task{t.priority + 1, t.payload * fanout + i});
          }
        }
      },
      threads, ExecutorOptions{.batch_size = batch_size});
  return executed.load();
}

TEST(BatchDispatch, BatchedExecutorTerminatesAtAwkwardBatchSizes) {
  constexpr std::uint64_t kDepth = 7;
  constexpr std::uint64_t kFanout = 3;
  std::uint64_t expected = 0, power = 1;
  for (std::uint64_t level = 0; level <= kDepth; ++level, power *= kFanout) {
    expected += power;
  }
  // 1 = classic loop; 3 = flushes mid-task; 27 = exact multiple of the
  // fanout; 100000 = larger than the whole task graph (single flush).
  for (const std::size_t batch_size : {1ul, 3ul, 27ul, 100000ul}) {
    for (const char* name : {"smq", "mq-opt", "obim", "chunk-bag"}) {
      AnyScheduler sched =
          SchedulerRegistry::instance().create(name, 4, {});
      EXPECT_EQ(run_cascade(sched, 4, batch_size, kDepth, kFanout), expected)
          << name << " batch_size=" << batch_size;
    }
  }
}

TEST(BatchDispatch, BatchedPushesCountedOncePerTask) {
  // The batched context must report the same per-task push/pop stats as
  // the per-task loop even though the pending counter is updated once
  // per flush.
  AnyScheduler sched = SchedulerRegistry::instance().create("smq", 2, {});
  std::vector<Task> seeds;
  for (std::uint64_t i = 0; i < 50; ++i) seeds.push_back(Task{i, i});
  const RunResult run = run_parallel(
      sched, std::span<const Task>(seeds),
      [&](Task t, auto& ctx) {
        if (t.priority < 50) ctx.push(Task{100, t.payload});
      },
      2, ExecutorOptions{.batch_size = 8});
  EXPECT_EQ(run.stats.pops, 100u);
  EXPECT_EQ(run.stats.pushes, 100u);  // 50 seeds + 50 children
}

}  // namespace
}  // namespace smq
