// json_reader.h: the read-side counterpart of json_writer.h, used by
// the tuning metrics table. Covers the value model, escapes (including
// surrogate pairs), number grammar, and the error positions the table
// loader surfaces to users.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "support/json_reader.h"
#include "support/json_writer.h"

namespace smq {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_double(), -350.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("  7  ").as_int(), 7);
}

TEST(JsonReader, ParsesNestedStructures) {
  const JsonValue doc = JsonValue::parse(
      R"({"rows": [{"k": 1}, {"k": 2}], "name": "t", "flag": true})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 3u);
  const JsonValue& rows = doc.at("rows");
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.items()[0].at("k").as_int(), 1);
  EXPECT_EQ(rows.items()[1].at("k").as_int(), 2);
  EXPECT_EQ(doc.at("name").as_string(), "t");
  EXPECT_TRUE(doc.at("flag").as_bool());
}

TEST(JsonReader, ObjectPreservesMemberOrder) {
  const JsonValue doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonReader, FindAndTypedGetters) {
  const JsonValue doc = JsonValue::parse(
      R"({"d": 1.5, "u": 9, "s": "x", "wrong": "type"})");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_NE(doc.find("d"), nullptr);
  EXPECT_DOUBLE_EQ(doc.get_double("d", 0), 1.5);
  EXPECT_DOUBLE_EQ(doc.get_double("missing", -1), -1);
  EXPECT_EQ(doc.get_uint("u", 0), 9u);
  EXPECT_EQ(doc.get_string("s", ""), "x");
  // Wrong-type members fall back rather than throwing.
  EXPECT_DOUBLE_EQ(doc.get_double("wrong", 2.5), 2.5);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
}

TEST(JsonReader, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").as_string(),
            "a\"b\\c/d\n\t");
  // A = 'A'; é = é (2-byte UTF-8).
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW(JsonValue::parse(R"("\ud83d")"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(R"("\ude00")"), std::runtime_error);
}

TEST(JsonReader, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "{\"a\": 1,}", "[1 2]", "tru",
        "\"unterminated", "01x", "1.", "1e", "- 1", "{\"a\": }",
        "\"\x01\"", "nulll", "{} {}", "[1] 2"}) {
    EXPECT_THROW(JsonValue::parse(bad), std::runtime_error)
        << "accepted malformed input: " << bad;
  }
}

TEST(JsonReader, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  bad\n}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos)
        << "error should name line 3: " << e.what();
  }
}

TEST(JsonReader, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(JsonValue::parse(deep), std::runtime_error);
}

TEST(JsonReader, AsUintRejectsNegatives) {
  EXPECT_THROW(JsonValue::parse("-2").as_uint(), std::runtime_error);
  EXPECT_EQ(JsonValue::parse("2").as_uint(), 2u);
}

/// Round-trip with the repo's writer: what json_writer.h emits, the
/// reader must parse back to the same values (the tuning table depends
/// on this for load -> merge -> save cycles).
TEST(JsonReader, RoundTripsJsonWriterOutput) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.begin_object();
    json.member("name", "smq-p8 \"quoted\"\n");
    json.member("threads", 4);
    json.member("tps", 1234567.875);
    json.member("valid", true);
    json.key("rows");
    json.begin_array();
    json.value(1);
    json.value(2.5);
    json.end_array();
    json.end_object();
  }
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("name").as_string(), "smq-p8 \"quoted\"\n");
  EXPECT_EQ(doc.at("threads").as_int(), 4);
  EXPECT_DOUBLE_EQ(doc.at("tps").as_double(), 1234567.875);
  EXPECT_TRUE(doc.at("valid").as_bool());
  ASSERT_EQ(doc.at("rows").size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("rows").items()[1].as_double(), 2.5);
}

}  // namespace
}  // namespace smq
