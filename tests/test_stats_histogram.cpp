// LatencyHistogram: exact percentiles on small samples, log-bucketed
// approximation on large ones, lock-free concurrent recording, merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "sched/stats.h"
#include "support/rng.h"

namespace smq {
namespace {

TEST(PercentileSorted, ExactNearestRank) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.9), 9);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 10);
  EXPECT_DOUBLE_EQ(percentile_sorted(std::vector<double>{}, 0.5), 0);
  EXPECT_DOUBLE_EQ(percentile_sorted(std::vector<double>{42}, 0.99), 42);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0);
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h;
  h.record_seconds(0.25);
  EXPECT_EQ(h.count(), 1u);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(p), 0.25) << "p=" << p;
  }
}

TEST(LatencyHistogram, SmallSampleIsExact) {
  // 100 samples fit the raw-sample array, so quantiles are exact
  // nearest-rank, not bucket midpoints: 1ms..100ms.
  LatencyHistogram h;
  for (int ms = 100; ms >= 1; --ms) h.record_seconds(ms * 1e-3);
  ASSERT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 0.050);
  EXPECT_DOUBLE_EQ(h.quantile(0.90), 0.090);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.099);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 0.100);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.001);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.100);
}

TEST(LatencyHistogram, BucketIndexMonotonicAndBounded) {
  std::size_t prev = 0;
  for (std::uint64_t ns = 0; ns < (1u << 20); ns += 97) {
    const std::size_t b = LatencyHistogram::bucket_index(ns);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_LT(LatencyHistogram::bucket_index(~0ull),
            LatencyHistogram::kNumBuckets);
}

TEST(LatencyHistogram, LargeSampleWithinBucketError) {
  // Overflow the exact array; the log buckets bound the relative error
  // at 1/16. Deterministic uniform values in [1ms, 1s).
  LatencyHistogram h;
  Xoshiro256 rng(42);
  std::vector<double> raw;
  constexpr int kSamples = 20000;
  raw.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    const double s = 1e-3 + rng.next_double() * 0.999;
    raw.push_back(s);
    h.record_seconds(s);
  }
  ASSERT_EQ(h.count(), static_cast<std::uint64_t>(kSamples));
  std::sort(raw.begin(), raw.end());
  for (const double p : {0.50, 0.90, 0.99}) {
    const double exact = percentile_sorted(raw, p);
    const double approx = h.quantile(p);
    EXPECT_NEAR(approx, exact, exact * 0.07) << "p=" << p;
  }
  EXPECT_LE(h.quantile(0.50), h.quantile(0.90));
  EXPECT_LE(h.quantile(0.90), h.quantile(0.99));
}

TEST(LatencyHistogram, ConcurrentRecordKeepsEverySample) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          h.record_ns(static_cast<std::uint64_t>(t + 1) * 1000 + i % 7);
        }
      });
    }
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(h.quantile(0.5), 1000 * 1e-9);
  EXPECT_LE(h.quantile(1.0), 5000 * 1e-9);
}

TEST(LatencyHistogram, MergeAcrossThreadHistograms) {
  // Per-thread histograms folded after the run: counts add, min/max
  // survive, and a small merged sample stays exact.
  LatencyHistogram a, b, merged;
  for (int i = 1; i <= 50; ++i) a.record_seconds(i * 1e-3);
  for (int i = 51; i <= 100; ++i) b.record_seconds(i * 1e-3);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_DOUBLE_EQ(merged.quantile(0.50), 0.050);
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), 0.099);
  EXPECT_DOUBLE_EQ(merged.min_seconds(), 0.001);
  EXPECT_DOUBLE_EQ(merged.max_seconds(), 0.100);
}

TEST(LatencyHistogram, MergeLargeStaysConsistent) {
  LatencyHistogram a, b;
  Xoshiro256 rng(7);
  std::vector<double> raw;
  for (int i = 0; i < 5000; ++i) {
    const double s = 1e-4 + rng.next_double() * 0.01;
    raw.push_back(s);
    (i % 2 == 0 ? a : b).record_seconds(s);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 5000u);
  std::sort(raw.begin(), raw.end());
  const double exact = percentile_sorted(raw, 0.9);
  EXPECT_NEAR(a.quantile(0.9), exact, exact * 0.07);
}

}  // namespace
}  // namespace smq
