// Cross-module integration tests: full pipelines exercising graph I/O,
// generators, schedulers, executor, and algorithms together — the way a
// downstream user composes the library.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "algorithms/astar.h"
#include "algorithms/boruvka.h"
#include "algorithms/sssp.h"
#include "core/stealing_multiqueue.h"
#include "graph/binary_io.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "queues/obim.h"
#include "sched/topology.h"

namespace smq {
namespace {

TEST(Integration, DimacsToBinaryToSsspPipeline) {
  // Generate -> write DIMACS -> parse -> write binary -> load -> solve.
  const Graph original = make_road_like(400, {.seed = 71});
  std::stringstream dimacs;
  write_dimacs_gr(dimacs, original);
  const Graph parsed = read_dimacs_gr(dimacs);

  const std::string path = ::testing::TempDir() + "/pipeline.bin";
  save_binary_graph(path, parsed);
  const Graph loaded = load_binary_graph(path);
  std::remove(path.c_str());

  const SequentialSsspResult ref = sequential_sssp(original, 0);
  StealingMultiQueue<> sched(4, {.p_steal = 0.25});
  const ShortestPathResult got = parallel_sssp(loaded, 0, sched, 4);
  for (std::size_t v = 0; v < ref.distances.size(); ++v) {
    ASSERT_EQ(got.distances[v], ref.distances[v]) << "vertex " << v;
  }
}

TEST(Integration, NumaAwareSmqSolvesSssp) {
  const Graph g = make_road_like(900, {.seed = 72});
  const unsigned threads = 4;
  Topology topo(threads, 2);
  StealingMultiQueue<> sched(threads, {.steal_size = 4,
                                       .p_steal = 0.125,
                                       .topology = &topo,
                                       .numa_weight_k = 8.0});
  const SequentialSsspResult ref = sequential_sssp(g, 0);
  const ShortestPathResult got = parallel_sssp(g, 0, sched, threads);
  for (std::size_t v = 0; v < ref.distances.size(); ++v) {
    ASSERT_EQ(got.distances[v], ref.distances[v]);
  }
}

TEST(Integration, NumaShardedObimSolvesSssp) {
  const Graph g = make_rmat(9, {.seed = 73});
  const unsigned threads = 4;
  Topology topo(threads, 2);
  Obim sched(threads,
             {.chunk_size = 16, .delta_shift = 4, .topology = &topo});
  const SequentialSsspResult ref = sequential_sssp(g, 0);
  const ShortestPathResult got = parallel_sssp(g, 0, sched, threads);
  for (std::size_t v = 0; v < ref.distances.size(); ++v) {
    ASSERT_EQ(got.distances[v], ref.distances[v]);
  }
}

TEST(Integration, SameSeedSameSchedulerIsDeterministicSingleThread) {
  // Single-threaded runs with fixed seeds must be fully reproducible
  // (wall time aside).
  const Graph g = make_road_like(400, {.seed = 74});
  auto run = [&] {
    StealingMultiQueue<> sched(1, {.steal_size = 4, .p_steal = 0.5,
                                   .seed = 99});
    return parallel_sssp(g, 0, sched, 1);
  };
  const ShortestPathResult a = run();
  const ShortestPathResult b = run();
  EXPECT_EQ(a.run.stats.pops, b.run.stats.pops);
  EXPECT_EQ(a.run.stats.pushes, b.run.stats.pushes);
  EXPECT_EQ(a.distances, b.distances);
}

TEST(Integration, BackToBackAlgorithmsOnSharedGraph) {
  // Run SSSP, then A*, then MST on the same graph object (immutability
  // of Graph under concurrent algorithm state).
  const Graph g = make_road_like(625, {.seed = 75});
  StealingMultiQueue<> s1(3);
  const ShortestPathResult sssp = parallel_sssp(g, 0, s1, 3);

  StealingMultiQueue<> s2(3);
  const AStarResult astar =
      parallel_astar(g, 0, g.num_vertices() - 1, s2, 3);
  EXPECT_EQ(astar.distance, sssp.distances[g.num_vertices() - 1]);

  StealingMultiQueue<> s3(3);
  const MstResult mst = parallel_boruvka(g, s3, 3);
  EXPECT_EQ(mst.total_weight, sequential_kruskal(g).total_weight);
}

TEST(Integration, StatsAreInternallyConsistent) {
  const Graph g = make_rmat(8, {.seed = 76});
  StealingMultiQueue<> sched(4, {.p_steal = 0.25});
  const ShortestPathResult r = parallel_sssp(g, 0, sched, 4);
  // Every pop was previously pushed, and every push is eventually popped
  // (the run drains).
  EXPECT_EQ(r.run.stats.pops, r.run.stats.pushes);
  EXPECT_LE(r.run.stats.wasted, r.run.stats.pops);
}

}  // namespace
}  // namespace smq
