// The registry subsystem: every registered scheduler must run a small
// SSSP instance to the exact sequential distances through the
// type-erased AnyScheduler path, configs must parse, and the graph and
// algorithm registries must compose.
#include "registry/scheduler_registry.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "algorithms/sssp.h"
#include "graph/binary_io.h"
#include "core/stealing_multiqueue.h"
#include "graph/generators.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"

namespace smq {
namespace {

// ---- scheduler registry ---------------------------------------------------

TEST(SchedulerRegistry, ListsAtLeastTheTwelveBuiltins) {
  const auto names = SchedulerRegistry::instance().names();
  EXPECT_GE(names.size(), 12u);
  for (const char* expected :
       {"smq", "smq-skiplist", "mq", "mq-opt", "obim", "pmod", "spraylist",
        "reld", "lockfree-skiplist", "dary-heap", "chunk-bag", "sequential"}) {
    EXPECT_NE(SchedulerRegistry::instance().find(expected), nullptr)
        << "missing scheduler: " << expected;
  }
}

TEST(SchedulerRegistry, UnknownNameIsAnError) {
  EXPECT_EQ(SchedulerRegistry::instance().find("no-such-sched"), nullptr);
  EXPECT_THROW(SchedulerRegistry::instance().create("no-such-sched", 2),
               std::invalid_argument);
}

TEST(SchedulerRegistry, SequentialClampsToOneThread) {
  const SchedulerEntry* entry = SchedulerRegistry::instance().find("sequential");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(effective_threads(*entry, 8), 1u);
  EXPECT_EQ(effective_threads(*entry, 0), 1u);
  const SchedulerEntry* smq = SchedulerRegistry::instance().find("smq");
  ASSERT_NE(smq, nullptr);
  EXPECT_EQ(effective_threads(*smq, 8), 8u);
}

/// The acceptance smoke test: every registered scheduler, built through
/// its factory with default params, must produce exact SSSP distances on
/// a weighted grid (validated against the sequential baseline).
TEST(SchedulerRegistry, EverySchedulerSolvesSsspExactly) {
  const Graph graph = make_grid2d(24, 24, /*unit_weights=*/false, 7);
  const SequentialSsspResult ref = sequential_sssp(graph, 0);

  for (const SchedulerEntry& entry : SchedulerRegistry::instance().entries()) {
    SCOPED_TRACE(entry.name);
    const unsigned threads = effective_threads(entry, 4);
    AnyScheduler sched = entry.make(threads, {});
    ASSERT_TRUE(static_cast<bool>(sched));
    EXPECT_EQ(sched.num_threads(), threads);
    const ShortestPathResult got = parallel_sssp(graph, 0, sched, threads);
    ASSERT_EQ(got.distances.size(), ref.distances.size());
    for (std::size_t v = 0; v < ref.distances.size(); ++v) {
      ASSERT_EQ(got.distances[v], ref.distances[v])
          << entry.name << " differs at vertex " << v;
    }
    EXPECT_GE(got.run.stats.pops, ref.settled);
  }
}

TEST(SchedulerRegistry, ConfiguredSmqStillSolvesSssp) {
  const Graph graph = make_road_like(600, {.seed = 3});
  const SequentialSsspResult ref = sequential_sssp(graph, 0);

  ParamMap params;
  params.set("steal-size", "2");
  params.set("p-steal", "1/2");
  params.set("numa", "nodes=2,k=8");
  params.set("seed", "99");
  AnyScheduler sched = SchedulerRegistry::instance().create("smq", 4, params);
  const ShortestPathResult got = parallel_sssp(graph, 0, sched, 4);
  EXPECT_EQ(got.distances, ref.distances);
}

TEST(SchedulerRegistry, NumaKDefaultsAndExplicitValues) {
  using Smq = StealingMultiQueue<DAryHeap<Task, 4>>;
  // "--numa 2" without K: the SMQ's paper default K=8 kicks in.
  ParamMap nodes_only;
  nodes_only.set("numa", "2");
  AnyScheduler defaulted =
      SchedulerRegistry::instance().create("smq", 4, nodes_only);
  ASSERT_NE(defaulted.get_if<Smq>(), nullptr);
  EXPECT_DOUBLE_EQ(defaulted.get_if<Smq>()->config().numa_weight_k, 8.0);

  // An explicit K=1 (uniform sampling ablation point) must survive.
  ParamMap k_one;
  k_one.set("numa", "nodes=2,k=1");
  AnyScheduler uniform = SchedulerRegistry::instance().create("smq", 4, k_one);
  ASSERT_NE(uniform.get_if<Smq>(), nullptr);
  EXPECT_DOUBLE_EQ(uniform.get_if<Smq>()->config().numa_weight_k, 1.0);
}

TEST(SchedulerRegistry, TunablesAreDocumented) {
  for (const char* tuned : {"smq", "mq", "mq-opt", "obim", "pmod"}) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(tuned);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->tunables.empty()) << tuned;
    EXPECT_FALSE(entry->description.empty()) << tuned;
  }
}

// ---- param map ------------------------------------------------------------

TEST(ParamMap, TypedGetters) {
  ParamMap params;
  params.set("steal-size", "16");
  params.set("p-steal", "1/8");
  params.set("k", "2.5");
  EXPECT_EQ(params.get_int("steal-size", 4), 16);
  EXPECT_EQ(params.get_int("missing", 4), 4);
  EXPECT_DOUBLE_EQ(params.get_probability("p-steal", 1.0), 0.125);
  EXPECT_DOUBLE_EQ(params.get_probability("k", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(params.get_double("k", 0.0), 2.5);
  EXPECT_TRUE(params.has("k"));
  EXPECT_FALSE(params.has("absent"));
}

// ---- graph registry -------------------------------------------------------

TEST(GraphRegistry, BuildsEverySyntheticSource) {
  struct Case {
    const char* name;
    std::pair<const char*, const char*> param;
  };
  const Case cases[] = {
      {"road", {"vertices", "400"}},
      {"rmat", {"scale", "7"}},
      {"rand", {"vertices", "300"}},
      {"grid", {"width", "10"}},
      {"path", {"vertices", "50"}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ParamMap params;
    params.set(c.param.first, c.param.second);
    const GraphInstance inst = GraphRegistry::instance().create(c.name, params);
    ASSERT_NE(inst.graph, nullptr);
    EXPECT_GT(inst.graph->num_vertices(), 0u);
    EXPECT_FALSE(inst.name.empty());
    EXPECT_LT(inst.default_target, inst.graph->num_vertices());
  }
}

TEST(GraphRegistry, FileSourcesRequireAFile) {
  EXPECT_THROW(GraphRegistry::instance().create("dimacs", {}),
               std::invalid_argument);
  EXPECT_THROW(GraphRegistry::instance().create("binary", {}),
               std::invalid_argument);
  EXPECT_THROW(GraphRegistry::instance().create("no-such-graph", {}),
               std::invalid_argument);
}

TEST(GraphRegistry, DimacsInlinePathShorthand) {
  // --graph dimacs:PATH must parse the .gr text the same as an explicit
  // --file PATH.
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "smq_registry_sample.gr";
  {
    std::ofstream out(path);
    out << "c tiny triangle\n"
        << "p sp 3 3\n"
        << "a 1 2 5\n"
        << "a 2 3 7\n"
        << "a 1 3 20\n";
  }
  const GraphInstance inline_form =
      GraphRegistry::instance().create("dimacs:" + path.string());
  ASSERT_NE(inline_form.graph, nullptr);
  EXPECT_EQ(inline_form.graph->num_vertices(), 3u);
  EXPECT_EQ(inline_form.graph->num_edges(), 3u);

  ParamMap explicit_params;
  explicit_params.set("file", path.string());
  const GraphInstance explicit_form =
      GraphRegistry::instance().create("dimacs", explicit_params);
  EXPECT_EQ(inline_form.graph->num_edges(), explicit_form.graph->num_edges());
  EXPECT_EQ(inline_form.name, explicit_form.name);

  // Only file sources take the shorthand; a colon on a generator or an
  // unknown prefix stays an error.
  EXPECT_THROW(GraphRegistry::instance().create("rand:whatever", {}),
               std::invalid_argument);
  EXPECT_THROW(GraphRegistry::instance().create("nope:file.gr", {}),
               std::invalid_argument);
  std::filesystem::remove(path);
}

// ---- graph cache ----------------------------------------------------------

TEST(GraphRegistry, CacheMissWritesV2ThenHitMapsIt) {
  const std::filesystem::path cache =
      std::filesystem::temp_directory_path() / "smq_cache_test_v2";
  std::filesystem::remove_all(cache);

  ParamMap params;
  params.set("vertices", "500");
  params.set("seed", "11");
  const GraphInstance first =
      GraphRegistry::instance().create_cached("road", params, cache.string());
  ASSERT_NE(first.graph, nullptr);
  EXPECT_FALSE(first.graph->is_mapped());  // miss: freshly generated

  // Exactly one cache file appeared, and it is a v2 image (version u32
  // at byte 8).
  std::size_t files = 0;
  std::filesystem::path cache_file;
  for (const auto& e : std::filesystem::directory_iterator(cache)) {
    ++files;
    cache_file = e.path();
  }
  ASSERT_EQ(files, 1u);
  {
    std::ifstream in(cache_file, std::ios::binary);
    char header[12] = {};
    in.read(header, sizeof header);
    std::uint32_t version = 0;
    std::memcpy(&version, header + 8, 4);
    EXPECT_EQ(version, kBinaryFormatVersion);
  }

  const GraphInstance second =
      GraphRegistry::instance().create_cached("road", params, cache.string());
  ASSERT_NE(second.graph, nullptr);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(second.graph->is_mapped());  // hit: mmap, not parse
#endif
  ASSERT_EQ(second.graph->num_vertices(), first.graph->num_vertices());
  ASSERT_EQ(second.graph->num_edges(), first.graph->num_edges());
  for (VertexId v = 0; v < first.graph->num_vertices(); ++v) {
    const auto a = first.graph->neighbors(v), b = second.graph->neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "degree differs at " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].to, b[i].to);
      ASSERT_EQ(a[i].weight, b[i].weight);
    }
  }
  // Hits keep a stable name so perf-gate baselines match across runs.
  EXPECT_EQ(second.name, "road(cached)");
  // The road source's weight-scale must survive the cache hit (A*
  // admissibility depends on it).
  EXPECT_DOUBLE_EQ(second.weight_scale, first.weight_scale);

  std::filesystem::remove_all(cache);
}

TEST(GraphRegistry, CorruptCacheFileRegenerates) {
  const std::filesystem::path cache =
      std::filesystem::temp_directory_path() / "smq_cache_test_corrupt";
  std::filesystem::remove_all(cache);

  ParamMap params;
  params.set("vertices", "300");
  const GraphInstance first =
      GraphRegistry::instance().create_cached("road", params, cache.string());

  // Trash the cache entry; the next call must regenerate, not throw.
  for (const auto& e : std::filesystem::directory_iterator(cache)) {
    std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  const GraphInstance second =
      GraphRegistry::instance().create_cached("road", params, cache.string());
  ASSERT_NE(second.graph, nullptr);
  EXPECT_EQ(second.graph->num_vertices(), first.graph->num_vertices());
  EXPECT_EQ(second.graph->num_edges(), first.graph->num_edges());

  std::filesystem::remove_all(cache);
}

TEST(GraphRegistry, RoadNetworkSourcesRegisteredAndGuideToFetch) {
  // The five catalog road networks are registered as named sources…
  for (const char* key : {"usa", "ctr", "west", "east", "ny"}) {
    EXPECT_NE(GraphRegistry::instance().find(key), nullptr) << key;
  }
  // …and asking for one that is not fetched yet fails with a pointer to
  // the fetch tool, not a bare ENOENT.
  ParamMap params;
  params.set("dir", "/nonexistent/dimacs");
  try {
    GraphRegistry::instance().create("west", params);
    FAIL() << "expected a missing-graph error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("fetch_dimacs.py"), std::string::npos)
        << "error should mention the fetch tool: " << e.what();
  }
}

// ---- algorithm registry ---------------------------------------------------

TEST(AlgorithmRegistry, EveryAlgorithmValidatesUnderSmq) {
  const GraphInstance inst = [] {
    ParamMap params;
    params.set("vertices", "400");
    return GraphRegistry::instance().create("road", params);
  }();

  const auto names = AlgorithmRegistry::instance().names();
  EXPECT_GE(names.size(), 5u);
  for (const AlgorithmEntry& algo : AlgorithmRegistry::instance().entries()) {
    SCOPED_TRACE(algo.name);
    const AlgoReference ref = algo.make_reference(inst, {});
    AnyScheduler sched = SchedulerRegistry::instance().create("smq", 2);
    const AlgoResult result = algo.run(inst, sched, 2, {}, &ref);
    EXPECT_TRUE(result.validated);
    EXPECT_TRUE(result.valid) << algo.name << " failed oracle validation";
    EXPECT_GT(result.run.stats.pops, 0u);
  }
}

TEST(AlgorithmRegistry, RejectsOutOfRangeVertices) {
  ParamMap gparams;
  gparams.set("vertices", "100");
  const GraphInstance inst = GraphRegistry::instance().create("rand", gparams);
  const AlgorithmEntry* sssp = AlgorithmRegistry::instance().find("sssp");
  ASSERT_NE(sssp, nullptr);
  ParamMap bad;
  bad.set("source", "100");  // one past the end
  AnyScheduler sched = SchedulerRegistry::instance().create("smq", 2);
  EXPECT_THROW(sssp->run(inst, sched, 2, bad, nullptr), std::invalid_argument);
  EXPECT_THROW(sssp->make_reference(inst, bad), std::invalid_argument);
}

TEST(AlgorithmRegistry, SkipsValidationWithoutReference) {
  ParamMap params;
  params.set("vertices", "100");
  const GraphInstance inst = GraphRegistry::instance().create("rand", params);
  const AlgorithmEntry* sssp = AlgorithmRegistry::instance().find("sssp");
  ASSERT_NE(sssp, nullptr);
  AnyScheduler sched = SchedulerRegistry::instance().create("reld", 2);
  const AlgoResult result = sssp->run(inst, sched, 2, {}, nullptr);
  EXPECT_FALSE(result.validated);
  EXPECT_GT(result.run.stats.pops, 0u);
}

}  // namespace
}  // namespace smq
