// Tests for the sequential skip list (Appendix D local queue).
#include "queues/skiplist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.h"

namespace smq {
namespace {

TEST(SequentialSkipList, StartsEmpty) {
  SequentialSkipList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.try_pop(), std::nullopt);
}

TEST(SequentialSkipList, PopsInOrder) {
  SequentialSkipList list;
  for (std::uint64_t p : {9, 1, 5, 3, 7}) list.push(Task{p, p});
  EXPECT_TRUE(list.is_valid());
  for (std::uint64_t expect : {1, 3, 5, 7, 9}) {
    EXPECT_EQ(list.pop().priority, expect);
  }
  EXPECT_TRUE(list.empty());
}

TEST(SequentialSkipList, DuplicatePrioritiesUseTiebreaker) {
  SequentialSkipList list;
  for (std::uint64_t i = 0; i < 50; ++i) list.push(Task{7, i});
  EXPECT_EQ(list.size(), 50u);
  EXPECT_TRUE(list.is_valid());
  std::uint64_t last_payload = 0;
  for (int i = 0; i < 50; ++i) {
    const Task t = list.pop();
    EXPECT_EQ(t.priority, 7u);
    if (i > 0) {
      EXPECT_GT(t.payload, last_payload);  // strict total order
    }
    last_payload = t.payload;
  }
}

TEST(SequentialSkipList, RandomAgainstSort) {
  SequentialSkipList list;
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < 2000; ++i) {
    const std::uint64_t p = rng.next_below(500);
    list.push(Task{p, i});
    expected.push_back(p);
  }
  EXPECT_TRUE(list.is_valid());
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(list.pop().priority, expected[i]) << "at " << i;
  }
}

TEST(SequentialSkipList, InterleavedPushPop) {
  SequentialSkipList list;
  Xoshiro256 rng(6);
  std::vector<Task> mirror;
  for (int round = 0; round < 3000; ++round) {
    if (mirror.empty() || rng.next_bool(0.55)) {
      const Task t{rng.next_below(1000), static_cast<std::uint64_t>(round)};
      list.push(t);
      mirror.push_back(t);
    } else {
      const auto it = std::min_element(mirror.begin(), mirror.end());
      const Task got = list.pop();
      ASSERT_EQ(got.priority, it->priority);
      ASSERT_EQ(got.payload, it->payload);
      mirror.erase(it);
    }
  }
  EXPECT_TRUE(list.is_valid());
  EXPECT_EQ(list.size(), mirror.size());
}

TEST(SequentialSkipList, TopMatchesNextPop) {
  SequentialSkipList list;
  for (std::uint64_t p : {42, 17, 99}) list.push(Task{p, p});
  EXPECT_EQ(list.top().priority, 17u);
  EXPECT_EQ(list.pop().priority, 17u);
  EXPECT_EQ(list.top().priority, 42u);
}

}  // namespace
}  // namespace smq
