// Tests for the lock-free skip list (SprayList substrate).
#include "queues/lockfree_skiplist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "support/rng.h"

namespace smq {
namespace {

TEST(LockFreeSkipList, StartsEmpty) {
  LockFreeSkipList list(1);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.pop_min(), std::nullopt);
  EXPECT_EQ(list.count_live(), 0u);
}

TEST(LockFreeSkipList, SequentialPopsInOrder) {
  LockFreeSkipList list(1);
  Xoshiro256 rng(1);
  for (std::uint64_t p : {9, 1, 5, 3, 7, 2, 8}) {
    list.insert(0, Task{p, p}, rng);
  }
  EXPECT_EQ(list.count_live(), 7u);
  for (std::uint64_t expect : {1, 2, 3, 5, 7, 8, 9}) {
    auto t = list.pop_min();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->priority, expect);
  }
  EXPECT_TRUE(list.empty());
}

TEST(LockFreeSkipList, DuplicateKeysAllowed) {
  LockFreeSkipList list(1);
  Xoshiro256 rng(2);
  for (int i = 0; i < 10; ++i) list.insert(0, Task{5, 5}, rng);
  for (int i = 0; i < 10; ++i) {
    auto t = list.pop_min();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->priority, 5u);
  }
  EXPECT_TRUE(list.empty());
}

TEST(LockFreeSkipList, RandomSequentialAgainstSort) {
  LockFreeSkipList list(1);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < 2000; ++i) {
    const std::uint64_t p = rng.next_below(400);
    list.insert(0, Task{p, i}, rng);
    expected.push_back(p);
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    auto t = list.pop_min();
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->priority, expected[i]) << "at " << i;
  }
}

TEST(LockFreeSkipList, SprayLandsOnLiveNode) {
  LockFreeSkipList list(4);
  Xoshiro256 rng(4);
  for (std::uint64_t p = 0; p < 1000; ++p) list.insert(0, Task{p, p}, rng);
  double landing_sum = 0;
  for (int i = 0; i < 200; ++i) {
    LockFreeSkipList::Node* node = list.spray(3, 4, rng);
    ASSERT_NE(node, nullptr);
    landing_sum += static_cast<double>(node->task.priority);
  }
  // Sprays land in a prefix whose expected size is O(jumps * 2^level):
  // the mean landing must sit far from uniform (which would be ~500).
  EXPECT_LT(landing_sum / 200.0, 150.0);
}

TEST(LockFreeSkipList, ConcurrentInsertsAllSurvive) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 4000;
  LockFreeSkipList list(kThreads);
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        Xoshiro256 rng(tid + 100);
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t id = tid * kPerThread + i;
          list.insert(tid, Task{id, id}, rng);
        }
      });
    }
  }
  EXPECT_EQ(list.count_live(), kThreads * kPerThread);
  // Everything pops exactly once, in order.
  for (std::uint64_t expect = 0; expect < kThreads * kPerThread; ++expect) {
    auto t = list.pop_min();
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->priority, expect);
  }
}

TEST(LockFreeSkipList, ConcurrentMixedNoLossNoDuplication) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  LockFreeSkipList list(kThreads);
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        Xoshiro256 rng(tid + 55);
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t id = tid * kPerThread + i;
          list.insert(tid, Task{id, id}, rng);
          if (i % 2 == 1) {
            if (auto t = list.pop_min()) local.push_back(t->payload);
          }
        }
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  while (auto t = list.pop_min()) ++seen[t->payload];
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

// ---- epoch reclamation mode -----------------------------------------------

TEST(LockFreeSkipListReclaim, FootprintPlateausAcrossFillDrainCycles) {
  // With reclamation on, popped nodes cycle retire -> limbo -> per-thread
  // free list -> reuse, so repeated fill/drain rounds must stop growing
  // the arena after the first few (without reclamation every round leaks
  // its nodes until destruction).
  EpochManager epochs(1);
  LockFreeSkipList list(1, &epochs);
  Xoshiro256 rng(6);
  constexpr std::uint64_t kPerRound = 2000;

  std::size_t warmup_footprint = 0;
  for (int round = 0; round < 12; ++round) {
    for (std::uint64_t i = 0; i < kPerRound; ++i) {
      EpochManager::Guard guard(&epochs, 0);
      list.insert(0, Task{i, i}, rng);
    }
    for (std::uint64_t i = 0; i < kPerRound; ++i) {
      EpochManager::Guard guard(&epochs, 0);
      ASSERT_TRUE(list.pop_min(0).has_value());
    }
    // Between rounds the thread is idle: let limbo drain into the free
    // list the way a parked service worker would.
    epochs.quiesce(0);
    epochs.quiesce(0);
    if (round == 3) warmup_footprint = list.memory_footprint();
  }
  ASSERT_GT(warmup_footprint, 0u);
  EXPECT_LE(list.memory_footprint(), warmup_footprint)
      << "arena kept growing despite node reuse";
  EXPECT_GT(list.free_count(0), 0u) << "no node ever reached the free list";
}

TEST(LockFreeSkipListReclaim, ConcurrentMixedWithReclamationExactlyOnce) {
  // The ASan/TSan target: racing inserts and pops while nodes retire
  // and get reused. A premature free surfaces as a UAF, a lost unlink
  // as a missing/duplicated payload.
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  EpochManager epochs(kThreads);
  LockFreeSkipList list(kThreads, &epochs);
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        Xoshiro256 rng(tid + 77);
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t id = tid * kPerThread + i;
          {
            EpochManager::Guard guard(&epochs, tid);
            list.insert(tid, Task{id, id}, rng);
          }
          if (i % 2 == 1) {
            EpochManager::Guard guard(&epochs, tid);
            if (auto t = list.pop_min(tid)) local.push_back(t->payload);
          }
        }
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  while (auto t = list.pop_min(0)) ++seen[t->payload];
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

}  // namespace
}  // namespace smq
