// Tests for OBIM / PMOD and the chunk-bag substrate.
#include "queues/obim.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "queues/chunk_bag.h"
#include "sched/topology.h"

namespace smq {
namespace {

TEST(Chunk, PushPopLifo) {
  Chunk chunk;
  chunk.push(Task{1, 1});
  chunk.push(Task{2, 2});
  EXPECT_TRUE(chunk.full(2));
  EXPECT_EQ(chunk.pop().priority, 2u);
  EXPECT_EQ(chunk.pop().priority, 1u);
  EXPECT_TRUE(chunk.empty());
}

TEST(ChunkBag, RoundTripSingleNode) {
  ChunkBag bag(1);
  auto* chunk = new Chunk();
  chunk->push(Task{1, 1});
  chunk->push(Task{2, 2});
  bag.push_chunk(0, chunk);
  EXPECT_FALSE(bag.looks_empty());
  EXPECT_EQ(bag.approx_tasks(), 2);
  Chunk* got = bag.pop_chunk(0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->count, 2u);
  delete got;
  EXPECT_TRUE(bag.looks_empty());
  EXPECT_EQ(bag.pop_chunk(0), nullptr);
}

TEST(ChunkBag, CrossNodeStealing) {
  ChunkBag bag(2);
  auto* chunk = new Chunk();
  chunk->push(Task{7, 7});
  bag.push_chunk(0, chunk);  // node 0's stack
  Chunk* got = bag.pop_chunk(1);  // node 1 steals
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->tasks[0].priority, 7u);
  delete got;
}

TEST(Obim, SingleThreadPopsByLevel) {
  Obim obim(1, {.chunk_size = 2, .delta_shift = 4});  // delta = 16
  // Priorities 0..63 -> levels 0,16,32,48.
  for (std::uint64_t p = 63; p < 64; --p) {
    obim.push(0, Task{p, p});
    if (p == 0) break;
  }
  obim.flush(0);
  std::vector<std::uint64_t> got;
  while (auto t = obim.try_pop(0)) got.push_back(t->priority);
  ASSERT_EQ(got.size(), 64u);
  // Level order must hold: every task from level L comes before any task
  // from level L' > L (within a level, chunk order is unordered).
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1] >> 4, got[i] >> 4);
  }
}

TEST(Obim, ChunkSizeOneIsFullyOrderedPerLevel) {
  Obim obim(1, {.chunk_size = 1, .delta_shift = 0});  // level == priority
  for (std::uint64_t p : {9, 4, 7, 1, 3}) obim.push(0, Task{p, p});
  obim.flush(0);
  std::vector<std::uint64_t> got;
  while (auto t = obim.try_pop(0)) got.push_back(t->priority);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 3, 4, 7, 9}));
}

TEST(Obim, ConcurrentNoLossNoDuplication) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  Topology topo(kThreads, 2);
  Obim obim(kThreads,
            {.chunk_size = 16, .delta_shift = 6, .topology = &topo});
  std::mutex merge_mutex;
  std::map<std::uint64_t, int> seen;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t id = tid * kPerThread + i;
          obim.push(tid, Task{id % 512, id});
          if (i % 3 == 2) {
            if (auto t = obim.try_pop(tid)) local.push_back(t->payload);
          }
        }
        obim.flush(tid);
        while (auto t = obim.try_pop(tid)) local.push_back(t->payload);
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    obim.flush(tid);
    while (auto t = obim.try_pop(tid)) ++seen[t->payload];
  }
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  for (const auto& [id, count] : seen) {
    ASSERT_EQ(count, 1) << "task " << id;
  }
}

TEST(Pmod, MergesWhenLevelsTooSparse) {
  // Fine delta + priorities spread over a huge range => every level holds
  // a single task, far below a chunk's worth => PMOD must coarsen.
  Pmod pmod(1, {.chunk_size = 4, .delta_shift = 0, .adapt_interval = 16});
  const unsigned initial_shift = pmod.current_shift();
  for (std::uint64_t i = 0; i < 4000; ++i) {
    pmod.push(0, Task{i * 1024, i});
  }
  pmod.flush(0);
  std::uint64_t popped = 0;
  while (auto t = pmod.try_pop(0)) ++popped;
  EXPECT_EQ(popped, 4000u);
  EXPECT_GT(pmod.current_shift(), initial_shift);
}

TEST(Pmod, SplitsWhenOneLevelDominates) {
  // Coarse delta: everything lands in one level far above the split
  // threshold => PMOD must refine.
  Pmod pmod(1, {.chunk_size = 4,
                .delta_shift = 20,
                .adapt_interval = 16,
                .split_threshold = 256});
  const unsigned initial_shift = pmod.current_shift();
  for (std::uint64_t i = 0; i < 4000; ++i) {
    pmod.push(0, Task{i % 1024, i});
  }
  pmod.flush(0);
  std::uint64_t popped = 0;
  while (auto t = pmod.try_pop(0)) ++popped;
  EXPECT_EQ(popped, 4000u);
  EXPECT_LT(pmod.current_shift(), initial_shift);
}

TEST(Pmod, NoLossAcrossShiftChanges) {
  Pmod pmod(2, {.chunk_size = 4, .delta_shift = 2, .adapt_interval = 32});
  std::map<std::uint64_t, int> seen;
  std::mutex merge_mutex;
  {
    std::vector<std::jthread> workers;
    for (unsigned tid = 0; tid < 2; ++tid) {
      workers.emplace_back([&, tid] {
        std::vector<std::uint64_t> local;
        for (std::uint64_t i = 0; i < 4000; ++i) {
          const std::uint64_t id = tid * 4000 + i;
          pmod.push(tid, Task{(id * 37) % 100000, id});
          if (i % 2 == 1) {
            if (auto t = pmod.try_pop(tid)) local.push_back(t->payload);
          }
        }
        pmod.flush(tid);
        while (auto t = pmod.try_pop(tid)) local.push_back(t->payload);
        std::lock_guard<std::mutex> guard(merge_mutex);
        for (const std::uint64_t id : local) ++seen[id];
      });
    }
  }
  for (unsigned tid = 0; tid < 2; ++tid) {
    pmod.flush(tid);
    while (auto t = pmod.try_pop(tid)) ++seen[t->payload];
  }
  EXPECT_EQ(seen.size(), 8000u);
  for (const auto& [id, count] : seen) ASSERT_EQ(count, 1);
}

}  // namespace
}  // namespace smq
