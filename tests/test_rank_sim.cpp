// Tests for the rank simulator: Fenwick order statistics and the
// qualitative shape of Theorem 1.
#include "rank/rank_sim.h"

#include <gtest/gtest.h>

#include "rank/order_statistics.h"

namespace smq {
namespace {

TEST(OrderStatisticsTest, InsertEraseRank) {
  OrderStatistics os(10);
  os.insert(3);
  os.insert(7);
  os.insert(5);
  EXPECT_EQ(os.size(), 3u);
  EXPECT_EQ(os.rank_of(3), 0u);
  EXPECT_EQ(os.rank_of(5), 1u);
  EXPECT_EQ(os.rank_of(7), 2u);
  EXPECT_EQ(os.rank_of(9), 3u);
  os.erase(5);
  EXPECT_EQ(os.rank_of(7), 1u);
  EXPECT_EQ(os.size(), 2u);
}

TEST(OrderStatisticsTest, RankOfZeroAlwaysZero) {
  OrderStatistics os(100);
  for (std::size_t i = 0; i < 100; ++i) os.insert(i);
  EXPECT_EQ(os.rank_of(0), 0u);
  EXPECT_EQ(os.rank_of(99), 99u);
}

TEST(RankSim, ExactQueueHasRankZero) {
  // One queue, always delete its top: the deleted element is always the
  // global minimum, rank 0. (n is clamped to 2; use classic with both
  // choices hitting distinct queues of a 2-queue system — rank stays tiny.)
  RankSimConfig cfg;
  cfg.process = RankProcess::kClassicMq;
  cfg.num_queues = 2;
  cfg.classic_c = 1;
  cfg.num_elements = 1 << 12;
  cfg.seed = 5;
  const RankSimResult r = simulate_rank(cfg);
  EXPECT_LT(r.mean_rank, 4.0);  // 2-choice over 2 queues is near-exact
}

TEST(RankSim, ClassicMqRankScalesWithQueueCount) {
  RankSimConfig cfg;
  cfg.process = RankProcess::kClassicMq;
  cfg.num_elements = 1 << 14;
  cfg.seed = 6;

  cfg.num_queues = 4;
  const double rank4 = simulate_rank(cfg).mean_rank;
  cfg.num_queues = 32;
  const double rank32 = simulate_rank(cfg).mean_rank;
  // Theorem: expected rank O(m). 8x queues => roughly 8x rank; allow wide
  // slack but demand clear growth.
  EXPECT_GT(rank32, 3.0 * rank4);
  EXPECT_LT(rank32, 64.0 * std::max(rank4, 1.0));
}

TEST(RankSim, SmqRankWorsensAsStealProbabilityDrops) {
  RankSimConfig cfg;
  cfg.process = RankProcess::kSmq;
  cfg.num_queues = 16;
  cfg.num_elements = 1 << 14;
  cfg.seed = 7;

  cfg.p_steal = 1.0;
  const double rank_high = simulate_rank(cfg).mean_rank;
  cfg.p_steal = 1.0 / 64.0;
  const double rank_low = simulate_rank(cfg).mean_rank;
  // Theorem 1: rank ~ n/p_steal * log(1/p_steal): dropping p_steal by 64x
  // must visibly inflate the rank.
  EXPECT_GT(rank_low, 4.0 * rank_high);
}

TEST(RankSim, BatchingInflatesRankLinearly) {
  RankSimConfig cfg;
  cfg.process = RankProcess::kSmq;
  cfg.num_queues = 16;
  cfg.num_elements = 1 << 15;
  cfg.p_steal = 0.25;
  cfg.seed = 8;

  cfg.batch_size = 1;
  const double rank_b1 = simulate_rank(cfg).mean_rank;
  cfg.batch_size = 16;
  const double rank_b16 = simulate_rank(cfg).mean_rank;
  EXPECT_GT(rank_b16, 3.0 * rank_b1);  // O(nB) growth in B
}

TEST(RankSim, SkewedSchedulerDegradesRank) {
  RankSimConfig cfg;
  cfg.process = RankProcess::kSmq;
  cfg.num_queues = 16;
  cfg.num_elements = 1 << 14;
  cfg.p_steal = 0.125;
  cfg.seed = 9;

  cfg.gamma = 0.0;
  const double uniform_rank = simulate_rank(cfg).mean_rank;
  cfg.gamma = 0.9;
  const double skewed_rank = simulate_rank(cfg).mean_rank;
  EXPECT_GT(skewed_rank, uniform_rank);
}

TEST(RankSim, DeterministicForSeed) {
  RankSimConfig cfg;
  cfg.num_elements = 1 << 12;
  cfg.seed = 10;
  const RankSimResult a = simulate_rank(cfg);
  const RankSimResult b = simulate_rank(cfg);
  EXPECT_EQ(a.mean_rank, b.mean_rank);
  EXPECT_EQ(a.max_rank, b.max_rank);
  EXPECT_EQ(a.deletions, b.deletions);
}

TEST(RankSim, DeletionCountHonorsDrainFraction) {
  RankSimConfig cfg;
  cfg.num_elements = 1000;
  cfg.drain_fraction = 0.5;
  const RankSimResult r = simulate_rank(cfg);
  EXPECT_GE(r.deletions, 500u);
  EXPECT_LT(r.deletions, 520u);  // batch overshoot only
}

}  // namespace
}  // namespace smq
