// Tests for the parallel executor: termination detection, stats, and the
// scheduler concept plumbing.
#include "sched/executor.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/sequential_scheduler.h"

namespace smq {
namespace {

static_assert(PriorityScheduler<SequentialScheduler>);
static_assert(PriorityScheduler<ClassicMultiQueue>);
static_assert(PriorityScheduler<OptimizedMultiQueue>);
static_assert(PriorityScheduler<StealingMultiQueue<>>);
static_assert(!FlushableScheduler<ClassicMultiQueue>);
static_assert(FlushableScheduler<OptimizedMultiQueue>);

TEST(Executor, RunsAllSeedTasksOnce) {
  SequentialScheduler sched;
  std::vector<Task> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.push_back(Task{i, i});
  std::atomic<std::uint64_t> executed{0};
  const RunResult run = run_parallel(
      sched, seeds, [&](Task, auto&) { executed.fetch_add(1); }, 1);
  EXPECT_EQ(executed.load(), 100u);
  EXPECT_EQ(run.stats.pops, 100u);
  EXPECT_EQ(run.stats.pushes, 100u);  // the seeds
}

TEST(Executor, CascadingTasksAllExecute) {
  // Each task with priority p < depth spawns two children; total task
  // count is 2^(depth+1) - 1.
  constexpr std::uint64_t kDepth = 10;
  StealingMultiQueue<> sched(4, {.p_steal = 0.5});
  const Task seed{0, 0};
  std::atomic<std::uint64_t> executed{0};
  const RunResult run = run_parallel(
      sched, std::span<const Task>(&seed, 1),
      [&](Task t, auto& ctx) {
        executed.fetch_add(1);
        if (t.priority < kDepth) {
          ctx.push(Task{t.priority + 1, 2 * t.payload + 1});
          ctx.push(Task{t.priority + 1, 2 * t.payload + 2});
        }
      },
      4);
  EXPECT_EQ(executed.load(), (1u << (kDepth + 1)) - 1);
  EXPECT_EQ(run.stats.pops, executed.load());
}

TEST(Executor, FlushableSchedulerTerminates) {
  // With insert batching, tasks may sit in local buffers; termination
  // must flush them instead of hanging.
  OptimizedMqConfig cfg;
  cfg.insert_policy = InsertPolicy::kBatching;
  cfg.insert_batch = 64;  // large: guaranteed partially-filled buffers
  cfg.delete_policy = DeletePolicy::kBatching;
  cfg.delete_batch = 4;
  OptimizedMultiQueue sched(2, cfg);
  std::vector<Task> seeds{Task{0, 0}};
  std::atomic<std::uint64_t> executed{0};
  run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        executed.fetch_add(1);
        if (t.priority < 6) {
          for (int i = 0; i < 3; ++i) {
            ctx.push(Task{t.priority + 1, t.payload * 3 + i});
          }
        }
      },
      2);
  // 1 + 3 + 9 + ... + 3^6 tasks.
  std::uint64_t expected = 0, power = 1;
  for (int level = 0; level <= 6; ++level, power *= 3) expected += power;
  EXPECT_EQ(executed.load(), expected);
}

TEST(Executor, WastedWorkCounted) {
  SequentialScheduler sched;
  std::vector<Task> seeds{Task{1, 1}, Task{2, 2}, Task{3, 3}};
  const RunResult run = run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        if (t.priority > 1) ctx.mark_wasted();
      },
      1);
  EXPECT_EQ(run.stats.wasted, 2u);
  EXPECT_EQ(run.work_increase(1), 3.0);
}

TEST(Executor, EmptySeedsReturnImmediately) {
  StealingMultiQueue<> sched(2);
  const RunResult run = run_parallel(
      sched, std::span<const Task>{}, [](Task, auto&) { FAIL(); }, 2);
  EXPECT_EQ(run.stats.pops, 0u);
}

TEST(Executor, ManyThreadsManySeeds) {
  constexpr unsigned kThreads = 8;
  StealingMultiQueue<> sched(kThreads, {.p_steal = 0.25});
  std::vector<Task> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) seeds.push_back(Task{i, i});
  std::atomic<std::uint64_t> sum{0};
  run_parallel(
      sched, seeds, [&](Task t, auto&) { sum.fetch_add(t.payload); },
      kThreads);
  EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
}

TEST(Executor, SingleThreadStatsExact) {
  SequentialScheduler sched;
  std::vector<Task> seeds{Task{5, 5}};
  const RunResult run = run_parallel(
      sched, seeds,
      [&](Task t, auto& ctx) {
        if (t.priority > 0) ctx.push(Task{t.priority - 1, 0});
      },
      1);
  EXPECT_EQ(run.stats.pops, 6u);    // 5,4,3,2,1,0
  EXPECT_EQ(run.stats.pushes, 6u);  // seed + 5 children
  EXPECT_GE(run.seconds, 0.0);
}

}  // namespace
}  // namespace smq
