// Residual PageRank correctness across schedulers (the paper's
// iterative-ML future-work workload).
#include "algorithms/pagerank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "scheduler_fixtures.h"

namespace smq {
namespace {

template <typename Factory>
class PageRankAllSchedulers : public ::testing::Test {};

TYPED_TEST_SUITE(PageRankAllSchedulers, smq::testing::AllSchedulerFactories);

template <typename Factory>
void check_pagerank(const Graph& g, unsigned threads) {
  PageRankOptions opts;
  opts.tolerance = 1e-7;
  const SequentialPageRankResult ref = sequential_pagerank(g, opts, 500);

  auto sched = Factory::make(threads);
  const PageRankResult got = parallel_pagerank(g, sched, threads, opts);
  ASSERT_EQ(got.ranks.size(), ref.ranks.size());
  for (std::size_t v = 0; v < ref.ranks.size(); ++v) {
    ASSERT_NEAR(got.ranks[v], ref.ranks[v], 1e-3)
        << Factory::kName << " diverges at vertex " << v;
  }
}

TYPED_TEST(PageRankAllSchedulers, SmallSocialGraph) {
  check_pagerank<TypeParam>(make_rmat(7, {.seed = 41}), 4);
}

TYPED_TEST(PageRankAllSchedulers, RoadGraph) {
  check_pagerank<TypeParam>(make_road_like(225, {.seed = 42}), 2);
}

TEST(SequentialPageRank, RanksSumMatchesClosedForm) {
  // Cycle graph: perfectly symmetric, every rank must equal 1.0.
  std::vector<Edge> edges;
  constexpr VertexId kN = 10;
  for (VertexId v = 0; v < kN; ++v) edges.push_back(Edge{v, (v + 1) % kN, 1});
  const Graph g = Graph::from_edges(kN, edges);
  const SequentialPageRankResult ref = sequential_pagerank(g, {.tolerance = 1e-12});
  for (VertexId v = 0; v < kN; ++v) EXPECT_NEAR(ref.ranks[v], 1.0, 1e-9);
}

TEST(SequentialPageRank, StarGraphCenterDominates) {
  // Star: all leaves point to the center.
  std::vector<Edge> edges;
  for (VertexId leaf = 1; leaf <= 8; ++leaf) edges.push_back(Edge{leaf, 0, 1});
  const Graph g = Graph::from_edges(9, edges);
  const SequentialPageRankResult ref = sequential_pagerank(g);
  for (VertexId leaf = 1; leaf <= 8; ++leaf) {
    EXPECT_GT(ref.ranks[0], ref.ranks[leaf]);
    EXPECT_NEAR(ref.ranks[leaf], 0.15, 1e-6);
  }
  EXPECT_NEAR(ref.ranks[0], 0.15 + 0.85 * 8 * 0.15, 1e-6);
}

TEST(ResidualPriority, MonotoneInResidual) {
  using detail::residual_priority;
  EXPECT_LT(residual_priority(0.5), residual_priority(0.01));
  EXPECT_LT(residual_priority(0.01), residual_priority(1e-6));
  EXPECT_EQ(residual_priority(0.0), Task::kInfinity);
}

TEST(ParallelPageRank, WastedWorkVisibleUnderBadScheduling) {
  const Graph g = make_rmat(9, {.seed = 43});
  StealingMultiQueue<> sched(4, {.p_steal = 0.25});
  const PageRankResult got = parallel_pagerank(g, sched, 4, {.tolerance = 1e-5});
  EXPECT_GT(got.run.stats.pops, 0u);
  // Sanity: each vertex seeded once, so at least |V| tasks ran.
  EXPECT_GE(got.run.stats.pops, g.num_vertices());
}

}  // namespace
}  // namespace smq
