// Golden tests for the figure suites (registry/suites.h): each --suite
// name must expand to the exact preset/params/threads tuples of its
// paper figure, every run must name a registered scheduler with
// documented tunables, and the CLI-facing parsers (suite lookup,
// thread sweep spec) must reject garbage helpfully. The expansions are
// the reproduction recipe for conf_ppopp_PostnikovaKNA22 — change them
// deliberately, with the figure open.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"
#include "registry/suite_runner.h"
#include "registry/suites.h"
#include "support/cli.h"

namespace smq {
namespace {

using Tuple = std::pair<std::string, std::string>;  // (scheduler, key param)

std::vector<Tuple> grid_of(const SuiteDef& suite, const std::string& param,
                           std::size_t from = 1) {
  std::vector<Tuple> grid;
  for (std::size_t i = from; i < suite.runs.size(); ++i) {
    grid.emplace_back(suite.runs[i].scheduler,
                      suite.runs[i].params.get(param));
  }
  return grid;
}

// ---- registry-level invariants --------------------------------------------

TEST(SuiteRegistry, ListsExactlyTheSixFigureSuites) {
  const std::vector<std::string> expected{"fig1",     "fig3_6",   "fig7_14",
                                          "fig15_16", "fig19_20", "table2_3"};
  EXPECT_EQ(suite_names(), expected);
  for (const std::string& name : expected) {
    EXPECT_NE(find_suite(name), nullptr) << name;
  }
}

TEST(SuiteRegistry, UnknownSuiteIsRejectedWithTheFullListing) {
  EXPECT_EQ(find_suite("fig999"), nullptr);
  EXPECT_EQ(find_suite(""), nullptr);
  const std::string msg = unknown_suite_message("fig999");
  EXPECT_NE(msg.find("fig999"), std::string::npos);
  for (const std::string& name : suite_names()) {
    EXPECT_NE(msg.find(name), std::string::npos)
        << "listing must offer " << name;
  }
}

/// Every suite must stay runnable as the registries evolve: known
/// algorithm and graph source, registered schedulers, per-run params
/// restricted to the scheduler's documented tunables, unique row labels
/// (they are the JSON row key tools/perf_check.py matches on).
TEST(SuiteRegistry, EveryRunNamesARegisteredSchedulerWithDocumentedTunables) {
  for (const SuiteDef& suite : suites()) {
    SCOPED_TRACE(suite.name);
    EXPECT_FALSE(suite.figure.empty());
    EXPECT_FALSE(suite.threads.empty());
    EXPECT_FALSE(suite.runs.empty());
    EXPECT_NE(AlgorithmRegistry::instance().find(suite.algo), nullptr);
    EXPECT_NE(GraphRegistry::instance().find(suite.graph), nullptr);
    std::set<std::string> labels;
    for (const SuiteRun& run : suite.runs) {
      SCOPED_TRACE(run.scheduler);
      const SchedulerEntry* entry =
          SchedulerRegistry::instance().find(run.scheduler);
      ASSERT_NE(entry, nullptr) << "suite names unregistered scheduler";
      EXPECT_TRUE(labels.insert(suite_run_label(run)).second)
          << "duplicate row label: " << suite_run_label(run);
      for (const auto& [key, value] : run.params.entries()) {
        const bool documented =
            std::any_of(entry->tunables.begin(), entry->tunables.end(),
                        [&key = key](const Tunable& t) { return t.name == key; });
        EXPECT_TRUE(documented) << "param '" << key << "' is not a tunable of "
                                << run.scheduler;
        EXPECT_FALSE(value.empty());
      }
    }
  }
}

TEST(SuiteRegistry, RunLabelsDeriveFromSchedulerAndParams) {
  SuiteRun run;
  run.scheduler = "obim-d4";
  run.params.set("chunk-size", "64");
  EXPECT_EQ(suite_run_label(run), "obim-d4/chunk-size=64");
  run.label = "custom";
  EXPECT_EQ(suite_run_label(run), "custom");
}

// ---- golden expansions ----------------------------------------------------

TEST(SuiteExpansion, Fig1IsThePStealStealSizeGrid) {
  const SuiteDef* suite = find_suite("fig1");
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->algo, "sssp");
  EXPECT_EQ(suite->threads, std::vector<unsigned>{4});
  ASSERT_EQ(suite->runs.size(), 25u);
  EXPECT_EQ(suite->runs[0].scheduler, "mq-c4");  // the figures' baseline
  std::vector<Tuple> expected;
  for (const int denom : {2, 4, 8, 16, 32, 64}) {
    for (const char* size : {"1", "4", "16", "64"}) {
      expected.emplace_back("smq-p" + std::to_string(denom), size);
    }
  }
  EXPECT_EQ(grid_of(*suite, "steal-size"), expected);
}

TEST(SuiteExpansion, Fig3_6IsTheObimPmodDeltaChunkGrid) {
  const SuiteDef* suite = find_suite("fig3_6");
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->threads, std::vector<unsigned>{4});
  ASSERT_EQ(suite->runs.size(), 37u);
  EXPECT_EQ(suite->runs[0].scheduler, "mq-c4");
  std::vector<Tuple> expected;
  for (const char* family : {"obim-d", "pmod-d"}) {
    for (const unsigned shift : {0u, 2u, 4u, 8u, 12u, 16u}) {
      for (const char* chunk : {"16", "64", "256"}) {
        expected.emplace_back(family + std::to_string(shift), chunk);
      }
    }
  }
  EXPECT_EQ(grid_of(*suite, "chunk-size"), expected);
}

TEST(SuiteExpansion, Fig7_14IsTheStickinessAndBufferDiagonal) {
  const SuiteDef* suite = find_suite("fig7_14");
  ASSERT_NE(suite, nullptr);
  ASSERT_EQ(suite->runs.size(), 13u);
  EXPECT_EQ(suite->runs[0].scheduler, "mq-c4");
  std::vector<std::string> schedulers;
  for (std::size_t i = 1; i < suite->runs.size(); ++i) {
    schedulers.push_back(suite->runs[i].scheduler);
  }
  const std::vector<std::string> expected{
      "mq-tl-p1",   "mq-tl-p4",   "mq-tl-p16",
      "mq-tl-p64",  "mq-tl-p256", "mq-tl-p1024",
      "mq-opt-buf", "mq-opt-buf", "mq-opt-buf",
      "mq-opt-buf", "mq-opt-buf", "mq-opt-buf"};
  EXPECT_EQ(schedulers, expected);
  // The buffer rows sweep insert = delete batch along the diagonal.
  for (std::size_t i = 7; i < suite->runs.size(); ++i) {
    const SuiteRun& run = suite->runs[i];
    EXPECT_EQ(run.params.get("insert-batch"), run.params.get("delete-batch"));
  }
  EXPECT_EQ(suite->runs[7].params.get("insert-batch"), "1");
  EXPECT_EQ(suite->runs[12].params.get("insert-batch"), "1024");
}

TEST(SuiteExpansion, Fig15_16IsTheOptimizationComboStack) {
  const SuiteDef* suite = find_suite("fig15_16");
  ASSERT_NE(suite, nullptr);
  ASSERT_EQ(suite->runs.size(), 6u);
  const std::vector<std::string> expected{"mq-c4",      "mq-opt-none",
                                          "mq-opt-stick", "mq-opt-buf",
                                          "mq-opt-full",  "mq-opt"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(suite->runs[i].scheduler, expected[i]) << i;
  }
  // The explicit TL/B combo pins both policies on the base key.
  const SuiteRun& tlb = suite->runs[5];
  EXPECT_EQ(tlb.params.get("insert-policy"), "local");
  EXPECT_EQ(tlb.params.get("delete-policy"), "batch");
}

TEST(SuiteExpansion, Fig19_20PairsSkipListAndHeapVariants) {
  const SuiteDef* suite = find_suite("fig19_20");
  ASSERT_NE(suite, nullptr);
  ASSERT_EQ(suite->runs.size(), 31u);
  EXPECT_EQ(suite->runs[0].scheduler, "mq-c4");
  std::vector<Tuple> expected;
  for (const char* variant : {"smq-sl-p", "smq-p"}) {
    for (const int denom : {2, 4, 8, 16, 32}) {
      for (const char* size : {"1", "8", "64"}) {
        expected.emplace_back(variant + std::to_string(denom), size);
      }
    }
  }
  EXPECT_EQ(grid_of(*suite, "steal-size"), expected);
}

TEST(SuiteExpansion, Table2_3IsTheClassicMqCSweep) {
  const SuiteDef* suite = find_suite("table2_3");
  ASSERT_NE(suite, nullptr);
  ASSERT_EQ(suite->runs.size(), 5u);
  const std::vector<std::string> expected{"mq-c1", "mq-c2", "mq-c4", "mq-c8",
                                          "mq-c16"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(suite->runs[i].scheduler, expected[i]) << i;
    EXPECT_TRUE(suite->runs[i].params.entries().empty())
        << "the C-sweep lives in the presets, not run params";
  }
}

// ---- sweep-spec CLI parsing -----------------------------------------------

TEST(SweepSpecParsing, ThreadListsParseAndRejectGarbage) {
  EXPECT_EQ(parse_thread_list("1,2,8"), (std::vector<unsigned>{1, 2, 8}));
  EXPECT_EQ(parse_thread_list("4"), std::vector<unsigned>{4});
  EXPECT_THROW(parse_thread_list("0"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("-2"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("abc"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("2x"), std::invalid_argument);
  // Overflow must be rejected, not narrowed: 2^32 + 1 would otherwise
  // wrap to a silent 1-thread sweep.
  EXPECT_THROW(parse_thread_list("4294967297"), std::invalid_argument);
  EXPECT_THROW(parse_thread_list("99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(parse_thread_list(""), std::invalid_argument);
  EXPECT_THROW(parse_thread_list(","), std::invalid_argument);
}

// ---- end-to-end through the shared runner ---------------------------------

/// The smallest real suite, run end to end on a tiny graph: every row
/// must validate, and the JSON must carry the suite name plus one
/// uniquely-labelled row per config (the contract perf_check.py and the
/// CI artifact rely on).
TEST(SuiteRunner, Table2_3RunsEndToEndAndEmitsLabelledJson) {
  const SuiteDef* suite = find_suite("table2_3");
  ASSERT_NE(suite, nullptr);
  SuiteOptions opts;
  opts.threads = {2};
  opts.cli_params.set("vertices", "300");
  opts.json_path = "-";  // JSON to `out`, after the table
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_suite(*suite, opts, out, err), 0) << err.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"suite\": \"table2_3\""), std::string::npos);
  for (const SuiteRun& run : suite->runs) {
    EXPECT_NE(text.find("\"scheduler\": \"" + suite_run_label(run) + "\""),
              std::string::npos)
        << suite_run_label(run);
  }
  EXPECT_EQ(text.find("| NO |"), std::string::npos)
      << "a row failed oracle validation:\n" << text;
}

/// CLI tunables flow into suite rows, but a run's own grid params win —
/// otherwise one --steal-size would flatten fig1's sweep axis.
TEST(SuiteRunner, RunGridParamsWinOverCliTunables) {
  const SuiteDef* suite = find_suite("fig15_16");
  ASSERT_NE(suite, nullptr);
  SuiteOptions opts;
  opts.threads = {1};
  opts.cli_params.set("vertices", "200");
  opts.cli_params.set("delete-policy", "local");  // conflicts with TL/B row
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_suite(*suite, opts, out, err), 0) << err.str();
  // The TL/B row pins delete-policy=batch in its grid params; the run
  // completing validly (and the suite exiting 0) shows the row params
  // were applied over the CLI conflict rather than dropped.
  EXPECT_NE(out.str().find("mq-opt (TL/B)"), std::string::npos);
}

}  // namespace
}  // namespace smq
