// Tests for the virtual NUMA topology and the weighted queue sampler.
#include "sched/topology.h"

#include <gtest/gtest.h>

#include <map>

#include "core/numa_sampler.h"
#include "support/rng.h"

namespace smq {
namespace {

TEST(Topology, BlockedAssignment) {
  Topology topo(8, 2);
  EXPECT_EQ(topo.num_nodes(), 2u);
  for (unsigned tid = 0; tid < 4; ++tid) EXPECT_EQ(topo.node_of_thread(tid), 0u);
  for (unsigned tid = 4; tid < 8; ++tid) EXPECT_EQ(topo.node_of_thread(tid), 1u);
  EXPECT_EQ(topo.threads_of_node(0).size(), 4u);
  EXPECT_EQ(topo.threads_of_node(1).size(), 4u);
}

TEST(Topology, UnevenThreadCount) {
  Topology topo(5, 2);
  unsigned total = 0;
  for (unsigned node = 0; node < topo.num_nodes(); ++node) {
    total += topo.threads_of_node(node).size();
  }
  EXPECT_EQ(total, 5u);
}

TEST(Topology, UmaSingleNode) {
  Topology topo = Topology::uma(6);
  EXPECT_EQ(topo.num_nodes(), 1u);
  for (unsigned tid = 0; tid < 6; ++tid) EXPECT_EQ(topo.node_of_thread(tid), 0u);
}

TEST(Topology, InternalFractionMatchesExactFormula) {
  // Exact: E = Ti / (Ti + (T - Ti)/K) with equal nodes; the paper's
  // T(1 - 1/K) is its large-K simplification.
  Topology topo(16, 4);
  const double k = 16.0;
  const double exact = 4.0 / (4.0 + 12.0 / k);
  EXPECT_NEAR(topo.expected_internal_fraction(k), exact, 1e-9);
}

TEST(Topology, InternalFractionIncreasesWithK) {
  Topology topo(16, 4);
  double previous = 0;
  for (double k : {1.0, 2.0, 8.0, 64.0, 1024.0}) {
    const double e = topo.expected_internal_fraction(k);
    EXPECT_GT(e, previous);
    previous = e;
  }
  // Large K approaches the paper's asymptote 1 - 1/K -> 1.
  EXPECT_GT(previous, 0.95);
}

TEST(Topology, InternalFractionUniformAtK1) {
  Topology topo(8, 2);
  // K = 1: no weighting; internal fraction = per-node share = 1/2.
  EXPECT_NEAR(topo.expected_internal_fraction(1.0), 0.5, 1e-9);
}

TEST(QueueSamplerTest, UniformCoversAllQueues) {
  QueueSampler sampler(8);
  Xoshiro256 rng(1);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[sampler.sample(0, rng)];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [queue, count] : counts) EXPECT_GT(count, 500);
}

TEST(QueueSamplerTest, WeightedPrefersLocalNode) {
  const unsigned kThreads = 8;
  Topology topo(kThreads, 2);
  const double k = 8.0;
  QueueSampler sampler(kThreads, kThreads, topo, k);
  ASSERT_TRUE(sampler.is_weighted());

  Xoshiro256 rng(2);
  int local = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const std::size_t q = sampler.sample(/*tid=*/0, rng);
    if (!sampler.is_remote(0, q)) ++local;
  }
  // Expected local fraction: 4 local weight-1 queues vs 4 remote 1/K:
  // 4 / (4 + 4/8) = 8/9.
  EXPECT_NEAR(static_cast<double>(local) / kSamples, 8.0 / 9.0, 0.02);
}

TEST(QueueSamplerTest, K1FallsBackToUniform) {
  Topology topo(8, 2);
  const QueueSampler sampler = make_queue_sampler(8, 8, &topo, 1.0);
  EXPECT_FALSE(sampler.is_weighted());
}

TEST(QueueSamplerTest, NullTopologyIsUniform) {
  const QueueSampler sampler = make_queue_sampler(16, 8, nullptr, 8.0);
  EXPECT_FALSE(sampler.is_weighted());
  EXPECT_EQ(sampler.num_queues(), 16u);
}

TEST(QueueSamplerTest, WeightedStillReachesRemoteQueues) {
  Topology topo(4, 2);
  QueueSampler sampler(4, 4, topo, 64.0);
  Xoshiro256 rng(3);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[sampler.sample(0, rng)];
  EXPECT_EQ(counts.size(), 4u) << "even heavily weighted sampling must keep "
                                  "remote queues reachable (fairness)";
}

}  // namespace
}  // namespace smq
