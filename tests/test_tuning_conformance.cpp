// Tuning-table conformance (ISSUE satellite): every preset key the
// checked-in table (data/tuning/metrics_table.json) or the embedded
// fallback names must exist in the scheduler registry, every row's
// algorithm must be registered and runnable at the row's thread count,
// and the two copies must stay in sync. Mirrors
// test_preset_conformance.cpp: no table row can name a configuration
// this binary cannot execute.
//
// Also the `--sched auto` acceptance path: resolution returns a
// registered preset that matches the sequential oracle at 1 and 4
// threads.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"
#include "tuning/auto_select.h"
#include "tuning/fingerprint.h"
#include "tuning/metrics_table.h"

namespace smq::tuning {
namespace {

const std::string kCheckedInTable =
    std::string(SMQ_SOURCE_DIR) + "/data/tuning/metrics_table.json";

/// Registry conformance for one table copy; `origin` labels failures.
void check_table(const MetricsTable& table, const std::string& origin) {
  EXPECT_EQ(table.version, MetricsTable::kFormatVersion) << origin;
  EXPECT_FALSE(table.rows.empty())
      << origin << ": an empty table would send every `--sched auto` "
      << "run to the fallback preset";
  std::set<std::tuple<std::string, std::string, unsigned>> keys;
  for (const MetricsRow& row : table.rows) {
    const std::string where = origin + ": row " + row.graph_class + '/' +
                              row.algorithm + " @ " +
                              std::to_string(row.threads) + 't';
    // The key fields themselves must be well-formed...
    EXPECT_TRUE(parse_graph_class(row.graph_class).has_value())
        << where << ": unknown graph class '" << row.graph_class << "'";
    EXPECT_TRUE(keys.insert({row.graph_class, row.algorithm, row.threads}).second)
        << where << ": duplicate key";
    // ...the algorithm must exist...
    EXPECT_NE(AlgorithmRegistry::instance().find(row.algorithm), nullptr)
        << where << ": unregistered algorithm '" << row.algorithm << "'";
    // ...and the winning preset must be a registered scheduler able to
    // actually run at the recorded thread count (a sequential entry
    // recorded at 4t would silently under-deliver).
    const SchedulerEntry* entry =
        SchedulerRegistry::instance().find(row.preset);
    ASSERT_NE(entry, nullptr)
        << where << ": unregistered preset '" << row.preset << "'";
    EXPECT_EQ(effective_threads(*entry, row.threads), row.threads)
        << where << ": preset '" << row.preset
        << "' cannot run at the recorded thread count";
    EXPECT_GT(row.tasks_per_sec, 0) << where;
    EXPECT_GE(row.confidence, 0) << where;
    EXPECT_LE(row.confidence, 1) << where;
    EXPECT_FALSE(row.graph.empty()) << where << ": provenance spec missing";
  }
}

TEST(TuningConformance, CheckedInTableNamesOnlyRegisteredKeys) {
  check_table(MetricsTable::load(kCheckedInTable), "metrics_table.json");
}

TEST(TuningConformance, EmbeddedTableNamesOnlyRegisteredKeys) {
  check_table(MetricsTable::embedded(), "embedded table");
}

/// The embedded fallback is documented as a verbatim copy of the
/// checked-in file; catch the two drifting apart at regeneration time.
TEST(TuningConformance, EmbeddedTableMatchesCheckedInTable) {
  const MetricsTable file = MetricsTable::load(kCheckedInTable);
  const MetricsTable embedded = MetricsTable::embedded();
  ASSERT_EQ(embedded.rows.size(), file.rows.size())
      << "re-run smq_tune and paste data/tuning/metrics_table.json into "
      << "src/tuning/embedded_table.cpp";
  for (std::size_t i = 0; i < file.rows.size(); ++i) {
    const MetricsRow& a = file.rows[i];
    const MetricsRow& b = embedded.rows[i];
    EXPECT_EQ(a.graph_class, b.graph_class) << "row " << i;
    EXPECT_EQ(a.algorithm, b.algorithm) << "row " << i;
    EXPECT_EQ(a.threads, b.threads) << "row " << i;
    EXPECT_EQ(a.preset, b.preset) << "row " << i;
    EXPECT_DOUBLE_EQ(a.tasks_per_sec, b.tasks_per_sec) << "row " << i;
  }
}

/// Every (preset, algorithm) pair the table endorses must execute and
/// match the oracle — the runtime trusts these rows blindly.
TEST(TuningConformance, EndorsedPresetAlgorithmPairsPassTheOracle) {
  const MetricsTable table = MetricsTable::load(kCheckedInTable);
  ParamMap gparams;
  gparams.set("vertices", "400");
  gparams.set("seed", "11");
  const GraphInstance inst = GraphRegistry::instance().create("rand", gparams);
  std::set<std::pair<std::string, std::string>> pairs;
  for (const MetricsRow& row : table.rows) {
    pairs.insert({row.preset, row.algorithm});
  }
  for (const auto& [preset, algo_name] : pairs) {
    SCOPED_TRACE(preset + '/' + algo_name);
    const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
    ASSERT_NE(algo, nullptr);
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(preset);
    ASSERT_NE(entry, nullptr);
    const AlgoReference ref = algo->make_reference(inst, {});
    const unsigned threads = effective_threads(*entry, 2);
    AnyScheduler sched = entry->make(threads, {});
    const AlgoResult result = algo->run(inst, sched, threads, {}, &ref);
    EXPECT_TRUE(result.validated);
    EXPECT_TRUE(result.valid) << preset << " failed the oracle on " << algo_name;
  }
}

/// The acceptance criterion: `--sched auto` resolves to a registered
/// preset and that preset matches the sequential oracle at 1 and 4
/// threads, with provenance attached.
TEST(TuningConformance, AutoSelectionResolvesAndPassesTheOracle) {
  ParamMap gparams;
  gparams.set("vertices", "500");
  gparams.set("seed", "3");
  const GraphInstance inst = GraphRegistry::instance().create("rand", gparams);
  const AlgorithmEntry* sssp = AlgorithmRegistry::instance().find("sssp");
  ASSERT_NE(sssp, nullptr);
  const AlgoReference ref = sssp->make_reference(inst, {});
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const AutoSelection sel =
        select_scheduler(inst, "sssp", threads, kCheckedInTable);
    const SchedulerEntry* entry =
        SchedulerRegistry::instance().find(sel.preset);
    ASSERT_NE(entry, nullptr) << "auto resolved to unknown '" << sel.preset << "'";
    EXPECT_EQ(sel.match, MatchKind::kExact)
        << "the checked-in table covers uniform/sssp at 1 and 4 threads";
    EXPECT_FALSE(sel.why.empty());
    EXPECT_EQ(sel.table_origin, kCheckedInTable);
    const unsigned eff = effective_threads(*entry, threads);
    AnyScheduler sched = entry->make(eff, {});
    const AlgoResult result = sssp->run(inst, sched, eff, {}, &ref);
    EXPECT_TRUE(result.validated);
    EXPECT_TRUE(result.valid) << sel.preset << " failed the oracle";
  }
}

/// Resolution is pure given (table, fingerprint, key): repeated calls
/// must agree, including on fallback paths a stale table exercises.
TEST(TuningConformance, ResolutionIsDeterministic) {
  const MetricsTable table = MetricsTable::load(kCheckedInTable);
  ParamMap gparams;
  gparams.set("vertices", "500");
  gparams.set("seed", "3");
  const GraphInstance inst = GraphRegistry::instance().create("rand", gparams);
  const WorkloadFingerprint fp = fingerprint_graph(*inst.graph);
  for (const char* algo : {"sssp", "bfs", "astar"}) {
    // 3t has no exact row -> nearest-threads; 64t -> nearest as well.
    for (const unsigned threads : {1u, 3u, 4u, 64u}) {
      const AutoSelection a = select_scheduler(table, "t", fp, algo, threads);
      const AutoSelection b = select_scheduler(table, "t", fp, algo, threads);
      EXPECT_EQ(a.preset, b.preset) << algo << " @ " << threads;
      EXPECT_EQ(a.match, b.match) << algo << " @ " << threads;
      EXPECT_NE(SchedulerRegistry::instance().find(a.preset), nullptr)
          << algo << " @ " << threads << " resolved to unknown preset";
    }
  }
}

}  // namespace
}  // namespace smq::tuning
