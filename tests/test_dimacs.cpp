// DIMACS ingest hardening: the parser must reject exactly the
// corruptions that a failed download of a multi-gigabyte .gr file
// produces — truncation, weight overflow, duplicated headers — and
// tolerate the cosmetic ones (CRLF line endings).
#include "graph/dimacs.h"

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>

#include "graph/dimacs_catalog.h"

namespace smq {
namespace {

TEST(DimacsHardening, AcceptsCrlfLineEndings) {
  std::istringstream in(
      "c windows-fetched file\r\n"
      "\r\n"
      "p sp 3 2\r\n"
      "a 1 2 5\r\n"
      "a 2 3 7\r\n");
  const Graph g = read_dimacs_gr(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(1)[0].weight, 7u);
}

TEST(DimacsHardening, CoordinatesAcceptCrlf) {
  std::istringstream gr("p sp 2 1\na 1 2 3\n");
  Graph g = read_dimacs_gr(gr);
  std::istringstream co("v 1 -73000000 41000000\r\nv 2 -74000000 42000000\r\n");
  read_dimacs_co(co, g);
  EXPECT_DOUBLE_EQ(g.coordinates().x[0], -73000000.0);
}

TEST(DimacsHardening, RejectsOverweightArc) {
  // 2^32 + 5 would static_cast down to 5 — a silently wrong graph.
  std::istringstream in("p sp 2 1\na 1 2 4294967301\n");
  EXPECT_THROW(read_dimacs_gr(in), std::runtime_error);
}

TEST(DimacsHardening, AcceptsMaxWeight) {
  std::istringstream in("p sp 2 1\na 1 2 4294967295\n");
  const Graph g = read_dimacs_gr(in);
  EXPECT_EQ(g.neighbors(0)[0].weight, 4294967295u);
}

TEST(DimacsHardening, RejectsNegativeWeight) {
  std::istringstream in("p sp 2 1\na 1 2 -7\n");
  EXPECT_THROW(read_dimacs_gr(in), std::runtime_error);
}

TEST(DimacsHardening, RejectsTruncatedFile) {
  // Declares 4 arcs, delivers 2: every line parses, so only the arc
  // count catches the truncation.
  std::istringstream in(
      "p sp 3 4\n"
      "a 1 2 5\n"
      "a 2 3 7\n");
  EXPECT_THROW(read_dimacs_gr(in), std::runtime_error);
}

TEST(DimacsHardening, RejectsExtraArcs) {
  std::istringstream in(
      "p sp 3 1\n"
      "a 1 2 5\n"
      "a 2 3 7\n");
  EXPECT_THROW(read_dimacs_gr(in), std::runtime_error);
}

TEST(DimacsHardening, RejectsDuplicateProblemLine) {
  // A concatenation of two downloads must not parse as one graph.
  std::istringstream in(
      "p sp 2 1\n"
      "a 1 2 5\n"
      "p sp 2 1\n"
      "a 1 2 5\n");
  EXPECT_THROW(read_dimacs_gr(in), std::runtime_error);
}

TEST(DimacsHardening, RejectsArcMissingFields) {
  std::istringstream in("p sp 2 1\na 1 2\n");
  EXPECT_THROW(read_dimacs_gr(in), std::runtime_error);
}

TEST(DimacsCatalog, LookupAndPaths) {
  const DimacsGraphInfo* usa = find_dimacs_graph("usa");
  ASSERT_NE(usa, nullptr);
  EXPECT_EQ(usa->vertices, 23947347u);
  EXPECT_EQ(usa->arcs, 58333344u);
  EXPECT_EQ(dimacs_gr_path(*usa, "/cache"), "/cache/USA-road-d.USA.gr");
  EXPECT_EQ(dimacs_co_path(*usa, "/cache"), "/cache/USA-road-d.USA.co");
  EXPECT_EQ(find_dimacs_graph("nope"), nullptr);
}

// The fetch tool's python MANIFEST pins the same |V|/|E| as the C++
// catalog; parse the script so the two cannot drift apart silently.
TEST(DimacsCatalog, MatchesFetchToolManifest) {
#ifndef SMQ_SOURCE_DIR
  GTEST_SKIP() << "SMQ_SOURCE_DIR not defined";
#else
  std::ifstream script(std::string(SMQ_SOURCE_DIR) +
                       "/tools/fetch_dimacs.py");
  ASSERT_TRUE(script.is_open()) << "tools/fetch_dimacs.py not found";
  std::stringstream buffer;
  buffer << script.rdbuf();
  const std::string text = buffer.str();

  const std::regex entry_re(
      "\"([a-z]+)\": \\{\"stem\": \"([^\"]+)\", "
      "\"vertices\": ([0-9]+), \"arcs\": ([0-9]+)\\}");
  std::size_t matched = 0;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), entry_re);
       it != std::sregex_iterator(); ++it, ++matched) {
    const std::string key = (*it)[1];
    const DimacsGraphInfo* info = find_dimacs_graph(key);
    ASSERT_NE(info, nullptr) << "fetch tool graph '" << key
                             << "' missing from dimacs_catalog()";
    EXPECT_EQ(std::string(info->file_stem), (*it)[2]) << key;
    EXPECT_EQ(info->vertices, std::stoull((*it)[3])) << key;
    EXPECT_EQ(info->arcs, std::stoull((*it)[4])) << key;
  }
  EXPECT_EQ(matched, dimacs_catalog().size())
      << "catalog and fetch tool manifest list different graphs";
#endif
}

}  // namespace
}  // namespace smq
