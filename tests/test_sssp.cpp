// SSSP correctness across every scheduler family and thread counts.
#include "algorithms/sssp.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "scheduler_fixtures.h"

namespace smq {
namespace {

template <typename Factory>
class SsspAllSchedulers : public ::testing::Test {};

TYPED_TEST_SUITE(SsspAllSchedulers, smq::testing::AllSchedulerFactories);

template <typename Factory>
void check_sssp(const Graph& g, VertexId source, unsigned threads) {
  const SequentialSsspResult ref = sequential_sssp(g, source);
  auto sched = Factory::make(threads);
  const ShortestPathResult got = parallel_sssp(g, source, sched, threads);
  ASSERT_EQ(got.distances.size(), ref.distances.size());
  for (std::size_t v = 0; v < ref.distances.size(); ++v) {
    ASSERT_EQ(got.distances[v], ref.distances[v])
        << Factory::kName << " differs at vertex " << v << " with "
        << threads << " threads";
  }
  // A relaxed scheduler can only do extra work, never less.
  EXPECT_GE(got.run.stats.pops, ref.settled);
}

TYPED_TEST(SsspAllSchedulers, RoadGraphSingleThread) {
  check_sssp<TypeParam>(make_road_like(900, {.seed = 1}), 0, 1);
}

TYPED_TEST(SsspAllSchedulers, RoadGraphFourThreads) {
  check_sssp<TypeParam>(make_road_like(900, {.seed = 2}), 0, 4);
}

TYPED_TEST(SsspAllSchedulers, SocialGraphFourThreads) {
  check_sssp<TypeParam>(make_rmat(9, {.seed = 3}), 0, 4);
}

TYPED_TEST(SsspAllSchedulers, GridWithWeights) {
  check_sssp<TypeParam>(make_grid2d(24, 24, /*unit_weights=*/false, 4), 5, 3);
}

TYPED_TEST(SsspAllSchedulers, DisconnectedGraphLeavesUnreached) {
  // Two islands: vertices 0-2 and 3-5.
  const Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}});
  auto sched = TypeParam::make(2);
  const ShortestPathResult got = parallel_sssp(g, 0, sched, 2);
  EXPECT_EQ(got.distances[2], 2u);
  EXPECT_EQ(got.distances[3], DistanceArray::kUnreached);
  EXPECT_EQ(got.distances[5], DistanceArray::kUnreached);
}

TEST(SequentialSssp, PathGraphDistances) {
  const Graph g = make_path(6, 10);
  const SequentialSsspResult ref = sequential_sssp(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(ref.distances[v], v * 10u);
  EXPECT_EQ(ref.settled, 6u);
}

TEST(SequentialSssp, SingleVertex) {
  const Graph g = Graph::from_edges(1, {});
  const SequentialSsspResult ref = sequential_sssp(g, 0);
  EXPECT_EQ(ref.distances[0], 0u);
  EXPECT_EQ(ref.settled, 1u);
}

TEST(ParallelSssp, WastedWorkReportedOnSocialGraph) {
  const Graph g = make_rmat(10, {.seed = 4});
  StealingMultiQueue<> sched(4, {.p_steal = 0.125});
  const ShortestPathResult got = parallel_sssp(g, 0, sched, 4);
  const SequentialSsspResult ref = sequential_sssp(g, 0);
  // work increase = pops / settled >= 1.
  EXPECT_GE(got.run.work_increase(ref.settled), 1.0);
}

}  // namespace
}  // namespace smq
