// EpochManager: pin/unpin semantics, the two-epoch grace period, a
// stalled reader holding back reclamation (the property ASan verifies by
// the reader dereferencing the retired pointer), and concurrent retire.
#include "sched/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace smq {
namespace {

/// Deleter that counts invocations through `ctx`.
void count_delete(void* /*ptr*/, void* ctx) {
  static_cast<std::atomic<int>*>(ctx)->fetch_add(1,
                                                 std::memory_order_relaxed);
}

void delete_int(void* ptr, void* /*ctx*/) { delete static_cast<int*>(ptr); }

TEST(Epoch, PinUnpinNests) {
  EpochManager mgr(1);
  EXPECT_FALSE(mgr.pinned(0));
  mgr.pin(0);
  EXPECT_TRUE(mgr.pinned(0));
  mgr.pin(0);  // reentrant: counter bump
  EXPECT_TRUE(mgr.pinned(0));
  mgr.unpin(0);
  EXPECT_TRUE(mgr.pinned(0)) << "inner unpin must not end the section";
  mgr.unpin(0);
  EXPECT_FALSE(mgr.pinned(0));
}

TEST(Epoch, GuardPinsAndNullGuardIsNoop) {
  EpochManager mgr(1);
  {
    EpochManager::Guard outer(&mgr, 0);
    EXPECT_TRUE(mgr.pinned(0));
    {
      EpochManager::Guard inner(&mgr, 0);
      EXPECT_TRUE(mgr.pinned(0));
    }
    EXPECT_TRUE(mgr.pinned(0));
  }
  EXPECT_FALSE(mgr.pinned(0));
  {
    // The reclamation-disabled composition: a guard on no manager.
    EpochManager::Guard none(nullptr, 0);
  }
  {
    // Moved-from guards must not double-unpin.
    EpochManager::Guard a(&mgr, 0);
    EpochManager::Guard b(std::move(a));
    EXPECT_TRUE(mgr.pinned(0));
  }
  EXPECT_FALSE(mgr.pinned(0));
}

TEST(Epoch, DrainWaitsForTwoAdvances) {
  EpochManager mgr(1);
  std::atomic<int> freed{0};
  int dummy = 0;
  mgr.retire(0, &dummy, &count_delete, &freed);
  EXPECT_EQ(mgr.retired_count(), 1u);

  // One advance is not enough: a reader pinned at the retirement epoch
  // could still coexist with one pinned at retirement+1.
  mgr.quiesce(0);
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(mgr.retired_count(), 1u);

  // The second advance ends the grace period.
  mgr.quiesce(0);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.retired_count(), 0u);
}

TEST(Epoch, AdvanceBlockedByLaggingPin) {
  EpochManager mgr(2);
  mgr.pin(0);
  EXPECT_TRUE(mgr.try_advance());  // pinned at current epoch: may advance
  const std::uint64_t after_first = mgr.global_epoch();
  // Thread 0 is now pinned one epoch behind; further advance must fail.
  EXPECT_FALSE(mgr.try_advance());
  EXPECT_EQ(mgr.global_epoch(), after_first);
  mgr.unpin(0);
  EXPECT_TRUE(mgr.try_advance());
  EXPECT_EQ(mgr.global_epoch(), after_first + 1);
}

TEST(Epoch, StalledReaderHoldsReclamation) {
  // tid 0: reader pinned on a shared int. tid 1: retires that int and
  // tries hard to reclaim. The value must stay readable (ASan turns a
  // violation into a hard failure) until the reader unpins.
  EpochManager mgr(2);
  int* shared = new int(42);

  std::mutex m;
  std::condition_variable cv;
  enum class Step { kStart, kReaderPinned, kRetireAttempted, kDone };
  Step step = Step::kStart;
  auto advance_to = [&](Step s) {
    std::lock_guard lock(m);
    step = s;
    cv.notify_all();
  };
  auto wait_for = [&](Step s) {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return step >= s; });
  };

  int observed = 0;
  std::jthread reader([&] {
    mgr.pin(0);
    advance_to(Step::kReaderPinned);
    wait_for(Step::kRetireAttempted);
    observed = *shared;  // UAF here if reclamation ignored the pin
    mgr.unpin(0);
  });

  wait_for(Step::kReaderPinned);
  mgr.retire(1, shared, &delete_int, nullptr);
  // No amount of quiescing on tid 1 may free the entry: the reader's
  // slot lags the global epoch after the first advance, capping the
  // epoch distance at 1 < 2.
  for (int i = 0; i < 16; ++i) mgr.quiesce(1);
  EXPECT_EQ(mgr.retired_count(), 1u);
  advance_to(Step::kRetireAttempted);
  reader.join();
  EXPECT_EQ(observed, 42);

  // Reader unpinned: two quiesces release the grace period.
  mgr.quiesce(1);
  mgr.quiesce(1);
  EXPECT_EQ(mgr.retired_count(), 0u);
}

TEST(Epoch, ConcurrentRetireFreesEverythingExactlyOnce) {
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<int> freed{0};
  {
    EpochManager mgr(kThreads);
    {
      std::vector<std::jthread> workers;
      for (unsigned tid = 0; tid < kThreads; ++tid) {
        workers.emplace_back([&, tid] {
          for (int i = 0; i < kPerThread; ++i) {
            EpochManager::Guard guard(&mgr, tid);
            // Retire both a counted token and a real allocation: the
            // former proves exactly-once, the latter lets ASan/LSan
            // prove no double free and no leak.
            mgr.retire(tid, nullptr, &count_delete, &freed);
            mgr.retire(tid, new int(i), &delete_int, nullptr);
          }
        });
      }
    }
    // Workers joined; some entries were drained inline (every 64th
    // unpin), the destructor's drain_all() must free the rest.
  }
  EXPECT_EQ(freed.load(), static_cast<int>(kThreads) * kPerThread);
}

TEST(Epoch, RetiredCountTracksLimbo) {
  EpochManager mgr(1);
  std::atomic<int> freed{0};
  for (int i = 0; i < 10; ++i) mgr.retire(0, nullptr, &count_delete, &freed);
  EXPECT_EQ(mgr.retired_count(), 10u);
  mgr.quiesce(0);
  mgr.quiesce(0);
  EXPECT_EQ(mgr.retired_count(), 0u);
  EXPECT_EQ(freed.load(), 10);
}

}  // namespace
}  // namespace smq
