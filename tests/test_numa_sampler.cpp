// The NUMA evidence chain, end to end: weighted sampling frequencies
// against the analytic expectation, remoteness attribution against a
// brute-force oracle, balanced non-divisible topologies, hardened
// degenerate sampler cases, bounded victim resampling, and remote-steal
// stats surfacing through a full registry run.
#include "core/numa_sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/stealing_multiqueue.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/numa_grid.h"
#include "registry/scheduler_configs.h"
#include "registry/scheduler_registry.h"
#include "sched/executor.h"
#include "sched/topology.h"
#include "support/rng.h"

namespace smq {
namespace {

// ---- weighted frequencies vs the analytic p_local -------------------------

TEST(NumaSampler, FrequenciesMatchAnalyticLocalProbability) {
  // 8 threads, 2 nodes, C = 2 queues per thread: 8 local queues of
  // weight 1 vs 8 remote queues of weight 1/K per node.
  const unsigned kThreads = 8;
  const std::size_t kQueues = 16;
  const Topology topo(kThreads, 2);
  for (const double k : {2.0, 8.0, 64.0}) {
    const QueueSampler sampler(kQueues, kThreads, topo, k);
    ASSERT_TRUE(sampler.is_weighted());
    Xoshiro256 rng(42);
    constexpr int kSamples = 200000;
    int local = 0;
    std::map<std::size_t, int> counts;
    for (int i = 0; i < kSamples; ++i) {
      const std::size_t q = sampler.sample(/*tid=*/2, rng);
      ASSERT_LT(q, kQueues);
      ++counts[q];
      if (!sampler.is_remote(2, q)) ++local;
    }
    const double p_local = 8.0 / (8.0 + 8.0 / k);
    EXPECT_NEAR(static_cast<double>(local) / kSamples, p_local, 0.01)
        << "K=" << k;
    // Within each group the distribution is uniform: every queue must
    // appear, local ones ~kSamples * p_local / 8 times.
    EXPECT_EQ(counts.size(), kQueues) << "K=" << k;
    for (const auto& [q, n] : counts) {
      const double expected =
          sampler.is_remote(2, q) ? (1 - p_local) / 8 : p_local / 8;
      EXPECT_NEAR(static_cast<double>(n) / kSamples, expected, 0.01)
          << "K=" << k << " queue " << q;
    }
  }
}

// ---- is_remote vs a brute-force oracle ------------------------------------

TEST(NumaSampler, IsRemoteAgreesWithBruteForceOracle) {
  for (const unsigned threads : {2u, 5u, 8u}) {
    for (const unsigned nodes : {2u, 3u, 4u}) {
      if (nodes > threads) continue;
      const Topology topo(threads, nodes);
      for (const unsigned c : {1u, 3u}) {
        const std::size_t queues = static_cast<std::size_t>(threads) * c;
        // K = 1: sampling stays uniform but attribution must still work.
        for (const double k : {1.0, 8.0}) {
          const QueueSampler sampler =
              make_queue_sampler(queues, threads, &topo, k);
          ASSERT_TRUE(sampler.topology_aware());
          EXPECT_EQ(sampler.is_weighted(), k > 1.0);
          for (unsigned tid = 0; tid < threads; ++tid) {
            for (std::size_t q = 0; q < queues; ++q) {
              // Oracle: queue q belongs to thread q mod T, remote iff
              // the owner lives on a different node than tid.
              const unsigned owner = static_cast<unsigned>(q % threads);
              const bool oracle = topo.node_of_thread(owner) !=
                                  topo.node_of_thread(tid);
              EXPECT_EQ(sampler.is_remote(tid, q), oracle)
                  << "T=" << threads << " N=" << nodes << " C=" << c
                  << " K=" << k << " tid=" << tid << " q=" << q;
            }
          }
        }
      }
    }
  }
}

// ---- balanced non-divisible topologies ------------------------------------

TEST(NumaSampler, NonDivisibleTopologiesHaveNoEmptyNodes) {
  for (unsigned threads = 1; threads <= 16; ++threads) {
    for (unsigned nodes = 1; nodes <= threads; ++nodes) {
      const Topology topo(threads, nodes);
      ASSERT_EQ(topo.num_nodes(), nodes);
      unsigned total = 0;
      std::size_t min_occ = threads, max_occ = 0;
      for (unsigned node = 0; node < nodes; ++node) {
        const std::size_t occ = topo.threads_of_node(node).size();
        EXPECT_GE(occ, 1u) << threads << " threads over " << nodes
                           << " nodes left node " << node << " empty";
        min_occ = std::min(min_occ, occ);
        max_occ = std::max(max_occ, occ);
        total += static_cast<unsigned>(occ);
      }
      EXPECT_EQ(total, threads);
      EXPECT_LE(max_occ - min_occ, 1u)
          << "unbalanced split for " << threads << "/" << nodes;
    }
  }
  // The ISSUE's concrete regression: 6 threads over 4 nodes must be
  // 2/2/1/1, not 2/2/2/0.
  const Topology topo(6, 4);
  EXPECT_EQ(topo.threads_of_node(0).size(), 2u);
  EXPECT_EQ(topo.threads_of_node(1).size(), 2u);
  EXPECT_EQ(topo.threads_of_node(2).size(), 1u);
  EXPECT_EQ(topo.threads_of_node(3).size(), 1u);
}

TEST(NumaSampler, MoreNodesThanThreadsClampsInsteadOfEmptyNodes) {
  const Topology topo(3, 8);
  EXPECT_EQ(topo.num_nodes(), 3u);
  for (unsigned node = 0; node < topo.num_nodes(); ++node) {
    EXPECT_EQ(topo.threads_of_node(node).size(), 1u);
  }
}

// ---- hardened degenerate sampler cases ------------------------------------

TEST(NumaSampler, EmptyLocalGroupStillSamplesValidQueues) {
  // 2 queues, 4 threads, 4 nodes: threads 2 and 3 own no queues, so
  // their node groups have an empty local side (and with 2 single-queue
  // nodes remote too, depending on the split). Every sample must still
  // land in range.
  const Topology topo(4, 4);
  const QueueSampler sampler(2, 4, topo, 8.0);
  Xoshiro256 rng(7);
  for (unsigned tid = 0; tid < 4; ++tid) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(sampler.sample(tid, rng), 2u);
    }
  }
}

TEST(NumaSampler, SingleQueuePerNodeSamplesBothSides) {
  // 2 threads, 2 nodes: each node's local group is exactly the
  // thread's own queue. Heavy weighting must not wedge the sampler.
  const Topology topo(2, 2);
  const QueueSampler sampler(2, 2, topo, 1e9);
  Xoshiro256 rng(9);
  int self = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t q = sampler.sample(0, rng);
    ASSERT_LT(q, 2u);
    if (q == 0) ++self;
  }
  // With K = 1e9 essentially every sample is the local (own) queue.
  EXPECT_GT(self, 990);
}

TEST(NumaSampler, SmqVictimResamplingIsBounded) {
  // The scenario above, inside the SMQ: thread 1's weighted sampler
  // returns its own queue with probability ~1, so the self-exclusion
  // resampling must fall back to a uniform other pick instead of
  // spinning. The steal itself must then succeed (forced steal from an
  // empty local queue).
  const Topology topo(2, 2);
  SmqConfig cfg;
  cfg.topology = &topo;
  cfg.numa_weight_k = 1e9;
  SmqHeap smq(2, cfg);
  for (std::uint64_t i = 0; i < 64; ++i) smq.push(0, Task{i, i});
  const std::optional<Task> stolen = smq.try_pop(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->priority, 0u);
  EXPECT_GT(smq.steals(1), 0u);
  // Victim selection was sampled (and, with one thread per node,
  // necessarily remote).
  EXPECT_GT(smq.steal_samples(1), 0u);
  EXPECT_EQ(smq.remote_steals(1), smq.steal_samples(1));
}

TEST(NumaSampler, BlockedOwnershipMatchesStructuralOwners) {
  // RELD's layout: thread t owns queues [t*C, (t+1)*C). With blocked
  // ownership the sampler must attribute by q / C, not q mod T.
  const unsigned threads = 4, c = 2;
  const Topology topo(threads, 2);
  const QueueSampler sampler(threads * c, threads, topo, 8.0,
                             QueueOwnership::kBlocked);
  for (unsigned tid = 0; tid < threads; ++tid) {
    for (std::size_t q = 0; q < threads * c; ++q) {
      const unsigned owner = static_cast<unsigned>(q / c);
      EXPECT_EQ(sampler.is_remote(tid, q),
                topo.node_of_thread(owner) != topo.node_of_thread(tid))
          << "tid=" << tid << " q=" << q;
    }
  }
}

// ---- remote-steal stats through a full registry run -----------------------

TEST(NumaSampler, RemoteStealStatsSurfaceThroughRegistryRun) {
  ParamMap params;
  params.set("vertices", "4000");
  const GraphInstance graph = GraphRegistry::instance().create("rand", params);
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find("sssp");
  ASSERT_NE(algo, nullptr);

  // One grid point of the driver's sweep: 2 nodes, K = 8.
  apply_numa_point(params, NumaGridPoint{.nodes = 2, .k = 8, .k_set = true});
  AnyScheduler sched = SchedulerRegistry::instance().create("smq", 4, params);
  const AlgoResult result = algo->run(graph, sched, 4, params, nullptr);

  // The executor merged the scheduler-private NUMA counters: victim
  // sampling happened, and the weighted sampler still crossed nodes.
  EXPECT_GT(result.run.stats.sampled_accesses, 0u);
  EXPECT_GT(result.run.stats.remote_accesses, 0u);
  EXPECT_LT(result.run.stats.remote_accesses,
            result.run.stats.sampled_accesses);
  const double frac = result.run.stats.remote_frac();
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 1.0);

  // UMA control: no topology, no sampled touches.
  ParamMap uma;
  uma.set("vertices", "4000");
  AnyScheduler uma_sched = SchedulerRegistry::instance().create("smq", 4, uma);
  const AlgoResult uma_result = algo->run(graph, uma_sched, 4, uma, nullptr);
  EXPECT_EQ(uma_result.run.stats.sampled_accesses, 0u);
  EXPECT_EQ(uma_result.run.stats.remote_accesses, 0u);

  // The RELD presets advertise NUMA-grid participation too: weighted
  // enqueue sampling must show up in the merged stats.
  AnyScheduler reld = SchedulerRegistry::instance().create("reld-c2", 4, params);
  const AlgoResult reld_result = algo->run(graph, reld, 4, params, nullptr);
  EXPECT_GT(reld_result.run.stats.sampled_accesses, 0u);
  EXPECT_GT(reld_result.run.stats.remote_accesses, 0u);
  EXPECT_LT(reld_result.run.stats.remote_frac(), 0.5);
}

// ---- the grid parser itself -----------------------------------------------

TEST(NumaGrid, ParsesCrossProduct) {
  // nodes=1 collapses to one UMA point (K is meaningless there), so
  // 1x{1,8} + 2x{1,8} + 4x{1,8} yields 5 points, not 6.
  const auto grid = parse_numa_grid("nodes=1,2,4:k=1,8");
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_EQ(grid[0].nodes, 1u);
  EXPECT_EQ(grid[0].k, 1.0);
  EXPECT_FALSE(grid[0].active());
  EXPECT_EQ(grid[2].nodes, 2u);
  EXPECT_EQ(grid[2].k, 8.0);
  EXPECT_TRUE(grid[2].active());
  EXPECT_EQ(grid[4].nodes, 4u);
  EXPECT_EQ(grid[4].k, 8.0);
  EXPECT_EQ(grid[2].spec(), "nodes=2,k=8");
}

TEST(NumaGrid, SingleDimensionDefaults) {
  const auto k_only = parse_numa_grid("k=1,8,64");
  ASSERT_EQ(k_only.size(), 3u);
  for (const auto& p : k_only) EXPECT_EQ(p.nodes, 2u);
  // A nodes-only sweep pins K=1 explicitly, so the recorded analytic E
  // matches the uniform sampling that actually runs.
  const auto nodes_only = parse_numa_grid("nodes=2,4");
  ASSERT_EQ(nodes_only.size(), 2u);
  EXPECT_TRUE(nodes_only[0].k_set);
  EXPECT_EQ(nodes_only[0].k, 1.0);
  EXPECT_EQ(nodes_only[0].spec(), "nodes=2,k=1");
}

TEST(NumaGrid, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_numa_grid(""), std::invalid_argument);
  EXPECT_THROW(parse_numa_grid("nodes"), std::invalid_argument);
  EXPECT_THROW(parse_numa_grid("cores=1,2"), std::invalid_argument);
  EXPECT_THROW(parse_numa_grid("nodes=1,x"), std::invalid_argument);
  EXPECT_THROW(parse_numa_grid("k=0"), std::invalid_argument);
}

TEST(NumaGrid, ApplyPointDrivesTopologyRebuild) {
  // The driver rewrites `numa` per grid point; the scheduler configs
  // must rebuild the topology accordingly.
  ParamMap params;
  apply_numa_point(params, NumaGridPoint{.nodes = 4, .k = 16, .k_set = true});
  std::shared_ptr<Topology> topo;
  const SmqConfig cfg = make_smq_config(8, params, topo);
  ASSERT_NE(topo, nullptr);
  EXPECT_EQ(topo->num_nodes(), 4u);
  EXPECT_EQ(cfg.numa_weight_k, 16.0);

  apply_numa_point(params, NumaGridPoint{.nodes = 1});
  std::shared_ptr<Topology> uma;
  make_smq_config(8, params, uma);
  EXPECT_EQ(uma, nullptr);
}

}  // namespace
}  // namespace smq
