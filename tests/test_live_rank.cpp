// Live rank probe: the real scheduler implementations must exhibit the
// rank behaviour their models predict.
#include "rank/live_rank.h"

#include <gtest/gtest.h>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/reld.h"
#include "queues/sequential_scheduler.h"
#include "queues/spraylist.h"

namespace smq {
namespace {

constexpr std::size_t kElements = 20000;

TEST(LiveRank, ExactSchedulerHasRankZero) {
  SequentialScheduler sched;
  const LiveRankResult r = measure_live_rank(sched, kElements);
  EXPECT_EQ(r.pops, kElements);
  EXPECT_EQ(r.mean_rank, 0.0);
  EXPECT_EQ(r.max_rank, 0u);
}

TEST(LiveRank, ClassicMqRankNearQueueCount) {
  ClassicMultiQueue sched(4, {.queue_multiplier = 4, .seed = 3});
  const LiveRankResult r = measure_live_rank(sched, kElements);
  EXPECT_EQ(r.pops, kElements);
  // m = 16 queues: expected rank O(m); generous constant.
  EXPECT_LT(r.mean_rank, 16.0 * 8);
  EXPECT_GT(r.mean_rank, 0.5);  // but clearly not exact
}

TEST(LiveRank, SmqRankBoundedAndBetterThanReld) {
  StealingMultiQueue<> smq(8, {.steal_size = 1, .p_steal = 0.5, .seed = 4});
  const LiveRankResult smq_rank = measure_live_rank(smq, kElements);
  EXPECT_EQ(smq_rank.pops, kElements);

  ReldQueue reld(8, {.seed = 4});
  const LiveRankResult reld_rank = measure_live_rank(reld, kElements);
  EXPECT_EQ(reld_rank.pops, kElements);

  // RELD never steals by priority: its rank error must dominate the
  // SMQ's (the motivating observation of the paper).
  EXPECT_LT(smq_rank.mean_rank, reld_rank.mean_rank);
}

TEST(LiveRank, SmqRankDegradesWithLowerStealProbability) {
  StealingMultiQueue<> eager(8, {.steal_size = 1, .p_steal = 1.0, .seed = 5});
  const LiveRankResult eager_rank = measure_live_rank(eager, kElements);

  StealingMultiQueue<> lazy(8, {.steal_size = 1, .p_steal = 1.0 / 64, .seed = 5});
  const LiveRankResult lazy_rank = measure_live_rank(lazy, kElements);

  EXPECT_EQ(eager_rank.pops, kElements);
  EXPECT_EQ(lazy_rank.pops, kElements);
  EXPECT_GT(lazy_rank.mean_rank, eager_rank.mean_rank);
}

TEST(LiveRank, BatchingInflatesSmqRank) {
  StealingMultiQueue<> small(8, {.steal_size = 1, .p_steal = 0.25, .seed = 6});
  const LiveRankResult small_rank = measure_live_rank(small, kElements);

  StealingMultiQueue<> big(8, {.steal_size = 64, .p_steal = 0.25, .seed = 6});
  const LiveRankResult big_rank = measure_live_rank(big, kElements);

  EXPECT_GT(big_rank.mean_rank, small_rank.mean_rank);
}

TEST(LiveRank, SprayListRelaxedButBounded) {
  SprayList spray(8, {.seed = 7});
  const LiveRankResult r = measure_live_rank(spray, kElements);
  EXPECT_EQ(r.pops, kElements);
  EXPECT_LT(r.mean_rank, static_cast<double>(kElements) / 8);
}

}  // namespace
}  // namespace smq
