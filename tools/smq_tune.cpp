// smq_tune — the offline tuner behind `--sched auto`.
//
// Sweeps a declarative preset grid per (graph, algorithm, threads),
// takes best-of-reps measurements through the same suite_runner
// primitives as smq_run, and records the winner per (graph class,
// algorithm, threads) key in the tuning metrics table
// (data/tuning/metrics_table.json). Merges are atomic (tmp + rename)
// and resumable, so a time-budgeted run can be continued later.
//
//   smq_tune --dry-run                      # show the planned grid
//   smq_tune --reps 5                       # measure + merge the table
//   smq_tune --graphs "rand,vertices=50000,seed=7" --algos sssp
//   smq_tune --verify-only --skip-missing   # CI staleness check
//
// The default grid covers the three graph classes with the two small
// checked-in DIMACS samples plus a seeded synthetic; everything about
// the emitted table except the measured timings is deterministic.
//
// --verify-only re-measures each table row on the graph spec it was
// recorded from and fails when the row's speedup_vs_seq (the
// machine-transferable metric, same as tools/perf_check.py) regressed
// past the budget — the CI staleness gate for the checked-in table.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"
#include "registry/suite_runner.h"
#include "support/cli.h"
#include "tuning/fingerprint.h"
#include "tuning/metrics_table.h"

namespace {

using namespace smq;
using tuning::MetricsRow;
using tuning::MetricsTable;

constexpr const char* kDefaultGraphs =
    "dimacs:data/tuning/road_sample.gr"
    ";dimacs:data/tuning/social_sample.gr"
    ";rand,vertices=6000,edges=48000";

constexpr const char* kDefaultAlgos = "sssp,bfs,astar";
constexpr const char* kDefaultThreads = "1,2,4";

// One representative preset per family axis the paper sweeps — wide
// enough that every class has a plausible winner, small enough that a
// full regeneration stays in CI budget. --presets overrides.
constexpr const char* kDefaultPresets =
    "smq,smq-p4,smq-p16,smq-sl-p4,mq-c4,mq-tl-p16,mq-opt-none,mq-opt-full,"
    "obim-d4,pmod-d4,reld-c4";

struct GraphSpec {
  std::string display;  // the spec text, recorded as row provenance
  std::string name;     // registry key (possibly "dimacs:PATH" inline)
  ParamMap params;
};

/// "name[,k=v...]" — the list form of --graphs, ';'-separated so graph
/// tunables can keep their ','-free k=v syntax.
GraphSpec parse_graph_spec(const std::string& text, std::uint64_t seed) {
  GraphSpec spec;
  spec.display = text;
  const std::vector<std::string> parts = split_list(text, ',');
  if (parts.empty()) throw std::invalid_argument("empty graph spec");
  spec.name = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("graph spec '" + text +
                                  "': expected key=value, got '" + parts[i] +
                                  "'");
    }
    spec.params.set(parts[i].substr(0, eq), parts[i].substr(eq + 1));
  }
  // Synthetic sources default their generator seed from --seed so a
  // regeneration is reproducible without every spec spelling one; the
  // recorded provenance keeps the resolved value.
  if (spec.name.find(':') == std::string::npos && !spec.params.has("seed")) {
    spec.params.set("seed", std::to_string(seed));
    spec.display += ",seed=" + std::to_string(seed);
  }
  return spec;
}

GraphInstance create_graph(const GraphSpec& spec, const std::string& cache_dir) {
  return cache_dir.empty()
             ? GraphRegistry::instance().create(spec.name, spec.params)
             : GraphRegistry::instance().create_cached(spec.name, spec.params,
                                                       cache_dir);
}

double tasks_per_sec(const AlgoResult& result) {
  return result.run.seconds > 0
             ? static_cast<double>(result.run.stats.pops) / result.run.seconds
             : 0;
}

std::vector<std::string> known_flags() {
  return {"help",       "h",          "graphs",     "algos",
          "threads",    "presets",    "reps",       "seed",
          "table",      "json",       "graph-cache", "time-budget",
          "resume",     "dry-run",    "verify-only", "skip-missing",
          "max-regression", "max-regression-mt"};
}

bool check_flags(const ArgParser& args) {
  std::vector<std::string> known = known_flags();
  std::sort(known.begin(), known.end());
  bool ok = true;
  for (const auto& [key, value] : args.options()) {
    if (!std::binary_search(known.begin(), known.end(), key)) {
      std::cerr << unknown_flag_message(key, known) << "\n";
      ok = false;
    }
  }
  return ok;
}

// ---- tuning ---------------------------------------------------------------

struct TuneOptions {
  std::vector<GraphSpec> graphs;
  std::vector<std::string> algos;
  std::vector<unsigned> threads;
  std::vector<std::string> presets;
  int reps = 3;
  std::string table_path;
  std::string json_path;
  std::string graph_cache;
  double time_budget_sec = 0;  // 0 = unlimited
  bool resume = false;
  bool dry_run = false;
};

int run_tune(const TuneOptions& opts) {
  const auto& schedulers = SchedulerRegistry::instance();
  const auto& algorithms = AlgorithmRegistry::instance();

  for (const std::string& preset : opts.presets) {
    if (schedulers.find(preset) == nullptr) {
      std::cerr << "smq_tune: unknown preset '" << preset << "'";
      const std::string near = nearest_name(preset, schedulers.names());
      if (!near.empty()) std::cerr << " (did you mean '" << near << "'?)";
      std::cerr << "\n";
      return 2;
    }
  }
  for (const std::string& algo : opts.algos) {
    if (algorithms.find(algo) == nullptr) {
      std::cerr << "smq_tune: unknown algorithm '" << algo << "'\n";
      return 2;
    }
  }

  // Merge over the existing file when present; a missing file starts a
  // fresh table (the embedded copy is a runtime fallback, not a merge
  // base — merging it in would resurrect rows the user deleted).
  MetricsTable table;
  std::string origin;
  try {
    table = MetricsTable::load_or_embedded(opts.table_path, &origin);
  } catch (const std::exception& e) {
    std::cerr << "smq_tune: " << e.what() << "\n";
    return 2;
  }
  if (origin == "embedded") table = MetricsTable{};
  std::cout << "table: " << opts.table_path << " ("
            << (origin == "embedded"
                    ? "new"
                    : std::to_string(table.rows.size()) + " existing rows")
            << ")\n";

  if (opts.dry_run) {
    std::cout << "planned grid (dry run):\n";
    for (const GraphSpec& spec : opts.graphs) {
      for (const std::string& algo : opts.algos) {
        for (const unsigned t : opts.threads) {
          std::cout << "  " << spec.display << " x " << algo << " x " << t
                    << "t  (" << opts.presets.size() << " presets, best of "
                    << opts.reps << ")\n";
        }
      }
    }
    std::cout << opts.graphs.size() * opts.algos.size() * opts.threads.size()
              << " cells; nothing measured, nothing written\n";
    return 0;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto budget_exceeded = [&] {
    if (opts.time_budget_sec <= 0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() > opts.time_budget_sec;
  };

  // One smq_run-format report per (graph, algorithm), emitted as a JSON
  // list at the end (perf_check.py accepts the list form directly).
  std::vector<std::string> json_reports;
  bool stopped = false;
  int measured_cells = 0, skipped_cells = 0;

  for (const GraphSpec& spec : opts.graphs) {
    if (stopped) break;
    GraphInstance graph;
    try {
      graph = create_graph(spec, opts.graph_cache);
    } catch (const std::exception& e) {
      std::cerr << "smq_tune: graph '" << spec.display << "': " << e.what()
                << "\n";
      return 2;
    }
    const tuning::WorkloadFingerprint fp = tuning::fingerprint_graph(*graph.graph);
    const std::string cls(tuning::to_string(fp.cls));
    std::cout << "\ngraph " << spec.display << ": " << graph.graph->num_vertices()
              << " vertices, " << graph.graph->num_edges() << " edges, class "
              << cls << " (avg degree " << TablePrinter::fmt(fp.avg_degree)
              << ", cv " << TablePrinter::fmt(fp.degree_cv) << ", max weight "
              << fp.max_weight << ")\n";

    for (const std::string& algo_name : opts.algos) {
      if (stopped) break;
      const AlgorithmEntry* algo = algorithms.find(algo_name);

      SweepReport report;
      report.algorithm = algo_name;
      report.graph = graph;
      report.params = spec.params;
      AlgoReference reference;
      bool have_reference = false;

      for (const unsigned threads : opts.threads) {
        if (opts.resume && table.find(cls, algo_name, threads) != nullptr) {
          std::cout << "  " << cls << '/' << algo_name << " @ " << threads
                    << "t: already in table (resume), skipping\n";
          ++skipped_cells;
          continue;
        }
        if (budget_exceeded()) {
          std::cout << "  time budget (" << opts.time_budget_sec
                    << "s) exhausted; stopping (rerun with --resume to "
                       "continue)\n";
          stopped = true;
          break;
        }
        if (!have_reference) {
          reference = measure_reference(*algo, graph, spec.params, opts.reps);
          report.reference = &reference;
          have_reference = true;
        }

        // Best preset for this cell: measure every candidate, prefer
        // valid results, rank by tasks/s. Best-of-reps inside
        // measure_sweep_row is the noise filter.
        struct Candidate {
          std::string preset;
          AlgoResult result;
          double tps = 0;
        };
        std::vector<Candidate> candidates;
        for (const std::string& preset : opts.presets) {
          const SchedulerEntry* entry = schedulers.find(preset);
          if (effective_threads(*entry, threads) != threads) continue;
          Candidate c;
          c.preset = preset;
          c.result = measure_sweep_row(*entry, preset, *algo, algo_name, graph,
                                       threads, spec.params,
                                       DispatchMode::kVirtual, &reference,
                                       opts.reps);
          c.tps = tasks_per_sec(c.result);
          SweepRow row;
          row.label = preset;
          row.scheduler = preset;
          row.requested_threads = threads;
          row.threads = threads;
          row.reps = opts.reps;
          row.result = c.result;
          report.rows.push_back(std::move(row));
          candidates.push_back(std::move(c));
        }
        if (candidates.empty()) {
          std::cerr << "  " << cls << '/' << algo_name << " @ " << threads
                    << "t: no preset supports this thread count, skipping\n";
          continue;
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const Candidate& a, const Candidate& b) {
                           if (a.result.valid != b.result.valid) return a.result.valid;
                           return a.tps > b.tps;
                         });
        const Candidate& winner = candidates.front();
        if (winner.result.validated && !winner.result.valid) {
          std::cerr << "  " << cls << '/' << algo_name << " @ " << threads
                    << "t: every candidate failed validation; cell not "
                       "recorded\n";
          continue;
        }
        MetricsRow row;
        row.graph_class = cls;
        row.algorithm = algo_name;
        row.threads = threads;
        row.preset = winner.preset;
        row.tasks_per_sec = winner.tps;
        row.speedup_vs_seq = winner.result.run.seconds > 0
                                 ? reference.seconds / winner.result.run.seconds
                                 : 0;
        // Winner margin over the runner-up; 0 when uncontested.
        row.confidence =
            candidates.size() > 1 && winner.tps > 0
                ? std::max(0.0, 1.0 - candidates[1].tps / winner.tps)
                : 0.0;
        row.graph = spec.display;
        row.vertices = fp.vertices;
        row.edges = fp.edges;
        row.avg_degree = fp.avg_degree;
        row.max_weight = fp.max_weight;
        row.reps = opts.reps;
        if (const MetricsRow* existing = table.find(cls, algo_name, threads);
            existing != nullptr && existing->graph != row.graph) {
          std::cout << "  note: overwriting " << cls << '/' << algo_name
                    << " @ " << threads << "t previously measured on "
                    << existing->graph << "\n";
        }
        table.upsert(std::move(row));
        ++measured_cells;
        std::cout << "  " << cls << '/' << algo_name << " @ " << threads
                  << "t -> " << winner.preset << " ("
                  << TablePrinter::fmt(winner.tps / 1e6, 3) << " Mtasks/s, "
                  << candidates.size() << " candidates)\n";
      }

      if (!report.rows.empty() && !opts.json_path.empty()) {
        std::ostringstream os;
        write_sweep_json(os, report);
        json_reports.push_back(os.str());
      }
    }
  }

  table.save(opts.table_path);
  std::cout << "\nwrote " << opts.table_path << " (" << table.rows.size()
            << " rows; " << measured_cells << " measured";
  if (skipped_cells > 0) std::cout << ", " << skipped_cells << " resumed";
  std::cout << ")\n";

  if (!opts.json_path.empty()) {
    std::ostringstream joined;
    joined << "[\n";
    for (std::size_t i = 0; i < json_reports.size(); ++i) {
      if (i > 0) joined << ",\n";
      // Strip the trailing newline write_sweep_json appends.
      std::string text = json_reports[i];
      while (!text.empty() && text.back() == '\n') text.pop_back();
      joined << text;
    }
    joined << "\n]\n";
    if (opts.json_path == "-") {
      std::cout << joined.str();
    } else {
      std::ofstream file(opts.json_path);
      if (!file) {
        std::cerr << "smq_tune: cannot write " << opts.json_path << "\n";
        return 2;
      }
      file << joined.str();
      std::cout << "wrote " << opts.json_path << " (" << json_reports.size()
                << " reports)\n";
    }
  }
  return 0;
}

// ---- verification ---------------------------------------------------------

struct VerifyOptions {
  std::string table_path;
  int reps = 3;
  bool skip_missing = false;
  double max_regression = 0.15;
  std::optional<double> max_regression_mt;
  std::string graph_cache;
};

int run_verify(const VerifyOptions& opts) {
  MetricsTable table;
  try {
    table = MetricsTable::load(opts.table_path);
  } catch (const std::exception& e) {
    std::cerr << "smq_tune: " << e.what() << "\n";
    return 2;
  }
  const double mt_budget = opts.max_regression_mt.value_or(2 * opts.max_regression);
  std::cout << "verifying " << opts.table_path << " (" << table.rows.size()
            << " rows, best of " << opts.reps << ", budget "
            << 100 * opts.max_regression << "% single-thread, " << 100 * mt_budget
            << "% multi-thread)\n\n";

  const auto& schedulers = SchedulerRegistry::instance();
  const auto& algorithms = AlgorithmRegistry::instance();

  std::vector<std::string> failures;
  int compared = 0, skipped = 0;

  // Graphs and references are shared across rows: a (spec) maps to one
  // instance, a (spec, algorithm) to one sequential oracle.
  std::map<std::string, std::optional<GraphInstance>> graphs;
  std::map<std::string, AlgoReference> references;

  TablePrinter out({"row", "preset", "recorded", "current", "ratio", "status"});
  for (const MetricsRow& row : table.rows) {
    const std::string name = row.graph_class + "/" + row.algorithm + "/" +
                             std::to_string(row.threads) + "t";
    // Stale-key conformance is part of the gate: a table naming a
    // preset or algorithm this binary lost must fail loudly.
    const SchedulerEntry* entry = schedulers.find(row.preset);
    if (entry == nullptr) {
      failures.push_back(name + ": preset '" + row.preset + "' is not registered");
      out.add_row({name, row.preset, "-", "-", "-", "UNREGISTERED"});
      continue;
    }
    const AlgorithmEntry* algo = algorithms.find(row.algorithm);
    if (algo == nullptr) {
      failures.push_back(name + ": algorithm '" + row.algorithm +
                         "' is not registered");
      out.add_row({name, row.preset, "-", "-", "-", "UNREGISTERED"});
      continue;
    }

    // Recreate the measurement graph from the recorded spec.
    auto it = graphs.find(row.graph);
    if (it == graphs.end()) {
      std::optional<GraphInstance> instance;
      try {
        instance = create_graph(parse_graph_spec(row.graph, 0), opts.graph_cache);
      } catch (const std::exception& e) {
        if (!opts.skip_missing) {
          failures.push_back(name + ": cannot recreate graph '" + row.graph +
                             "': " + e.what());
        }
      }
      it = graphs.emplace(row.graph, std::move(instance)).first;
    }
    if (!it->second.has_value()) {
      out.add_row({name, row.preset, "-", "-", "-",
                   opts.skip_missing ? "SKIP (graph missing)" : "NO GRAPH"});
      if (opts.skip_missing) ++skipped;
      continue;
    }
    const GraphInstance& graph = *it->second;
    const GraphSpec spec = parse_graph_spec(row.graph, 0);

    const std::string ref_key = row.graph + "|" + row.algorithm;
    if (references.find(ref_key) == references.end()) {
      references[ref_key] =
          measure_reference(*algo, graph, spec.params, opts.reps);
    }
    const AlgoReference& reference = references[ref_key];

    const AlgoResult result = measure_sweep_row(
        *entry, row.preset, *algo, row.algorithm, graph, row.threads,
        spec.params, DispatchMode::kVirtual, &reference, opts.reps);
    if (result.validated && !result.valid) {
      failures.push_back(name + ": preset '" + row.preset +
                         "' produced an INVALID result");
      out.add_row({name, row.preset, "-", "-", "-", "INVALID"});
      continue;
    }
    const double current = result.run.seconds > 0
                               ? reference.seconds / result.run.seconds
                               : 0;
    if (row.speedup_vs_seq <= 0 || current <= 0) {
      failures.push_back(name + ": no comparable speedup metric");
      out.add_row({name, row.preset, "-", "-", "-", "NO METRIC"});
      continue;
    }
    ++compared;
    const double ratio = current / row.speedup_vs_seq;
    const double budget = row.threads > 1 ? mt_budget : opts.max_regression;
    const bool regressed = ratio < 1 - budget;
    out.add_row({name, row.preset, TablePrinter::fmt(row.speedup_vs_seq),
                 TablePrinter::fmt(current), TablePrinter::fmt(ratio),
                 regressed ? "REGRESSION" : "ok"});
    if (regressed) {
      failures.push_back(name + ": speedup_vs_seq fell " +
                         TablePrinter::fmt(100 * (1 - ratio), 1) + "% (" +
                         TablePrinter::fmt(row.speedup_vs_seq) + " -> " +
                         TablePrinter::fmt(current) + "), budget " +
                         TablePrinter::fmt(100 * budget, 0) + "%");
    }
  }
  out.print(std::cout);
  std::cout << "\ncompared " << compared << "/" << table.rows.size() << " rows";
  if (skipped > 0) std::cout << ", skipped " << skipped;
  std::cout << "\n";
  if (!failures.empty()) {
    std::cout << "\nsmq_tune --verify-only: FAIL\n";
    for (const std::string& f : failures) std::cout << "  - " << f << "\n";
    return 1;
  }
  std::cout << "smq_tune --verify-only: OK\n";
  return 0;
}

int run(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.has_flag("help") || args.has_flag("h")) {
    std::cout
        << "usage: smq_tune [--graphs SPEC[;SPEC...]] [--algos A,B] "
           "[--threads N,N...]\n"
           "                [--presets P,P...] [--reps N] [--seed S] "
           "[--table PATH]\n"
           "                [--json PATH|-] [--graph-cache DIR] "
           "[--time-budget SEC]\n"
           "                [--resume] [--dry-run]\n"
           "       smq_tune --verify-only [--table PATH] [--reps N] "
           "[--skip-missing]\n"
           "                [--max-regression R] [--max-regression-mt R]\n\n"
           "Measures the preset grid per (graph, algorithm, threads) cell "
           "(best of\n--reps, validated against the sequential oracle) and "
           "records the winning\npreset per (graph class, algorithm, threads) "
           "key in the tuning metrics\ntable consumed by `smq_run --sched "
           "auto`. Merging is atomic; --resume\nskips keys already present "
           "(continuing a --time-budget run); --dry-run\nprints the grid and "
           "exits. Graph specs are ';'-separated "
           "\"name[,key=value...]\"\nregistry specs.\n\n"
           "--verify-only re-measures every table row on its recorded graph "
           "spec and\nfails when speedup_vs_seq regressed past the budget "
           "(the CI staleness\ngate); --skip-missing turns absent graphs "
           "into SKIP rows.\n";
    return 0;
  }
  if (!check_flags(args)) return 2;

  const std::string table_path =
      args.get("table", MetricsTable::default_path());

  if (args.has_flag("verify-only")) {
    VerifyOptions opts;
    opts.table_path = table_path;
    opts.reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));
    opts.skip_missing = args.has_flag("skip-missing");
    opts.max_regression = args.get_double("max-regression", 0.15);
    if (args.has_flag("max-regression-mt")) {
      opts.max_regression_mt = args.get_double("max-regression-mt", 0.3);
    }
    opts.graph_cache = args.get("graph-cache");
    return run_verify(opts);
  }

  TuneOptions opts;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  for (const std::string& text :
       split_list(args.get("graphs", kDefaultGraphs), ';')) {
    try {
      opts.graphs.push_back(parse_graph_spec(text, seed));
    } catch (const std::exception& e) {
      std::cerr << "smq_tune: " << e.what() << "\n";
      return 2;
    }
  }
  opts.algos = split_list(args.get("algos", kDefaultAlgos), ',');
  try {
    opts.threads = parse_thread_list(args.get("threads", kDefaultThreads));
  } catch (const std::exception& e) {
    std::cerr << "smq_tune: " << e.what() << "\n";
    return 2;
  }
  opts.presets = split_list(args.get("presets", kDefaultPresets), ',');
  opts.reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));
  opts.table_path = table_path;
  opts.json_path = args.get("json");
  opts.graph_cache = args.get("graph-cache");
  opts.time_budget_sec = args.get_double("time-budget", 0);
  opts.resume = args.has_flag("resume");
  opts.dry_run = args.has_flag("dry-run");
  return run_tune(opts);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "smq_tune: " << e.what() << "\n";
    return 2;
  }
}
