#!/usr/bin/env python3
"""Fetch 9th DIMACS Challenge road networks into the graph cache.

Downloads the .gr (arcs) and .co (coordinates) files for the paper's
Table 1 road inputs, checksum-pinned and integrity-checked, so the
benches can run on the real USA/CTR/WEST graphs instead of synthetic
stand-ins:

    python3 tools/fetch_dimacs.py --graphs west --graph-cache data/dimacs/cache
    ./build/smq_run --sched smq --algo sssp --graph west --graph-cache /tmp/bin

Integrity model (SNIPPETS.md Snippet 1 discipline — pinned, reproducible
external data):

  1. The expected |V|/|E| of every graph are pinned in MANIFEST below
     (mirroring src/graph/dimacs_catalog.cpp — tests/test_dimacs.cpp
     keeps the two in sync). After decompression, the .gr header is
     checked against them; a truncated or corrupt download fails here.
  2. Archive sha256s are pinned on first use: the first successful fetch
     records them in <cache>/CHECKSUMS.json, and every later fetch of
     the same archive must match. Commit that file (or copy it into CI)
     to pin across machines.

Offline behavior: network failures exit 0 with a "SKIP (offline)"
message so CI and bench scripts can call this unconditionally; pass
--strict to turn them into errors. Checksum/size mismatches are always
errors — a bad file is worse than a missing one.

Exit codes: 0 ok or skipped-offline, 1 integrity failure, 2 usage error.
Stdlib only (urllib + gzip); no pip dependencies.
"""

import argparse
import gzip
import hashlib
import json
import os
import shutil
import sys
import urllib.error
import urllib.request

DEFAULT_BASE_URL = "http://www.diag.uniroma1.it/challenge9/data/USA-road-d"
DEFAULT_CACHE = "data/dimacs/cache"

# Pinned sizes (official 9th DIMACS Challenge values for the distance
# graphs) — must mirror src/graph/dimacs_catalog.cpp.
MANIFEST = {
    "usa": {"stem": "USA-road-d.USA", "vertices": 23947347, "arcs": 58333344},
    "ctr": {"stem": "USA-road-d.CTR", "vertices": 14081816, "arcs": 34292496},
    "west": {"stem": "USA-road-d.W", "vertices": 6262104, "arcs": 15248146},
    "east": {"stem": "USA-road-d.E", "vertices": 3598623, "arcs": 8778114},
    "ny": {"stem": "USA-road-d.NY", "vertices": 264346, "arcs": 733846},
}


def checksums_path(cache):
    return os.path.join(cache, "CHECKSUMS.json")


def load_checksums(cache):
    try:
        with open(checksums_path(cache)) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return {}


def store_checksum(cache, archive, digest):
    pins = load_checksums(cache)
    pins[archive] = digest
    with open(checksums_path(cache), "w") as f:
        json.dump(pins, f, indent=2, sort_keys=True)
        f.write("\n")


def sha256_of(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def gr_header_counts(path):
    """(vertices, arcs) from the .gr problem line; (None, None) if absent."""
    with open(path, "rb") as f:
        for raw in f:
            line = raw.decode("ascii", "replace").rstrip("\r\n")
            if line.startswith("p sp "):
                parts = line.split()
                if len(parts) == 4:
                    return int(parts[2]), int(parts[3])
                return None, None
            if line and not line.startswith("c"):
                break
    return None, None


def verify_gr(path, spec, name):
    v, a = gr_header_counts(path)
    if (v, a) != (spec["vertices"], spec["arcs"]):
        print(f"fetch_dimacs: FAIL {name}: {path} header declares "
              f"{v}/{a} vertices/arcs, manifest pins "
              f"{spec['vertices']}/{spec['arcs']}")
        return False
    return True


def download(url, dest, timeout):
    """Fetch url to dest atomically. Returns 'ok' | 'offline'."""
    tmp = dest + ".part"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp, \
                open(tmp, "wb") as out:
            shutil.copyfileobj(resp, out, 1 << 20)
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError) as e:
        if os.path.exists(tmp):
            os.remove(tmp)
        print(f"fetch_dimacs: SKIP (offline): {url}: {e}")
        return "offline"
    os.replace(tmp, dest)
    return "ok"


def fetch_one(name, spec, args):
    """Fetch + verify one graph. Returns 'ok' | 'offline' | 'fail'."""
    cache = args.graph_cache
    pins = load_checksums(cache)
    result = "ok"
    for ext in ("gr", "co"):
        plain = os.path.join(cache, f"{spec['stem']}.{ext}")
        if os.path.exists(plain) and not args.force:
            if ext == "gr" and not verify_gr(plain, spec, name):
                return "fail"
            print(f"fetch_dimacs: {name}: {plain} present, skipping")
            continue

        archive_name = f"{spec['stem']}.{ext}.gz"
        archive = os.path.join(cache, archive_name)
        if not os.path.exists(archive) or args.force:
            url = f"{args.base_url}/{archive_name}"
            print(f"fetch_dimacs: {name}: downloading {url}")
            status = download(url, archive, args.timeout)
            if status == "offline":
                return "offline"

        digest = sha256_of(archive)
        pinned = pins.get(archive_name)
        if pinned is None:
            # Trust-on-first-use: record the pin so every later fetch
            # (and every other machine given this file) must match.
            store_checksum(cache, archive_name, digest)
            pins = load_checksums(cache)
            print(f"fetch_dimacs: {name}: pinned sha256 {digest[:16]}... "
                  f"for {archive_name}")
        elif pinned != digest:
            print(f"fetch_dimacs: FAIL {name}: sha256 mismatch for "
                  f"{archive_name}: pinned {pinned[:16]}..., "
                  f"got {digest[:16]}...")
            return "fail"

        print(f"fetch_dimacs: {name}: decompressing {archive}")
        tmp = plain + ".part"
        try:
            with gzip.open(archive, "rb") as src, open(tmp, "wb") as out:
                shutil.copyfileobj(src, out, 1 << 20)
        except (OSError, EOFError) as e:
            if os.path.exists(tmp):
                os.remove(tmp)
            print(f"fetch_dimacs: FAIL {name}: cannot decompress "
                  f"{archive}: {e}")
            return "fail"
        os.replace(tmp, plain)

        if ext == "gr" and not verify_gr(plain, spec, name):
            return "fail"
    return result


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--graphs", default="west",
                    help="comma list of " + ",".join(MANIFEST) + " or 'all' "
                         "(default: west)")
    ap.add_argument("--graph-cache", default=DEFAULT_CACHE,
                    help=f"download/decompress directory (default: "
                         f"{DEFAULT_CACHE})")
    ap.add_argument("--base-url", default=DEFAULT_BASE_URL,
                    help="mirror to fetch from")
    ap.add_argument("--timeout", type=float, default=60,
                    help="per-request timeout in seconds")
    ap.add_argument("--strict", action="store_true",
                    help="network failures exit 1 instead of skipping")
    ap.add_argument("--force", action="store_true",
                    help="re-download and re-verify even if files exist")
    ap.add_argument("--verify-only", action="store_true",
                    help="only verify already-present files; no network")
    ap.add_argument("--list", action="store_true",
                    help="print the manifest and exit")
    args = ap.parse_args()

    if args.list:
        for name, spec in MANIFEST.items():
            print(f"{name:5s} {spec['stem']:18s} |V|={spec['vertices']:>10,} "
                  f"|E|={spec['arcs']:>10,}")
        return 0

    names = list(MANIFEST) if args.graphs == "all" else \
        [g for g in args.graphs.split(",") if g]
    unknown = [g for g in names if g not in MANIFEST]
    if unknown:
        print(f"fetch_dimacs: unknown graph(s) {','.join(unknown)}; "
              f"known: {','.join(MANIFEST)}", file=sys.stderr)
        return 2

    os.makedirs(args.graph_cache, exist_ok=True)

    if args.verify_only:
        ok = True
        pins = load_checksums(args.graph_cache)
        for name in names:
            spec = MANIFEST[name]
            plain = os.path.join(args.graph_cache, f"{spec['stem']}.gr")
            if not os.path.exists(plain):
                print(f"fetch_dimacs: {name}: {plain} absent")
                continue
            ok = verify_gr(plain, spec, name) and ok
            # Re-hash any archives still on disk against their pins.
            for ext in ("gr", "co"):
                archive_name = f"{spec['stem']}.{ext}.gz"
                archive = os.path.join(args.graph_cache, archive_name)
                pinned = pins.get(archive_name)
                if not os.path.exists(archive) or pinned is None:
                    continue
                digest = sha256_of(archive)
                if digest != pinned:
                    print(f"fetch_dimacs: FAIL {name}: sha256 mismatch for "
                          f"{archive_name}: pinned {pinned[:16]}..., "
                          f"got {digest[:16]}...")
                    ok = False
        return 0 if ok else 1

    offline = failed = fetched = 0
    for name in names:
        status = fetch_one(name, MANIFEST[name], args)
        if status == "offline":
            offline += 1
        elif status == "fail":
            failed += 1
        else:
            fetched += 1

    if failed:
        print(f"fetch_dimacs: {failed} graph(s) FAILED integrity checks")
        return 1
    if offline:
        print(f"fetch_dimacs: SKIP: {offline} graph(s) unavailable offline, "
              f"{fetched} ok; benches fall back to synthetic graphs")
        return 1 if args.strict else 0
    print(f"fetch_dimacs: {fetched} graph(s) ready under {args.graph_cache}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
