#!/usr/bin/env python3
"""CI perf gate: compare an smq_run --json sweep against a baseline.

Usage:
    perf_check.py --baseline bench/baselines/BENCH_baseline.json \
                  --current results.json [--max-regression 0.15]
    perf_check.py --baseline ... --current ... --write-baseline

Rows are matched on (scheduler, threads, dispatch). The compared metric
is `speedup_vs_seq` (parallel throughput normalized by the sequential
oracle measured *in the same run*), which cancels out absolute machine
speed so a baseline recorded on one machine gates runs on another. Rows
missing the metric fall back to tasks/second, which is only meaningful
when baseline and current ran on comparable hardware.

Exit codes: 0 ok, 1 regression (or invalid result), 2 usage error.
"""

import argparse
import json
import shutil
import sys


def row_key(row):
    return (row["scheduler"], row["threads"], row.get("dispatch", "virtual"))


def metric_of(row):
    """(name, value) of the throughput metric for one result row."""
    speedup = row.get("speedup_vs_seq")
    if speedup is not None and speedup > 0:
        return "speedup_vs_seq", speedup
    seconds = row.get("seconds", 0)
    tasks = row.get("tasks", 0)
    if seconds and seconds > 0 and tasks:
        return "tasks_per_sec", tasks / seconds
    return None, None


def load_rows(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_check: cannot read {path}: {e}")
    rows = report.get("results")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"perf_check: {path} has no results[]")
    return report, {row_key(r): r for r in rows}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="fail when current < baseline * (1 - this)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="copy current over baseline instead of gating")
    args = ap.parse_args()

    if args.write_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"perf_check: wrote {args.baseline} from {args.current}")
        return 0

    _, baseline = load_rows(args.baseline)
    current_report, current = load_rows(args.current)

    failures = []
    compared = 0
    width = max(len("/".join(map(str, k))) for k in baseline)
    print(f"{'configuration':<{width}}  {'metric':>15}  {'baseline':>10} "
          f"{'current':>10} {'ratio':>7}")
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        name = "/".join(map(str, key))
        if cur_row is None:
            failures.append(f"{name}: missing from current run")
            continue
        if cur_row.get("valid") is False:
            failures.append(f"{name}: produced an INVALID result")
            continue
        metric, base_value = metric_of(base_row)
        cur_metric, cur_value = metric_of(cur_row)
        if base_value is None or cur_value is None or metric != cur_metric:
            failures.append(f"{name}: no comparable metric "
                            f"({metric} vs {cur_metric})")
            continue
        compared += 1
        ratio = cur_value / base_value
        flag = "" if ratio >= 1 - args.max_regression else "  << REGRESSION"
        print(f"{name:<{width}}  {metric:>15}  {base_value:>10.3f} "
              f"{cur_value:>10.3f} {ratio:>7.2f}{flag}")
        if flag:
            failures.append(
                f"{name}: {metric} fell {100 * (1 - ratio):.1f}% "
                f"({base_value:.3f} -> {cur_value:.3f}), "
                f"budget {100 * args.max_regression:.0f}%")

    print(f"\ncompared {compared}/{len(baseline)} baseline configurations "
          f"(regression budget {100 * args.max_regression:.0f}%)")
    if failures:
        print("\nperf_check: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("perf_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
