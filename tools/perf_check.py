#!/usr/bin/env python3
"""CI perf gate: compare smq_run --json sweeps against a baseline.

Usage:
    perf_check.py --baseline bench/baselines/BENCH_baseline.json \
                  --current results.json [--current more.json ...] \
                  [--max-regression 0.15]
    perf_check.py --baseline ... --current ... --write-baseline

A baseline file is either a single smq_run report (object) or a list of
reports — one per pinned sweep (e.g. sssp and bfs). Every --current file
contributes one report (or a list); rows are matched on the sweep
identity (algorithm, graph, numa grid — taken from the row's report)
plus (scheduler, threads, dispatch[, numa point]), so several sweeps of
the same algorithm can be gated side by side. The compared metric is
`speedup_vs_seq` (parallel throughput normalized by the sequential
oracle measured *in the same run*), which cancels out absolute machine
speed so a baseline recorded on one machine gates runs on another. Rows
missing the metric fall back to tasks/second, which is only meaningful
when baseline and current ran on comparable hardware.

--write-baseline merges the current reports into a single list-form
baseline file.

Exit codes: 0 ok, 1 regression (or invalid result), 2 usage error.
"""

import argparse
import json
import os
import sys


def sweep_id(report):
    """What distinguishes one pinned sweep from another: the algorithm,
    the resolved graph, the NUMA grid (if any), and the figure suite (if
    any) — suites share rows like the MQ baseline, which must not
    collide when two suite reports are gated side by side."""
    return (
        report.get("algorithm", "?"),
        report.get("graph", {}).get("name", "?"),
        report.get("numa_grid", ""),
        report.get("suite", ""),
    )


def row_key(report, row):
    return sweep_id(report) + (
        row["scheduler"],
        row["threads"],
        row.get("dispatch", "virtual"),
        row.get("numa_nodes", 0),
        row.get("numa_k", 0),
    )


def metric_of(row):
    """(name, value) of the throughput metric for one result row."""
    speedup = row.get("speedup_vs_seq")
    if speedup is not None and speedup > 0:
        return "speedup_vs_seq", speedup
    seconds = row.get("seconds", 0)
    tasks = row.get("tasks", 0)
    if seconds and seconds > 0 and tasks:
        return "tasks_per_sec", tasks / seconds
    return None, None


def load_reports(path):
    """The list of smq_run reports in `path` (object or list form)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_check: cannot read {path}: {e}")
    reports = data if isinstance(data, list) else [data]
    for report in reports:
        if not isinstance(report.get("results"), list) or not report["results"]:
            sys.exit(f"perf_check: {path} has a report with no results[]")
    return reports


def rows_of(reports, origin):
    rows = {}
    for report in reports:
        for row in report["results"]:
            key = row_key(report, row)
            if key in rows:
                sys.exit(f"perf_check: duplicate row {key} in {origin}")
            rows[key] = row
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True, action="append",
                    help="current report file; repeatable, one per sweep")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="fail when current < baseline * (1 - this)")
    ap.add_argument("--max-regression-mt", type=float, default=None,
                    help="regression budget for multi-thread rows "
                         "(threads > 1), which carry scheduling noise a "
                         "single-thread run does not; defaults to twice "
                         "--max-regression")
    ap.add_argument("--skip-missing", action="store_true",
                    help="baseline rows absent from the current run are "
                         "reported as SKIP instead of failing; for gates "
                         "whose inputs are optional (e.g. large DIMACS "
                         "graphs only present after a fetch)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="merge current reports over baseline instead of "
                         "gating")
    args = ap.parse_args()

    current_reports = []
    for path in args.current:
        current_reports.extend(load_reports(path))

    if args.write_baseline:
        # Merge over the existing baseline: a current report replaces
        # the baseline report for the same sweep (algorithm + graph +
        # grid), every other sweep is retained — refreshing one sweep
        # must not drop the gate on the others.
        refreshed = {sweep_id(r) for r in current_reports}
        merged = []
        if os.path.exists(args.baseline):
            merged = [r for r in load_reports(args.baseline)
                      if sweep_id(r) not in refreshed]
        merged.extend(current_reports)
        with open(args.baseline, "w") as f:
            json.dump(merged, f, indent=2)
            f.write("\n")
        print(f"perf_check: wrote {args.baseline} "
              f"({len(merged)} reports; refreshed "
              f"{', '.join('/'.join(s) for s in sorted(refreshed))}) from "
              f"{', '.join(args.current)}")
        return 0

    baseline = rows_of(load_reports(args.baseline), args.baseline)
    current = rows_of(current_reports, ", ".join(args.current))

    mt_budget = (args.max_regression_mt if args.max_regression_mt is not None
                 else 2 * args.max_regression)

    failures = []
    skipped = 0
    compared = 0
    width = max(len("/".join(map(str, k))) for k in baseline)
    print(f"{'configuration':<{width}}  {'metric':>15}  {'baseline':>10} "
          f"{'current':>10} {'ratio':>7}")
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        name = "/".join(map(str, key))
        if cur_row is None:
            if args.skip_missing:
                print(f"{name:<{width}}  SKIP (not in current run)")
                skipped += 1
            else:
                failures.append(f"{name}: missing from current run")
            continue
        if cur_row.get("valid") is False:
            failures.append(f"{name}: produced an INVALID result")
            continue
        metric, base_value = metric_of(base_row)
        cur_metric, cur_value = metric_of(cur_row)
        if base_value is None or cur_value is None or metric != cur_metric:
            failures.append(f"{name}: no comparable metric "
                            f"({metric} vs {cur_metric})")
            continue
        compared += 1
        budget = (mt_budget if base_row.get("threads", 1) > 1
                  else args.max_regression)
        ratio = cur_value / base_value
        flag = "" if ratio >= 1 - budget else "  << REGRESSION"
        print(f"{name:<{width}}  {metric:>15}  {base_value:>10.3f} "
              f"{cur_value:>10.3f} {ratio:>7.2f}{flag}")
        if flag:
            failures.append(
                f"{name}: {metric} fell {100 * (1 - ratio):.1f}% "
                f"({base_value:.3f} -> {cur_value:.3f}), "
                f"budget {100 * budget:.0f}%")

    skip_note = f", skipped {skipped}" if skipped else ""
    print(f"\ncompared {compared}/{len(baseline)} baseline configurations"
          f"{skip_note} (regression budget {100 * args.max_regression:.0f}% "
          f"single-thread, {100 * mt_budget:.0f}% multi-thread)")
    if failures:
        print("\nperf_check: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("perf_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
