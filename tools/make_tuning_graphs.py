#!/usr/bin/env python3
"""Regenerate the checked-in tuning sample graphs (data/tuning/*.gr).

Two small-but-measurable DIMACS .gr files, one per non-uniform graph
class the tuning table distinguishes:

  road_sample.gr    64x64 4-neighbour grid with highway shortcuts —
                    bounded degree, tight degree distribution (class
                    "road").
  social_sample.gr  preferential-attachment graph stored with both arc
                    directions — power-law degree hubs (class "social").

Everything is driven by a fixed-seed LCG, so regeneration is
byte-identical: `python3 tools/make_tuning_graphs.py` rewrites the same
files. The third class ("uniform") needs no file — smq_tune's default
grid covers it with a seeded `rand` registry spec.
"""

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "data", "tuning")


class Lcg:
    """Deterministic 64-bit LCG (same constants as MMIX); no reliance on
    python's random module so the output never shifts between
    versions."""

    def __init__(self, seed):
        self.state = seed & 0xFFFFFFFFFFFFFFFF

    def next(self, bound):
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) \
            & 0xFFFFFFFFFFFFFFFF
        return (self.state >> 33) % bound


def write_gr(path, comment_lines, num_vertices, arcs):
    with open(path, "w") as f:
        f.write("c 9th DIMACS Implementation Challenge shortest-path format\n")
        for line in comment_lines:
            f.write(f"c {line}\n")
        f.write(f"p sp {num_vertices} {len(arcs)}\n")
        for u, v, w in arcs:
            f.write(f"a {u + 1} {v + 1} {w}\n")
    print(f"wrote {path}: {num_vertices} vertices, {len(arcs)} arcs")


def road_sample(side=64, shortcuts=200, seed=42):
    rng = Lcg(seed)
    n = side * side
    arcs = []

    def vid(x, y):
        return y * side + x

    # 4-neighbour lattice, both directions, weights 80..120 (the road
    # generator's scale, so A* heuristics stay admissible-ish).
    for y in range(side):
        for x in range(side):
            w_right = 80 + rng.next(41)
            w_down = 80 + rng.next(41)
            if x + 1 < side:
                arcs.append((vid(x, y), vid(x + 1, y), w_right))
                arcs.append((vid(x + 1, y), vid(x, y), w_right))
            if y + 1 < side:
                arcs.append((vid(x, y), vid(x, y + 1), w_down))
                arcs.append((vid(x, y + 1), vid(x, y), w_down))
    # Highway shortcuts between random vertices: longer but cheaper per
    # hop, the feature that makes road-class scheduling interesting.
    for _ in range(shortcuts):
        u = rng.next(n)
        v = rng.next(n)
        if u == v:
            continue
        w = 150 + rng.next(151)
        arcs.append((u, v, w))
        arcs.append((v, u, w))
    write_gr(
        os.path.join(OUT_DIR, "road_sample.gr"),
        [f"Tuning sample, class 'road': {side}x{side} grid + "
         f"{shortcuts} shortcuts (seed {seed}).",
         "Regenerate with tools/make_tuning_graphs.py (byte-deterministic)."],
        n, arcs)


def social_sample(n=3000, m=4, seed=1337):
    rng = Lcg(seed)
    # Preferential attachment via the repeated-endpoints trick: picking
    # a uniform element of the running arc-endpoint list is
    # degree-proportional. Stored with both arc directions so hubs show
    # up in the OUT-degree distribution the fingerprint scans.
    endpoints = []
    arcs = []
    for v in range(1, n):
        targets = set()
        for _ in range(min(m, v)):
            for _attempt in range(8):
                if endpoints and rng.next(100) < 80:
                    t = endpoints[rng.next(len(endpoints))]
                else:
                    t = rng.next(v)
                if t != v and t not in targets:
                    targets.add(t)
                    break
        for t in sorted(targets):
            w = 1 + rng.next(255)
            arcs.append((v, t, w))
            arcs.append((t, v, w))
            endpoints.append(v)
            endpoints.append(t)
    write_gr(
        os.path.join(OUT_DIR, "social_sample.gr"),
        [f"Tuning sample, class 'social': preferential attachment, "
         f"n={n}, m={m} (seed {seed}).",
         "Regenerate with tools/make_tuning_graphs.py (byte-deterministic)."],
        n, arcs)


def main():
    os.makedirs(OUT_DIR, exist_ok=True)
    road_sample()
    social_sample()


if __name__ == "__main__":
    main()
