// smq_run — the unified run driver over the registry subsystem.
//
// Composes scheduler x algorithm x graph x thread-count at runtime from
// the string-keyed registries, validates every result against the
// sequential oracle, and emits both a paper-style ASCII table and
// machine-readable JSON.
//
//   smq_run --list
//   smq_run --sched smq --algo sssp --graph rand --threads 8
//   smq_run --sched all --algo sssp --graph road --vertices 20000
//           --threads 1,4 --reps 3 --json results.json
//   smq_run --sched smq,mq-opt --dispatch static --graph-cache /tmp/graphs
//   smq_run --sched smq --algo sssp --numa-grid nodes=1,2,4:k=1,4,8,16
//
// Scheduler/algorithm/graph tunables (see --list) are passed as plain
// --key value options: --sched smq --steal-size 4 --p-steal 1/8 --numa k=8
//
// --numa-grid crosses a simulated-NUMA sweep (virtual node counts x
// remote-weight divisors K, Section 4 / Tables 16-27) with the
// scheduler x threads sweep: the Topology is rebuilt per grid point and
// every row reports the measured remote-access fraction next to the
// analytic expectation E.
//
// --dispatch selects how the executor crosses the scheduler boundary:
//   virtual  one AnyScheduler virtual call per push/pop (default)
//   batched  one virtual call per task batch (--batch-size, default 64)
//   static   directly instantiated concrete scheduler, no erasure
//            (hot keys only — see static_dispatch.h; others fall back
//            to virtual and say so)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/listing.h"
#include "registry/numa_grid.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"
#include "support/cli.h"
#include "support/json_writer.h"

namespace {

using namespace smq;

struct ResultRow {
  std::string scheduler;
  unsigned requested_threads = 0;
  unsigned threads = 0;  // effective (clamped) count
  DispatchMode dispatch = DispatchMode::kVirtual;  // actually used
  NumaGridPoint numa;       // this row's grid point (inactive w/o a grid)
  bool numa_grid = false;   // row came from a --numa-grid sweep
  AlgoResult result;
  int reps = 1;
};

void write_json(std::ostream& os, const std::string& algo_name,
                const GraphInstance& graph, const ParamMap& params,
                DispatchMode requested_dispatch,
                const std::string& numa_grid_spec, const AlgoReference* ref,
                const std::vector<ResultRow>& rows) {
  JsonWriter json(os);
  json.begin_object();
  json.member("tool", "smq_run");
  json.member("algorithm", algo_name);
  json.member("dispatch", std::string(to_string(requested_dispatch)));
  if (!numa_grid_spec.empty()) json.member("numa_grid", numa_grid_spec);

  json.key("graph").begin_object();
  json.member("name", graph.name);
  json.member("vertices", static_cast<std::uint64_t>(graph.graph->num_vertices()));
  json.member("edges", static_cast<std::uint64_t>(graph.graph->num_edges()));
  json.end_object();

  json.key("params").begin_object();
  for (const auto& [key, value] : params.entries()) json.member(key, value);
  json.end_object();

  if (ref != nullptr) {
    json.key("reference").begin_object();
    json.member("tasks", ref->reference_tasks);
    json.member("answer", ref->reference_answer);
    json.member("seconds", ref->seconds);
    json.end_object();
  }

  json.key("results").begin_array();
  for (const ResultRow& row : rows) {
    const ThreadStats& stats = row.result.run.stats;
    json.begin_object();
    json.member("scheduler", row.scheduler);
    json.member("threads", row.threads);
    if (row.threads != row.requested_threads) {
      json.member("requested_threads", row.requested_threads);
    }
    json.member("dispatch", std::string(to_string(row.dispatch)));
    if (row.numa_grid) {
      json.member("numa_nodes", row.numa.nodes);
      if (row.numa.k_set) json.member("numa_k", row.numa.k);
      json.member("internal_frac_expected",
                  expected_internal_fraction(row.numa, row.threads));
    }
    json.member("seconds", row.result.run.seconds);
    json.member("tasks", stats.pops);
    json.member("wasted", stats.wasted);
    json.member("pushes", stats.pushes);
    json.member("empty_pops", stats.empty_pops);
    json.member("steals", stats.steals);
    if (stats.sampled_accesses > 0) {
      json.member("sampled_accesses", stats.sampled_accesses);
      json.member("remote_accesses", stats.remote_accesses);
      json.member("remote_frac", stats.remote_frac());
    }
    if (ref != nullptr && ref->reference_tasks > 0) {
      json.member("work_increase",
                  row.result.run.work_increase(ref->reference_tasks));
    }
    if (ref != nullptr && ref->seconds > 0 && row.result.run.seconds > 0) {
      json.member("speedup_vs_seq", ref->seconds / row.result.run.seconds);
    }
    json.member("reps", row.reps);
    if (row.result.validated) {
      json.member("valid", row.result.valid);
    }
    json.member("answer", row.result.answer);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

int run(int argc, char** argv) {
  const ArgParser args(argc, argv);

  if (args.has_flag("help") || args.has_flag("h")) {
    std::cout
        << "usage: smq_run [--list] [--sched NAMES|all] [--algo NAME] "
           "[--graph NAME]\n"
           "               [--threads N[,N...]] [--reps N] [--json PATH|-] "
           "[--no-validate]\n"
           "               [--dispatch virtual|batched|static] "
           "[--batch-size N]\n"
           "               [--numa-grid nodes=N,..:k=K,..] "
           "[--graph-cache DIR]\n"
           "               [--<tunable> VALUE ...]\n\n"
           "Runs algorithm x scheduler x threads sweeps over a graph and "
           "prints a table\nplus optional JSON. `--list` shows every "
           "registered scheduler, algorithm and\ngraph source with its "
           "tunables. `--dispatch` picks the scheduler-boundary\nmode "
           "(virtual erasure, batched erasure, or concrete static "
           "instantiation);\n`--graph-cache DIR` caches generated graphs "
           "as binary CSR keyed by their\nparameters so repeated sweeps "
           "skip generation; `--numa-grid` crosses the sweep\nwith "
           "simulated-NUMA grid points (nodes x K), each row reporting "
           "its measured\nremote-access fraction.\n";
    return 0;
  }
  if (args.has_flag("list")) {
    print_registry_listing(std::cout);
    return 0;
  }

  ParamMap params = ParamMap::from_args(args);

  // ---- dispatch mode ---------------------------------------------------
  const std::string dispatch_name = args.get("dispatch", "virtual");
  const std::optional<DispatchMode> dispatch =
      parse_dispatch_mode(dispatch_name);
  if (!dispatch) {
    std::cerr << "unknown dispatch mode: " << dispatch_name
              << " (expected virtual, batched or static)\n";
    return 2;
  }
  // Batched dispatch amortizes the erasure boundary over --batch-size
  // tasks; default it so `--dispatch batched` alone does something.
  if (*dispatch == DispatchMode::kBatched && !params.has("batch-size")) {
    params.set("batch-size", "64");
  }
  // The executor picks its loop from batch-size alone, so normalize the
  // recorded mode to what will actually run: `--batch-size 64` without
  // `--dispatch` IS a batched run, and `--dispatch batched
  // --batch-size 1` is a per-task one. The perf gate keys baseline rows
  // on this label; it must not lie.
  DispatchMode mode = *dispatch;
  if (mode != DispatchMode::kStatic) {
    mode = params.get_int("batch-size", 1) > 1 ? DispatchMode::kBatched
                                               : DispatchMode::kVirtual;
    if (mode != *dispatch) {
      std::cerr << "note: --batch-size " << params.get("batch-size", "1")
                << " makes this a " << to_string(mode) << " run\n";
    }
  }

  // ---- resolve the three registry axes --------------------------------
  const std::string algo_name = args.get("algo", "sssp");
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
  if (algo == nullptr) {
    std::cerr << "unknown algorithm: " << algo_name
              << " (see smq_run --list)\n";
    return 2;
  }

  const std::string graph_name = args.get("graph", "rand");
  const std::string graph_cache = args.get("graph-cache");
  GraphInstance graph;
  try {
    graph = graph_cache.empty()
                ? GraphRegistry::instance().create(graph_name, params)
                : GraphRegistry::instance().create_cached(graph_name, params,
                                                          graph_cache);
  } catch (const std::exception& e) {
    std::cerr << e.what() << " (see smq_run --list)\n";
    return 2;
  }

  std::vector<std::string> sched_names = split_list(args.get("sched", "smq"), ',');
  if (sched_names.size() == 1 && sched_names[0] == "all") {
    sched_names = SchedulerRegistry::instance().names();
  }
  for (const std::string& name : sched_names) {
    if (SchedulerRegistry::instance().find(name) == nullptr) {
      std::cerr << "unknown scheduler: " << name << " (see smq_run --list)\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  for (const std::string& t : split_list(args.get("threads", "4"), ',')) {
    const long n = std::strtol(t.c_str(), nullptr, 10);
    if (n <= 0) {
      std::cerr << "bad thread count: " << t << "\n";
      return 2;
    }
    thread_counts.push_back(static_cast<unsigned>(n));
  }
  const int reps = static_cast<int>(args.get_int("reps", 1));
  const bool validate = !args.has_flag("no-validate");

  // ---- NUMA grid -------------------------------------------------------
  // Without --numa-grid the sweep has a single inactive point that
  // leaves the params (and any manual --numa) untouched.
  const std::string numa_grid_spec = args.get("numa-grid");
  std::vector<NumaGridPoint> numa_grid{NumaGridPoint{}};
  const bool grid_active = !numa_grid_spec.empty();
  if (grid_active) {
    try {
      numa_grid = parse_numa_grid(numa_grid_spec);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  std::cout << "graph: " << graph.name << " (" << graph.graph->num_vertices()
            << " vertices, " << graph.graph->num_edges() << " edges)\n"
            << "algorithm: " << algo_name << "\n"
            << "dispatch: " << to_string(mode);
  if (mode == DispatchMode::kBatched) {
    std::cout << " (batch-size " << params.get("batch-size") << ")";
  }
  std::cout << "\n";
  if (grid_active) {
    std::cout << "numa grid: " << numa_grid_spec << " (" << numa_grid.size()
              << " points)\n";
  }

  // ---- sequential oracle ----------------------------------------------
  AlgoReference reference;
  bool have_reference = false;
  if (validate) {
    reference = algo->make_reference(graph, params);
    // Best-of-reps, like the parallel rows: speedup_vs_seq feeds the CI
    // perf gate, so the normalizer must not be a single noisy sample.
    for (int rep = 1; rep < reps; ++rep) {
      const AlgoReference again = algo->make_reference(graph, params);
      if (again.seconds < reference.seconds) reference.seconds = again.seconds;
    }
    have_reference = true;
    std::cout << "reference: " << reference.reference_tasks << " tasks, "
              << TablePrinter::fmt(reference.seconds * 1e3)
              << " ms sequential\n";
  }
  std::cout << '\n';

  // ---- the sweep -------------------------------------------------------
  std::vector<ResultRow> rows;
  bool any_invalid = false;
  for (const std::string& name : sched_names) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    // Static dispatch covers the hot keys only; anything else keeps its
    // uniform virtual path (and the row says so).
    DispatchMode row_dispatch = mode;
    if (row_dispatch == DispatchMode::kStatic && !has_static_dispatch(name)) {
      std::cerr << "note: no static dispatch entry for '" << name
                << "'; running it virtual\n";
      row_dispatch = DispatchMode::kVirtual;
    }
    // Schedulers that do not take the `numa` tunable (their factories
    // ignore it) run once, not once per grid point — rows claiming a
    // topology that never applied would poison the trajectory.
    const bool supports_numa =
        std::any_of(entry->tunables.begin(), entry->tunables.end(),
                    [](const Tunable& t) { return t.name == "numa"; });
    if (grid_active && !supports_numa) {
      std::cerr << "note: '" << name << "' takes no numa tunable; running "
                << "it once without the grid\n";
    }
    bool ran_without_grid = false;
    for (const NumaGridPoint& point : numa_grid) {
      const bool apply_grid = grid_active && supports_numa;
      if (grid_active && !supports_numa) {
        if (ran_without_grid) break;
        ran_without_grid = true;
      }
      // Each grid point rewrites the `numa` tunable, so the scheduler
      // factory rebuilds the simulated Topology for it.
      ParamMap run_params = params;
      if (apply_grid) apply_numa_point(run_params, point);
      for (const unsigned requested : thread_counts) {
        const unsigned threads = effective_threads(*entry, requested);
        ResultRow row;
        row.scheduler = name;
        row.requested_threads = requested;
        row.threads = threads;
        row.dispatch = row_dispatch;
        row.numa = apply_grid ? point : NumaGridPoint{};
        // The topology clamps nodes to the thread count (no empty
        // nodes); report the configuration that actually ran, so the
        // row's analytic E and measured remote_frac stay consistent.
        if (row.numa.nodes > threads) row.numa.nodes = threads;
        row.numa_grid = apply_grid;
        row.reps = std::max(1, reps);
        for (int rep = 0; rep < row.reps; ++rep) {
          AlgoResult result;
          std::optional<AlgoResult> static_result;
          if (row_dispatch == DispatchMode::kStatic) {
            static_result =
                run_static_dispatch(name, algo_name, graph, threads,
                                    run_params,
                                    have_reference ? &reference : nullptr);
          }
          if (static_result) {
            result = *static_result;
          } else {
            AnyScheduler sched = entry->make(threads, run_params);
            result = algo->run(graph, sched, threads, run_params,
                               have_reference ? &reference : nullptr);
          }
          const bool better = rep == 0 ||
                              (result.valid && !row.result.valid) ||
                              (result.valid == row.result.valid &&
                               result.run.seconds < row.result.run.seconds);
          if (better) row.result = result;
        }
        if (row.result.validated && !row.result.valid) any_invalid = true;
        rows.push_back(std::move(row));
      }
    }
  }

  // ---- ASCII table -----------------------------------------------------
  TablePrinter table({"scheduler", "threads", "dispatch", "numa", "time ms",
                      "tasks", "wasted", "work inc", "speedup", "remote",
                      "valid"});
  for (const ResultRow& row : rows) {
    const ThreadStats& stats = row.result.run.stats;
    const double work_inc =
        have_reference && reference.reference_tasks > 0
            ? row.result.run.work_increase(reference.reference_tasks)
            : 0;
    const double speedup =
        have_reference && row.result.run.seconds > 0
            ? reference.seconds / row.result.run.seconds
            : 0;
    table.add_row(
        {row.scheduler, std::to_string(row.threads),
         std::string(to_string(row.dispatch)),
         row.numa_grid ? row.numa.label() : params.get("numa", "-"),
         TablePrinter::fmt(row.result.run.seconds * 1e3),
         std::to_string(stats.pops), std::to_string(stats.wasted),
         have_reference ? TablePrinter::fmt(work_inc) : "-",
         have_reference ? TablePrinter::fmt(speedup) : "-",
         stats.sampled_accesses > 0 ? TablePrinter::fmt(stats.remote_frac())
                                    : "-",
         row.result.validated ? (row.result.valid ? "yes" : "NO") : "-"});
  }
  table.print(std::cout);

  // ---- JSON ------------------------------------------------------------
  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, algo_name, graph, params, mode, numa_grid_spec,
                 have_reference ? &reference : nullptr, rows);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      write_json(out, algo_name, graph, params, mode, numa_grid_spec,
                 have_reference ? &reference : nullptr, rows);
      std::cout << "\nwrote " << json_path << "\n";
    }
  }

  if (any_invalid) {
    std::cerr << "\nERROR: at least one scheduler produced a wrong answer\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "smq_run: " << e.what() << "\n";
    return 2;
  }
}
