// smq_run — the unified run driver over the registry subsystem.
//
// Composes scheduler x algorithm x graph x thread-count at runtime from
// the string-keyed registries, validates every result against the
// sequential oracle, and emits both a paper-style ASCII table and
// machine-readable JSON.
//
//   smq_run --list
//   smq_run --sched smq --algo sssp --graph rand --threads 8
//   smq_run --sched all --algo sssp --graph road --vertices 20000
//           --threads 1,4 --reps 3 --json results.json
//
// Scheduler/algorithm/graph tunables (see --list) are passed as plain
// --key value options: --sched smq --steal-size 4 --p-steal 1/8 --numa k=8
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/listing.h"
#include "registry/scheduler_registry.h"
#include "support/cli.h"
#include "support/json_writer.h"

namespace {

using namespace smq;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < csv.size();) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

struct ResultRow {
  std::string scheduler;
  unsigned requested_threads = 0;
  unsigned threads = 0;  // effective (clamped) count
  AlgoResult result;
  int reps = 1;
};

void write_json(std::ostream& os, const std::string& algo_name,
                const GraphInstance& graph, const ParamMap& params,
                const AlgoReference* ref, const std::vector<ResultRow>& rows) {
  JsonWriter json(os);
  json.begin_object();
  json.member("tool", "smq_run");
  json.member("algorithm", algo_name);

  json.key("graph").begin_object();
  json.member("name", graph.name);
  json.member("vertices", static_cast<std::uint64_t>(graph.graph->num_vertices()));
  json.member("edges", static_cast<std::uint64_t>(graph.graph->num_edges()));
  json.end_object();

  json.key("params").begin_object();
  for (const auto& [key, value] : params.entries()) json.member(key, value);
  json.end_object();

  if (ref != nullptr) {
    json.key("reference").begin_object();
    json.member("tasks", ref->reference_tasks);
    json.member("answer", ref->reference_answer);
    json.member("seconds", ref->seconds);
    json.end_object();
  }

  json.key("results").begin_array();
  for (const ResultRow& row : rows) {
    json.begin_object();
    json.member("scheduler", row.scheduler);
    json.member("threads", row.threads);
    if (row.threads != row.requested_threads) {
      json.member("requested_threads", row.requested_threads);
    }
    json.member("seconds", row.result.run.seconds);
    json.member("tasks", row.result.run.stats.pops);
    json.member("wasted", row.result.run.stats.wasted);
    json.member("pushes", row.result.run.stats.pushes);
    json.member("empty_pops", row.result.run.stats.empty_pops);
    if (ref != nullptr && ref->reference_tasks > 0) {
      json.member("work_increase",
                  row.result.run.work_increase(ref->reference_tasks));
    }
    if (ref != nullptr && ref->seconds > 0 && row.result.run.seconds > 0) {
      json.member("speedup_vs_seq", ref->seconds / row.result.run.seconds);
    }
    json.member("reps", row.reps);
    if (row.result.validated) {
      json.member("valid", row.result.valid);
    }
    json.member("answer", row.result.answer);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

int run(int argc, char** argv) {
  const ArgParser args(argc, argv);

  if (args.has_flag("help") || args.has_flag("h")) {
    std::cout
        << "usage: smq_run [--list] [--sched NAMES|all] [--algo NAME] "
           "[--graph NAME]\n"
           "               [--threads N[,N...]] [--reps N] [--json PATH|-] "
           "[--no-validate]\n"
           "               [--<tunable> VALUE ...]\n\n"
           "Runs algorithm x scheduler x threads sweeps over a graph and "
           "prints a table\nplus optional JSON. `--list` shows every "
           "registered scheduler, algorithm and\ngraph source with its "
           "tunables.\n";
    return 0;
  }
  if (args.has_flag("list")) {
    print_registry_listing(std::cout);
    return 0;
  }

  const ParamMap params = ParamMap::from_args(args);

  // ---- resolve the three registry axes --------------------------------
  const std::string algo_name = args.get("algo", "sssp");
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
  if (algo == nullptr) {
    std::cerr << "unknown algorithm: " << algo_name
              << " (see smq_run --list)\n";
    return 2;
  }

  const std::string graph_name = args.get("graph", "rand");
  GraphInstance graph;
  try {
    graph = GraphRegistry::instance().create(graph_name, params);
  } catch (const std::exception& e) {
    std::cerr << e.what() << " (see smq_run --list)\n";
    return 2;
  }

  std::vector<std::string> sched_names = split_csv(args.get("sched", "smq"));
  if (sched_names.size() == 1 && sched_names[0] == "all") {
    sched_names = SchedulerRegistry::instance().names();
  }
  for (const std::string& name : sched_names) {
    if (SchedulerRegistry::instance().find(name) == nullptr) {
      std::cerr << "unknown scheduler: " << name << " (see smq_run --list)\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  for (const std::string& t : split_csv(args.get("threads", "4"))) {
    const long n = std::strtol(t.c_str(), nullptr, 10);
    if (n <= 0) {
      std::cerr << "bad thread count: " << t << "\n";
      return 2;
    }
    thread_counts.push_back(static_cast<unsigned>(n));
  }
  const int reps = static_cast<int>(args.get_int("reps", 1));
  const bool validate = !args.has_flag("no-validate");

  std::cout << "graph: " << graph.name << " (" << graph.graph->num_vertices()
            << " vertices, " << graph.graph->num_edges() << " edges)\n"
            << "algorithm: " << algo_name << "\n";

  // ---- sequential oracle ----------------------------------------------
  AlgoReference reference;
  bool have_reference = false;
  if (validate) {
    reference = algo->make_reference(graph, params);
    have_reference = true;
    std::cout << "reference: " << reference.reference_tasks << " tasks, "
              << TablePrinter::fmt(reference.seconds * 1e3)
              << " ms sequential\n";
  }
  std::cout << '\n';

  // ---- the sweep -------------------------------------------------------
  std::vector<ResultRow> rows;
  bool any_invalid = false;
  for (const std::string& name : sched_names) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    for (const unsigned requested : thread_counts) {
      const unsigned threads = effective_threads(*entry, requested);
      ResultRow row;
      row.scheduler = name;
      row.requested_threads = requested;
      row.threads = threads;
      row.reps = std::max(1, reps);
      for (int rep = 0; rep < row.reps; ++rep) {
        AnyScheduler sched = entry->make(threads, params);
        AlgoResult result =
            algo->run(graph, sched, threads, params,
                      have_reference ? &reference : nullptr);
        const bool better = rep == 0 ||
                            (result.valid && !row.result.valid) ||
                            (result.valid == row.result.valid &&
                             result.run.seconds < row.result.run.seconds);
        if (better) row.result = result;
      }
      if (row.result.validated && !row.result.valid) any_invalid = true;
      rows.push_back(std::move(row));
    }
  }

  // ---- ASCII table -----------------------------------------------------
  TablePrinter table({"scheduler", "threads", "time ms", "tasks", "wasted",
                      "work inc", "speedup", "valid"});
  for (const ResultRow& row : rows) {
    const double work_inc =
        have_reference && reference.reference_tasks > 0
            ? row.result.run.work_increase(reference.reference_tasks)
            : 0;
    const double speedup =
        have_reference && row.result.run.seconds > 0
            ? reference.seconds / row.result.run.seconds
            : 0;
    table.add_row(
        {row.scheduler, std::to_string(row.threads),
         TablePrinter::fmt(row.result.run.seconds * 1e3),
         std::to_string(row.result.run.stats.pops),
         std::to_string(row.result.run.stats.wasted),
         have_reference ? TablePrinter::fmt(work_inc) : "-",
         have_reference ? TablePrinter::fmt(speedup) : "-",
         row.result.validated ? (row.result.valid ? "yes" : "NO") : "-"});
  }
  table.print(std::cout);

  // ---- JSON ------------------------------------------------------------
  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, algo_name, graph, params,
                 have_reference ? &reference : nullptr, rows);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      write_json(out, algo_name, graph, params,
                 have_reference ? &reference : nullptr, rows);
      std::cout << "\nwrote " << json_path << "\n";
    }
  }

  if (any_invalid) {
    std::cerr << "\nERROR: at least one scheduler produced a wrong answer\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "smq_run: " << e.what() << "\n";
    return 2;
  }
}
