// smq_run — the unified run driver over the registry subsystem.
//
// Composes scheduler x algorithm x graph x thread-count at runtime from
// the string-keyed registries, validates every result against the
// sequential oracle, and emits both a paper-style ASCII table and
// machine-readable JSON.
//
//   smq_run --list
//   smq_run --sched smq --algo sssp --graph rand --threads 8
//   smq_run --sched all --algo sssp --graph road --vertices 20000
//           --threads 1,4 --reps 3 --json results.json
//   smq_run --sched smq,mq-opt --dispatch static --graph-cache /tmp/graphs
//   smq_run --sched smq --algo sssp --numa-grid nodes=1,2,4:k=1,4,8,16
//   smq_run --suite fig3_6 --threads 4 --json fig3_6.json
//
// Scheduler/algorithm/graph tunables (see --list) are passed as plain
// --key value options: --sched smq --steal-size 4 --p-steal 1/8 --numa k=8
//
// --suite expands one of the paper's figure sweeps (registry/suites.h)
// over its scheduler presets — same table, same JSON rows; the suite
// pins the preset grid, the CLI still controls graph/threads/reps.
//
// --numa-grid crosses a simulated-NUMA sweep (virtual node counts x
// remote-weight divisors K, Section 4 / Tables 16-27) with the
// scheduler x threads sweep: the Topology is rebuilt per grid point and
// every row reports the measured remote-access fraction next to the
// analytic expectation E.
//
// --dispatch selects how the executor crosses the scheduler boundary:
//   virtual  one AnyScheduler virtual call per push/pop (default)
//   batched  one virtual call per task batch (--batch-size, default 64)
//   static   directly instantiated concrete scheduler, no erasure
//            (hot config families and their presets — see
//            static_dispatch.h; others fall back to virtual and say so)
#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/listing.h"
#include "registry/numa_grid.h"
#include "registry/scheduler_registry.h"
#include "registry/service_factory.h"
#include "registry/static_dispatch.h"
#include "registry/suite_runner.h"
#include "registry/suites.h"
#include "service/service_driver.h"
#include "support/cli.h"
#include "tuning/auto_select.h"

namespace {

using namespace smq;

/// Every flag this driver (and the suite runner it delegates to)
/// understands: the built-ins plus every registered tunable of every
/// scheduler, graph source and algorithm. Unknown flags are fatal —
/// a silently ignored "--steal-sice 8" measures the wrong config.
std::vector<std::string> known_flags() {
  std::vector<std::string> known = {
      "help",       "h",         "list",      "suite",    "sched",
      "algo",       "graph",     "threads",   "reps",     "json",
      "no-validate", "dispatch", "batch-size", "numa-grid", "graph-cache",
      "service",    "qps",       "queries",   "lanes",    "query-seed",
      "tuning-table"};
  const auto add = [&known](const std::vector<Tunable>& tunables) {
    for (const Tunable& t : tunables) known.push_back(t.name);
  };
  for (const std::string& n : SchedulerRegistry::instance().names()) {
    add(SchedulerRegistry::instance().find(n)->tunables);
  }
  for (const std::string& n : GraphRegistry::instance().names()) {
    add(GraphRegistry::instance().find(n)->tunables);
  }
  for (const std::string& n : AlgorithmRegistry::instance().names()) {
    add(AlgorithmRegistry::instance().find(n)->tunables);
  }
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());
  return known;
}

/// Reject misspelled flags with a nearest-name suggestion. Returns
/// false (after explaining on stderr) when any option is unknown.
bool check_flags(const ArgParser& args) {
  const std::vector<std::string> known = known_flags();
  bool ok = true;
  for (const auto& [key, value] : args.options()) {
    if (!std::binary_search(known.begin(), known.end(), key)) {
      std::cerr << unknown_flag_message(key, known) << "\n";
      ok = false;
    }
  }
  return ok;
}

/// "unknown scheduler: X (did you mean 'Y'?)" over the registry names
/// plus the "auto" pseudo-scheduler.
std::string unknown_scheduler_message(const std::string& name) {
  std::vector<std::string> known = SchedulerRegistry::instance().names();
  known.emplace_back(tuning::kAutoSchedulerName);
  std::string msg = "unknown scheduler: " + name;
  const std::string near = nearest_name(name, known);
  if (!near.empty()) msg += " (did you mean '" + near + "'?)";
  msg += " (see smq_run --list)";
  return msg;
}

bool is_auto_sched(const std::string& name) {
  return name == tuning::kAutoSchedulerName;
}

void print_suite_listing(std::ostream& os) {
  os << "\nsuites (--suite NAME reproduces the paper artifact):\n";
  for (const SuiteDef& suite : suites()) {
    os << "  " << suite.name << " - " << suite.figure << ": "
       << suite.description << " (" << suite.runs.size() << " configs)\n";
  }
}

/// `smq_run --service`: drive a query stream through a persistent
/// SchedulerService pool instead of one spawn/join sweep per row.
/// Closed loop by default; `--qps R` switches to open-loop Poisson
/// arrivals. Latency percentiles come from the service's lock-free
/// histogram and always include queue wait.
int run_service_mode(const ArgParser& args) {
  ParamMap params = ParamMap::from_args(args);

  const std::string graph_name = args.get("graph", "rand");
  const std::string graph_cache = args.get("graph-cache");
  GraphInstance graph;
  try {
    graph = graph_cache.empty()
                ? GraphRegistry::instance().create(graph_name, params)
                : GraphRegistry::instance().create_cached(graph_name, params,
                                                          graph_cache);
  } catch (const std::exception& e) {
    std::cerr << e.what() << " (see smq_run --list)\n";
    return 2;
  }

  std::vector<std::string> sched_names =
      split_list(args.get("sched", "smq"), ',');
  if (sched_names.size() == 1 && sched_names[0] == "all") {
    sched_names = SchedulerRegistry::instance().names();
  }
  for (const std::string& name : sched_names) {
    if (!is_auto_sched(name) &&
        SchedulerRegistry::instance().find(name) == nullptr) {
      std::cerr << unknown_scheduler_message(name) << "\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  try {
    thread_counts = parse_thread_list(args.get("threads", "4"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const std::string warn = oversubscription_warning(
      thread_counts, std::thread::hardware_concurrency());
  if (!warn.empty()) std::cerr << warn << "\n";

  const auto num_queries =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("queries", 100)));
  const double qps = args.get_double("qps", 0);
  const std::uint64_t seed = params.get_uint("query-seed", 1);
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 1)));
  const bool validate = !args.has_flag("no-validate");

  ServiceOptions opts;
  opts.lanes = static_cast<unsigned>(args.get_int("lanes", 0));
  opts.batch_size =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch-size", 8)));

  const std::vector<Query> queries =
      make_query_set(graph, num_queries, seed);

  std::cout << "graph: " << graph.name << " (" << graph.graph->num_vertices()
            << " vertices, " << graph.graph->num_edges() << " edges)\n"
            << "mode: service (" << num_queries << " queries, "
            << (qps > 0 ? "poisson @" + TablePrinter::fmt(qps, 0) + " qps"
                        : std::string("closed loop"))
            << ", batch-size " << opts.batch_size << ")\n";

  ServiceReport report;
  report.graph = graph;
  report.params = params;
  report.queries = num_queries;
  report.seed = seed;

  ServiceReference reference;
  if (validate) {
    reference = measure_service_reference(graph, queries, reps);
    report.reference = &reference;
    std::cout << "reference: " << num_queries << " sequential queries, "
              << TablePrinter::fmt(reference.seconds * 1e3) << " ms total\n";
  }
  std::cout << '\n';

  bool any_invalid = false;
  for (const std::string& name : sched_names) {
    for (const unsigned requested : thread_counts) {
      // `auto` resolves through the tuning table once per thread count
      // (the winning preset may change with the worker count); the row
      // keeps "auto" as its scheduler and reports the resolved preset.
      tuning::AutoSelection selection;
      std::string create_name = name;
      if (is_auto_sched(name)) {
        try {
          selection = tuning::select_scheduler(
              graph, service_auto_algorithm(graph),
              requested == 0 ? 1 : requested, args.get("tuning-table"));
        } catch (const std::exception& e) {
          std::cerr << "smq_run: " << e.what() << "\n";
          return 2;
        }
        create_name = selection.preset;
        std::cout << tuning::describe_selection(
                         selection, service_auto_algorithm(graph),
                         requested == 0 ? 1 : requested)
                  << "\n";
      }
      const unsigned threads = service_effective_threads(create_name, requested);
      ServiceRow best;
      for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<QueryService> service =
            make_service(create_name, threads, params, graph, opts);
        const DriveResult drive = drive_service(*service, queries, qps, seed);
        service->stop();
        ServiceRow row;
        row.scheduler = name;
        if (is_auto_sched(name)) {
          row.preset = selection.preset;
          row.auto_match = std::string(tuning::to_string(selection.match));
          row.auto_why = selection.why;
        }
        row.threads = threads;
        row.lanes = service->num_lanes();
        row.batch_size = opts.batch_size;
        row.offered_qps = qps;
        row.reps = reps;
        row.stats = service->worker_stats();
        row.memory_footprint = service->memory_footprint();
        finalize_service_row(row, drive, service->latency_histogram(),
                             report.reference);
        const bool better = rep == 0 ||
                            (row.valid && !best.valid) ||
                            (row.valid == best.valid && row.seconds < best.seconds);
        if (better) best = std::move(row);
      }
      if (best.validated && !best.valid) any_invalid = true;
      report.rows.push_back(std::move(best));
    }
  }

  print_service_table(std::cout, report);
  if (!emit_service_json(report, args.get("json"), std::cout, std::cerr)) {
    return 2;
  }
  if (any_invalid) {
    std::cerr << "\nERROR: at least one service run produced a wrong answer\n";
    return 1;
  }
  return 0;
}

int run(int argc, char** argv) {
  const ArgParser args(argc, argv);

  if (args.has_flag("help") || args.has_flag("h")) {
    std::cout
        << "usage: smq_run [--list] [--sched NAMES|all] [--suite NAME] "
           "[--algo NAME]\n"
           "               [--graph NAME] [--threads N[,N...]] [--reps N] "
           "[--json PATH|-]\n"
           "               [--no-validate] [--dispatch "
           "virtual|batched|static] [--batch-size N]\n"
           "               [--numa-grid nodes=N,..:k=K,..] "
           "[--graph-cache DIR]\n"
           "               [--tuning-table PATH]\n"
           "               [--service [--qps R] [--queries N] [--lanes N] "
           "[--query-seed S]]\n"
           "               [--<tunable> VALUE ...]\n\n"
           "Runs algorithm x scheduler x threads sweeps over a graph and "
           "prints a table\nplus optional JSON. `--list` shows every "
           "registered scheduler, algorithm,\ngraph source and figure suite "
           "with its tunables. `--suite` expands one of\nthe paper's figure "
           "sweeps over its scheduler presets. `--dispatch` picks\nthe "
           "scheduler-boundary mode (virtual erasure, batched erasure, or "
           "concrete\nstatic instantiation); `--graph-cache DIR` caches "
           "generated graphs as binary\nCSR keyed by their parameters so "
           "repeated sweeps skip generation;\n`--numa-grid` crosses the "
           "sweep with simulated-NUMA grid points (nodes x K),\neach row "
           "reporting its measured remote-access fraction.\n\n"
           "`--sched auto` resolves the scheduler through the tuning "
           "metrics table\n(data/tuning/metrics_table.json, regenerate with "
           "smq_tune; override with\n--tuning-table PATH or "
           "$SMQ_TUNING_TABLE): the preset measured best for\nthis (graph "
           "class, algorithm, threads) is picked per thread count — exact\n"
           "row, nearest thread count, or nearest graph fingerprint — and "
           "every row\nreports the chosen preset and why.\n\n"
           "`--service` runs point-to-point queries through a persistent "
           "worker-pool\nservice instead of one spawn/join run per row: "
           "`--queries N` random (s,t)\npairs (seeded by --query-seed) are "
           "submitted closed-loop, or open-loop at\nPoisson rate `--qps R`; "
           "rows report throughput plus p50/p90/p99 latency\n(queue wait "
           "included) from the service's lock-free histogram.\n";
    return 0;
  }
  if (args.has_flag("list")) {
    print_registry_listing(std::cout);
    print_suite_listing(std::cout);
    return 0;
  }

  if (!check_flags(args)) return 2;

  // ---- service mode ----------------------------------------------------
  // A persistent worker pool serving the query stream; none of the
  // sweep axes below (dispatch modes, numa grids) apply to it.
  if (args.has_flag("service")) {
    if (args.has_flag("suite") || args.has_flag("numa-grid")) {
      std::cerr << "--service cannot be combined with --suite or "
                   "--numa-grid\n";
      return 2;
    }
    return run_service_mode(args);
  }

  // ---- suite delegation ------------------------------------------------
  // A suite is a pinned sweep; the shared runner owns its whole CLI.
  if (args.has_flag("suite")) {
    if (args.has_flag("numa-grid")) {
      std::cerr << "--suite and --numa-grid cannot be combined (suites pin "
                   "their own sweep axes)\n";
      return 2;
    }
    if (args.has_flag("sched")) {
      std::cerr << "--suite and --sched cannot be combined (the suite "
                   "names its schedulers)\n";
      return 2;
    }
    const std::string suite_name = args.get("suite");
    if (find_suite(suite_name) == nullptr) {
      std::cerr << unknown_suite_message(suite_name) << "\n";
      return 2;
    }
    return run_suite_main(suite_name, argc, argv);
  }

  ParamMap params = ParamMap::from_args(args);

  // ---- dispatch mode ---------------------------------------------------
  const std::optional<DispatchMode> dispatch =
      resolve_dispatch_mode(args, params, std::cerr);
  if (!dispatch) return 2;
  const DispatchMode mode = *dispatch;

  // ---- resolve the three registry axes --------------------------------
  const std::string algo_name = args.get("algo", "sssp");
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
  if (algo == nullptr) {
    std::cerr << "unknown algorithm: " << algo_name
              << " (see smq_run --list)\n";
    return 2;
  }

  const std::string graph_name = args.get("graph", "rand");
  const std::string graph_cache = args.get("graph-cache");
  GraphInstance graph;
  try {
    graph = graph_cache.empty()
                ? GraphRegistry::instance().create(graph_name, params)
                : GraphRegistry::instance().create_cached(graph_name, params,
                                                          graph_cache);
  } catch (const std::exception& e) {
    std::cerr << e.what() << " (see smq_run --list)\n";
    return 2;
  }

  std::vector<std::string> sched_names = split_list(args.get("sched", "smq"), ',');
  if (sched_names.size() == 1 && sched_names[0] == "all") {
    sched_names = SchedulerRegistry::instance().names();
  }
  for (const std::string& name : sched_names) {
    if (!is_auto_sched(name) &&
        SchedulerRegistry::instance().find(name) == nullptr) {
      std::cerr << unknown_scheduler_message(name) << "\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  try {
    thread_counts = parse_thread_list(args.get("threads", "4"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const std::string warn = oversubscription_warning(
      thread_counts, std::thread::hardware_concurrency());
  if (!warn.empty()) std::cerr << warn << "\n";
  const int reps = static_cast<int>(args.get_int("reps", 1));
  const bool validate = !args.has_flag("no-validate");

  // ---- NUMA grid -------------------------------------------------------
  // Without --numa-grid the sweep has a single inactive point that
  // leaves the params (and any manual --numa) untouched.
  const std::string numa_grid_spec = args.get("numa-grid");
  std::vector<NumaGridPoint> numa_grid{NumaGridPoint{}};
  const bool grid_active = !numa_grid_spec.empty();
  if (grid_active) {
    try {
      numa_grid = parse_numa_grid(numa_grid_spec);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  // ---- `--sched auto` resolution inputs --------------------------------
  // The table is loaded and the graph fingerprinted once; resolution
  // itself happens per thread count (the winner can change with it).
  const bool any_auto =
      std::any_of(sched_names.begin(), sched_names.end(), is_auto_sched);
  tuning::MetricsTable auto_table;
  std::string auto_origin;
  tuning::WorkloadFingerprint auto_fp;
  if (any_auto) {
    if (grid_active) {
      std::cerr << "--sched auto cannot be combined with --numa-grid (the "
                   "grid sweeps the axis the table has already pinned)\n";
      return 2;
    }
    try {
      const std::string table_arg = args.get("tuning-table");
      if (table_arg.empty()) {
        auto_table = tuning::MetricsTable::load_or_embedded(
            tuning::MetricsTable::default_path(), &auto_origin);
      } else {
        auto_origin = table_arg;
        auto_table = tuning::MetricsTable::load(table_arg);
      }
    } catch (const std::exception& e) {
      std::cerr << "smq_run: " << e.what() << "\n";
      return 2;
    }
    auto_fp = tuning::fingerprint_graph(*graph.graph);
  }

  std::cout << "graph: " << graph.name << " (" << graph.graph->num_vertices()
            << " vertices, " << graph.graph->num_edges() << " edges)\n"
            << "algorithm: " << algo_name << "\n"
            << "dispatch: " << to_string(mode);
  if (mode == DispatchMode::kBatched) {
    std::cout << " (batch-size " << params.get("batch-size") << ")";
  }
  std::cout << "\n";
  if (grid_active) {
    std::cout << "numa grid: " << numa_grid_spec << " (" << numa_grid.size()
              << " points)\n";
  }

  SweepReport report;
  report.algorithm = algo_name;
  report.graph = graph;
  report.params = params;
  report.dispatch = mode;
  report.numa_grid_spec = numa_grid_spec;

  // ---- sequential oracle ----------------------------------------------
  AlgoReference reference;
  if (validate) {
    reference = measure_reference(*algo, graph, params, reps);
    report.reference = &reference;
    std::cout << "reference: " << reference.reference_tasks << " tasks, "
              << TablePrinter::fmt(reference.seconds * 1e3)
              << " ms sequential\n";
  }
  std::cout << '\n';

  // ---- the sweep -------------------------------------------------------
  bool any_invalid = false;
  for (const std::string& name : sched_names) {
    if (is_auto_sched(name)) {
      // One table resolution per thread count; the row runs the
      // resolved preset under whatever dispatch mode was requested
      // (virtual, batched, or static — same paths as naming it by
      // hand) and carries the provenance into table/JSON.
      for (const unsigned requested : thread_counts) {
        const unsigned want = requested == 0 ? 1 : requested;
        const tuning::AutoSelection sel = tuning::select_scheduler(
            auto_table, auto_origin, auto_fp, algo_name, want);
        const SchedulerEntry* entry =
            SchedulerRegistry::instance().find(sel.preset);
        DispatchMode row_dispatch = mode;
        if (row_dispatch == DispatchMode::kStatic &&
            !has_static_dispatch(sel.preset)) {
          std::cerr << "note: no static dispatch entry for '" << sel.preset
                    << "'; running it virtual\n";
          row_dispatch = DispatchMode::kVirtual;
        }
        std::cout << tuning::describe_selection(sel, algo_name, want) << "\n";
        SweepRow row;
        row.label = name;
        row.scheduler = sel.preset;
        row.auto_selected = true;
        row.auto_match = std::string(tuning::to_string(sel.match));
        row.auto_why = sel.why;
        row.requested_threads = requested;
        row.threads = effective_threads(*entry, requested);
        row.dispatch = row_dispatch;
        row.reps = std::max(1, reps);
        row.result =
            measure_sweep_row(*entry, sel.preset, *algo, algo_name, graph,
                              row.threads, params, row_dispatch,
                              report.reference, reps);
        if (row.result.validated && !row.result.valid) any_invalid = true;
        report.rows.push_back(std::move(row));
      }
      continue;
    }
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    // Static dispatch covers the hot config families (and their presets)
    // only; anything else keeps its uniform virtual path (and the row
    // says so).
    DispatchMode row_dispatch = mode;
    if (row_dispatch == DispatchMode::kStatic && !has_static_dispatch(name)) {
      std::cerr << "note: no static dispatch entry for '" << name
                << "'; running it virtual\n";
      row_dispatch = DispatchMode::kVirtual;
    }
    // Schedulers that do not take the `numa` tunable (their factories
    // ignore it) run once, not once per grid point — rows claiming a
    // topology that never applied would poison the trajectory.
    const bool supports_numa =
        std::any_of(entry->tunables.begin(), entry->tunables.end(),
                    [](const Tunable& t) { return t.name == "numa"; });
    if (grid_active && !supports_numa) {
      std::cerr << "note: '" << name << "' takes no numa tunable; running "
                << "it once without the grid\n";
    }
    bool ran_without_grid = false;
    for (const NumaGridPoint& point : numa_grid) {
      const bool apply_grid = grid_active && supports_numa;
      if (grid_active && !supports_numa) {
        if (ran_without_grid) break;
        ran_without_grid = true;
      }
      // Each grid point rewrites the `numa` tunable, so the scheduler
      // factory rebuilds the simulated Topology for it.
      ParamMap run_params = params;
      if (apply_grid) apply_numa_point(run_params, point);
      for (const unsigned requested : thread_counts) {
        const unsigned threads = effective_threads(*entry, requested);
        SweepRow row;
        row.label = name;
        row.scheduler = name;
        row.requested_threads = requested;
        row.threads = threads;
        row.dispatch = row_dispatch;
        row.numa = apply_grid ? point : NumaGridPoint{};
        // The topology clamps nodes to the thread count (no empty
        // nodes); report the configuration that actually ran, so the
        // row's analytic E and measured remote_frac stay consistent.
        if (row.numa.nodes > threads) row.numa.nodes = threads;
        row.numa_grid = apply_grid;
        row.reps = std::max(1, reps);
        row.result =
            measure_sweep_row(*entry, name, *algo, algo_name, graph, threads,
                              run_params, row_dispatch, report.reference, reps);
        if (row.result.validated && !row.result.valid) any_invalid = true;
        report.rows.push_back(std::move(row));
      }
    }
  }

  // ---- ASCII table + JSON ---------------------------------------------
  print_sweep_table(std::cout, report);
  if (!emit_sweep_json(report, args.get("json"), std::cout, std::cerr)) {
    return 2;
  }

  if (any_invalid) {
    std::cerr << "\nERROR: at least one scheduler produced a wrong answer\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "smq_run: " << e.what() << "\n";
    return 2;
  }
}
