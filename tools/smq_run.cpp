// smq_run — the unified run driver over the registry subsystem.
//
// Composes scheduler x algorithm x graph x thread-count at runtime from
// the string-keyed registries, validates every result against the
// sequential oracle, and emits both a paper-style ASCII table and
// machine-readable JSON.
//
//   smq_run --list
//   smq_run --sched smq --algo sssp --graph rand --threads 8
//   smq_run --sched all --algo sssp --graph road --vertices 20000
//           --threads 1,4 --reps 3 --json results.json
//   smq_run --sched smq,mq-opt --dispatch static --graph-cache /tmp/graphs
//
// Scheduler/algorithm/graph tunables (see --list) are passed as plain
// --key value options: --sched smq --steal-size 4 --p-steal 1/8 --numa k=8
//
// --dispatch selects how the executor crosses the scheduler boundary:
//   virtual  one AnyScheduler virtual call per push/pop (default)
//   batched  one virtual call per task batch (--batch-size, default 64)
//   static   directly instantiated concrete scheduler, no erasure
//            (hot keys only — see static_dispatch.h; others fall back
//            to virtual and say so)
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/listing.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"
#include "support/cli.h"
#include "support/json_writer.h"

namespace {

using namespace smq;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < csv.size();) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

struct ResultRow {
  std::string scheduler;
  unsigned requested_threads = 0;
  unsigned threads = 0;  // effective (clamped) count
  DispatchMode dispatch = DispatchMode::kVirtual;  // actually used
  AlgoResult result;
  int reps = 1;
};

void write_json(std::ostream& os, const std::string& algo_name,
                const GraphInstance& graph, const ParamMap& params,
                DispatchMode requested_dispatch, const AlgoReference* ref,
                const std::vector<ResultRow>& rows) {
  JsonWriter json(os);
  json.begin_object();
  json.member("tool", "smq_run");
  json.member("algorithm", algo_name);
  json.member("dispatch", std::string(to_string(requested_dispatch)));

  json.key("graph").begin_object();
  json.member("name", graph.name);
  json.member("vertices", static_cast<std::uint64_t>(graph.graph->num_vertices()));
  json.member("edges", static_cast<std::uint64_t>(graph.graph->num_edges()));
  json.end_object();

  json.key("params").begin_object();
  for (const auto& [key, value] : params.entries()) json.member(key, value);
  json.end_object();

  if (ref != nullptr) {
    json.key("reference").begin_object();
    json.member("tasks", ref->reference_tasks);
    json.member("answer", ref->reference_answer);
    json.member("seconds", ref->seconds);
    json.end_object();
  }

  json.key("results").begin_array();
  for (const ResultRow& row : rows) {
    json.begin_object();
    json.member("scheduler", row.scheduler);
    json.member("threads", row.threads);
    if (row.threads != row.requested_threads) {
      json.member("requested_threads", row.requested_threads);
    }
    json.member("dispatch", std::string(to_string(row.dispatch)));
    json.member("seconds", row.result.run.seconds);
    json.member("tasks", row.result.run.stats.pops);
    json.member("wasted", row.result.run.stats.wasted);
    json.member("pushes", row.result.run.stats.pushes);
    json.member("empty_pops", row.result.run.stats.empty_pops);
    if (ref != nullptr && ref->reference_tasks > 0) {
      json.member("work_increase",
                  row.result.run.work_increase(ref->reference_tasks));
    }
    if (ref != nullptr && ref->seconds > 0 && row.result.run.seconds > 0) {
      json.member("speedup_vs_seq", ref->seconds / row.result.run.seconds);
    }
    json.member("reps", row.reps);
    if (row.result.validated) {
      json.member("valid", row.result.valid);
    }
    json.member("answer", row.result.answer);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

int run(int argc, char** argv) {
  const ArgParser args(argc, argv);

  if (args.has_flag("help") || args.has_flag("h")) {
    std::cout
        << "usage: smq_run [--list] [--sched NAMES|all] [--algo NAME] "
           "[--graph NAME]\n"
           "               [--threads N[,N...]] [--reps N] [--json PATH|-] "
           "[--no-validate]\n"
           "               [--dispatch virtual|batched|static] "
           "[--batch-size N]\n"
           "               [--graph-cache DIR] [--<tunable> VALUE ...]\n\n"
           "Runs algorithm x scheduler x threads sweeps over a graph and "
           "prints a table\nplus optional JSON. `--list` shows every "
           "registered scheduler, algorithm and\ngraph source with its "
           "tunables. `--dispatch` picks the scheduler-boundary\nmode "
           "(virtual erasure, batched erasure, or concrete static "
           "instantiation);\n`--graph-cache DIR` caches generated graphs "
           "as binary CSR keyed by their\nparameters so repeated sweeps "
           "skip generation.\n";
    return 0;
  }
  if (args.has_flag("list")) {
    print_registry_listing(std::cout);
    return 0;
  }

  ParamMap params = ParamMap::from_args(args);

  // ---- dispatch mode ---------------------------------------------------
  const std::string dispatch_name = args.get("dispatch", "virtual");
  const std::optional<DispatchMode> dispatch =
      parse_dispatch_mode(dispatch_name);
  if (!dispatch) {
    std::cerr << "unknown dispatch mode: " << dispatch_name
              << " (expected virtual, batched or static)\n";
    return 2;
  }
  // Batched dispatch amortizes the erasure boundary over --batch-size
  // tasks; default it so `--dispatch batched` alone does something.
  if (*dispatch == DispatchMode::kBatched && !params.has("batch-size")) {
    params.set("batch-size", "64");
  }
  // The executor picks its loop from batch-size alone, so normalize the
  // recorded mode to what will actually run: `--batch-size 64` without
  // `--dispatch` IS a batched run, and `--dispatch batched
  // --batch-size 1` is a per-task one. The perf gate keys baseline rows
  // on this label; it must not lie.
  DispatchMode mode = *dispatch;
  if (mode != DispatchMode::kStatic) {
    mode = params.get_int("batch-size", 1) > 1 ? DispatchMode::kBatched
                                               : DispatchMode::kVirtual;
    if (mode != *dispatch) {
      std::cerr << "note: --batch-size " << params.get("batch-size", "1")
                << " makes this a " << to_string(mode) << " run\n";
    }
  }

  // ---- resolve the three registry axes --------------------------------
  const std::string algo_name = args.get("algo", "sssp");
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
  if (algo == nullptr) {
    std::cerr << "unknown algorithm: " << algo_name
              << " (see smq_run --list)\n";
    return 2;
  }

  const std::string graph_name = args.get("graph", "rand");
  const std::string graph_cache = args.get("graph-cache");
  GraphInstance graph;
  try {
    graph = graph_cache.empty()
                ? GraphRegistry::instance().create(graph_name, params)
                : GraphRegistry::instance().create_cached(graph_name, params,
                                                          graph_cache);
  } catch (const std::exception& e) {
    std::cerr << e.what() << " (see smq_run --list)\n";
    return 2;
  }

  std::vector<std::string> sched_names = split_csv(args.get("sched", "smq"));
  if (sched_names.size() == 1 && sched_names[0] == "all") {
    sched_names = SchedulerRegistry::instance().names();
  }
  for (const std::string& name : sched_names) {
    if (SchedulerRegistry::instance().find(name) == nullptr) {
      std::cerr << "unknown scheduler: " << name << " (see smq_run --list)\n";
      return 2;
    }
  }

  std::vector<unsigned> thread_counts;
  for (const std::string& t : split_csv(args.get("threads", "4"))) {
    const long n = std::strtol(t.c_str(), nullptr, 10);
    if (n <= 0) {
      std::cerr << "bad thread count: " << t << "\n";
      return 2;
    }
    thread_counts.push_back(static_cast<unsigned>(n));
  }
  const int reps = static_cast<int>(args.get_int("reps", 1));
  const bool validate = !args.has_flag("no-validate");

  std::cout << "graph: " << graph.name << " (" << graph.graph->num_vertices()
            << " vertices, " << graph.graph->num_edges() << " edges)\n"
            << "algorithm: " << algo_name << "\n"
            << "dispatch: " << to_string(mode);
  if (mode == DispatchMode::kBatched) {
    std::cout << " (batch-size " << params.get("batch-size") << ")";
  }
  std::cout << "\n";

  // ---- sequential oracle ----------------------------------------------
  AlgoReference reference;
  bool have_reference = false;
  if (validate) {
    reference = algo->make_reference(graph, params);
    // Best-of-reps, like the parallel rows: speedup_vs_seq feeds the CI
    // perf gate, so the normalizer must not be a single noisy sample.
    for (int rep = 1; rep < reps; ++rep) {
      const AlgoReference again = algo->make_reference(graph, params);
      if (again.seconds < reference.seconds) reference.seconds = again.seconds;
    }
    have_reference = true;
    std::cout << "reference: " << reference.reference_tasks << " tasks, "
              << TablePrinter::fmt(reference.seconds * 1e3)
              << " ms sequential\n";
  }
  std::cout << '\n';

  // ---- the sweep -------------------------------------------------------
  std::vector<ResultRow> rows;
  bool any_invalid = false;
  for (const std::string& name : sched_names) {
    const SchedulerEntry* entry = SchedulerRegistry::instance().find(name);
    // Static dispatch covers the hot keys only; anything else keeps its
    // uniform virtual path (and the row says so).
    DispatchMode row_dispatch = mode;
    if (row_dispatch == DispatchMode::kStatic && !has_static_dispatch(name)) {
      std::cerr << "note: no static dispatch entry for '" << name
                << "'; running it virtual\n";
      row_dispatch = DispatchMode::kVirtual;
    }
    for (const unsigned requested : thread_counts) {
      const unsigned threads = effective_threads(*entry, requested);
      ResultRow row;
      row.scheduler = name;
      row.requested_threads = requested;
      row.threads = threads;
      row.dispatch = row_dispatch;
      row.reps = std::max(1, reps);
      for (int rep = 0; rep < row.reps; ++rep) {
        AlgoResult result;
        std::optional<AlgoResult> static_result;
        if (row_dispatch == DispatchMode::kStatic) {
          static_result =
              run_static_dispatch(name, algo_name, graph, threads, params,
                                  have_reference ? &reference : nullptr);
        }
        if (static_result) {
          result = *static_result;
        } else {
          AnyScheduler sched = entry->make(threads, params);
          result = algo->run(graph, sched, threads, params,
                             have_reference ? &reference : nullptr);
        }
        const bool better = rep == 0 ||
                            (result.valid && !row.result.valid) ||
                            (result.valid == row.result.valid &&
                             result.run.seconds < row.result.run.seconds);
        if (better) row.result = result;
      }
      if (row.result.validated && !row.result.valid) any_invalid = true;
      rows.push_back(std::move(row));
    }
  }

  // ---- ASCII table -----------------------------------------------------
  TablePrinter table({"scheduler", "threads", "dispatch", "time ms", "tasks",
                      "wasted", "work inc", "speedup", "valid"});
  for (const ResultRow& row : rows) {
    const double work_inc =
        have_reference && reference.reference_tasks > 0
            ? row.result.run.work_increase(reference.reference_tasks)
            : 0;
    const double speedup =
        have_reference && row.result.run.seconds > 0
            ? reference.seconds / row.result.run.seconds
            : 0;
    table.add_row(
        {row.scheduler, std::to_string(row.threads),
         std::string(to_string(row.dispatch)),
         TablePrinter::fmt(row.result.run.seconds * 1e3),
         std::to_string(row.result.run.stats.pops),
         std::to_string(row.result.run.stats.wasted),
         have_reference ? TablePrinter::fmt(work_inc) : "-",
         have_reference ? TablePrinter::fmt(speedup) : "-",
         row.result.validated ? (row.result.valid ? "yes" : "NO") : "-"});
  }
  table.print(std::cout);

  // ---- JSON ------------------------------------------------------------
  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, algo_name, graph, params, mode,
                 have_reference ? &reference : nullptr, rows);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      write_json(out, algo_name, graph, params, mode,
                 have_reference ? &reference : nullptr, rows);
      std::cout << "\nwrote " << json_path << "\n";
    }
  }

  if (any_invalid) {
    std::cerr << "\nERROR: at least one scheduler produced a wrong answer\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "smq_run: " << e.what() << "\n";
    return 2;
  }
}
