#!/usr/bin/env python3
"""Project-specific concurrency lint for the smq tree.

Encodes the repo conventions that generic tooling cannot check:

  order    every operation on a std::atomic must pass an explicit
           std::memory_order argument (operator forms like ++/+=/= are
           implicit seq_cst and are banned outright).
  seq-cst  memory_order_seq_cst is permitted only with an inline
           waiver comment stating why the full barrier is load-bearing:
               // smq-lint: seq-cst <reason>
  pin      a call to a function marked SMQ_REQUIRES_PIN (it dereferences
           epoch-retireable nodes) must sit lexically inside an
           EpochManager::Guard scope, inside another SMQ_REQUIRES_PIN
           function, or carry a `// smq-lint: no-pin <reason>` waiver.
           Only files mentioning EpochManager are checked.
  pad      per-thread state stored in an array sized by num_threads must
           be cacheline-padded (Padded<T> / alignas). Waiver:
           `// smq-lint: no-pad <reason>`.
  rand     std::rand / srand / wall-clock seeding are banned in src/
           (runs must be reproducible from --seed). Waiver:
           `// smq-lint: rand-ok <reason>`.

A waiver comment covers its own line and the four lines that follow it.
The linter is purely lexical by design: no compiler, no third-party
packages, fast enough for a pre-commit hook.

Usage:
  tools/concurrency_lint.py [--root DIR] [--report FILE]
  tools/concurrency_lint.py --self-test [--root DIR]

Exit status: 0 when clean, 1 when violations were found, 2 on usage
errors. --self-test lints every fixture under tests/lint_fixtures/:
good_*.h must be clean, bad_<rule>_*.h must trip exactly <rule>.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

ATOMIC_OPS = (
    "load|store|exchange|compare_exchange_weak|compare_exchange_strong|"
    "fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|test_and_set|clear"
)

WAIVER_RE = re.compile(r"//\s*smq-lint:\s*(seq-cst|no-pin|no-pad|rand-ok)\b")
WAIVER_WINDOW = 4  # a waiver covers its line plus the next N lines

ATOMIC_DECL_RE = re.compile(r"std::atomic<[^;{}]*?>\s*&?\s*(\w+)")
ATOMIC_FLAG_DECL_RE = re.compile(r"std::atomic_flag\s+(\w+)")
ATOMIC_CALL_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*(" + ATOMIC_OPS + r")\s*\(")
ATOMIC_TYPE_ON_LINE_RE = re.compile(r"std::atomic")

SEQ_CST_RE = re.compile(r"memory_order_seq_cst")

PIN_MARKER = "SMQ_REQUIRES_PIN"
GUARD_RE = re.compile(r"EpochManager::[Gg]uard\b")

VECTOR_DECL_RE = re.compile(r"std::vector<\s*(.+?)\s*>\s+(\w+)")
PAD_EXEMPT_ELEM_RE = re.compile(
    r"Padded<|alignas|unique_ptr|shared_ptr|jthread|std::thread")

RAND_RE = re.compile(
    r"std::rand\b|\bsrand\s*\(|std::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)|"
    r"random_device")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def mask_comments_and_strings(text: str) -> str:
    """Replace comment and string literal contents with spaces, keeping
    newlines so positions and line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.masked = mask_comments_and_strings(text)
        self.line_starts = [0]
        for m in re.finditer("\n", text):
            self.line_starts.append(m.end())
        # rule -> set of line numbers covered by a waiver
        self.waivers: dict[str, set[int]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = WAIVER_RE.search(line)
            if m:
                covered = self.waivers.setdefault(m.group(1), set())
                covered.update(range(lineno, lineno + WAIVER_WINDOW + 1))
        # brace depth *before* each character of the masked text
        self.depth = [0] * (len(self.masked) + 1)
        d = 0
        for i, ch in enumerate(self.masked):
            self.depth[i] = d
            if ch == "{":
                d += 1
            elif ch == "}":
                d = max(0, d - 1)
        self.depth[len(self.masked)] = d
        # per-file atomic names (for the operator-form ban)
        self.atomic_names = set(ATOMIC_DECL_RE.findall(self.masked))
        self.atomic_names.update(ATOMIC_FLAG_DECL_RE.findall(self.masked))

    def line_of(self, pos: int) -> int:
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def waived(self, rule: str, lineno: int) -> bool:
        return lineno in self.waivers.get(rule, set())

    def enclosing_block_end(self, pos: int) -> int:
        """Position of the '}' closing the block that contains `pos`.

        depth[] holds the depth *before* each character, so the closing
        brace of a block whose interior sits at depth `base` is the
        first '}' whose before-depth equals `base`.
        """
        base = self.depth[pos]
        if base == 0:
            return len(self.masked)
        for i in range(pos, len(self.masked)):
            if self.masked[i] == "}" and self.depth[i] == base:
                return i
        return len(self.masked)


def balanced_args(masked: str, open_paren: int) -> str:
    """Argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(masked)):
        if masked[i] == "(":
            depth += 1
        elif masked[i] == ")":
            depth -= 1
            if depth == 0:
                return masked[open_paren + 1 : i]
    return masked[open_paren + 1 :]


def find_pin_marked(src: SourceFile):
    """(name, def_start, body_end) for each SMQ_REQUIRES_PIN function.

    The marker sits between the parameter list and the body (or the ';'
    of a declaration): `T name(args) [const] [noexcept] SMQ_REQUIRES_PIN`.
    """
    results = []
    for m in re.finditer(re.escape(PIN_MARKER), src.masked):
        # Walk back over const/noexcept/whitespace to the ')' closing
        # the parameter list.
        j = m.start() - 1
        while j >= 0:
            tail = src.masked[max(0, j - 9) : j + 1]
            if src.masked[j].isspace():
                j -= 1
            elif tail.endswith("const"):
                j -= len("const")
            elif tail.endswith("noexcept"):
                j -= len("noexcept")
            else:
                break
        if j < 0 or src.masked[j] != ")":
            continue  # the macro definition itself, or something odd
        depth = 0
        while j >= 0:
            if src.masked[j] == ")":
                depth += 1
            elif src.masked[j] == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        k = j - 1
        while k >= 0 and src.masked[k].isspace():
            k -= 1
        name_end = k + 1
        while k >= 0 and (src.masked[k].isalnum() or src.masked[k] == "_"):
            k -= 1
        name = src.masked[k + 1 : name_end]
        if not name:
            continue
        # Body span: the '{' after the marker (if this is a definition).
        body_end = m.end()
        t = m.end()
        while t < len(src.masked) and src.masked[t].isspace():
            t += 1
        if t < len(src.masked) and src.masked[t] == "{":
            d = 0
            for i in range(t, len(src.masked)):
                if src.masked[i] == "{":
                    d += 1
                elif src.masked[i] == "}":
                    d -= 1
                    if d == 0:
                        body_end = i + 1
                        break
        results.append((name, k + 1, body_end))
    return results


def lint_file(src: SourceFile, global_atomics: set, pin_marked_names: set,
              check_atomics: bool) -> list:
    violations = []
    masked = src.masked

    # --- order: atomic ops must pass an explicit memory_order ----------
    if check_atomics:
        for m in ATOMIC_CALL_RE.finditer(masked):
            receiver, op = m.group(1), m.group(2)
            if receiver not in global_atomics:
                continue
            open_paren = masked.index("(", m.end() - 1)
            args = balanced_args(masked, open_paren)
            lineno = src.line_of(m.start())
            if "memory_order" not in args:
                violations.append(Violation(
                    src.path, lineno, "order",
                    f"atomic op `{receiver}.{op}(...)` without an explicit "
                    f"std::memory_order argument (implicit seq_cst)"))

        # operator forms on atomics declared in this file: ++ -- += etc.
        # and plain assignment, all of which are implicit seq_cst.
        # Names that are *also* declared as plain variables in this file
        # (e.g. a local `epoch` next to an atomic member `epoch`) are
        # skipped — a lexical pass cannot tell the two apart.
        for name in src.atomic_names:
            has_plain_decl = False
            for pd in re.finditer(
                    r"[\w>*&\]]\s+" + re.escape(name) + r"\s*[=;{]", masked):
                decl_line_no = src.line_of(pd.start())
                start = src.line_starts[decl_line_no - 1]
                end = (src.line_starts[decl_line_no]
                       if decl_line_no < len(src.line_starts) else len(masked))
                if "atomic" not in masked[start:end]:
                    has_plain_decl = True
                    break
            if has_plain_decl:
                continue
            # Plain assignment is only checked for unqualified uses:
            # `x.name = v` may be a plain field of another type that
            # happens to share the atomic's name.
            op_re = re.compile(
                r"\b" + re.escape(name) + r"\s*(\+\+|--|[+\-|&^]=)"
                r"|(?<![.\w])(?<!->)" + re.escape(name) + r"\s*=(?![=])"
                r"|(\+\+|--)\s*" + re.escape(name) + r"\b")
            for m in op_re.finditer(masked):
                lineno = src.line_of(m.start())
                line_text = masked[src.line_starts[lineno - 1]:
                                   src.line_starts[lineno]
                                   if lineno < len(src.line_starts)
                                   else len(masked)]
                # Skip declarations/initialisations of the atomic itself.
                if ATOMIC_TYPE_ON_LINE_RE.search(line_text):
                    continue
                violations.append(Violation(
                    src.path, lineno, "order",
                    f"operator form on atomic `{name}` (implicit seq_cst); "
                    f"use .load/.store/.fetch_* with an explicit order"))

        # --- seq-cst: full barriers need a written justification -------
        for m in SEQ_CST_RE.finditer(masked):
            lineno = src.line_of(m.start())
            if not src.waived("seq-cst", lineno):
                violations.append(Violation(
                    src.path, lineno, "seq-cst",
                    "memory_order_seq_cst without a "
                    "`// smq-lint: seq-cst <reason>` waiver"))

    # --- pin: marked calls need a Guard scope --------------------------
    if "EpochManager" in src.text and pin_marked_names:
        defs = find_pin_marked(src)
        def_spans = [(start, end) for (_n, start, end) in defs]
        guard_spans = []
        for g in GUARD_RE.finditer(masked):
            guard_spans.append((g.start(), src.enclosing_block_end(g.start())))

        def inside(spans, pos):
            return any(s <= pos < e for (s, e) in spans)

        for name in sorted(pin_marked_names):
            call_re = re.compile(r"(?<![\w:~])" + re.escape(name) + r"\s*\(")
            for m in call_re.finditer(masked):
                pos = m.start()
                if inside(def_spans, pos):
                    continue  # the definition itself, or inside a marked body
                lineno = src.line_of(pos)
                if inside(guard_spans, pos):
                    continue
                if src.waived("no-pin", lineno):
                    continue
                violations.append(Violation(
                    src.path, lineno, "pin",
                    f"call to `{name}` (SMQ_REQUIRES_PIN) outside an "
                    f"EpochManager::Guard scope"))

    # --- pad: per-thread arrays must be cacheline padded ---------------
    for m in VECTOR_DECL_RE.finditer(masked):
        elem, name = m.group(1), m.group(2)
        if PAD_EXEMPT_ELEM_RE.search(elem):
            continue
        sized_by_threads = re.search(
            r"\b" + re.escape(name) +
            r"\s*(?:\(|\{|\.resize\s*\(|\.reserve\s*\()\s*[^;)]*num_threads",
            masked)
        if not sized_by_threads:
            continue
        lineno = src.line_of(m.start())
        if src.waived("no-pad", lineno):
            continue
        violations.append(Violation(
            src.path, lineno, "pad",
            f"`{name}` holds per-thread state (sized by num_threads) but "
            f"`{elem}` is not Padded<>/alignas-ed (false sharing)"))

    # --- rand: reproducibility -----------------------------------------
    for m in RAND_RE.finditer(masked):
        lineno = src.line_of(m.start())
        if src.waived("rand-ok", lineno):
            continue
        violations.append(Violation(
            src.path, lineno, "rand",
            "std::rand / wall-clock seeding is banned in src/ "
            "(seed through support/rng.h so runs reproduce)"))

    return violations


# The default scan set, spelled out so a new src/ subsystem must be
# added here deliberately (and a renamed one fails loudly instead of
# silently dropping out of the lint).
SCAN_DIRS = [
    "algorithms", "core", "graph", "queues", "rank", "registry",
    "sched", "service", "support", "tuning",
]


def collect_sources(root: str):
    files = []
    src_dir = os.path.join(root, "src")
    for subdir in SCAN_DIRS:
        scan_root = os.path.join(src_dir, subdir)
        if not os.path.isdir(scan_root):
            raise SystemExit(
                f"concurrency_lint: scan dir {scan_root} is missing; "
                "update SCAN_DIRS in tools/concurrency_lint.py")
        for dirpath, _dirs, names in os.walk(scan_root):
            for name in sorted(names):
                if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                    files.append(os.path.join(dirpath, name))
    # Anything sitting directly in src/ (or in a dir not listed above)
    # would dodge the lint: fail so the list stays exhaustive.
    for dirpath, dirs, names in os.walk(src_dir):
        if dirpath == src_dir:
            unlisted = sorted(set(dirs) - set(SCAN_DIRS))
            if unlisted:
                raise SystemExit(
                    f"concurrency_lint: src/ dirs {unlisted} are not in "
                    "SCAN_DIRS; add them in tools/concurrency_lint.py")
            stray = [n for n in names
                     if n.endswith((".h", ".hpp", ".cc", ".cpp"))]
            if stray:
                raise SystemExit(
                    f"concurrency_lint: sources {sorted(stray)} sit "
                    "directly in src/; move them into a SCAN_DIRS subdir")
        break
    return files


def run_lint(paths, atomic_dirs=None):
    sources = []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            sources.append(SourceFile(path, f.read()))

    global_atomics = set()
    pin_marked = set()
    for src in sources:
        global_atomics |= src.atomic_names
        for (name, _s, _e) in find_pin_marked(src):
            if name != "SMQ_REQUIRES_PIN":
                pin_marked.add(name)

    violations = []
    for src in sources:
        check_atomics = True
        if atomic_dirs is not None:
            check_atomics = any(d in src.path for d in atomic_dirs)
        violations.extend(
            lint_file(src, global_atomics, pin_marked, check_atomics))
    return violations


def self_test(root: str) -> int:
    fixtures_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixtures_dir):
        print(f"self-test: no fixtures directory at {fixtures_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    count = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith((".h", ".hpp", ".cc", ".cpp")):
            continue
        path = os.path.join(fixtures_dir, name)
        violations = run_lint([path])
        count += 1
        if name.startswith("good_"):
            if violations:
                failures += 1
                print(f"FAIL {name}: expected clean, got:")
                for v in violations:
                    print(f"  {v}")
            else:
                print(f"ok   {name}: clean as expected")
        elif name.startswith("bad_"):
            rule = name.split("_")[1].replace(".h", "")
            hit = [v for v in violations if v.rule == rule]
            if not hit:
                failures += 1
                print(f"FAIL {name}: expected a [{rule}] violation, got "
                      f"{[str(v) for v in violations] or 'nothing'}")
            else:
                print(f"ok   {name}: tripped [{rule}] as expected")
        else:
            failures += 1
            print(f"FAIL {name}: fixture names must start with good_ or bad_")
    if count == 0:
        print("self-test: no fixtures found", file=sys.stderr)
        return 2
    print(f"self-test: {count - failures}/{count} fixtures behaved")
    return 1 if failures else 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument("--report", default=None,
                        help="also write the violation list to this file")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixtures under tests/lint_fixtures/")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.root)

    paths = collect_sources(args.root)
    if not paths:
        print(f"no sources found under {args.root}/src", file=sys.stderr)
        return 2
    violations = run_lint(paths)
    report_lines = [str(v) for v in violations]
    for line in report_lines:
        print(line)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write("\n".join(report_lines) + ("\n" if report_lines else ""))
            f.write(f"# {len(violations)} violation(s) across "
                    f"{len(paths)} file(s)\n")
    print(f"{len(violations)} violation(s) across {len(paths)} file(s)",
          file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
