// Epoch-based memory reclamation (EBR) for the lock-free structures.
//
// The classic three-epoch scheme (Fraser's thesis; crossbeam-epoch is
// the best-known production shape): readers *pin* the current global
// epoch before touching shared nodes and unpin when done; writers
// *retire* unlinked nodes into the retiring thread's limbo list stamped
// with the global epoch at retirement. The global epoch may advance
// from E to E+1 only when every pinned thread is pinned at E, so once
// it reaches R+2 no reader that could have seen a node retired at R is
// still pinned — the node is unreachable (unlinked before retire) and
// invisible (every pre-unlink reader has unpinned), and its deleter may
// run.
//
// Design notes:
//  - One padded slot per thread; pin/unpin are a seq_cst store + load
//    on the own slot (no CAS, no contention between readers).
//  - The pin store must be re-checked against the global epoch: a
//    thread that publishes a stale epoch E-1 after the collector
//    already scanned its slot would be invisible to the advance that
//    unlocks E+1 reclamation. The store-reload loop below (same as
//    crossbeam's `pin`) closes that window.
//  - Limbo lists are strictly thread-local; entries carry a deleter
//    function pointer + context so one manager can serve structures
//    with different reclamation policies (free-list reuse for skiplist
//    nodes, plain delete for chunks).
//  - Epoch advance and limbo drain are piggybacked on every Nth
//    outermost unpin — no dedicated collector thread. Idle threads
//    call quiesce() (the service does this before parking) so memory
//    retires between query bursts even when nobody is pushing.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/padding.h"

namespace smq {

class EpochManager {
 public:
  /// Slot value of a thread that is not currently pinned.
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  /// Deleter invoked (on the retiring thread) once a retired pointer's
  /// grace period has elapsed.
  using Deleter = void (*)(void* ptr, void* ctx);

  explicit EpochManager(unsigned num_threads)
      : slots_(num_threads == 0 ? 1 : num_threads) {}

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Callers must have joined every participating thread first; any
  /// limbo entries still pending are freed unconditionally.
  ~EpochManager() { drain_all(); }

  unsigned num_threads() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

  /// RAII pin: construction pins `tid`, destruction unpins. Nests — an
  /// inner guard on an already-pinned thread is a counter bump.
  class Guard {
   public:
    Guard() noexcept = default;
    Guard(EpochManager* manager, unsigned tid) noexcept
        : manager_(manager), tid_(tid) {
      if (manager_ != nullptr) manager_->pin(tid_);
    }
    Guard(Guard&& other) noexcept : manager_(other.manager_), tid_(other.tid_) {
      other.manager_ = nullptr;
    }
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() {
      if (manager_ != nullptr) manager_->unpin(tid_);
    }

   private:
    EpochManager* manager_ = nullptr;
    unsigned tid_ = 0;
  };

  /// Guard for `tid` on this manager; `guard(nullptr, tid)` composes
  /// with reclamation-disabled callers (a no-op guard).
  static Guard guard(EpochManager* manager, unsigned tid) noexcept {
    return Guard(manager, tid);
  }

  /// Enter a read-side critical section. While pinned, pointers read
  /// from a protected structure stay valid even if concurrently
  /// retired. Reentrant (counted).
  void pin(unsigned tid) noexcept {
    Slot& slot = slots_[tid].value;
    if (slot.depth++ > 0) return;
    std::uint64_t epoch = global_.load(std::memory_order_relaxed);
    while (true) {
      // seq_cst store + seq_cst reload: the store-load (Dekker) fence
      // against try_advance's scan — either the collector's scan sees
      // our slot, or we see the advanced epoch and re-publish. Neither
      // acq_rel nor release orders a store before a later load.
      // smq-lint: seq-cst pin publish must precede the global re-check
      slot.epoch.store(epoch, std::memory_order_seq_cst);
      // smq-lint: seq-cst second half of the store-load fence
      const std::uint64_t now = global_.load(std::memory_order_seq_cst);
      if (now == epoch) return;
      epoch = now;
    }
  }

  /// Leave the critical section. Every kAdvancePeriod-th outermost
  /// unpin (or earlier if the limbo list got long) tries to advance the
  /// epoch and drains this thread's eligible limbo entries.
  void unpin(unsigned tid) noexcept {
    Slot& slot = slots_[tid].value;
    assert(slot.depth > 0 && "unpin without matching pin");
    if (--slot.depth > 0) return;
    slot.epoch.store(kQuiescent, std::memory_order_release);
    if ((++slot.unpins % kAdvancePeriod) == 0 ||
        slot.limbo.size() >= kLimboHighWater) {
      try_advance();
      drain(tid);
    }
  }

  bool pinned(unsigned tid) const noexcept {
    return slots_[tid].value.depth > 0;
  }

  /// Defer reclamation of `ptr` until two epoch advances have passed.
  /// Call on the thread that unlinked the pointer (usually while still
  /// pinned); the deleter later runs on this same thread, so `ctx` may
  /// point at thread-local state such as a free list.
  void retire(unsigned tid, void* ptr, Deleter deleter, void* ctx) {
    Slot& slot = slots_[tid].value;
    slot.limbo.push_back(
        {ptr, deleter, ctx, global_.load(std::memory_order_acquire)});
    slot.limbo_count.store(slot.limbo.size(), std::memory_order_relaxed);
  }

  /// Advance the global epoch by one if every pinned thread has caught
  /// up with it. Returns whether the epoch moved.
  bool try_advance() noexcept {
    // Acquire is enough here: this load only picks the CAS's expected
    // value. A stale read either fails the slot scan (advance is
    // best-effort) or loses the CAS — never a wrongful advance.
    std::uint64_t epoch = global_.load(std::memory_order_acquire);
    for (const auto& padded : slots_) {
      // Scan side of the Dekker fence against pin(): a pin store the
      // previous advance's CAS missed is ordered before that CAS in the
      // seq_cst total order, so this scan is guaranteed to see it and
      // hold the epoch — the two-advance grace period depends on it.
      // smq-lint: seq-cst scan must observe any pin the last CAS missed
      const std::uint64_t seen =
          padded.value.epoch.load(std::memory_order_seq_cst);
      if (seen != kQuiescent && seen != epoch) return false;
    }
    // A lost CAS means someone else advanced past us — also progress.
    // The success order stays seq_cst: the proof that a concurrently
    // pinning thread re-checks the new epoch orders its slot store
    // before this CAS in the seq_cst total order, which requires the
    // CAS itself to participate in that order.
    // smq-lint: seq-cst CAS anchors the pin store-load fence ordering
    global_.compare_exchange_strong(epoch, epoch + 1,
                                    std::memory_order_seq_cst,
                                    std::memory_order_relaxed);
    return true;
  }

  /// Idle hook: advance if possible and drain this thread's limbo.
  /// Must be called unpinned (the service calls it before parking).
  void quiesce(unsigned tid) noexcept {
    assert(slots_[tid].value.depth == 0 && "quiesce while pinned");
    try_advance();
    drain(tid);
  }

  std::uint64_t global_epoch() const noexcept {
    return global_.load(std::memory_order_acquire);
  }

  /// Entries waiting in limbo across all threads (any-thread safe).
  std::size_t retired_count() const noexcept {
    std::size_t total = 0;
    for (const auto& padded : slots_) {
      total += padded.value.limbo_count.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Run every pending deleter regardless of epoch. Only valid once all
  /// participating threads are quiescent (e.g. joined) — destructors of
  /// the protected structures call this before freeing their arenas.
  void drain_all() {
    for (auto& padded : slots_) {
      Slot& slot = padded.value;
      for (const Retired& entry : slot.limbo) {
        entry.deleter(entry.ptr, entry.ctx);
      }
      slot.limbo.clear();
      slot.limbo_count.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Retired {
    void* ptr;
    Deleter deleter;
    void* ctx;
    std::uint64_t epoch;
  };

  struct Slot {
    std::atomic<std::uint64_t> epoch{kQuiescent};
    // Owner-thread-only state below (no concurrent access).
    unsigned depth = 0;
    std::uint64_t unpins = 0;
    std::vector<Retired> limbo;
    // Mirror of limbo.size() readable from any thread (footprint stat).
    std::atomic<std::size_t> limbo_count{0};
  };

  // Advance/drain cadence: cheap enough to keep limbo short, rare
  // enough to stay invisible on the batched hot path.
  static constexpr std::uint64_t kAdvancePeriod = 64;
  static constexpr std::size_t kLimboHighWater = 1024;

  /// Free the limbo prefix whose grace period (two advances past the
  /// retirement epoch) has elapsed. Entries are appended with
  /// non-decreasing epochs, so eligibility is a prefix property.
  void drain(unsigned tid) {
    Slot& slot = slots_[tid].value;
    if (slot.limbo.empty()) return;
    const std::uint64_t global = global_.load(std::memory_order_acquire);
    std::size_t freed = 0;
    while (freed < slot.limbo.size() &&
           slot.limbo[freed].epoch + 2 <= global) {
      slot.limbo[freed].deleter(slot.limbo[freed].ptr, slot.limbo[freed].ctx);
      ++freed;
    }
    if (freed > 0) {
      slot.limbo.erase(slot.limbo.begin(),
                       slot.limbo.begin() + static_cast<std::ptrdiff_t>(freed));
      slot.limbo_count.store(slot.limbo.size(), std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t> global_{0};
  std::vector<Padded<Slot>> slots_;
};

}  // namespace smq
