// The task type flowing through every scheduler in this library.
//
// All schedulers in the paper order *fixed-width integer priorities*
// (Galois' "ordered by integer metric"); payloads identify the work item
// (e.g. a graph vertex). Keeping the task at 16 trivially copyable bytes
// lets the stealing buffer publish tasks through relaxed atomics.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace smq {

struct Task {
  std::uint64_t priority = kInfinity;  // smaller = more urgent
  std::uint64_t payload = 0;

  static constexpr std::uint64_t kInfinity =
      std::numeric_limits<std::uint64_t>::max();

  friend constexpr auto operator<=>(const Task& a, const Task& b) noexcept {
    // Priority first; payload as a tiebreaker gives a strict total order,
    // which the skip-list based queues need for unique keys.
    if (auto cmp = a.priority <=> b.priority; cmp != 0) return cmp;
    return a.payload <=> b.payload;
  }
  friend constexpr bool operator==(const Task&, const Task&) noexcept = default;
};

static_assert(sizeof(Task) == 16);

/// A sentinel no-task value (priority == infinity).
inline constexpr Task kNoTask{};

}  // namespace smq
