// Simulated NUMA topology.
//
// The paper's NUMA-aware sampling (Section 4) only needs to know which
// *node* a thread and a queue belong to, and with what weight a remote
// queue should be sampled. Real sockets are not available in this
// environment (documented in DESIGN.md), so the topology is virtual:
// threads are partitioned round-robin into `nodes` groups. The sampling
// code path is identical to a physical-NUMA deployment.
#pragma once

#include <cstdint>
#include <vector>

namespace smq {

class Topology {
 public:
  /// Partition `num_threads` threads into `num_nodes` virtual NUMA nodes,
  /// blocked (threads [0, ceil/floor splits) on node 0, ...), mirroring
  /// how cores are numbered on the paper's EPYC/Xeon machines. The split
  /// is balanced: node occupancies differ by at most one, and no node is
  /// ever left empty (num_nodes is clamped to num_threads).
  Topology(unsigned num_threads, unsigned num_nodes);

  /// Single-node fallback (UMA).
  static Topology uma(unsigned num_threads) { return Topology(num_threads, 1); }

  unsigned num_threads() const noexcept { return num_threads_; }
  unsigned num_nodes() const noexcept { return num_nodes_; }

  unsigned node_of_thread(unsigned tid) const noexcept {
    return thread_node_[tid];
  }

  /// Threads living on `node`.
  const std::vector<unsigned>& threads_of_node(unsigned node) const noexcept {
    return node_threads_[node];
  }

  /// Expected fraction of queue choices that stay on the chooser's node
  /// when remote queues get weight 1/K — the paper's "NUMA-friendliness"
  /// metric E (Section 4). Assumes queues are distributed like threads.
  double expected_internal_fraction(double k_weight) const noexcept;

 private:
  unsigned num_threads_;
  unsigned num_nodes_;
  std::vector<unsigned> thread_node_;
  std::vector<std::vector<unsigned>> node_threads_;
};

}  // namespace smq
