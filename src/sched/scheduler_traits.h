// The scheduler concept every priority scheduler in this library models.
//
// Mirrors Galois' WorkList interface: per-thread push/pop with an
// optional flush for schedulers that buffer inserts locally (the
// executor must flush before trusting an empty pop for termination).
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "sched/stats.h"
#include "sched/task.h"

namespace smq {

template <typename S>
concept PriorityScheduler = requires(S s, unsigned tid, Task t) {
  { s.push(tid, t) } -> std::same_as<void>;
  { s.try_pop(tid) } -> std::same_as<std::optional<Task>>;
  { s.num_threads() } -> std::convertible_to<unsigned>;
};

template <typename S>
concept FlushableScheduler = PriorityScheduler<S> && requires(S s, unsigned tid) {
  { s.flush(tid) } -> std::same_as<void>;
};

/// Schedulers with a native bulk insert (one lock acquisition / one
/// boundary crossing for the whole span).
template <typename S>
concept BatchPushScheduler =
    PriorityScheduler<S> &&
    requires(S s, unsigned tid, std::span<const Task> tasks) {
      { s.push_batch(tid, tasks) } -> std::same_as<void>;
    };

/// Schedulers with a native bulk extract: append up to `max` tasks to
/// `out`, return how many were taken (0 = nothing available right now).
template <typename S>
concept BatchPopScheduler =
    PriorityScheduler<S> &&
    requires(S s, unsigned tid, std::vector<Task>& out, std::size_t max) {
      { s.try_pop_batch(tid, out, max) } -> std::convertible_to<std::size_t>;
    };

/// Schedulers that keep their own per-thread counters (steals, NUMA
/// remote touches, ...) and can fold them into the executor's
/// ThreadStats after a run. The executor calls this once per thread,
/// after the workers have joined, so implementations need no
/// synchronization beyond plain reads of their own slots.
template <typename S>
concept StatReportingScheduler =
    PriorityScheduler<S> && requires(const S s, unsigned tid, ThreadStats& st) {
      { s.collect_stats(tid, st) } -> std::same_as<void>;
    };

/// Merge scheduler-private counters into `st` if the scheduler has any.
template <PriorityScheduler S>
void collect_stats_if_supported(const S& sched, unsigned tid, ThreadStats& st) {
  if constexpr (StatReportingScheduler<S>) sched.collect_stats(tid, st);
}

/// Flush local insert buffers if the scheduler has any.
template <PriorityScheduler S>
void flush_if_supported(S& sched, unsigned tid) {
  if constexpr (FlushableScheduler<S>) sched.flush(tid);
}

/// Bulk insert: native batch op when the scheduler has one, otherwise a
/// plain per-task loop. Either way the caller pays one call per batch at
/// its own dispatch boundary (the point of AnyScheduler's batch virtuals).
template <PriorityScheduler S>
void push_batch_adapted(S& sched, unsigned tid, std::span<const Task> tasks) {
  if constexpr (BatchPushScheduler<S>) {
    sched.push_batch(tid, tasks);
  } else {
    for (const Task& t : tasks) sched.push(tid, t);
  }
}

/// Bulk extract into `out` (appended), up to `max` tasks; returns the
/// number taken. The loop fallback stops at the first empty pop, so a 0
/// return means the same thing it does for native implementations: the
/// scheduler had nothing for this thread at this moment.
template <PriorityScheduler S>
std::size_t try_pop_batch_adapted(S& sched, unsigned tid,
                                  std::vector<Task>& out, std::size_t max) {
  if constexpr (BatchPopScheduler<S>) {
    return sched.try_pop_batch(tid, out, max);
  } else {
    std::size_t taken = 0;
    while (taken < max) {
      std::optional<Task> task = sched.try_pop(tid);
      if (!task) break;
      out.push_back(*task);
      ++taken;
    }
    return taken;
  }
}

}  // namespace smq
