// The scheduler concept every priority scheduler in this library models.
//
// Mirrors Galois' WorkList interface: per-thread push/pop with an
// optional flush for schedulers that buffer inserts locally (the
// executor must flush before trusting an empty pop for termination).
#pragma once

#include <concepts>
#include <optional>

#include "sched/task.h"

namespace smq {

template <typename S>
concept PriorityScheduler = requires(S s, unsigned tid, Task t) {
  { s.push(tid, t) } -> std::same_as<void>;
  { s.try_pop(tid) } -> std::same_as<std::optional<Task>>;
  { s.num_threads() } -> std::convertible_to<unsigned>;
};

template <typename S>
concept FlushableScheduler = PriorityScheduler<S> && requires(S s, unsigned tid) {
  { s.flush(tid) } -> std::same_as<void>;
};

/// Flush local insert buffers if the scheduler has any.
template <PriorityScheduler S>
void flush_if_supported(S& sched, unsigned tid) {
  if constexpr (FlushableScheduler<S>) sched.flush(tid);
}

}  // namespace smq
