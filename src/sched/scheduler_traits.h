// The scheduler concept family every priority scheduler in this library
// models, and the per-thread *handle* API the executor runs on.
//
// Two layers:
//
//  * The classic tid-indexed surface (PriorityScheduler and friends),
//    mirroring Galois' WorkList interface: `push(tid, t)`, `try_pop(tid)`,
//    with optional flush/batch/stat extensions detected per scheduler.
//    Every call re-derives the thread's state (local queue, RNG,
//    stickiness slot, ...) from the tid.
//  * The handle surface (SchedulerHandle / HandleScheduler): a scheduler
//    hands out one lightweight `S::Handle` per thread via `s.handle(tid)`.
//    The handle resolves the thread's slots *once* — it owns direct
//    pointers into them — and exposes the uniform hot-path interface
//    `push / try_pop / push_batch / try_pop_batch / flush / collect_stats`
//    with no tid argument. The executor acquires one handle per thread
//    per run, so per-op work drops to the operation itself.
//
// Schedulers that only implement the tid surface keep working: the
// `handle_adapted()` shim wraps them in a TidHandle that forwards each
// operation through the legacy calls (using the same *_adapted helpers
// AnyScheduler's batch virtuals use), so the executor needs exactly one
// code path. A handle's flush() must publish everything its scheduler's
// tid-level flush would — the executor trusts an empty pop for
// termination only after flushing through the handle.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "sched/stats.h"
#include "sched/task.h"

namespace smq {

template <typename S>
concept PriorityScheduler = requires(S s, unsigned tid, Task t) {
  { s.push(tid, t) } -> std::same_as<void>;
  { s.try_pop(tid) } -> std::same_as<std::optional<Task>>;
  { s.num_threads() } -> std::convertible_to<unsigned>;
};

template <typename S>
concept FlushableScheduler = PriorityScheduler<S> && requires(S s, unsigned tid) {
  { s.flush(tid) } -> std::same_as<void>;
};

/// Schedulers with a native bulk insert (one lock acquisition / one
/// boundary crossing for the whole span).
template <typename S>
concept BatchPushScheduler =
    PriorityScheduler<S> &&
    requires(S s, unsigned tid, std::span<const Task> tasks) {
      { s.push_batch(tid, tasks) } -> std::same_as<void>;
    };

/// Schedulers with a native bulk extract: append up to `max` tasks to
/// `out`, return how many were taken (0 = nothing available right now).
template <typename S>
concept BatchPopScheduler =
    PriorityScheduler<S> &&
    requires(S s, unsigned tid, std::vector<Task>& out, std::size_t max) {
      { s.try_pop_batch(tid, out, max) } -> std::convertible_to<std::size_t>;
    };

/// Schedulers that keep their own per-thread counters (steals, NUMA
/// remote touches, ...) and can fold them into the executor's
/// ThreadStats after a run. The executor calls this once per thread,
/// after the workers have joined, so implementations need no
/// synchronization beyond plain reads of their own slots.
template <typename S>
concept StatReportingScheduler =
    PriorityScheduler<S> && requires(const S s, unsigned tid, ThreadStats& st) {
      { s.collect_stats(tid, st) } -> std::same_as<void>;
    };

/// Schedulers whose lock-free structures defer memory reclamation
/// through an EpochManager. quiesce(tid) is the idle hook: called on a
/// thread that is about to park (and holds no epoch guard), it gives
/// the manager a chance to advance the global epoch and drain that
/// thread's retire list, so memory is reclaimed between query bursts
/// rather than only under load. Handles of such schedulers pin the
/// epoch once per operation or batch — never per pointer.
template <typename S>
concept ReclaimingScheduler = PriorityScheduler<S> && requires(S s, unsigned tid) {
  { s.quiesce(tid) } -> std::same_as<void>;
};

/// Schedulers that can report the bytes their queues currently hold
/// (arenas, chunk pools, retire lists). Advisory and any-thread safe —
/// the service surfaces it as a steady-state footprint stat.
template <typename S>
concept MemoryReportingScheduler =
    PriorityScheduler<S> && requires(const S s) {
      { s.memory_footprint() } -> std::convertible_to<std::size_t>;
    };

/// Idle hook: let the scheduler advance reclamation if it defers any.
template <PriorityScheduler S>
void quiesce_if_supported(S& sched, unsigned tid) {
  if constexpr (ReclaimingScheduler<S>) sched.quiesce(tid);
}

/// Bytes held by the scheduler's queues, 0 when it does not report.
template <PriorityScheduler S>
std::size_t memory_footprint_if_supported(const S& sched) {
  if constexpr (MemoryReportingScheduler<S>) return sched.memory_footprint();
  return 0;
}

/// Merge scheduler-private counters into `st` if the scheduler has any.
template <PriorityScheduler S>
void collect_stats_if_supported(const S& sched, unsigned tid, ThreadStats& st) {
  if constexpr (StatReportingScheduler<S>) sched.collect_stats(tid, st);
}

/// Flush local insert buffers if the scheduler has any.
template <PriorityScheduler S>
void flush_if_supported(S& sched, unsigned tid) {
  if constexpr (FlushableScheduler<S>) sched.flush(tid);
}

/// Bulk insert: native batch op when the scheduler has one, otherwise a
/// plain per-task loop. Either way the caller pays one call per batch at
/// its own dispatch boundary (the point of AnyScheduler's batch virtuals).
template <PriorityScheduler S>
void push_batch_adapted(S& sched, unsigned tid, std::span<const Task> tasks) {
  if constexpr (BatchPushScheduler<S>) {
    sched.push_batch(tid, tasks);
  } else {
    for (const Task& t : tasks) sched.push(tid, t);
  }
}

/// Bulk extract into `out` (appended), up to `max` tasks; returns the
/// number taken. The loop fallback stops at the first empty pop, so a 0
/// return means the same thing it does for native implementations: the
/// scheduler had nothing for this thread at this moment.
template <PriorityScheduler S>
std::size_t try_pop_batch_adapted(S& sched, unsigned tid,
                                  std::vector<Task>& out, std::size_t max) {
  if constexpr (BatchPopScheduler<S>) {
    return sched.try_pop_batch(tid, out, max);
  } else {
    std::size_t taken = 0;
    while (taken < max) {
      std::optional<Task> task = sched.try_pop(tid);
      if (!task) break;
      out.push_back(*task);
      ++taken;
    }
    return taken;
  }
}

// ---- the per-thread handle surface ----------------------------------------

/// What a per-thread scheduler handle must offer: the complete hot-path
/// vocabulary with the thread identity baked in at acquisition. flush()
/// and collect_stats() are mandatory (no-ops where the scheduler buffers
/// nothing / counts nothing) so generic code never probes capabilities
/// mid-loop.
template <typename H>
concept SchedulerHandle =
    std::move_constructible<H> &&
    requires(H h, const H ch, Task t, std::span<const Task> tasks,
             std::vector<Task>& out, std::size_t max, ThreadStats& st) {
      { h.push(t) } -> std::same_as<void>;
      { h.try_pop() } -> std::same_as<std::optional<Task>>;
      { h.push_batch(tasks) } -> std::same_as<void>;
      { h.try_pop_batch(out, max) } -> std::convertible_to<std::size_t>;
      { h.flush() } -> std::same_as<void>;
      { ch.collect_stats(st) } -> std::same_as<void>;
      { ch.thread_id() } -> std::convertible_to<unsigned>;
    };

/// Shared try_pop_batch fallback for handles without a native bulk
/// extract: pop one at a time until `max` or the first empty pop, same
/// contract as try_pop_batch_adapted. Unconstrained on purpose — it is
/// called from inside Handle class bodies whose type is still
/// incomplete at that point.
template <typename H>
std::size_t handle_pop_loop(H& handle, std::vector<Task>& out,
                            std::size_t max) {
  std::size_t taken = 0;
  while (taken < max) {
    std::optional<Task> task = handle.try_pop();
    if (!task) break;
    out.push_back(*task);
    ++taken;
  }
  return taken;
}

/// A scheduler with native handles: `s.handle(tid)` resolves thread
/// `tid`'s slots once and returns the lightweight view. Handles are
/// views, not sessions — acquiring one is cheap and side-effect free,
/// any number may exist for the same tid (though, like the tid calls
/// they replace, only one thread may *use* a given tid's state at a
/// time), and they stay valid for the scheduler's lifetime.
template <typename S>
concept HandleScheduler =
    PriorityScheduler<S> && requires(S s, unsigned tid) {
      typename S::Handle;
      { s.handle(tid) } -> std::same_as<typename S::Handle>;
    } && SchedulerHandle<typename S::Handle>;

/// Handle shim for tid-indexed schedulers: forwards every operation
/// through the legacy calls, probing the optional concepts exactly like
/// the pre-handle executor did. This is what keeps a minimal
/// push/try_pop/num_threads scheduler usable during (and after) the
/// handle migration.
template <PriorityScheduler S>
class TidHandle {
 public:
  TidHandle(S& sched, unsigned tid) noexcept : sched_(&sched), tid_(tid) {}

  void push(Task t) { sched_->push(tid_, t); }
  std::optional<Task> try_pop() { return sched_->try_pop(tid_); }
  void push_batch(std::span<const Task> tasks) {
    push_batch_adapted(*sched_, tid_, tasks);
  }
  std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
    return try_pop_batch_adapted(*sched_, tid_, out, max);
  }
  void flush() { flush_if_supported(*sched_, tid_); }
  void collect_stats(ThreadStats& st) const {
    collect_stats_if_supported(*sched_, tid_, st);
  }
  unsigned thread_id() const noexcept { return tid_; }

 private:
  S* sched_;
  unsigned tid_;
};

/// The one way generic code acquires a handle: the scheduler's native
/// handle when it has one, the TidHandle shim otherwise.
template <PriorityScheduler S>
auto handle_adapted(S& sched, unsigned tid) {
  if constexpr (HandleScheduler<S>) {
    return sched.handle(tid);
  } else {
    return TidHandle<S>(sched, tid);
  }
}

/// The handle type handle_adapted() yields for S.
template <PriorityScheduler S>
using HandleOf = decltype(handle_adapted(std::declval<S&>(), 0u));

}  // namespace smq
