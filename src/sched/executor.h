// Parallel priority-task executor — the Galois-substitute runtime.
//
// Runs a fixed pool of threads against one PriorityScheduler instance.
// Each thread loops: pop a task, run the user functor (which may push
// follow-up tasks), repeat. Termination uses a global pending-task
// counter: push increments, completing a popped task decrements; a thread
// may only exit when its pop failed *after flushing its local buffers*
// and the counter reads zero. This is exact for the monotone workloads in
// the paper (tasks only create tasks while being executed).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/spinlock.h"
#include "support/timer.h"

namespace smq {

/// Per-thread handle given to the task functor; the only way user code
/// interacts with the scheduler during a run.
template <PriorityScheduler S>
class WorkContext {
 public:
  WorkContext(S& sched, unsigned tid, std::atomic<std::int64_t>& pending,
              ThreadStats& stats) noexcept
      : sched_(sched), tid_(tid), pending_(pending), stats_(stats) {}

  void push(Task t) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    sched_.push(tid_, t);
    ++stats_.pushes;
  }

  /// Mark the task being executed as wasted (stale) work.
  void mark_wasted() noexcept { ++stats_.wasted; }

  unsigned thread_id() const noexcept { return tid_; }

 private:
  S& sched_;
  unsigned tid_;
  std::atomic<std::int64_t>& pending_;
  ThreadStats& stats_;
};

namespace detail {

template <PriorityScheduler S, typename Fn>
void worker_loop(S& sched, unsigned tid, std::atomic<std::int64_t>& pending,
                 ThreadStats& stats, Fn& fn) {
  WorkContext<S> ctx(sched, tid, pending, stats);
  Backoff backoff;
  while (true) {
    std::optional<Task> task = sched.try_pop(tid);
    if (task) {
      backoff.reset();
      ++stats.pops;
      fn(*task, ctx);
      pending.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    ++stats.empty_pops;
    // Buffered inserts (task-batching variants) must become visible before
    // we can conclude the system has drained.
    flush_if_supported(sched, tid);
    if (pending.load(std::memory_order_acquire) == 0) return;
    backoff.pause();
    // Oversubscribed pools (threads > cores) must hand the core to
    // whoever holds the tasks instead of burning the timeslice.
    std::this_thread::yield();
  }
}

}  // namespace detail

/// Seeds `initial` tasks round-robin through per-thread pushes, then runs
/// `fn(task, ctx)` on `num_threads` threads until the task graph drains.
template <PriorityScheduler S, typename Fn>
RunResult run_parallel(S& sched, std::span<const Task> initial, Fn fn,
                       unsigned num_threads) {
  StatsRegistry stats(num_threads);
  std::atomic<std::int64_t> pending{0};

  // Seed from "thread 0"'s perspective; schedulers route by tid.
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const unsigned tid = static_cast<unsigned>(i % num_threads);
    pending.fetch_add(1, std::memory_order_relaxed);
    sched.push(tid, initial[i]);
    ++stats.of(tid).pushes;
  }
  for (unsigned tid = 0; tid < num_threads; ++tid) {
    flush_if_supported(sched, tid);
  }

  Timer timer;
  if (num_threads == 1) {
    detail::worker_loop(sched, 0, pending, stats.of(0), fn);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      pool.emplace_back([&, tid] {
        detail::worker_loop(sched, tid, pending, stats.of(tid), fn);
      });
    }
  }  // jthreads join here

  RunResult result;
  result.seconds = timer.seconds();
  result.stats = stats.total();
  return result;
}

}  // namespace smq
