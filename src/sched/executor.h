// Parallel priority-task executor — the Galois-substitute runtime.
//
// Runs a fixed pool of threads against one PriorityScheduler instance.
// Each thread loops: pop a task, run the user functor (which may push
// follow-up tasks), repeat. Termination uses a global pending-task
// counter: push increments, completing a popped task decrements; a thread
// may only exit when its pop failed *after flushing its local buffers*
// and the counter reads zero. This is exact for the monotone workloads in
// the paper (tasks only create tasks while being executed).
//
// Two worker loops share that protocol:
//  * per-task (batch_size == 1): the classic pop/run/decrement loop;
//  * batched (batch_size > 1): pops up to batch_size tasks with one
//    scheduler call, buffers pushes thread-locally and publishes them
//    with one scheduler call + one counter update per flush. This
//    amortizes the dispatch boundary (e.g. AnyScheduler's virtual call)
//    the same way the paper's Optimization 1 amortizes queue locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/spinlock.h"
#include "support/timer.h"

namespace smq {

/// Knobs of run_parallel that are independent of the scheduler.
struct ExecutorOptions {
  /// Tasks popped per scheduler call and buffered per push flush.
  /// 1 selects the classic per-task loop.
  std::size_t batch_size = 1;
};

/// Per-thread handle given to the task functor; the only way user code
/// interacts with the scheduler during a run.
template <PriorityScheduler S>
class WorkContext {
 public:
  WorkContext(S& sched, unsigned tid, std::atomic<std::int64_t>& pending,
              ThreadStats& stats) noexcept
      : sched_(sched), tid_(tid), pending_(pending), stats_(stats) {}

  void push(Task t) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    sched_.push(tid_, t);
    ++stats_.pushes;
  }

  /// Mark the task being executed as wasted (stale) work.
  void mark_wasted() noexcept { ++stats_.wasted; }

  unsigned thread_id() const noexcept { return tid_; }

 private:
  S& sched_;
  unsigned tid_;
  std::atomic<std::int64_t>& pending_;
  ThreadStats& stats_;
};

/// Batched counterpart of WorkContext: pushes accumulate in a per-thread
/// buffer and reach the scheduler via push_batch with a single relaxed
/// fetch_add(n) on the pending counter per flush (instead of one RMW per
/// task). Safe for termination because the counter is bumped *before* the
/// tasks become visible, and the executed tasks that created them are not
/// retired until after flush() (see batched_worker_loop).
template <PriorityScheduler S>
class BatchWorkContext {
 public:
  BatchWorkContext(S& sched, unsigned tid, std::atomic<std::int64_t>& pending,
                   ThreadStats& stats, std::vector<Task>& buffer,
                   std::size_t capacity) noexcept
      : sched_(sched),
        tid_(tid),
        pending_(pending),
        stats_(stats),
        buffer_(buffer),
        capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.clear();
    buffer_.reserve(capacity_);
  }

  void push(Task t) {
    buffer_.push_back(t);
    ++stats_.pushes;
    if (buffer_.size() >= capacity_) flush();
  }

  /// Publish every buffered task. Counter first, then tasks: a task must
  /// never be poppable before it is counted, or another thread could read
  /// pending == 0 with work still in flight.
  void flush() {
    if (buffer_.empty()) return;
    pending_.fetch_add(static_cast<std::int64_t>(buffer_.size()),
                       std::memory_order_relaxed);
    push_batch_adapted(sched_, tid_, std::span<const Task>(buffer_));
    buffer_.clear();
  }

  void mark_wasted() noexcept { ++stats_.wasted; }

  unsigned thread_id() const noexcept { return tid_; }

 private:
  S& sched_;
  unsigned tid_;
  std::atomic<std::int64_t>& pending_;
  ThreadStats& stats_;
  std::vector<Task>& buffer_;
  std::size_t capacity_;
};

namespace detail {

template <PriorityScheduler S, typename Fn>
void worker_loop(S& sched, unsigned tid, std::atomic<std::int64_t>& pending,
                 ThreadStats& stats, Fn& fn) {
  WorkContext<S> ctx(sched, tid, pending, stats);
  Backoff backoff;
  while (true) {
    std::optional<Task> task = sched.try_pop(tid);
    if (task) {
      backoff.reset();
      ++stats.pops;
      fn(*task, ctx);
      pending.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    ++stats.empty_pops;
    // Buffered inserts (task-batching variants) must become visible before
    // we can conclude the system has drained.
    flush_if_supported(sched, tid);
    if (pending.load(std::memory_order_acquire) == 0) return;
    backoff.pause();
    // Oversubscribed pools (threads > cores) must hand the core to
    // whoever holds the tasks instead of burning the timeslice.
    std::this_thread::yield();
  }
}

/// Per-thread scratch of the batched loop, cache-padded as an array slot
/// so neighbouring threads' buffer headers never false-share.
struct BatchBuffers {
  std::vector<Task> pop;   // tasks taken from the scheduler this round
  std::vector<Task> push;  // children awaiting the next flush
};

template <PriorityScheduler S, typename Fn>
void batched_worker_loop(S& sched, unsigned tid,
                         std::atomic<std::int64_t>& pending,
                         ThreadStats& stats, Fn& fn, std::size_t batch_size,
                         BatchBuffers& bufs) {
  BatchWorkContext<S> ctx(sched, tid, pending, stats, bufs.push, batch_size);
  bufs.pop.reserve(batch_size);
  Backoff backoff;
  while (true) {
    bufs.pop.clear();
    const std::size_t taken =
        try_pop_batch_adapted(sched, tid, bufs.pop, batch_size);
    if (taken > 0) {
      backoff.reset();
      stats.pops += taken;
      for (std::size_t i = 0; i < bufs.pop.size(); ++i) fn(bufs.pop[i], ctx);
      // Children first, then retire the executed batch. The executed
      // tasks' pending counts cover their still-buffered children, so the
      // counter cannot dip to zero while work sits in this thread's
      // buffer. fetch_sub and fetch_add hit the same atomic, so the
      // counter's modification order alone rules out a phantom zero; the
      // acq_rel on the sub is what hands a release edge to the thread
      // that finally observes zero with its acquire load (same contract
      // as the per-task loop).
      ctx.flush();
      pending.fetch_sub(static_cast<std::int64_t>(taken),
                        std::memory_order_acq_rel);
      continue;
    }
    ++stats.empty_pops;
    // Nothing popped: publish our own buffered children and the
    // scheduler's buffered inserts before trusting the counter.
    ctx.flush();
    flush_if_supported(sched, tid);
    if (pending.load(std::memory_order_acquire) == 0) return;
    backoff.pause();
    std::this_thread::yield();
  }
}

}  // namespace detail

/// Seeds `initial` tasks round-robin through per-thread pushes, then runs
/// `fn(task, ctx)` on `num_threads` threads until the task graph drains.
template <PriorityScheduler S, typename Fn>
RunResult run_parallel(S& sched, std::span<const Task> initial, Fn fn,
                       unsigned num_threads, const ExecutorOptions& opts = {}) {
  StatsRegistry stats(num_threads);
  std::atomic<std::int64_t> pending{0};
  const std::size_t batch_size = opts.batch_size == 0 ? 1 : opts.batch_size;

  // Seed from "thread 0"'s perspective; schedulers route by tid.
  for (std::size_t i = 0; i < initial.size(); ++i) {
    const unsigned tid = static_cast<unsigned>(i % num_threads);
    pending.fetch_add(1, std::memory_order_relaxed);
    sched.push(tid, initial[i]);
    ++stats.of(tid).pushes;
  }
  for (unsigned tid = 0; tid < num_threads; ++tid) {
    flush_if_supported(sched, tid);
  }

  std::vector<Padded<detail::BatchBuffers>> buffers(
      batch_size > 1 ? num_threads : 0);
  auto work = [&](unsigned tid) {
    if (batch_size > 1) {
      detail::batched_worker_loop(sched, tid, pending, stats.of(tid), fn,
                                  batch_size, buffers[tid].value);
    } else {
      detail::worker_loop(sched, tid, pending, stats.of(tid), fn);
    }
  };

  Timer timer;
  if (num_threads == 1) {
    work(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      pool.emplace_back([&work, tid] { work(tid); });
    }
  }  // jthreads join here

  RunResult result;
  result.seconds = timer.seconds();
  // Scheduler-private counters (steal and NUMA-remote tallies) merge
  // into the per-thread slots only now, after the workers have joined.
  for (unsigned tid = 0; tid < num_threads; ++tid) {
    collect_stats_if_supported(sched, tid, stats.of(tid));
  }
  result.stats = stats.total();
  return result;
}

}  // namespace smq
