// Parallel priority-task executor — the Galois-substitute runtime.
//
// Runs a fixed pool of threads against one scheduler instance through the
// per-thread handle API (scheduler_traits.h): each worker acquires
// `handle_adapted(sched, tid)` once, so the thread's scheduler state
// (local queue, RNG, stickiness slots, buffers) is resolved a single time
// per run instead of re-indexed on every push/pop. Each thread then
// loops: pop work, run the user functor (which may push follow-up tasks),
// repeat. Termination uses a global pending-task counter: push
// increments, completing a popped task decrements; a thread may only exit
// when its pop failed *after flushing its buffers through the handle* and
// the counter reads zero. This is exact for the monotone workloads in the
// paper (tasks only create tasks while being executed).
//
// One worker loop serves both execution styles, templated on kBatched:
//  * per-task (batch_size == 1): the classic pop/run/decrement loop; the
//    push-buffer machinery compiles away entirely.
//  * batched (batch_size > 1): pops up to batch_size tasks with one
//    handle call, buffers pushes thread-locally and publishes them with
//    one handle call + one counter update per flush. This amortizes the
//    dispatch boundary (e.g. AnyScheduler's virtual HandleView) the same
//    way the paper's Optimization 1 amortizes queue locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/spinlock.h"
#include "support/timer.h"

namespace smq {

/// Knobs of run_parallel that are independent of the scheduler.
struct ExecutorOptions {
  /// Tasks popped per handle call and buffered per push flush.
  /// 1 selects the classic per-task loop.
  std::size_t batch_size = 1;
};

/// Per-thread view given to the task functor; the only way user code
/// interacts with the scheduler during a run. Pushes go straight through
/// the thread's handle, one pending-counter RMW per task.
template <SchedulerHandle H>
class WorkContext {
 public:
  WorkContext(H& handle, std::atomic<std::int64_t>& pending,
              ThreadStats& stats) noexcept
      : handle_(handle), pending_(pending), stats_(stats) {}

  void push(Task t) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    handle_.push(t);
    ++stats_.pushes;
  }

  /// Nothing buffered; exists so the worker loop's termination protocol
  /// is identical for both context flavours.
  void flush() noexcept {}

  /// Mark the task being executed as wasted (stale) work.
  void mark_wasted() noexcept { ++stats_.wasted; }

  unsigned thread_id() const noexcept { return handle_.thread_id(); }

 private:
  H& handle_;
  std::atomic<std::int64_t>& pending_;
  ThreadStats& stats_;
};

/// Batched counterpart of WorkContext: pushes accumulate in a per-thread
/// buffer and reach the scheduler via one handle push_batch with a single
/// relaxed fetch_add(n) on the pending counter per flush (instead of one
/// RMW per task). Safe for termination because the counter is bumped
/// *before* the tasks become visible, and the executed tasks that created
/// them are not retired until after flush() (see worker_loop).
template <SchedulerHandle H>
class BatchWorkContext {
 public:
  BatchWorkContext(H& handle, std::atomic<std::int64_t>& pending,
                   ThreadStats& stats, std::vector<Task>& buffer,
                   std::size_t capacity) noexcept
      : handle_(handle),
        pending_(pending),
        stats_(stats),
        buffer_(buffer),
        capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.clear();
    buffer_.reserve(capacity_);
  }

  void push(Task t) {
    buffer_.push_back(t);
    ++stats_.pushes;
    if (buffer_.size() >= capacity_) flush();
  }

  /// Publish every buffered task. Counter first, then tasks: a task must
  /// never be poppable before it is counted, or another thread could read
  /// pending == 0 with work still in flight.
  void flush() {
    if (buffer_.empty()) return;
    pending_.fetch_add(static_cast<std::int64_t>(buffer_.size()),
                       std::memory_order_relaxed);
    handle_.push_batch(std::span<const Task>(buffer_));
    buffer_.clear();
  }

  void mark_wasted() noexcept { ++stats_.wasted; }

  unsigned thread_id() const noexcept { return handle_.thread_id(); }

 private:
  H& handle_;
  std::atomic<std::int64_t>& pending_;
  ThreadStats& stats_;
  std::vector<Task>& buffer_;
  std::size_t capacity_;
};

/// Per-thread scratch of the batched loop (pop batch + push buffer),
/// cache-padded as an array slot so neighbouring threads' buffer headers
/// never false-share. Shared with the service worker loop
/// (service/scheduler_service.h), which runs the same protocol on a
/// persistent pool.
struct WorkerBuffers {
  std::vector<Task> pop;   // tasks taken from the scheduler this round
  std::vector<Task> push;  // children awaiting the next flush
};

namespace detail {

/// The worker loop, shared by both execution styles. kBatched only
/// changes how work enters and leaves the thread (handle batch ops +
/// push buffering vs. direct calls); the termination protocol is written
/// once:
///
/// Children first, then retire the executed work. The executed tasks'
/// pending counts cover their still-buffered children, so the counter
/// cannot dip to zero while work sits in this thread's buffer. fetch_sub
/// and fetch_add hit the same atomic, so the counter's modification
/// order alone rules out a phantom zero; the acq_rel on the sub is what
/// hands a release edge to the thread that finally observes zero with
/// its acquire load. On an empty pop, everything this thread still
/// buffers (context push buffer, scheduler-internal insert buffers) must
/// be published through the handle before the counter read is allowed to
/// conclude the system has drained.
template <bool kBatched, SchedulerHandle H, typename Fn>
void worker_loop(H& handle, std::atomic<std::int64_t>& pending,
                 ThreadStats& stats, Fn& fn, std::size_t batch_size,
                 WorkerBuffers* bufs) {
  using Ctx =
      std::conditional_t<kBatched, BatchWorkContext<H>, WorkContext<H>>;
  Ctx ctx = [&] {
    if constexpr (kBatched) {
      bufs->pop.reserve(batch_size);
      return Ctx(handle, pending, stats, bufs->push, batch_size);
    } else {
      (void)bufs;
      (void)batch_size;
      return Ctx(handle, pending, stats);
    }
  }();
  Backoff backoff;
  while (true) {
    std::size_t taken = 0;
    if constexpr (kBatched) {
      bufs->pop.clear();
      taken = handle.try_pop_batch(bufs->pop, batch_size);
      if (taken > 0) {
        backoff.reset();
        stats.pops += taken;
        for (std::size_t i = 0; i < bufs->pop.size(); ++i) fn(bufs->pop[i], ctx);
      }
    } else {
      if (std::optional<Task> task = handle.try_pop()) {
        taken = 1;
        backoff.reset();
        ++stats.pops;
        fn(*task, ctx);
      }
    }
    if (taken > 0) {
      ctx.flush();  // children visible before their parents retire
      pending.fetch_sub(static_cast<std::int64_t>(taken),
                        std::memory_order_acq_rel);
      continue;
    }
    ++stats.empty_pops;
    // Nothing popped: publish our buffered children and the scheduler's
    // buffered inserts before trusting the counter.
    ctx.flush();
    handle.flush();
    if (pending.load(std::memory_order_acquire) == 0) return;
    backoff.pause();
    // Oversubscribed pools (threads > cores) must hand the core to
    // whoever holds the tasks instead of burning the timeslice.
    std::this_thread::yield();
  }
}

}  // namespace detail

/// Seeds `initial` tasks round-robin through per-thread handles, then
/// runs `fn(task, ctx)` on `num_threads` threads until the task graph
/// drains. Works with any PriorityScheduler: schedulers with native
/// handles get them, the rest run through the TidHandle shim.
template <PriorityScheduler S, typename Fn>
RunResult run_parallel(S& sched, std::span<const Task> initial, Fn fn,
                       unsigned num_threads, const ExecutorOptions& opts = {}) {
  StatsRegistry stats(num_threads);
  std::atomic<std::int64_t> pending{0};
  const std::size_t batch_size = opts.batch_size == 0 ? 1 : opts.batch_size;

  // Seed from "thread 0"'s perspective; one handle acquisition per tid
  // covers the whole seeding pass (for AnyScheduler this is also one
  // erased-handle allocation per tid instead of one virtual per push).
  {
    // smq-lint: no-pad seeding runs on this one thread only; workers
    // construct their own handles on their own stacks below
    std::vector<HandleOf<S>> handles;
    handles.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      handles.push_back(handle_adapted(sched, tid));
    }
    for (std::size_t i = 0; i < initial.size(); ++i) {
      const unsigned tid = static_cast<unsigned>(i % num_threads);
      pending.fetch_add(1, std::memory_order_relaxed);
      handles[tid].push(initial[i]);
      ++stats.of(tid).pushes;
    }
    for (auto& handle : handles) handle.flush();
  }

  std::vector<Padded<WorkerBuffers>> buffers(
      batch_size > 1 ? num_threads : 0);
  auto work = [&](unsigned tid) {
    auto handle = handle_adapted(sched, tid);
    if (batch_size > 1) {
      detail::worker_loop<true>(handle, pending, stats.of(tid), fn, batch_size,
                                &buffers[tid].value);
    } else {
      detail::worker_loop<false>(handle, pending, stats.of(tid), fn, batch_size,
                                 nullptr);
    }
  };

  Timer timer;
  if (num_threads == 1) {
    work(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      pool.emplace_back([&work, tid] { work(tid); });
    }
  }  // jthreads join here

  RunResult result;
  result.seconds = timer.seconds();
  // Scheduler-private counters (steal and NUMA-remote tallies) merge
  // into the per-thread slots only now, after the workers have joined.
  for (unsigned tid = 0; tid < num_threads; ++tid) {
    handle_adapted(sched, tid).collect_stats(stats.of(tid));
  }
  result.stats = stats.total();
  return result;
}

}  // namespace smq
