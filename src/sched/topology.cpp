#include "sched/topology.h"

#include <cassert>

namespace smq {

Topology::Topology(unsigned num_threads, unsigned num_nodes)
    : num_threads_(num_threads),
      num_nodes_(num_nodes == 0 ? 1 : num_nodes),
      thread_node_(num_threads) {
  // A node with no threads would own no queues and break every
  // per-node invariant downstream (sampler groups, bag sharding).
  if (num_threads_ > 0 && num_nodes_ > num_threads_) num_nodes_ = num_threads_;
  node_threads_.resize(num_nodes_);
  // Balanced blocked assignment: contiguous thread-id ranges share a
  // node, the first T % N nodes take one extra thread. Plain ceil
  // division left trailing nodes empty whenever T % N != 0 (6 threads
  // over 4 nodes gave occupancy 2/2/2/0 instead of 2/2/1/1).
  const unsigned base = num_nodes_ == 0 ? 0 : num_threads / num_nodes_;
  const unsigned extra = num_nodes_ == 0 ? 0 : num_threads % num_nodes_;
  unsigned tid = 0;
  for (unsigned node = 0; node < num_nodes_; ++node) {
    const unsigned span = base + (node < extra ? 1 : 0);
    for (unsigned i = 0; i < span; ++i, ++tid) {
      thread_node_[tid] = node;
      node_threads_[node].push_back(tid);
    }
  }
  assert(tid == num_threads_ && "every thread must land on exactly one node");
  for (unsigned node = 0; num_threads_ > 0 && node < num_nodes_; ++node) {
    assert(!node_threads_[node].empty() && "no node may be left empty");
  }
}

double Topology::expected_internal_fraction(double k_weight) const noexcept {
  if (num_threads_ == 0) return 0.0;
  // E = sum_i (T_i / T) * (T_i * C) / W_i with W_i = T_i*C + sum_{j!=i} T_j*C/K.
  // The queue multiplier C cancels.
  double total = 0;
  for (unsigned node = 0; node < num_nodes_; ++node) {
    const double ti = static_cast<double>(node_threads_[node].size());
    const double remote = static_cast<double>(num_threads_) - ti;
    const double wi = ti + remote / k_weight;
    if (wi > 0) total += (ti / num_threads_) * (ti / wi);
  }
  return total;
}

}  // namespace smq
