#include "sched/topology.h"

namespace smq {

Topology::Topology(unsigned num_threads, unsigned num_nodes)
    : num_threads_(num_threads),
      num_nodes_(num_nodes == 0 ? 1 : num_nodes),
      thread_node_(num_threads),
      node_threads_(num_nodes_ == 0 ? 1 : num_nodes_) {
  // Blocked assignment: contiguous thread-id ranges share a node.
  const unsigned per_node = (num_threads + num_nodes_ - 1) / num_nodes_;
  for (unsigned tid = 0; tid < num_threads; ++tid) {
    const unsigned node = per_node == 0 ? 0 : tid / per_node;
    thread_node_[tid] = node < num_nodes_ ? node : num_nodes_ - 1;
    node_threads_[thread_node_[tid]].push_back(tid);
  }
}

double Topology::expected_internal_fraction(double k_weight) const noexcept {
  if (num_threads_ == 0) return 0.0;
  // E = sum_i (T_i / T) * (T_i * C) / W_i with W_i = T_i*C + sum_{j!=i} T_j*C/K.
  // The queue multiplier C cancels.
  double total = 0;
  for (unsigned node = 0; node < num_nodes_; ++node) {
    const double ti = static_cast<double>(node_threads_[node].size());
    const double remote = static_cast<double>(num_threads_) - ti;
    const double wi = ti + remote / k_weight;
    if (wi > 0) total += (ti / num_threads_) * (ti / wi);
  }
  return total;
}

}  // namespace smq
