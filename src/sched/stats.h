// Per-thread execution statistics.
//
// The paper's evaluation reports *total work* (tasks executed) next to
// wall time, because wasted work is the mechanism through which rank
// quality shows up as end-to-end performance. Counters are per-thread and
// cache-line padded; aggregation happens once, after the run.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "support/padding.h"

namespace smq {

struct ThreadStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;        // successful pops == tasks executed
  std::uint64_t empty_pops = 0;  // pop attempts that found nothing
  std::uint64_t wasted = 0;      // stale tasks (algorithm-defined)
  std::uint64_t steals = 0;      // successful steal batches (SMQ / OBIM)
  std::uint64_t steal_fails = 0;
  // NUMA attribution (Section 4): queue choices routed through a
  // topology-aware QueueSampler, and how many landed out of node. Both
  // stay zero under UMA, so remote_frac() distinguishes "no NUMA" from
  // "NUMA but perfectly local".
  std::uint64_t sampled_accesses = 0;
  std::uint64_t remote_accesses = 0;  // out-of-NUMA-node queue touches

  /// Fraction of sampled queue touches that crossed node boundaries;
  /// the measured counterpart of 1 - E (Topology's analytic metric).
  double remote_frac() const noexcept {
    return sampled_accesses == 0
               ? 0.0
               : static_cast<double>(remote_accesses) /
                     static_cast<double>(sampled_accesses);
  }

  ThreadStats& operator+=(const ThreadStats& o) noexcept {
    pushes += o.pushes;
    pops += o.pops;
    empty_pops += o.empty_pops;
    wasted += o.wasted;
    steals += o.steals;
    steal_fails += o.steal_fails;
    sampled_accesses += o.sampled_accesses;
    remote_accesses += o.remote_accesses;
    return *this;
  }
};

/// One padded slot per thread; index by thread id.
class StatsRegistry {
 public:
  explicit StatsRegistry(unsigned num_threads) : slots_(num_threads) {}

  ThreadStats& of(unsigned tid) noexcept { return slots_[tid].value; }
  const ThreadStats& of(unsigned tid) const noexcept { return slots_[tid].value; }

  unsigned size() const noexcept { return static_cast<unsigned>(slots_.size()); }

  ThreadStats total() const noexcept {
    ThreadStats sum;
    for (const auto& slot : slots_) sum += slot.value;
    return sum;
  }

 private:
  std::vector<Padded<ThreadStats>> slots_;
};

/// Nearest-rank percentile of an ascending-sorted sample; exact. p is
/// clamped to [0, 1]; an empty sample yields 0.
inline double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p * n));
  return sorted[rank == 0 ? 0 : std::min(rank, sorted.size()) - 1];
}

/// Lock-free latency histogram: concurrent record() from any number of
/// threads, percentile queries afterwards.
///
/// Values are stored in nanoseconds. Two regimes, switched automatically
/// at query time:
///  * small samples (up to kExactCapacity recordings overall): the raw
///    values are kept verbatim, so quantiles are exact nearest-rank —
///    a service that served 30 queries must not report bucketized p99.
///  * large samples: log-bucketed counts, 16 sub-buckets per power of
///    two (HDR-histogram style), bounding the relative quantile error at
///    1/16 = 6.25% while covering the full uint64 nanosecond range in
///    ~1000 fixed buckets. No allocation, no locks on the record path.
///
/// record() is wait-free (a handful of relaxed atomics). quantile() /
/// merge() / min/max are *not* synchronized against concurrent record();
/// call them after the recording threads have quiesced (joined workers,
/// drained service), which is the only place the harness reads them.
class LatencyHistogram {
 public:
  static constexpr std::size_t kExactCapacity = 256;
  static constexpr std::size_t kSubBuckets = 16;  // per power of two
  // Values < kSubBuckets index directly; each higher bit position gets
  // kSubBuckets sub-buckets: 16 + 60*16 buckets over the 64-bit range.
  static constexpr std::size_t kNumBuckets = kSubBuckets + (64 - 4) * kSubBuckets;

  void record_seconds(double seconds) {
    record_ns(seconds <= 0
                  ? 0
                  : static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
  }

  void record_ns(std::uint64_t ns) {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t slot = exact_claimed_.fetch_add(1, std::memory_order_relaxed);
    if (slot < kExactCapacity) {
      exact_[slot].store(ns, std::memory_order_relaxed);
    }
    total_.fetch_add(1, std::memory_order_relaxed);
    atomic_min(min_ns_, ns);
    atomic_max(max_ns_, ns);
  }

  std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  double min_seconds() const noexcept {
    return count() == 0 ? 0.0
                        : static_cast<double>(min_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double max_seconds() const noexcept {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  /// The p-quantile in seconds (p in [0,1]): exact nearest-rank while
  /// every recorded value still fits the raw-sample array, log-bucket
  /// interpolation beyond that. Requires quiescence.
  double quantile(double p) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    if (n <= kExactCapacity && exact_claimed_.load(std::memory_order_relaxed) == n) {
      std::vector<double> sorted;
      sorted.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        sorted.push_back(static_cast<double>(exact_[i].load(std::memory_order_relaxed)));
      }
      std::sort(sorted.begin(), sorted.end());
      return percentile_sorted(sorted, p) * 1e-9;
    }
    // Nearest-rank walk over the buckets, linear interpolation inside
    // the landing bucket.
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
      if (in_bucket == 0) continue;
      if (cumulative + in_bucket >= rank) {
        const double lo = static_cast<double>(bucket_lower(b));
        const double hi = static_cast<double>(bucket_upper(b));
        const double frac = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
        const double ns = std::clamp(
            lo + frac * (hi - lo),
            static_cast<double>(min_ns_.load(std::memory_order_relaxed)),
            static_cast<double>(max_ns_.load(std::memory_order_relaxed)));
        return ns * 1e-9;
      }
      cumulative += in_bucket;
    }
    return max_seconds();  // unreachable when counters are consistent
  }

  /// Fold `other` into this histogram (per-thread histograms merged
  /// after a run). Raw samples carry over while capacity lasts, so
  /// small merged samples stay exact. Requires quiescence on both.
  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t c = other.buckets_[b].load(std::memory_order_relaxed);
      if (c != 0) buckets_[b].fetch_add(c, std::memory_order_relaxed);
    }
    const std::uint64_t theirs =
        std::min<std::uint64_t>(other.exact_claimed_.load(std::memory_order_relaxed),
                                kExactCapacity);
    for (std::uint64_t i = 0; i < theirs; ++i) {
      const std::uint64_t slot = exact_claimed_.fetch_add(1, std::memory_order_relaxed);
      if (slot < kExactCapacity) {
        exact_[slot].store(other.exact_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      }
    }
    total_.fetch_add(other.count(), std::memory_order_relaxed);
    if (other.count() != 0) {
      atomic_min(min_ns_, other.min_ns_.load(std::memory_order_relaxed));
      atomic_max(max_ns_, other.max_ns_.load(std::memory_order_relaxed));
    }
  }

  /// Bucket of a nanosecond value; exposed for the unit tests.
  static std::size_t bucket_index(std::uint64_t ns) noexcept {
    if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
    const int top = std::bit_width(ns) - 1;  // >= 4
    return static_cast<std::size_t>((top - 3) * static_cast<int>(kSubBuckets)) +
           static_cast<std::size_t>((ns >> (top - 4)) & (kSubBuckets - 1));
  }

 private:
  static std::uint64_t bucket_lower(std::size_t b) noexcept {
    if (b < kSubBuckets) return b;
    const std::size_t block = b / kSubBuckets;  // >= 1
    const std::uint64_t sub = b % kSubBuckets;
    return (kSubBuckets + sub) << (block - 1);
  }
  static std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b + 1 < kNumBuckets ? bucket_lower(b + 1)
                               : bucket_lower(b) + (bucket_lower(b) >> 4);
  }

  static void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::array<std::atomic<std::uint64_t>, kExactCapacity> exact_{};
  std::atomic<std::uint64_t> exact_claimed_{0};  // slots handed out (may pass capacity)
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> min_ns_{~0ull};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Result of one parallel run: wall time plus aggregated counters.
struct RunResult {
  double seconds = 0;
  ThreadStats stats;

  /// Paper metric: executed tasks / reference task count.
  double work_increase(std::uint64_t reference_tasks) const noexcept {
    return reference_tasks == 0
               ? 0.0
               : static_cast<double>(stats.pops) /
                     static_cast<double>(reference_tasks);
  }
};

}  // namespace smq
