// Per-thread execution statistics.
//
// The paper's evaluation reports *total work* (tasks executed) next to
// wall time, because wasted work is the mechanism through which rank
// quality shows up as end-to-end performance. Counters are per-thread and
// cache-line padded; aggregation happens once, after the run.
#pragma once

#include <cstdint>
#include <vector>

#include "support/padding.h"

namespace smq {

struct ThreadStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;        // successful pops == tasks executed
  std::uint64_t empty_pops = 0;  // pop attempts that found nothing
  std::uint64_t wasted = 0;      // stale tasks (algorithm-defined)
  std::uint64_t steals = 0;      // successful steal batches (SMQ / OBIM)
  std::uint64_t steal_fails = 0;
  // NUMA attribution (Section 4): queue choices routed through a
  // topology-aware QueueSampler, and how many landed out of node. Both
  // stay zero under UMA, so remote_frac() distinguishes "no NUMA" from
  // "NUMA but perfectly local".
  std::uint64_t sampled_accesses = 0;
  std::uint64_t remote_accesses = 0;  // out-of-NUMA-node queue touches

  /// Fraction of sampled queue touches that crossed node boundaries;
  /// the measured counterpart of 1 - E (Topology's analytic metric).
  double remote_frac() const noexcept {
    return sampled_accesses == 0
               ? 0.0
               : static_cast<double>(remote_accesses) /
                     static_cast<double>(sampled_accesses);
  }

  ThreadStats& operator+=(const ThreadStats& o) noexcept {
    pushes += o.pushes;
    pops += o.pops;
    empty_pops += o.empty_pops;
    wasted += o.wasted;
    steals += o.steals;
    steal_fails += o.steal_fails;
    sampled_accesses += o.sampled_accesses;
    remote_accesses += o.remote_accesses;
    return *this;
  }
};

/// One padded slot per thread; index by thread id.
class StatsRegistry {
 public:
  explicit StatsRegistry(unsigned num_threads) : slots_(num_threads) {}

  ThreadStats& of(unsigned tid) noexcept { return slots_[tid].value; }
  const ThreadStats& of(unsigned tid) const noexcept { return slots_[tid].value; }

  unsigned size() const noexcept { return static_cast<unsigned>(slots_.size()); }

  ThreadStats total() const noexcept {
    ThreadStats sum;
    for (const auto& slot : slots_) sum += slot.value;
    return sum;
  }

 private:
  std::vector<Padded<ThreadStats>> slots_;
};

/// Result of one parallel run: wall time plus aggregated counters.
struct RunResult {
  double seconds = 0;
  ThreadStats stats;

  /// Paper metric: executed tasks / reference task count.
  double work_increase(std::uint64_t reference_tasks) const noexcept {
    return reference_tasks == 0
               ? 0.0
               : static_cast<double>(stats.pops) /
                     static_cast<double>(reference_tasks);
  }
};

}  // namespace smq
