// Epoch-versioned distance labels: O(1) per-query reset of an O(V)
// tentative-distance array.
//
// A long-lived service runs many point-to-point queries over the same
// graph; reallocating (or even memset-ing) a V-sized distance array per
// query would dominate short queries. Instead every slot packs a 16-bit
// epoch next to a 48-bit distance in one atomic word: bumping the lane's
// epoch invalidates every slot at once, because a slot whose stored
// epoch differs from the current query's decodes as "unreached".
//
// The packing is also what makes the concurrency story simple. Workers
// never synchronize on the labels across queries: a stale slot (written
// under an old epoch, read under the new one via a relaxed load) is
// indistinguishable from an untouched slot, so plain relaxed CAS-min per
// slot is correct with no cross-slot ordering at all — exactly the
// discipline DistanceArray (algorithms/relax.h) uses within one run.
//
// Epochs cycle through 1..2^16-1; on wraparound every slot is scrubbed
// back to epoch 0 (which is never current), an O(V) pass amortized over
// 65535 queries. new_epoch() must be called by one thread at a time (the
// service serializes it under its admission lock) and only while the
// lane has no tasks in flight.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace smq {

class VersionedLabels {
 public:
  static constexpr std::uint64_t kUnreached = ~0ull;

  static constexpr unsigned kEpochBits = 16;
  static constexpr unsigned kDistBits = 48;
  static constexpr std::uint64_t kDistMask = (1ull << kDistBits) - 1;
  /// Largest storable distance; kDistMask itself is the scrub sentinel.
  static constexpr std::uint64_t kMaxDistance = kDistMask - 1;
  static constexpr std::uint64_t kEpochLimit = 1ull << kEpochBits;

  explicit VersionedLabels(std::size_t size)
      : size_(size), slots_(std::make_unique<std::atomic<std::uint64_t>[]>(size)) {
    scrub();
  }

  std::size_t size() const noexcept { return size_; }

  /// The epoch most recently issued (0 before the first new_epoch()).
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Issue a fresh epoch, logically resetting every slot to kUnreached.
  /// Serialized by the caller; never returns 0.
  std::uint64_t new_epoch() {
    if (++epoch_ == kEpochLimit) {
      scrub();
      epoch_ = 1;
    }
    return epoch_;
  }

  /// The distance of `v` under `epoch`, kUnreached when the slot was
  /// last written under a different epoch.
  std::uint64_t load(std::size_t v, std::uint64_t epoch) const noexcept {
    const std::uint64_t word = slots_[v].load(std::memory_order_relaxed);
    return (word >> kDistBits) == epoch ? (word & kDistMask) : kUnreached;
  }

  void store(std::size_t v, std::uint64_t dist, std::uint64_t epoch) noexcept {
    assert(dist <= kMaxDistance);
    slots_[v].store(pack(epoch, dist), std::memory_order_relaxed);
  }

  /// CAS-min under `epoch`: true when `dist` improved the slot (a slot
  /// from another epoch counts as unreached and always loses).
  bool relax_min(std::size_t v, std::uint64_t dist, std::uint64_t epoch) noexcept {
    assert(dist <= kMaxDistance);
    const std::uint64_t next = pack(epoch, dist);
    std::uint64_t cur = slots_[v].load(std::memory_order_relaxed);
    while (dist < decode(cur, epoch)) {
      if (slots_[v].compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

 private:
  static std::uint64_t pack(std::uint64_t epoch, std::uint64_t dist) noexcept {
    return (epoch << kDistBits) | dist;
  }
  static std::uint64_t decode(std::uint64_t word, std::uint64_t epoch) noexcept {
    return (word >> kDistBits) == epoch ? (word & kDistMask) : kUnreached;
  }

  /// Reset every slot to epoch 0 (never a current epoch) + the distance
  /// sentinel, so any decode misses.
  void scrub() noexcept {
    for (std::size_t v = 0; v < size_; ++v) {
      slots_[v].store(pack(0, kDistMask), std::memory_order_relaxed);
    }
  }

  std::size_t size_;
  // Plain (non-atomic) on purpose: bumped only under the service's
  // admission lock, read by workers via their job's captured epoch.
  std::uint64_t epoch_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
};

}  // namespace smq
