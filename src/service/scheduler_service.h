// SchedulerService<S>: a persistent worker pool serving concurrent
// point-to-point queries over one shared immutable CSR.
//
// run_parallel (sched/executor.h) owns the machine for one run: spawn,
// drain, join. A routing service fields a *stream* of small queries, and
// paying thread spawn/join plus an O(V) distance-array reset per query
// would swamp the scheduler the paper actually evaluates. This pool
// inverts the lifetime: workers are spawned once, each acquires its
// S::Handle once and holds it across queries (the PR 5 handle API's
// whole point — per-thread scheduler state persists), and they park on a
// condition variable when the service is idle. Per-query state is a
// "lane": an epoch-versioned label array (versioned_labels.h) plus the
// query's control block, so starting a query is O(1), not O(V).
//
// Concurrency protocol, layered over the executor's:
//  * Global termination counter `pending_` works exactly as in
//    worker_loop: count before visible, retire after flush. Here it
//    never signals exit (the pool is long-lived) — it gates *parking*:
//    a worker may only park when a flush-then-check sees zero.
//  * Each query's Job carries its own pending count (seed = 1; children
//    counted before they are buffered, parents retired only after the
//    batch flush). The worker that retires a job's last task completes
//    the query: reads the result off the lane, records latency, frees
//    the lane, fulfils the promise.
//  * Admission is worker-side only. submit() enqueues under the mutex
//    and wakes the pool; a worker with nothing to pop claims queued
//    queries for free lanes and seeds them through its own handle's
//    push_batch — the same amortized hot path batched runs use. Client
//    threads never touch scheduler handles (handles are single-owner).
//  * Lane reuse is ABA-safe without tagged pointers: a task referencing
//    lane L implies its job's pending > 0, which blocks completion and
//    therefore reuse of L until that task retires. Workers resolve
//    lane -> Job via an acquire load paired with the admission-side
//    release store; the scheduler's own push/pop synchronization (which
//    must already publish the task bytes) carries the edge across
//    threads.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "service/query.h"
#include "service/versioned_labels.h"
#include "support/mutex.h"
#include "support/spinlock.h"
#include "support/thread_annotations.h"

namespace smq {

template <PriorityScheduler S>
class SchedulerService final : public QueryService {
 public:
  /// Construct the scheduler in place from `sched_args` (many scheduler
  /// families own mutexes and are not movable) and launch the pool.
  /// `workers` must not exceed the scheduler's thread capacity.
  template <typename... SchedArgs>
  SchedulerService(std::shared_ptr<const Graph> graph, unsigned workers,
                   const ServiceOptions& opts, SchedArgs&&... sched_args)
      : graph_(std::move(graph)),
        workers_(workers == 0 ? 1 : workers),
        opts_(normalize(opts, workers_)),
        use_heuristic_(opts_.use_heuristic && !graph_->coordinates().empty()),
        sched_(std::forward<SchedArgs>(sched_args)...),
        stats_(workers_) {
    const std::size_t vertices = graph_->num_vertices();
    lanes_.reserve(opts_.lanes);
    for (unsigned i = 0; i < opts_.lanes; ++i) {
      lanes_.push_back(std::make_unique<Lane>(vertices));
    }
    // Lowest lane id claimed first (free list is a stack).
    for (unsigned i = opts_.lanes; i-- > 0;) free_lanes_.push_back(i);
    start();
  }

  ~SchedulerService() override { stop(); }

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  void start() override {
    MutexLock lifecycle(lifecycle_mutex_);
    if (!threads_.empty()) return;  // already running
    if (stopped_) {
      throw std::logic_error(
          "SchedulerService: a stopped service cannot be restarted");
    }
    threads_.reserve(workers_);
    for (unsigned tid = 0; tid < workers_; ++tid) {
      threads_.emplace_back([this, tid] { worker(tid); });
    }
  }

  void stop() override {
    MutexLock lifecycle(lifecycle_mutex_);
    {
      MutexLock lk(mutex_);
      accepting_ = false;
      stop_ = true;
    }
    cv_.notify_all();
    if (!threads_.empty()) {
      threads_.clear();  // jthreads join; queued + in-flight queries drain
      // Scheduler-private counters (steal tallies, NUMA attribution)
      // fold into the per-thread slots only now, as in run_parallel.
      for (unsigned tid = 0; tid < workers_; ++tid) {
        handle_adapted(sched_, tid).collect_stats(stats_.of(tid));
      }
    }
    stopped_ = true;
  }

  bool accepting() const override {
    MutexLock lk(mutex_);
    return accepting_;
  }

  QueryTicket submit(Query q) override {
    if (q.source >= graph_->num_vertices() || q.target >= graph_->num_vertices()) {
      throw std::invalid_argument("SchedulerService: query vertex out of range");
    }
    auto job = std::make_shared<Job>(q);
    QueryTicket ticket = job->promise.get_future();
    if (q.source == q.target) {
      // Degenerate query: answer immediately instead of flooding the
      // scheduler with a search whose incumbent can never prune.
      {
        MutexLock lk(mutex_);
        if (!accepting_) {
          throw std::runtime_error("SchedulerService: submit after stop");
        }
      }
      QueryResult r;
      r.distance = 0;
      r.latency_seconds =
          std::chrono::duration<double>(Clock::now() - job->submitted).count();
      latency_.record_seconds(r.latency_seconds);
      queries_completed_.fetch_add(1, std::memory_order_relaxed);
      job->promise.set_value(r);
      return ticket;
    }
    {
      MutexLock lk(mutex_);
      if (!accepting_) {
        throw std::runtime_error("SchedulerService: submit after stop");
      }
      queue_.push_back(std::move(job));
      queued_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
    return ticket;
  }

  unsigned num_workers() const override { return workers_; }
  unsigned num_lanes() const override { return opts_.lanes; }

  std::uint64_t queries_completed() const override {
    return queries_completed_.load(std::memory_order_relaxed);
  }

  const LatencyHistogram& latency_histogram() const override { return latency_; }

  ThreadStats worker_stats() const override { return stats_.total(); }

  std::size_t memory_footprint() const override {
    return memory_footprint_if_supported(sched_);
  }

  /// The wrapped scheduler (tests, stat scraping).
  S& scheduler() noexcept { return sched_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Control block of one in-flight (or queued) query. Fully
  /// initialized before its lane's release-store publishes it.
  struct Job {
    explicit Job(Query q) : query(q), submitted(Clock::now()) {}

    const Query query;
    const Clock::time_point submitted;
    unsigned lane = 0;
    std::uint64_t epoch = 0;
    std::promise<QueryResult> promise;
    /// Unretired tasks of this query; the seed counts 1. Zero =>
    /// the query's task graph has drained (same protocol as the
    /// executor's global counter, scoped to one query).
    std::atomic<std::int64_t> pending{0};
    /// Incumbent distance at the target; prunes f >= best (A*).
    std::atomic<std::uint64_t> best_target{QueryResult::kUnreached};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> wasted{0};
  };

  /// One concurrent-query slot: the versioned labels plus the job that
  /// currently owns them. `job` is the worker-side view (acquire /
  /// release); `owner` keeps the Job alive and is guarded by mutex_.
  struct Lane {
    explicit Lane(std::size_t vertices) : labels(vertices) {}
    VersionedLabels labels;
    std::atomic<Job*> job{nullptr};
    std::shared_ptr<Job> owner;
  };

  struct Completion {
    std::shared_ptr<Job> job;
    QueryResult result;
  };

  static ServiceOptions normalize(ServiceOptions o, unsigned workers) {
    if (o.lanes == 0) o.lanes = 2 * workers;
    if (o.batch_size == 0) o.batch_size = 1;
    return o;
  }

  static std::uint64_t payload_of(unsigned lane, VertexId v) noexcept {
    return (static_cast<std::uint64_t>(lane) << 32) | v;
  }
  static unsigned lane_of(std::uint64_t payload) noexcept {
    return static_cast<unsigned>(payload >> 32);
  }
  static VertexId vertex_of(std::uint64_t payload) noexcept {
    return static_cast<VertexId>(payload);
  }

  /// Admissible heuristic toward `target` (astar.h's formulation); 0
  /// without coordinates, degrading the search to p2p Dijkstra.
  std::uint64_t heuristic(VertexId v, VertexId target) const noexcept {
    if (!use_heuristic_) return 0;
    const Coordinates& c = graph_->coordinates();
    const double dx = c.x[v] - c.x[target];
    const double dy = c.y[v] - c.y[target];
    return static_cast<std::uint64_t>(std::sqrt(dx * dx + dy * dy) *
                                      opts_.weight_scale);
  }

  void worker(unsigned tid) {
    auto handle = handle_adapted(sched_, tid);
    if (opts_.batch_size > 1) {
      service_loop<true>(handle, stats_.of(tid));
    } else {
      service_loop<false>(handle, stats_.of(tid));
    }
  }

  template <bool kBatched, typename H>
  void service_loop(H& handle, ThreadStats& stats) {
    WorkerBuffers bufs;
    const std::size_t batch = opts_.batch_size;
    using Ctx = std::conditional_t<kBatched, BatchWorkContext<H>, WorkContext<H>>;
    Ctx ctx = [&] {
      if constexpr (kBatched) {
        bufs.pop.reserve(batch);
        return Ctx(handle, pending_, stats, bufs.push, batch);
      } else {
        return Ctx(handle, pending_, stats);
      }
    }();
    Backoff backoff;
    std::vector<Task> seeds;
    std::vector<Completion> done;
    Task single{};
    while (true) {
      std::size_t taken = 0;
      if constexpr (kBatched) {
        bufs.pop.clear();
        taken = handle.try_pop_batch(bufs.pop, batch);
        if (taken > 0) {
          backoff.reset();
          stats.pops += taken;
          for (const Task& t : bufs.pop) execute_task(t, ctx);
        }
      } else {
        if (std::optional<Task> t = handle.try_pop()) {
          taken = 1;
          backoff.reset();
          ++stats.pops;
          single = *t;
          execute_task(single, ctx);
        }
      }
      if (taken > 0) {
        // Children first (flush), then retire — a job's pending count
        // must cover its still-buffered children, and the global
        // counter must cover every lane until its tasks are retired.
        ctx.flush();
        if constexpr (kBatched) {
          for (const Task& t : bufs.pop) retire_task(t, done);
        } else {
          retire_task(single, done);
        }
        pending_.fetch_sub(static_cast<std::int64_t>(taken),
                           std::memory_order_acq_rel);
        if (!done.empty()) {
          for (Completion& c : done) c.job->promise.set_value(c.result);
          done.clear();
          try_admit(handle, stats, seeds);  // reuse the freed lanes now
        }
        continue;
      }
      ++stats.empty_pops;
      // Publish buffered children and scheduler-internal inserts before
      // trusting the pending counter (the executor's rule).
      ctx.flush();
      handle.flush();
      if (try_admit(handle, stats, seeds)) continue;
      if (pending_.load(std::memory_order_acquire) != 0) {
        backoff.pause();
        std::this_thread::yield();
        continue;
      }
      // Nothing runnable and nothing admissible: park. The wait
      // predicate mirrors every wake source — shutdown, new in-flight
      // work, or an admissible (queued query x free lane) pair — and is
      // written as an inline loop (not a wait(lk, pred) lambda) so the
      // thread-safety analysis sees the guarded reads under the held
      // capability.
      //
      // Parking is the reclamation quiesce point: with no epoch guard
      // held, let the scheduler advance its epoch and drain this
      // thread's retire list, so memory from the last burst is
      // reclaimed even if the service then sits idle.
      quiesce_if_supported(sched_, handle.thread_id());
      {
        MutexLock lk(mutex_);
        while (!(stop_ || pending_.load(std::memory_order_acquire) != 0 ||
                 (!queue_.empty() && !free_lanes_.empty()))) {
          cv_.wait(lk);
        }
        if (stop_ && queue_.empty() &&
            pending_.load(std::memory_order_acquire) == 0) {
          return;
        }
      }
      backoff.reset();
    }
  }

  template <typename Ctx>
  void execute_task(const Task& task, Ctx& ctx) {
    const unsigned lane_id = lane_of(task.payload);
    const VertexId v = vertex_of(task.payload);
    Lane& lane = *lanes_[lane_id];
    // Never null: an in-scheduler task keeps its job's pending > 0,
    // which blocks completion (and lane reuse) until it retires.
    Job* job = lane.job.load(std::memory_order_acquire);
    const std::uint64_t f = task.priority;
    const std::uint64_t g = f - heuristic(v, job->query.target);
    if (lane.labels.load(v, job->epoch) < g ||
        f >= job->best_target.load(std::memory_order_relaxed)) {
      ctx.mark_wasted();
      job->wasted.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (const Graph::Neighbor& n : graph_->neighbors(v)) {
      const std::uint64_t ng = g + n.weight;
      if (!lane.labels.relax_min(n.to, ng, job->epoch)) continue;
      if (n.to == job->query.target) {
        // CAS-min the incumbent; the target itself is never pushed.
        std::uint64_t cur = job->best_target.load(std::memory_order_relaxed);
        while (ng < cur && !job->best_target.compare_exchange_weak(
                               cur, ng, std::memory_order_relaxed)) {
        }
        continue;
      }
      const std::uint64_t nf = ng + heuristic(n.to, job->query.target);
      if (nf < job->best_target.load(std::memory_order_relaxed)) {
        job->pending.fetch_add(1, std::memory_order_relaxed);
        ctx.push(Task{nf, payload_of(lane_id, n.to)});
      }
    }
  }

  void retire_task(const Task& task, std::vector<Completion>& done) {
    Lane& lane = *lanes_[lane_of(task.payload)];
    Job* job = lane.job.load(std::memory_order_acquire);
    job->executed.fetch_add(1, std::memory_order_relaxed);
    if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done.push_back(complete_query(lane, *job));
    }
  }

  /// Last task retired: harvest the result off the lane *before* the
  /// lane goes back on the free list (a new admission bumps the epoch,
  /// invalidating the labels this query wrote).
  Completion complete_query(Lane& lane, Job& job) {
    Completion c;
    c.result.distance = lane.labels.load(job.query.target, job.epoch);
    c.result.tasks = job.executed.load(std::memory_order_relaxed);
    c.result.wasted = job.wasted.load(std::memory_order_relaxed);
    c.result.latency_seconds =
        std::chrono::duration<double>(Clock::now() - job.submitted).count();
    latency_.record_seconds(c.result.latency_seconds);
    queries_completed_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lk(mutex_);
      lane.job.store(nullptr, std::memory_order_relaxed);
      c.job = std::move(lane.owner);
      free_lanes_.push_back(job.lane);
    }
    return c;
  }

  /// Claim queued queries for free lanes and seed them through this
  /// worker's handle. try_to_lock: admission is an optimization on the
  /// idle path; blocking every idle worker on one mutex is not.
  template <typename H>
  bool try_admit(H& handle, ThreadStats& stats, std::vector<Task>& seeds) {
    if (queued_.load(std::memory_order_relaxed) == 0) return false;
    seeds.clear();
    // Explicit try_lock/unlock (rather than a scoped guard) so the
    // try-acquire branch is visible to the thread-safety analysis.
    if (!mutex_.try_lock()) return false;
    while (!queue_.empty() && !free_lanes_.empty()) {
      std::shared_ptr<Job> job = std::move(queue_.front());
      queue_.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      const unsigned lane_id = free_lanes_.back();
      free_lanes_.pop_back();
      Lane& lane = *lanes_[lane_id];
      job->lane = lane_id;
      job->epoch = lane.labels.new_epoch();
      lane.labels.store(job->query.source, 0, job->epoch);
      job->pending.store(1, std::memory_order_relaxed);
      seeds.push_back(Task{heuristic(job->query.source, job->query.target),
                           payload_of(lane_id, job->query.source)});
      Job* raw = job.get();
      lane.owner = std::move(job);
      lane.job.store(raw, std::memory_order_release);
    }
    mutex_.unlock();
    if (seeds.empty()) return false;
    // Counter before visibility, exactly like BatchWorkContext::flush.
    stats.pushes += seeds.size();
    pending_.fetch_add(static_cast<std::int64_t>(seeds.size()),
                       std::memory_order_relaxed);
    handle.push_batch(std::span<const Task>(seeds));
    wake_all();
    return true;
  }

  /// Wake parked workers. The empty critical section orders this
  /// notifier's state changes against a parker between its predicate
  /// check and its wait — without it the wake could fall in that window
  /// and be lost.
  void wake_all() {
    { MutexLock lk(mutex_); }
    cv_.notify_all();
  }

  std::shared_ptr<const Graph> graph_;
  const unsigned workers_;
  const ServiceOptions opts_;
  const bool use_heuristic_;
  S sched_;
  StatsRegistry stats_;
  LatencyHistogram latency_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  /// Global unretired-task counter across all in-flight queries; gates
  /// parking, never termination.
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::uint64_t> queries_completed_{0};
  std::atomic<std::uint64_t> queued_{0};  // lock-free mirror of queue_.size()

  // Admission queue, free lanes, and run-state flags: plain data under
  // mutex_, with -Wthread-safety proving every access holds it. The
  // condition variable is the _any flavour because it parks on the
  // annotated MutexLock directly.
  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<Job>> queue_ SMQ_GUARDED_BY(mutex_);
  std::vector<unsigned> free_lanes_ SMQ_GUARDED_BY(mutex_);
  bool accepting_ SMQ_GUARDED_BY(mutex_) = true;
  bool stop_ SMQ_GUARDED_BY(mutex_) = false;

  Mutex lifecycle_mutex_;  // serializes start()/stop() callers
  bool stopped_ SMQ_GUARDED_BY(lifecycle_mutex_) = false;
  std::vector<std::jthread> threads_ SMQ_GUARDED_BY(lifecycle_mutex_);
};

}  // namespace smq
