// The service-mode vocabulary: a point-to-point query, its result, and
// the abstract QueryService every concrete SchedulerService<S> (and the
// registry's erased factory) implements.
//
// A query runs A* when the graph carries coordinates (the road
// generator's), and degrades to point-to-point Dijkstra otherwise —
// the same formulation as algorithms/astar.h, multiplexed over one
// shared immutable CSR instead of owning the machine for one run.
#pragma once

#include <cstdint>
#include <future>

#include "graph/graph.h"
#include "sched/stats.h"

namespace smq {

/// One point-to-point shortest-path request.
struct Query {
  VertexId source = 0;
  VertexId target = 0;
};

struct QueryResult {
  static constexpr std::uint64_t kUnreached = ~0ull;

  std::uint64_t distance = kUnreached;
  /// submit() to completion, queue wait included — the latency a client
  /// of the service observes, not just execution time.
  double latency_seconds = 0;
  std::uint64_t tasks = 0;   // tasks executed for this query
  std::uint64_t wasted = 0;  // stale/pruned tasks among them
};

/// The future side of submit(); ready when the query's task graph has
/// drained. get() blocks, wait_for() polls.
using QueryTicket = std::future<QueryResult>;

struct ServiceOptions {
  /// Concurrent in-flight queries (each holds one versioned-label lane
  /// over the graph). 0 = 2x the worker count.
  unsigned lanes = 0;
  /// Executor batch size per worker: tasks popped per handle call and
  /// pushes buffered per flush. 1 = the classic per-task loop.
  std::size_t batch_size = 8;
  /// Drive queries as A* with the equirectangular heuristic when the
  /// graph has coordinates; false forces plain Dijkstra.
  bool use_heuristic = true;
  /// Heuristic scale (the graph source's weight-per-unit-distance).
  double weight_scale = 100.0;
};

/// A long-lived query-serving executor: a persistent worker pool parked
/// on a condition variable between queries, each worker holding its
/// scheduler handle across queries. Thread-safe submission from any
/// number of client threads.
class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Launch the worker pool. Idempotent while running; a stopped
  /// service cannot be restarted (build a new one).
  virtual void start() = 0;

  /// Drain every queued and in-flight query, then park and join the
  /// workers. Idempotent. After stop(), submit() throws.
  virtual void stop() = 0;

  /// True until stop() has begun.
  virtual bool accepting() const = 0;

  /// Enqueue a query; returns immediately. Throws std::runtime_error
  /// after stop(), std::invalid_argument for out-of-range vertices.
  virtual QueryTicket submit(Query q) = 0;

  /// Synchronous convenience: submit and wait.
  QueryResult run(Query q) { return submit(q).get(); }

  virtual unsigned num_workers() const = 0;
  virtual unsigned num_lanes() const = 0;

  virtual std::uint64_t queries_completed() const = 0;

  /// Per-query latency distribution (lock-free record path). Quantile
  /// reads require quiescence: call after stop() or while no queries
  /// are in flight.
  virtual const LatencyHistogram& latency_histogram() const = 0;

  /// Aggregated executor counters (pushes/pops/wasted/steals...).
  /// Scheduler-private counters are folded in by stop(); call after it.
  virtual ThreadStats worker_stats() const = 0;

  /// Approximate bytes held by the scheduler's queues (node arenas,
  /// chunk pools, reclamation limbo). 0 when the scheduler does not
  /// report; advisory and safe to poll while queries are in flight —
  /// the soak test watches this for a steady-state plateau.
  virtual std::size_t memory_footprint() const { return 0; }
};

}  // namespace smq
