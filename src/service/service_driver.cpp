#include "service/service_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <ostream>
#include <thread>

#include "algorithms/astar.h"
#include "registry/any_scheduler.h"
#include "registry/scheduler_registry.h"
#include "support/cli.h"
#include "support/json_writer.h"
#include "support/rng.h"
#include "support/timer.h"

namespace smq {

std::vector<Query> make_query_set(const GraphInstance& graph, std::size_t n,
                                  std::uint64_t seed) {
  const std::uint64_t vertices = graph.graph->num_vertices();
  Xoshiro256 rng(seed);
  std::vector<Query> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Query q;
    q.source = static_cast<VertexId>(rng.next_below(vertices));
    do {
      q.target = static_cast<VertexId>(rng.next_below(vertices));
    } while (vertices > 1 && q.target == q.source);
    queries.push_back(q);
  }
  return queries;
}

ServiceReference measure_service_reference(const GraphInstance& graph,
                                           std::span<const Query> queries,
                                           int reps) {
  ServiceReference ref;
  ref.distances.reserve(queries.size());
  Timer timer;
  for (const Query& q : queries) {
    ref.distances.push_back(
        sequential_astar(*graph.graph, q.source, q.target, graph.weight_scale)
            .distance);
  }
  ref.seconds = timer.seconds();
  for (int r = 1; r < reps; ++r) {
    Timer again;
    for (const Query& q : queries) {
      sequential_astar(*graph.graph, q.source, q.target, graph.weight_scale);
    }
    ref.seconds = std::min(ref.seconds, again.seconds());
  }
  return ref;
}

DriveResult drive_service(QueryService& service, std::span<const Query> queries,
                          double qps, std::uint64_t seed) {
  std::vector<QueryTicket> tickets;
  tickets.reserve(queries.size());
  Timer wall;
  if (qps <= 0) {
    for (const Query& q : queries) tickets.push_back(service.submit(q));
  } else {
    Xoshiro256 rng(seed);
    double arrival = 0;  // seconds since the drive started
    for (const Query& q : queries) {
      const double u = std::max(rng.next_double(), 1e-12);
      arrival += -std::log(u) / qps;  // exponential inter-arrival
      // Open loop: hold the arrival schedule regardless of service
      // backlog. Sleeping (not spinning) keeps the submitter off the
      // workers' cores.
      while (wall.seconds() < arrival) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      tickets.push_back(service.submit(q));
    }
  }
  DriveResult out;
  out.results.reserve(tickets.size());
  for (QueryTicket& t : tickets) out.results.push_back(t.get());
  out.seconds = wall.seconds();
  return out;
}

DriveResult drive_spawn_per_query(const GraphInstance& graph,
                                  const std::string& sched_name,
                                  const ParamMap& params, unsigned threads,
                                  std::span<const Query> queries,
                                  std::size_t batch_size) {
  AnyScheduler sched =
      SchedulerRegistry::instance().create(sched_name, threads, params);
  ExecutorOptions exec;
  exec.batch_size = batch_size;
  DriveResult out;
  out.results.reserve(queries.size());
  Timer wall;
  for (const Query& q : queries) {
    Timer one;
    const AStarResult r = parallel_astar(*graph.graph, q.source, q.target,
                                         sched, threads, graph.weight_scale,
                                         exec);
    QueryResult qr;
    qr.distance = r.distance;
    qr.latency_seconds = one.seconds();
    qr.tasks = r.run.stats.pops;
    qr.wasted = r.run.stats.wasted;
    out.results.push_back(qr);
  }
  out.seconds = wall.seconds();
  return out;
}

void finalize_service_row(ServiceRow& row, const DriveResult& drive,
                          const LatencyHistogram& latencies,
                          const ServiceReference* ref) {
  row.queries = drive.results.size();
  row.seconds = drive.seconds;
  row.qps = drive.seconds > 0
                ? static_cast<double>(drive.results.size()) / drive.seconds
                : 0;
  row.p50_ms = latencies.quantile(0.50) * 1e3;
  row.p90_ms = latencies.quantile(0.90) * 1e3;
  row.p99_ms = latencies.quantile(0.99) * 1e3;
  row.max_ms = latencies.max_seconds() * 1e3;
  row.tasks = 0;
  row.wasted = 0;
  for (const QueryResult& r : drive.results) {
    row.tasks += r.tasks;
    row.wasted += r.wasted;
  }
  if (ref != nullptr) {
    row.validated = true;
    row.valid = drive.results.size() == ref->distances.size();
    for (std::size_t i = 0; row.valid && i < drive.results.size(); ++i) {
      row.valid = drive.results[i].distance == ref->distances[i];
    }
    if (ref->seconds > 0 && drive.seconds > 0) {
      row.speedup_vs_seq = ref->seconds / drive.seconds;
    }
  }
}

namespace {

std::string mode_label(const ServiceRow& row) {
  if (row.spawn_baseline) return "spawn";
  return row.offered_qps > 0
             ? "poisson@" + TablePrinter::fmt(row.offered_qps, 0)
             : "closed";
}

}  // namespace

void print_service_table(std::ostream& os, const ServiceReport& report) {
  TablePrinter table({"scheduler", "mode", "thr", "lanes", "queries", "wall ms",
                      "qps", "p50 ms", "p90 ms", "p99 ms", "tasks", "wasted",
                      "mem KiB", "speedup", "ok"});
  for (const ServiceRow& row : report.rows) {
    // Auto rows show the resolved preset next to "auto" — the chosen
    // config must be readable off the table.
    const std::string label = !row.preset.empty() && row.preset != row.scheduler
                                  ? row.scheduler + ":" + row.preset
                                  : row.scheduler;
    table.add_row({label, mode_label(row), std::to_string(row.threads),
                   row.spawn_baseline ? "-" : std::to_string(row.lanes),
                   std::to_string(row.queries),
                   TablePrinter::fmt(row.seconds * 1e3),
                   TablePrinter::fmt(row.qps, 1),
                   TablePrinter::fmt(row.p50_ms, 3),
                   TablePrinter::fmt(row.p90_ms, 3),
                   TablePrinter::fmt(row.p99_ms, 3), std::to_string(row.tasks),
                   std::to_string(row.wasted),
                   row.memory_footprint > 0
                       ? TablePrinter::fmt(
                             static_cast<double>(row.memory_footprint) / 1024.0,
                             1)
                       : std::string("-"),
                   row.speedup_vs_seq > 0 ? TablePrinter::fmt(row.speedup_vs_seq)
                                          : std::string("-"),
                   row.validated ? (row.valid ? "yes" : "NO") : "-"});
  }
  table.print(os);
}

void write_service_json(std::ostream& os, const ServiceReport& report) {
  JsonWriter json(os);
  json.begin_object();
  json.member("tool", "smq_run");
  // The sweep-identity tag perf_check.py keys on; keeps these rows from
  // colliding with the plain astar sweep over the same graph.
  json.member("suite", "service");
  json.member("algorithm", "astar");
  json.member("mode", "service");

  json.key("graph").begin_object();
  json.member("name", report.graph.name);
  json.member("vertices",
              static_cast<std::uint64_t>(report.graph.graph->num_vertices()));
  json.member("edges",
              static_cast<std::uint64_t>(report.graph.graph->num_edges()));
  json.end_object();

  json.key("params").begin_object();
  for (const auto& [key, value] : report.params.entries()) {
    json.member(key, value);
  }
  json.end_object();

  json.member("queries", static_cast<std::uint64_t>(report.queries));
  json.member("seed", report.seed);
  if (report.reference != nullptr) {
    json.key("reference").begin_object();
    json.member("queries",
                static_cast<std::uint64_t>(report.reference->distances.size()));
    json.member("seconds", report.reference->seconds);
    json.end_object();
  }

  json.key("results").begin_array();
  for (const ServiceRow& row : report.rows) {
    json.begin_object();
    json.member("scheduler", row.scheduler);
    if (!row.preset.empty() && row.preset != row.scheduler) {
      json.member("preset", row.preset);
    }
    if (!row.auto_match.empty()) {
      json.member("auto", true);
      json.member("auto_match", row.auto_match);
      json.member("auto_why", row.auto_why);
    }
    json.member("threads", row.threads);
    json.member("dispatch",
                row.spawn_baseline ? "spawn-per-query" : "service");
    if (!row.spawn_baseline) {
      json.member("lanes", row.lanes);
      json.member("batch_size", static_cast<std::uint64_t>(row.batch_size));
    }
    json.member("offered_qps", row.offered_qps);
    json.member("queries", static_cast<std::uint64_t>(row.queries));
    json.member("seconds", row.seconds);
    json.member("qps", row.qps);
    json.member("p50_ms", row.p50_ms);
    json.member("p90_ms", row.p90_ms);
    json.member("p99_ms", row.p99_ms);
    json.member("max_ms", row.max_ms);
    json.member("tasks", row.tasks);
    json.member("wasted", row.wasted);
    if (!row.spawn_baseline) {
      json.member("pushes", row.stats.pushes);
      json.member("empty_pops", row.stats.empty_pops);
      json.member("steals", row.stats.steals);
      json.member("memory_footprint_bytes",
                  static_cast<std::uint64_t>(row.memory_footprint));
    }
    if (row.speedup_vs_seq > 0) {
      json.member("speedup_vs_seq", row.speedup_vs_seq);
    }
    json.member("reps", row.reps);
    if (row.validated) json.member("valid", row.valid);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

bool emit_service_json(const ServiceReport& report, const std::string& json_path,
                       std::ostream& out, std::ostream& err) {
  if (json_path.empty()) return true;
  if (json_path == "-") {
    write_service_json(out, report);
    return true;
  }
  std::ofstream file(json_path);
  if (!file) {
    err << "cannot write " << json_path << "\n";
    return false;
  }
  write_service_json(file, report);
  out << "\nwrote " << json_path << "\n";
  return true;
}

}  // namespace smq
