// Shared workload generation, drive loops and emission for service mode
// (`smq_run --service`) and the bench_service_qps bench — one row shape
// and one JSON format, so the perf gate and the bench trajectory cannot
// drift apart (the same structural rule suite_runner.h applies to
// sweeps).
//
// Two drive modes:
//  * closed loop (qps <= 0): every query submitted up front, the pool
//    drains them at full tilt — the throughput number the perf gate
//    tracks, directly comparable to the spawn-per-query baseline.
//  * open loop (qps > 0): Poisson arrivals at the offered rate
//    (exponential inter-arrival times from a seeded RNG), the service
//    picture — latency percentiles include queue wait, and an offered
//    rate beyond capacity shows up as p99 blow-up rather than a polite
//    slowdown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "registry/graph_registry.h"
#include "registry/params.h"
#include "sched/stats.h"
#include "service/query.h"

namespace smq {

/// Seeded random point-to-point workload (source != target).
std::vector<Query> make_query_set(const GraphInstance& graph, std::size_t n,
                                  std::uint64_t seed);

/// Sequential oracle over a query set: per-query distances plus the
/// best-of-`reps` total wall time (the speedup_vs_seq normalizer).
struct ServiceReference {
  std::vector<std::uint64_t> distances;
  double seconds = 0;
};
ServiceReference measure_service_reference(const GraphInstance& graph,
                                           std::span<const Query> queries,
                                           int reps);

/// One drive of a query set through some execution vehicle.
struct DriveResult {
  double seconds = 0;  // wall time, first submit to last completion
  std::vector<QueryResult> results;
};

/// Submit the whole set to a running service (all at once when qps <= 0,
/// Poisson arrivals at `qps` otherwise) and wait for every ticket.
DriveResult drive_service(QueryService& service, std::span<const Query> queries,
                          double qps, std::uint64_t seed);

/// The baseline the service exists to beat: one run_parallel spawn/join
/// plus a fresh O(V) distance array per query, on a scheduler built once
/// from the same registry entry. Queries run one after another — that is
/// what "spawn per query" means.
DriveResult drive_spawn_per_query(const GraphInstance& graph,
                                  const std::string& sched_name,
                                  const ParamMap& params, unsigned threads,
                                  std::span<const Query> queries,
                                  std::size_t batch_size);

/// One table/JSON row: a (scheduler, threads, drive mode, offered rate)
/// measurement.
struct ServiceRow {
  std::string scheduler;
  unsigned threads = 0;
  unsigned lanes = 0;
  std::size_t batch_size = 1;
  bool spawn_baseline = false;  // JSON dispatch: "spawn-per-query"
  double offered_qps = 0;       // 0 = closed loop
  std::size_t queries = 0;
  double seconds = 0;
  double qps = 0;  // completed queries / wall second
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  std::uint64_t tasks = 0;
  std::uint64_t wasted = 0;
  ThreadStats stats;  // service worker counters (empty for spawn rows)
  /// Bytes held by the scheduler's queues when the drive finished (node
  /// arenas, chunk pools, reclamation limbo); 0 when the scheduler does
  /// not report. The soak test and CI trajectory watch this.
  std::size_t memory_footprint = 0;
  bool validated = false;
  bool valid = true;
  double speedup_vs_seq = 0;
  int reps = 1;
  // `--sched auto` provenance: the preset the tuning table resolved
  // (scheduler stays "auto"), its match kind, and the explanation.
  std::string preset;
  std::string auto_match;
  std::string auto_why;
};

/// Fill the measurement half of `row` from a drive: throughput, latency
/// percentiles out of `latencies`, per-query task/waste totals, and the
/// oracle comparison when `ref` is non-null.
void finalize_service_row(ServiceRow& row, const DriveResult& drive,
                          const LatencyHistogram& latencies,
                          const ServiceReference* ref);

struct ServiceReport {
  GraphInstance graph;
  ParamMap params;
  std::size_t queries = 0;
  std::uint64_t seed = 1;
  const ServiceReference* reference = nullptr;  // null without validation
  std::vector<ServiceRow> rows;
};

void print_service_table(std::ostream& os, const ServiceReport& report);

/// perf_check.py-compatible report: rows carry scheduler/threads/
/// dispatch/valid/speedup_vs_seq; the report is tagged "suite":
/// "service" so its sweep identity never collides with the batched
/// astar sweep over the same graph.
void write_service_json(std::ostream& os, const ServiceReport& report);

/// "" = no JSON, "-" = onto `out`, else a file (emit_sweep_json's
/// contract). Returns false when the file cannot be opened.
bool emit_service_json(const ServiceReport& report, const std::string& json_path,
                       std::ostream& out, std::ostream& err);

}  // namespace smq
