// Fenwick (binary indexed) tree over a fixed integer universe, used by
// the rank simulator to compute, in O(log T), the rank of a deleted
// element among all elements still present across every queue — the
// quantity Theorem 1 bounds.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace smq {

class OrderStatistics {
 public:
  /// Universe = integers [0, capacity); all initially absent.
  explicit OrderStatistics(std::size_t capacity)
      : tree_(capacity + 1, 0), live_(0) {}

  std::size_t size() const noexcept { return live_; }

  void insert(std::size_t value) {
    update(value, +1);
    ++live_;
  }

  void erase(std::size_t value) {
    assert(live_ > 0);
    update(value, -1);
    --live_;
  }

  /// Number of live elements strictly smaller than `value` — i.e. the
  /// 0-based rank `value` would have among the live set.
  std::size_t rank_of(std::size_t value) const noexcept {
    std::int64_t sum = 0;
    for (std::size_t i = value; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return static_cast<std::size_t>(sum);
  }

 private:
  void update(std::size_t value, std::int64_t delta) {
    for (std::size_t i = value + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  std::vector<std::int64_t> tree_;
  std::size_t live_;
};

}  // namespace smq
