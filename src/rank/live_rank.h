// Live rank probe: measures the *empirical* rank error of a real
// scheduler implementation (not the Section 3 analytical model) by
// driving it single-threaded from multiple logical thread identities
// against an exact shadow multiset. Complements rank_sim.h: the
// simulator validates the theorems, the probe validates that the
// implementations actually behave like their models (e.g. that the SMQ's
// buffers do not silently destroy its rank behaviour).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "rank/order_statistics.h"
#include "sched/scheduler_traits.h"
#include "sched/task.h"
#include "support/rng.h"

namespace smq {

struct LiveRankResult {
  double mean_rank = 0;
  std::uint64_t max_rank = 0;
  std::uint64_t pops = 0;
};

/// Pre-fills `sched` with `num_elements` tasks (priority = insertion
/// index) spread round-robin over the logical threads, then pops
/// everything, rotating the popping thread identity uniformly at random.
/// The rank of each pop is its position in the exact shadow set.
template <PriorityScheduler S>
LiveRankResult measure_live_rank(S& sched, std::size_t num_elements,
                                 std::uint64_t seed = 1) {
  const unsigned threads = sched.num_threads();
  OrderStatistics shadow(num_elements);  // priorities are 0..N-1, unique
  Xoshiro256 rng(seed);

  for (std::size_t i = 0; i < num_elements; ++i) {
    const unsigned tid = static_cast<unsigned>(i % threads);
    sched.push(tid, Task{i, i});
    shadow.insert(i);
  }
  for (unsigned tid = 0; tid < threads; ++tid) {
    flush_if_supported(sched, tid);
  }

  LiveRankResult result;
  double rank_sum = 0;
  // Every element must eventually come out; rotate identities so owner
  // refill paths run (a scheduler may hide tasks from non-owners, never
  // from everyone).
  unsigned consecutive_failures = 0;
  while (shadow.size() > 0 && consecutive_failures < 4 * threads) {
    const unsigned tid = static_cast<unsigned>(rng.next_below(threads));
    const std::optional<Task> task = sched.try_pop(tid);
    if (!task) {
      ++consecutive_failures;
      continue;
    }
    consecutive_failures = 0;
    const std::uint64_t rank = shadow.rank_of(task->priority);
    shadow.erase(task->priority);
    rank_sum += static_cast<double>(rank);
    result.max_rank = std::max(result.max_rank, rank);
    ++result.pops;
  }
  if (result.pops > 0) {
    result.mean_rank = rank_sum / static_cast<double>(result.pops);
  }
  return result;
}

}  // namespace smq
