#include "rank/rank_sim.h"

#include <algorithm>
#include <cassert>

#include "rank/order_statistics.h"
#include "support/rng.h"

namespace smq {

namespace {

/// One simulated queue: a sorted slice of element ids with a cursor.
/// Elements were inserted in increasing rank order, so each queue's
/// pending elements are exactly its vector suffix from `next`.
struct SimQueue {
  std::vector<std::size_t> elements;
  std::size_t next = 0;

  bool empty() const noexcept { return next >= elements.size(); }
  std::size_t top() const noexcept { return elements[next]; }
  std::size_t pop() noexcept { return elements[next++]; }
};

/// Scheduling distribution with bounded skew: thread weights alternate
/// between (1 - gamma) and (1 + gamma), normalized; gamma = 0 is uniform.
/// Sampling via inverse CDF over the cumulative weights (n is small).
class SkewedScheduler {
 public:
  SkewedScheduler(unsigned n, double gamma) : cumulative_(n) {
    double total = 0;
    for (unsigned i = 0; i < n; ++i) {
      total += (i % 2 == 0) ? (1.0 + gamma) : (1.0 - gamma);
      cumulative_[i] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  unsigned sample(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
    return static_cast<unsigned>(
        idx < cumulative_.size() ? idx : cumulative_.size() - 1);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

RankSimResult simulate_rank(const RankSimConfig& cfg) {
  const unsigned n = std::max(2u, cfg.num_queues);
  const unsigned m =
      cfg.process == RankProcess::kClassicMq ? n * std::max(1u, cfg.classic_c) : n;
  Xoshiro256 rng(cfg.seed);

  // Insertion phase: elements 0..T-1 (already in rank order) go to
  // uniformly random queues; each queue's list is therefore sorted.
  std::vector<SimQueue> queues(m);
  OrderStatistics live(cfg.num_elements);
  for (std::size_t e = 0; e < cfg.num_elements; ++e) {
    queues[rng.next_below(m)].elements.push_back(e);
    live.insert(e);
  }

  SkewedScheduler scheduler(m, cfg.gamma);

  RankSimResult result;
  double rank_sum = 0;
  double tail_sum = 0;
  std::uint64_t tail_count = 0;
  const std::uint64_t target_deletions = static_cast<std::uint64_t>(
      cfg.drain_fraction * static_cast<double>(cfg.num_elements));

  auto delete_batch = [&](SimQueue& q) {
    for (unsigned b = 0; b < std::max(1u, cfg.batch_size) && !q.empty(); ++b) {
      const std::size_t e = q.pop();
      const std::uint64_t rank = live.rank_of(e);
      live.erase(e);
      rank_sum += static_cast<double>(rank);
      result.max_rank = std::max(result.max_rank, rank);
      ++result.deletions;
      if (result.deletions * 2 >= target_deletions) {
        tail_sum += static_cast<double>(rank);
        ++tail_count;
      }
    }
  };

  while (result.deletions < target_deletions) {
    if (cfg.process == RankProcess::kClassicMq) {
      // Two distinct uniform choices; remove from the better top.
      std::size_t i = rng.next_below(m);
      std::size_t j = rng.next_below(m);
      while (j == i) j = rng.next_below(m);
      SimQueue* qi = &queues[i];
      SimQueue* qj = &queues[j];
      if (qi->empty() && qj->empty()) continue;
      if (qi->empty() || (!qj->empty() && qj->top() < qi->top())) {
        std::swap(qi, qj);
      }
      delete_batch(*qi);
      continue;
    }
    // SMQ process: schedule a thread by pi, then maybe steal.
    const unsigned t = scheduler.sample(rng);
    SimQueue& local = queues[t];
    if (rng.next_bool(cfg.p_steal)) {
      const std::size_t v = rng.next_below(m);
      SimQueue& victim = queues[v];
      const bool victim_better =
          !victim.empty() && (local.empty() || victim.top() < local.top());
      if (victim_better) {
        delete_batch(victim);
        continue;
      }
    }
    if (!local.empty()) {
      delete_batch(local);
    } else {
      // Forced steal on empty local queue (work conservation).
      const std::size_t v = rng.next_below(m);
      if (!queues[v].empty()) delete_batch(queues[v]);
    }
  }

  result.mean_rank =
      result.deletions == 0 ? 0 : rank_sum / static_cast<double>(result.deletions);
  result.mean_rank_tail =
      tail_count == 0 ? 0 : tail_sum / static_cast<double>(tail_count);
  return result;
}

}  // namespace smq
