// Discrete simulator of the analytical processes of paper Section 3.
//
// Implements exactly the model of Theorem 1: T elements are inserted up
// front in increasing rank order into n queues chosen uniformly at
// random; then deletions proceed under a stochastic scheduler with
// distribution pi (skew bounded by gamma). Each deletion's *rank* — the
// position of the removed element among all elements still present — is
// measured exactly with a Fenwick tree. This validates the paper's core
// theoretical claims:
//   * classic MQ (2-choice over m = c*n queues): expected rank O(m);
//   * SMQ(p_steal, B, gamma): expected average rank
//     O(nB(1+gamma)/p_steal * log((1+gamma)/p_steal)).
#pragma once

#include <cstdint>
#include <vector>

namespace smq {

enum class RankProcess {
  kClassicMq,  // two uniform choices over m = c * n queues
  kSmq,        // local delete + probabilistic two-choice steal
};

struct RankSimConfig {
  RankProcess process = RankProcess::kSmq;
  unsigned num_queues = 8;       // n (threads; classic uses m = c * n)
  unsigned classic_c = 1;        // queue multiplier for kClassicMq
  std::size_t num_elements = 1 << 16;  // T initial insertions
  double p_steal = 0.125;        // SMQ stealing probability
  unsigned batch_size = 1;       // B: elements removed per delete
  double gamma = 0.0;            // scheduler skew (0 = uniform)
  std::uint64_t seed = 1;
  // Stop after this fraction of elements has been removed (rank statistics
  // near total drain are dominated by emptiness, as in the paper's model
  // which assumes queues never empty).
  double drain_fraction = 0.75;
};

struct RankSimResult {
  double mean_rank = 0;       // expected rank estimate over all deletions
  std::uint64_t max_rank = 0; // maximum observed rank
  std::uint64_t deletions = 0;
  double mean_rank_tail = 0;  // mean over the second half (steady state)
};

/// Run the simulation; deterministic given cfg.seed.
RankSimResult simulate_rank(const RankSimConfig& cfg);

}  // namespace smq
