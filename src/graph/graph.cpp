#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smq {

namespace {

/// Offset-array invariants shared by from_csr and from_mapped; the
/// adjacency bound check is the caller's choice (owned storage checks
/// every target, mapped storage stays lazy).
void validate_offsets(std::span<const std::size_t> offsets,
                      std::size_t num_edges) {
  if (offsets.empty()) {
    throw std::invalid_argument("graph csr: offsets must have >= 1 entry");
  }
  if (offsets.front() != 0) {
    throw std::invalid_argument("graph csr: offsets[0] must be 0");
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) {
    if (offsets[v] < offsets[v - 1]) {
      throw std::invalid_argument("graph csr: offsets must be non-decreasing");
    }
  }
  if (offsets.back() != num_edges) {
    throw std::invalid_argument(
        "graph csr: offsets.back() must equal adjacency size");
  }
}

}  // namespace

Graph Graph::from_edges(VertexId num_vertices, std::vector<Edge> edges) {
  Graph g;
  g.offsets_owned_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    assert(e.from < num_vertices && e.to < num_vertices);
    ++g.offsets_owned_[e.from + 1];
  }
  for (std::size_t v = 1; v <= num_vertices; ++v) {
    g.offsets_owned_[v] += g.offsets_owned_[v - 1];
  }
  g.adjacency_owned_.resize(edges.size());
  std::vector<std::size_t> cursor(g.offsets_owned_.begin(),
                                  g.offsets_owned_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_owned_[cursor[e.from]++] = Neighbor{e.to, e.weight};
  }
  g.offsets_ = g.offsets_owned_;
  g.adjacency_ = g.adjacency_owned_;
  return g;
}

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<Neighbor> adjacency) {
  validate_offsets(offsets, adjacency.size());
  const auto num_vertices = static_cast<std::size_t>(offsets.size() - 1);
  for (const Neighbor& n : adjacency) {
    if (n.to >= num_vertices) {
      throw std::invalid_argument("graph csr: target vertex out of range");
    }
  }
  Graph g;
  g.offsets_owned_ = std::move(offsets);
  g.adjacency_owned_ = std::move(adjacency);
  g.offsets_ = g.offsets_owned_;
  g.adjacency_ = g.adjacency_owned_;
  return g;
}

Graph Graph::from_mapped(std::span<const std::size_t> offsets,
                         std::span<const Neighbor> adjacency,
                         std::shared_ptr<const void> backing) {
  validate_offsets(offsets, adjacency.size());
  Graph g;
  g.offsets_ = offsets;
  g.adjacency_ = adjacency;
  g.backing_ = std::move(backing);
  return g;
}

void Graph::assign(const Graph& other) {
  if (other.backing_ != nullptr) {
    // Mapped: share the mapping, alias the same views.
    offsets_owned_.clear();
    adjacency_owned_.clear();
    offsets_ = other.offsets_;
    adjacency_ = other.adjacency_;
    backing_ = other.backing_;
  } else {
    offsets_owned_.assign(other.offsets_.begin(), other.offsets_.end());
    adjacency_owned_.assign(other.adjacency_.begin(), other.adjacency_.end());
    offsets_ = offsets_owned_;
    adjacency_ = adjacency_owned_;
    backing_ = nullptr;
  }
  coords_ = other.coords_;
  description_ = other.description_;
}

void Graph::assign_move(Graph&& other) noexcept {
  offsets_owned_ = std::move(other.offsets_owned_);
  adjacency_owned_ = std::move(other.adjacency_owned_);
  backing_ = std::move(other.backing_);
  if (backing_ != nullptr) {
    offsets_ = other.offsets_;
    adjacency_ = other.adjacency_;
  } else {
    // Vector moves transfer the heap buffer, so re-pointing at the
    // destination vectors lands on the same data.
    offsets_ = offsets_owned_;
    adjacency_ = adjacency_owned_;
  }
  other.offsets_ = {};
  other.adjacency_ = {};
  coords_ = std::move(other.coords_);
  description_ = std::move(other.description_);
}

std::vector<Edge> Graph::to_edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (const Neighbor& n : neighbors(v)) {
      edges.push_back(Edge{v, n.to, n.weight});
    }
  }
  return edges;
}

}  // namespace smq
