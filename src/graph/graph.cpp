#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace smq {

Graph Graph::from_edges(VertexId num_vertices, std::vector<Edge> edges) {
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    assert(e.from < num_vertices && e.to < num_vertices);
    ++g.offsets_[e.from + 1];
  }
  for (std::size_t v = 1; v <= num_vertices; ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  g.adjacency_.resize(edges.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[cursor[e.from]++] = Neighbor{e.to, e.weight};
  }
  return g;
}

std::vector<Edge> Graph::to_edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (const Neighbor& n : neighbors(v)) {
      edges.push_back(Edge{v, n.to, n.weight});
    }
  }
  return edges;
}

}  // namespace smq
