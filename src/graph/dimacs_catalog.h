// Catalog of the 9th DIMACS Implementation Challenge road networks the
// paper evaluates on (Table 1), with their published sizes pinned.
//
// One definition shared by three consumers so the numbers cannot drift:
// the registry's named road-graph sources (--graph usa/ctr/west/...),
// bench_table1_graphs (paper-vs-measured validation), and
// tools/fetch_dimacs.py's manifest (kept in sync by a test fixture of
// the same numbers). The pinned |V|/|E| are the official challenge
// values for the distance ("-d") graphs; a fetched file that disagrees
// is truncated or corrupt, never "close enough".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace smq {

struct DimacsGraphInfo {
  const char* key;        // registry key / fetch tool name, e.g. "usa"
  const char* file_stem;  // challenge file stem, e.g. "USA-road-d.USA"
  std::uint64_t vertices;
  std::uint64_t arcs;     // directed arcs, as the .gr header declares
  const char* label;      // Table 1 row label
};

/// The paper's road inputs (USA, CTR, W) plus smaller challenge graphs
/// (E, NY) that make local validation and CI smoke practical.
std::span<const DimacsGraphInfo> dimacs_catalog();

/// Catalog entry for `key` (case-sensitive), or nullptr.
const DimacsGraphInfo* find_dimacs_graph(std::string_view key);

/// "<dir>/<stem>.gr" for the entry — the path tools/fetch_dimacs.py
/// decompresses to under its --graph-cache directory.
std::string dimacs_gr_path(const DimacsGraphInfo& info, const std::string& dir);
std::string dimacs_co_path(const DimacsGraphInfo& info, const std::string& dir);

/// The directory named graph sources and benches look in when no --dir
/// is given: $SMQ_GRAPH_DIR, or "data/dimacs/cache".
std::string default_dimacs_dir();

}  // namespace smq
