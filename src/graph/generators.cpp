#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/rng.h"

namespace smq {

namespace {

/// Append both directions of an undirected edge.
void add_undirected(std::vector<Edge>& edges, VertexId a, VertexId b,
                    Weight w) {
  edges.push_back(Edge{a, b, w});
  edges.push_back(Edge{b, a, w});
}

}  // namespace

Graph make_road_like(VertexId num_vertices, RoadLikeOptions opts) {
  // Square-ish lattice with jittered vertex positions: vertex (r, c) sits
  // near (r, c) in the plane. Lattice edges connect 4-neighbours; a small
  // number of longer "highway" shortcuts connect random lattice vertices
  // a few rows/columns apart, like motorways over local roads.
  const VertexId side =
      std::max<VertexId>(2, static_cast<VertexId>(std::sqrt(num_vertices)));
  const VertexId n = side * side;
  Xoshiro256 rng(opts.seed);

  Coordinates coords;
  coords.x.resize(n);
  coords.y.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    coords.x[v] = static_cast<double>(v % side) + 0.4 * rng.next_double();
    coords.y[v] = static_cast<double>(v / side) + 0.4 * rng.next_double();
  }

  auto distance = [&](VertexId a, VertexId b) {
    const double dx = coords.x[a] - coords.x[b];
    const double dy = coords.y[a] - coords.y[b];
    return std::sqrt(dx * dx + dy * dy);
  };
  auto road_weight = [&](VertexId a, VertexId b) -> Weight {
    // ceil(dist * scale) plus jitter keeps weight >= dist * scale, which
    // keeps the equirectangular A* heuristic admissible.
    const double base = distance(a, b) * opts.weight_scale;
    const Weight jitter = static_cast<Weight>(rng.next_below(16));
    return static_cast<Weight>(std::ceil(base)) + jitter + 1;
  };

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 4 + 16);
  for (VertexId r = 0; r < side; ++r) {
    for (VertexId c = 0; c < side; ++c) {
      const VertexId v = r * side + c;
      if (c + 1 < side) add_undirected(edges, v, v + 1, road_weight(v, v + 1));
      if (r + 1 < side) {
        add_undirected(edges, v, v + side, road_weight(v, v + side));
      }
    }
  }
  const std::size_t shortcuts =
      static_cast<std::size_t>(opts.shortcut_fraction * n);
  for (std::size_t i = 0; i < shortcuts; ++i) {
    const VertexId a = static_cast<VertexId>(rng.next_below(n));
    // Jump up to 8 lattice steps away: medium-range connector roads.
    const std::int64_t dr = static_cast<std::int64_t>(rng.next_below(17)) - 8;
    const std::int64_t dc = static_cast<std::int64_t>(rng.next_below(17)) - 8;
    const std::int64_t r = static_cast<std::int64_t>(a / side) + dr;
    const std::int64_t c = static_cast<std::int64_t>(a % side) + dc;
    if (r < 0 || c < 0 || r >= static_cast<std::int64_t>(side) ||
        c >= static_cast<std::int64_t>(side)) {
      continue;
    }
    const VertexId b = static_cast<VertexId>(r) * side + static_cast<VertexId>(c);
    if (a == b) continue;
    add_undirected(edges, a, b, road_weight(a, b));
  }

  Graph g = Graph::from_edges(n, std::move(edges));
  g.set_coordinates(std::move(coords));
  g.set_description("road-like lattice (" + std::to_string(side) + "x" +
                    std::to_string(side) + "), USA/WEST stand-in");
  return g;
}

Graph make_rmat(unsigned scale, RmatOptions opts) {
  const VertexId n = VertexId{1} << scale;
  const std::size_t m = static_cast<std::size_t>(n) * opts.edge_factor;
  Xoshiro256 rng(opts.seed);

  std::vector<Edge> edges;
  edges.reserve(m);
  const double ab = opts.a + opts.b;
  const double abc = opts.a + opts.b + opts.c;
  for (std::size_t i = 0; i < m; ++i) {
    VertexId row = 0, col = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double p = rng.next_double();
      if (p < opts.a) {
        // top-left quadrant: nothing to set
      } else if (p < ab) {
        col |= VertexId{1} << bit;
      } else if (p < abc) {
        row |= VertexId{1} << bit;
      } else {
        row |= VertexId{1} << bit;
        col |= VertexId{1} << bit;
      }
    }
    const Weight w =
        static_cast<Weight>(rng.next_below(std::uint64_t{opts.max_weight} + 1));
    edges.push_back(Edge{row, col, w});
  }
  Graph g = Graph::from_edges(n, std::move(edges));
  g.set_description("RMAT scale " + std::to_string(scale) +
                    " power-law, TWITTER/WEB stand-in");
  return g;
}

Graph make_erdos_renyi(VertexId num_vertices, std::size_t num_edges,
                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    edges.push_back(
        Edge{static_cast<VertexId>(rng.next_below(num_vertices)),
             static_cast<VertexId>(rng.next_below(num_vertices)),
             static_cast<Weight>(1 + rng.next_below(255))});
  }
  Graph g = Graph::from_edges(num_vertices, std::move(edges));
  g.set_description("Erdos-Renyi G(n,m)");
  return g;
}

Graph make_grid2d(VertexId width, VertexId height, bool unit_weights,
                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  auto weight = [&]() -> Weight {
    return unit_weights ? 1 : static_cast<Weight>(1 + rng.next_below(255));
  };
  for (VertexId r = 0; r < height; ++r) {
    for (VertexId c = 0; c < width; ++c) {
      const VertexId v = r * width + c;
      if (c + 1 < width) add_undirected(edges, v, v + 1, weight());
      if (r + 1 < height) add_undirected(edges, v, v + width, weight());
    }
  }
  Graph g = Graph::from_edges(width * height, std::move(edges));
  g.set_description("grid " + std::to_string(width) + "x" +
                    std::to_string(height));
  return g;
}

Graph make_path(VertexId num_vertices, Weight weight) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    add_undirected(edges, v, v + 1, weight);
  }
  Graph g = Graph::from_edges(num_vertices, std::move(edges));
  g.set_description("path");
  return g;
}

}  // namespace smq
