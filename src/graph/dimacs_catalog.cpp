#include "graph/dimacs_catalog.h"

#include <cstdlib>

namespace smq {

namespace {

// Official 9th DIMACS Challenge sizes for the distance graphs
// (http://www.diag.uniroma1.it/challenge9/download.shtml). The paper's
// Table 1 rows are USA, CTR and W; E and NY ride along because a 0.7M-
// or 8.8M-arc graph validates the same pipeline in minutes, not hours.
constexpr DimacsGraphInfo kCatalog[] = {
    {"usa", "USA-road-d.USA", 23947347, 58333344, "full USA"},
    {"ctr", "USA-road-d.CTR", 14081816, 34292496, "central USA"},
    {"west", "USA-road-d.W", 6262104, 15248146, "western USA"},
    {"east", "USA-road-d.E", 3598623, 8778114, "eastern USA"},
    {"ny", "USA-road-d.NY", 264346, 733846, "New York City"},
};

}  // namespace

std::span<const DimacsGraphInfo> dimacs_catalog() { return kCatalog; }

const DimacsGraphInfo* find_dimacs_graph(std::string_view key) {
  for (const DimacsGraphInfo& info : kCatalog) {
    if (key == info.key) return &info;
  }
  return nullptr;
}

std::string dimacs_gr_path(const DimacsGraphInfo& info,
                           const std::string& dir) {
  return dir + "/" + info.file_stem + ".gr";
}

std::string dimacs_co_path(const DimacsGraphInfo& info,
                           const std::string& dir) {
  return dir + "/" + info.file_stem + ".co";
}

std::string default_dimacs_dir() {
  if (const char* env = std::getenv("SMQ_GRAPH_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "data/dimacs/cache";
}

}  // namespace smq
