#include "graph/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SMQ_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace smq {

namespace {

constexpr std::uint64_t kMagic = 0x534D515F47524150ull;  // "SMQ_GRAP"
constexpr std::uint32_t kFlagCoordinates = 1u << 0;

// The v2 arrays are written/mapped verbatim, which requires their
// in-memory layout to be exactly the on-disk layout.
static_assert(sizeof(Graph::Neighbor) == 8 &&
                  std::is_trivially_copyable_v<Graph::Neighbor>,
              "v2 maps the adjacency array in place");
static_assert(sizeof(std::size_t) == 8,
              "v2 stores offsets as u64 and maps them as size_t");

/// 64-byte header: every section after it starts 8-byte-aligned both in
/// the file and (since mmap bases are page-aligned) in a mapping.
struct HeaderV2 {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kBinaryFormatVersion;
  std::uint32_t flags = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t reserved[4] = {0, 0, 0, 0};
};
static_assert(sizeof(HeaderV2) == 64, "header must pad sections to 64");

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary graph: truncated input");
  return value;
}

/// Bytes left between the stream's cursor and its end, or -1 when the
/// stream is not seekable (a pipe): the allocation bound below is then
/// skipped and truncation is caught by the read itself.
std::int64_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return -1;
  return static_cast<std::int64_t>(end - pos);
}

/// Guard an untrusted on-disk element count against the input that is
/// supposed to contain it: a corrupt header must throw, not drive a
/// multi-exabyte std::vector allocation.
template <typename T>
void check_count_fits(std::uint64_t count, std::int64_t remaining) {
  if (remaining < 0) return;  // non-seekable stream, no bound available
  if (count > static_cast<std::uint64_t>(remaining) / sizeof(T)) {
    throw std::runtime_error(
        "binary graph: array count exceeds remaining file size");
  }
}

template <typename T>
void write_array(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
std::vector<T> read_array(std::istream& in, std::uint64_t count) {
  check_count_fits<T>(count, remaining_bytes(in));
  std::vector<T> data(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(T)));
  if (!in) throw std::runtime_error("binary graph: truncated array");
  return data;
}

/// v1 layout helper: u64 count, then the elements.
template <typename T>
void write_vector_v1(std::ostream& out, const std::vector<T>& data) {
  write_pod<std::uint64_t>(out, data.size());
  write_array(out, data.data(), data.size());
}

template <typename T>
std::vector<T> read_vector_v1(std::istream& in) {
  return read_array<T>(in, read_pod<std::uint64_t>(in));
}

Graph read_binary_graph_v1(std::istream& in) {
  const auto num_vertices = read_pod<std::uint32_t>(in);
  const auto from = read_vector_v1<std::uint32_t>(in);
  const auto to = read_vector_v1<std::uint32_t>(in);
  const auto weight = read_vector_v1<std::uint32_t>(in);
  if (from.size() != to.size() || from.size() != weight.size()) {
    throw std::runtime_error("binary graph: inconsistent edge arrays");
  }
  std::vector<Edge> edges(from.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (from[i] >= num_vertices || to[i] >= num_vertices) {
      throw std::runtime_error("binary graph: vertex id out of range");
    }
    edges[i] = Edge{from[i], to[i], weight[i]};
  }
  Graph graph = Graph::from_edges(num_vertices, std::move(edges));

  if (read_pod<std::uint8_t>(in) != 0) {
    Coordinates coords;
    coords.x = read_vector_v1<double>(in);
    coords.y = read_vector_v1<double>(in);
    if (coords.x.size() != num_vertices || coords.y.size() != num_vertices) {
      throw std::runtime_error("binary graph: bad coordinates block");
    }
    graph.set_coordinates(std::move(coords));
  }
  return graph;
}

Graph read_binary_graph_v2(std::istream& in, const HeaderV2& header) {
  if (header.num_vertices >
      static_cast<std::uint64_t>(std::numeric_limits<VertexId>::max()) - 1) {
    throw std::runtime_error("binary graph: vertex count exceeds VertexId");
  }
  const auto num_vertices = static_cast<std::size_t>(header.num_vertices);
  auto offsets = read_array<std::size_t>(in, header.num_vertices + 1);
  auto adjacency = read_array<Graph::Neighbor>(in, header.num_edges);
  Graph graph = Graph::from_csr(std::move(offsets), std::move(adjacency));

  if ((header.flags & kFlagCoordinates) != 0) {
    Coordinates coords;
    coords.x = read_array<double>(in, header.num_vertices);
    coords.y = read_array<double>(in, header.num_vertices);
    if (coords.x.size() != num_vertices) {
      throw std::runtime_error("binary graph: bad coordinates block");
    }
    graph.set_coordinates(std::move(coords));
  }
  return graph;
}

#if SMQ_HAVE_MMAP
/// Owns one read-only MAP_PRIVATE mapping; graphs built over it hold it
/// via shared_ptr so the mapping outlives every copy of the graph.
struct MappedFile {
  const char* data = nullptr;
  std::size_t size = 0;

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(const char* d, std::size_t s) : data(d), size(s) {}
  ~MappedFile() {
    if (data != nullptr) ::munmap(const_cast<char*>(data), size);
  }

  static std::shared_ptr<MappedFile> map(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return nullptr;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (base == MAP_FAILED) return nullptr;
    return std::make_shared<MappedFile>(static_cast<const char*>(base), size);
  }
};

/// Build a graph over `file`'s v2 payload without copying the CSR
/// arrays. Structural corruption throws, matching the stream reader.
Graph map_v2(std::shared_ptr<MappedFile> file, const std::string& path) {
  HeaderV2 header;
  std::memcpy(&header, file->data, sizeof(header));
  if (header.magic != kMagic) {
    throw std::runtime_error("binary graph: bad magic in " + path);
  }
  if (header.version != kBinaryFormatVersion) {
    throw std::runtime_error("binary graph: unsupported version " +
                             std::to_string(header.version));
  }
  if (header.num_vertices >
      static_cast<std::uint64_t>(std::numeric_limits<VertexId>::max()) - 1) {
    throw std::runtime_error("binary graph: vertex count exceeds VertexId");
  }

  // Section layout, every bound checked against the real file size
  // before any pointer is formed.
  const std::uint64_t payload = file->size - sizeof(HeaderV2);
  const std::uint64_t num_offsets = header.num_vertices + 1;
  check_count_fits<std::size_t>(num_offsets,
                                static_cast<std::int64_t>(payload));
  const std::uint64_t offsets_bytes = num_offsets * sizeof(std::size_t);
  check_count_fits<Graph::Neighbor>(
      header.num_edges, static_cast<std::int64_t>(payload - offsets_bytes));
  const std::uint64_t adjacency_bytes =
      header.num_edges * sizeof(Graph::Neighbor);

  const char* base = file->data + sizeof(HeaderV2);
  const std::span<const std::size_t> offsets{
      reinterpret_cast<const std::size_t*>(base),
      static_cast<std::size_t>(num_offsets)};
  const std::span<const Graph::Neighbor> adjacency{
      reinterpret_cast<const Graph::Neighbor*>(base + offsets_bytes),
      static_cast<std::size_t>(header.num_edges)};

  Graph graph = Graph::from_mapped(offsets, adjacency, file);

  if ((header.flags & kFlagCoordinates) != 0) {
    // Coordinates are copied, not aliased: they are V x 2 doubles (tiny
    // next to the adjacency array) and only A* reads them.
    const std::uint64_t coord_count = 2 * header.num_vertices;
    check_count_fits<double>(
        coord_count,
        static_cast<std::int64_t>(payload - offsets_bytes - adjacency_bytes));
    const auto* x = reinterpret_cast<const double*>(base + offsets_bytes +
                                                    adjacency_bytes);
    Coordinates coords;
    coords.x.assign(x, x + header.num_vertices);
    coords.y.assign(x + header.num_vertices, x + 2 * header.num_vertices);
    graph.set_coordinates(std::move(coords));
  }
  graph.set_description("binary cache (mmap)");
  return graph;
}
#endif  // SMQ_HAVE_MMAP

}  // namespace

void write_binary_graph(std::ostream& out, const Graph& graph) {
  HeaderV2 header;
  header.num_vertices = graph.num_vertices();
  header.num_edges = graph.num_edges();
  const Coordinates& coords = graph.coordinates();
  if (!coords.empty()) header.flags |= kFlagCoordinates;
  write_pod(out, header);

  write_array(out, graph.offsets().data(), graph.offsets().size());
  write_array(out, graph.adjacency().data(), graph.adjacency().size());
  if (!coords.empty()) {
    write_array(out, coords.x.data(), coords.x.size());
    write_array(out, coords.y.data(), coords.y.size());
  }
}

void write_binary_graph_v1(std::ostream& out, const Graph& graph) {
  write_pod(out, kMagic);
  write_pod<std::uint32_t>(out, 1);
  write_pod<std::uint32_t>(out, graph.num_vertices());

  std::vector<std::uint32_t> from, to, weight;
  from.reserve(graph.num_edges());
  to.reserve(graph.num_edges());
  weight.reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Graph::Neighbor& n : graph.neighbors(v)) {
      from.push_back(v);
      to.push_back(n.to);
      weight.push_back(n.weight);
    }
  }
  write_vector_v1(out, from);
  write_vector_v1(out, to);
  write_vector_v1(out, weight);

  const Coordinates& coords = graph.coordinates();
  write_pod<std::uint8_t>(out, coords.empty() ? 0 : 1);
  if (!coords.empty()) {
    write_vector_v1(out, coords.x);
    write_vector_v1(out, coords.y);
  }
}

void save_binary_graph(const std::string& path, const Graph& graph) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("binary graph: cannot open " + path);
  write_binary_graph(out, graph);
  if (!out.flush()) {
    throw std::runtime_error("binary graph: short write to " + path);
  }
}

Graph read_binary_graph(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("binary graph: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  Graph graph;
  if (version == 1) {
    graph = read_binary_graph_v1(in);
  } else if (version == 2) {
    HeaderV2 header;
    header.flags = read_pod<std::uint32_t>(in);
    header.num_vertices = read_pod<std::uint64_t>(in);
    header.num_edges = read_pod<std::uint64_t>(in);
    for (std::uint64_t& r : header.reserved) r = read_pod<std::uint64_t>(in);
    graph = read_binary_graph_v2(in, header);
  } else {
    throw std::runtime_error("binary graph: unsupported version " +
                             std::to_string(version));
  }
  graph.set_description("binary cache");
  return graph;
}

Graph load_binary_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("binary graph: cannot open " + path);
  return read_binary_graph(in);
}

Graph load_binary_graph_mmap(const std::string& path) {
#if SMQ_HAVE_MMAP
  std::shared_ptr<MappedFile> file = MappedFile::map(path);
  if (file != nullptr && file->size >= sizeof(HeaderV2)) {
    std::uint32_t version = 0;
    std::memcpy(&version, file->data + sizeof(std::uint64_t),
                sizeof(version));
    // v1 rebuilds an edge list anyway — nothing to map in place.
    if (version != 1) return map_v2(std::move(file), path);
  }
#endif
  return load_binary_graph(path);
}

}  // namespace smq
