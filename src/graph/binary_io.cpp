#include "graph/binary_io.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace smq {

namespace {

constexpr std::uint64_t kMagic = 0x534D515F47524150ull;  // "SMQ_GRAP"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary graph: truncated input");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& data) {
  write_pod<std::uint64_t>(out, data.size());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary graph: truncated array");
  return data;
}

}  // namespace

void write_binary_graph(std::ostream& out, const Graph& graph) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint32_t>(out, graph.num_vertices());

  // Serialize as an edge list: simple, and from_edges() rebuilds the CSR
  // deterministically.
  std::vector<std::uint32_t> from, to, weight;
  from.reserve(graph.num_edges());
  to.reserve(graph.num_edges());
  weight.reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Graph::Neighbor& n : graph.neighbors(v)) {
      from.push_back(v);
      to.push_back(n.to);
      weight.push_back(n.weight);
    }
  }
  write_vector(out, from);
  write_vector(out, to);
  write_vector(out, weight);

  const Coordinates& coords = graph.coordinates();
  write_pod<std::uint8_t>(out, coords.empty() ? 0 : 1);
  if (!coords.empty()) {
    write_vector(out, coords.x);
    write_vector(out, coords.y);
  }
}

void save_binary_graph(const std::string& path, const Graph& graph) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("binary graph: cannot open " + path);
  write_binary_graph(out, graph);
}

Graph read_binary_graph(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("binary graph: bad magic");
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("binary graph: unsupported version");
  }
  const auto num_vertices = read_pod<std::uint32_t>(in);
  const auto from = read_vector<std::uint32_t>(in);
  const auto to = read_vector<std::uint32_t>(in);
  const auto weight = read_vector<std::uint32_t>(in);
  if (from.size() != to.size() || from.size() != weight.size()) {
    throw std::runtime_error("binary graph: inconsistent edge arrays");
  }
  std::vector<Edge> edges(from.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (from[i] >= num_vertices || to[i] >= num_vertices) {
      throw std::runtime_error("binary graph: vertex id out of range");
    }
    edges[i] = Edge{from[i], to[i], weight[i]};
  }
  Graph graph = Graph::from_edges(num_vertices, std::move(edges));

  if (read_pod<std::uint8_t>(in) != 0) {
    Coordinates coords;
    coords.x = read_vector<double>(in);
    coords.y = read_vector<double>(in);
    if (coords.x.size() != num_vertices || coords.y.size() != num_vertices) {
      throw std::runtime_error("binary graph: bad coordinates block");
    }
    graph.set_coordinates(std::move(coords));
  }
  graph.set_description("binary cache");
  return graph;
}

Graph load_binary_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("binary graph: cannot open " + path);
  return read_binary_graph(in);
}

}  // namespace smq
