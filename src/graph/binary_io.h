// Binary CSR graph cache.
//
// Parsing multi-gigabyte DIMACS text (the real USA graph is ~58M arcs)
// dominates bench startup, so graphs can be saved to / loaded from a
// compact binary format once. Format: magic, version, |V|, |E|, the CSR
// offset and adjacency arrays, then an optional coordinates block.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace smq {

void write_binary_graph(std::ostream& out, const Graph& graph);
void save_binary_graph(const std::string& path, const Graph& graph);

/// Throws std::runtime_error on bad magic/version/truncation.
Graph read_binary_graph(std::istream& in);
Graph load_binary_graph(const std::string& path);

}  // namespace smq
