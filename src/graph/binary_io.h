// Binary CSR graph cache.
//
// Parsing multi-gigabyte DIMACS text (the real USA graph is ~58M arcs)
// dominates bench startup, so graphs are saved to / loaded from a
// compact binary format once.
//
// Format v2 (current): a 64-byte alignment-padded header (magic,
// version, flags, |V|, |E|), then the CSR arrays verbatim — offsets
// ((V+1) x u64), adjacency (E x {u32 to, u32 weight}), and an optional
// coordinates block (V x f64 x, V x f64 y). Every section starts
// 8-byte-aligned, so a v2 file can be memory-mapped and used in place:
// load_binary_graph_mmap() maps the file MAP_PRIVATE and the graph
// pages in on first traversal instead of being parsed or copied.
//
// Format v1 (legacy): an edge list rebuilt through Graph::from_edges.
// Still readable (read_binary_graph dispatches on the version field);
// the cache regenerates v1 entries as v2 because the cache key includes
// kBinaryFormatVersion (see GraphRegistry::create_cached).
//
// All readers bound every on-disk count by the remaining input size
// before allocating, so a corrupt header fails fast instead of
// attempting a multi-exabyte allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace smq {

/// Current on-disk format version; folded into the graph cache key so a
/// format bump invalidates stale cache entries instead of misreading
/// them.
inline constexpr std::uint32_t kBinaryFormatVersion = 2;

/// Write the current (v2, direct-CSR) format.
void write_binary_graph(std::ostream& out, const Graph& graph);
void save_binary_graph(const std::string& path, const Graph& graph);

/// Write the legacy v1 edge-list format. Kept for the v1->v2 migration
/// tests; new code always writes v2.
void write_binary_graph_v1(std::ostream& out, const Graph& graph);

/// Read either format (dispatches on the header's version field).
/// Throws std::runtime_error on bad magic/version/truncation/oversized
/// counts and std::invalid_argument on inconsistent CSR offsets.
Graph read_binary_graph(std::istream& in);
Graph load_binary_graph(const std::string& path);

/// Memory-map `path` (MAP_PRIVATE) and return a graph whose CSR arrays
/// alias the mapping — load is page-in, not parse. Falls back to the
/// ifstream reader when the platform has no mmap, the mapping fails, or
/// the file is format v1 (whose edge list must be rebuilt anyway).
/// Structural corruption throws, exactly like the stream reader.
Graph load_binary_graph_mmap(const std::string& path);

}  // namespace smq
