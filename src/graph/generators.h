// Synthetic graph generators — stand-ins for the paper's Table 1 inputs.
//
// The container has no access to the USA/WEST road networks or the
// TWITTER/WEB crawls, so we generate graphs with the structural
// properties the evaluation depends on (DESIGN.md "Input graphs"):
//
//  * road_like(n): connected 2D lattice with random perturbations —
//    large diameter, max degree ~8, Euclidean-correlated weights,
//    per-vertex coordinates (required by A*). Models USA / WEST.
//  * rmat(scale): recursive-matrix power-law graph, uniform random
//    weights in [0, 255] exactly as the paper assigns to its social
//    graphs. Models TWITTER / WEB.
//  * erdos_renyi(n, m): uniform random multigraph, used by tests.
//  * grid2d(w, h): exact lattice, used by tests (known shortest paths).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace smq {

struct RoadLikeOptions {
  std::uint64_t seed = 42;
  // Fraction of extra "highway" shortcut edges relative to |V|.
  double shortcut_fraction = 0.05;
  // Weight = ceil(euclidean_distance * weight_scale) + jitter; keeping
  // weights >= distance keeps the A* heuristic admissible.
  double weight_scale = 100.0;
};

/// Road-network stand-in with coordinates; bidirectional edges.
Graph make_road_like(VertexId num_vertices, RoadLikeOptions opts = {});

struct RmatOptions {
  std::uint64_t seed = 42;
  unsigned edge_factor = 16;  // edges per vertex
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  Weight max_weight = 255;    // uniform weights in [0, max_weight]
};

/// Power-law (social/web-like) directed graph: 2^scale vertices.
Graph make_rmat(unsigned scale, RmatOptions opts = {});

/// Uniform random directed multigraph with m edges, weights in [1, 255].
Graph make_erdos_renyi(VertexId num_vertices, std::size_t num_edges,
                       std::uint64_t seed = 42);

/// Exact width x height 4-neighbour lattice, unit or random weights.
Graph make_grid2d(VertexId width, VertexId height, bool unit_weights = true,
                  std::uint64_t seed = 42);

/// A connected path graph (worst-case depth), used by tests.
Graph make_path(VertexId num_vertices, Weight weight = 1);

}  // namespace smq
