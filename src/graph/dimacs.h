// DIMACS shortest-path challenge format I/O.
//
// The paper's road inputs (USA, WEST) ship in the 9th DIMACS challenge
// `.gr` (edges) / `.co` (coordinates) format. This loader lets the real
// graphs be dropped into every bench via --graph path.gr [--coords
// path.co]; the generators in generators.h are the offline fallback.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace smq {

/// Parse a DIMACS .gr stream ("p sp V E" header, "a u v w" arcs,
/// 1-indexed vertices). Throws std::runtime_error on malformed input.
Graph read_dimacs_gr(std::istream& in);
Graph load_dimacs_gr(const std::string& path);

/// Parse a DIMACS .co stream ("v id x y") into coordinates for `graph`.
void read_dimacs_co(std::istream& in, Graph& graph);
void load_dimacs_co(const std::string& path, Graph& graph);

/// Serialize to .gr (round-trip support, used by tests).
void write_dimacs_gr(std::ostream& out, const Graph& graph);

}  // namespace smq
