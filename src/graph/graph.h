// Compressed-sparse-row directed graph with integer edge weights.
//
// The workload substrate for every benchmark in the paper: SSSP, BFS, A*
// and MST all run over this structure. Immutable after construction;
// parallel algorithm state (distance arrays etc.) lives outside.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace smq {

using VertexId = std::uint32_t;
using Weight = std::uint32_t;

struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  Weight weight = 1;
};

/// Optional per-vertex planar coordinates (road graphs); consumed by A*.
struct Coordinates {
  std::vector<double> x;
  std::vector<double> y;

  bool empty() const noexcept { return x.empty(); }
};

class Graph {
 public:
  Graph() = default;

  /// Build CSR from an edge list. Self-loops are kept; duplicate edges
  /// are kept (multigraphs are fine for all our algorithms).
  static Graph from_edges(VertexId num_vertices, std::vector<Edge> edges);

  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::size_t num_edges() const noexcept { return adjacency_.size(); }

  struct Neighbor {
    VertexId to;
    Weight weight;
  };

  /// Out-neighbours of v as a contiguous span.
  std::span<const Neighbor> neighbors(VertexId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t out_degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Flat edge list reconstruction (used by MST and tests).
  std::vector<Edge> to_edges() const;

  const Coordinates& coordinates() const noexcept { return coords_; }
  void set_coordinates(Coordinates coords) { coords_ = std::move(coords); }

  /// Human-readable description, printed by the Table 1 bench.
  const std::string& description() const noexcept { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

 private:
  std::vector<std::size_t> offsets_;   // size = V + 1
  std::vector<Neighbor> adjacency_;    // size = E
  Coordinates coords_;
  std::string description_;
};

}  // namespace smq
