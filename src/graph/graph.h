// Compressed-sparse-row directed graph with integer edge weights.
//
// The workload substrate for every benchmark in the paper: SSSP, BFS, A*
// and MST all run over this structure. Immutable after construction;
// parallel algorithm state (distance arrays etc.) lives outside.
//
// Storage is either *owned* (vectors filled by from_edges/from_csr) or
// *mapped* (spans into a memory-mapped binary cache file, kept alive by
// a shared backing handle — see binary_io.h's load_binary_graph_mmap).
// The read API is identical either way; mapped graphs page in lazily
// instead of being parsed, which is what makes the 24M-vertex DIMACS
// road networks routine inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace smq {

using VertexId = std::uint32_t;
using Weight = std::uint32_t;

struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  Weight weight = 1;
};

/// Optional per-vertex planar coordinates (road graphs); consumed by A*.
struct Coordinates {
  std::vector<double> x;
  std::vector<double> y;

  bool empty() const noexcept { return x.empty(); }
};

class Graph {
 public:
  Graph() = default;

  /// Build CSR from an edge list. Self-loops are kept; duplicate edges
  /// are kept (multigraphs are fine for all our algorithms).
  static Graph from_edges(VertexId num_vertices, std::vector<Edge> edges);

  struct Neighbor {
    VertexId to;
    Weight weight;
  };

  /// Adopt already-built CSR arrays (the binary cache's v2 stream
  /// reader). Validates the CSR invariants: offsets is non-empty,
  /// starts at 0, is non-decreasing, ends at adjacency.size(), and
  /// every target id is < |V|. Throws std::invalid_argument otherwise.
  static Graph from_csr(std::vector<std::size_t> offsets,
                        std::vector<Neighbor> adjacency);

  /// Adopt CSR arrays that live in memory owned elsewhere (an mmap'd
  /// cache file); `backing` keeps that memory alive for the graph's
  /// lifetime and is shared by copies. Validates offsets (O(V) scan —
  /// pages in the offset array, deliberately not the adjacency array,
  /// whose pages fault in on first traversal).
  static Graph from_mapped(std::span<const std::size_t> offsets,
                           std::span<const Neighbor> adjacency,
                           std::shared_ptr<const void> backing);

  // Owned storage deep-copies; mapped storage shares the backing
  // mapping. Moves re-point the views (vector moves keep their heap
  // buffers, so views into owned storage stay valid).
  Graph(const Graph& other) { assign(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) assign(other);
    return *this;
  }
  Graph(Graph&& other) noexcept { assign_move(std::move(other)); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) assign_move(std::move(other));
    return *this;
  }

  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::size_t num_edges() const noexcept { return adjacency_.size(); }

  /// Out-neighbours of v as a contiguous span.
  std::span<const Neighbor> neighbors(VertexId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t out_degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// The raw CSR arrays (binary serialization, NUMA placement).
  std::span<const std::size_t> offsets() const noexcept { return offsets_; }
  std::span<const Neighbor> adjacency() const noexcept { return adjacency_; }

  /// True when the CSR views alias an external mapping (page-in
  /// storage) instead of owned vectors.
  bool is_mapped() const noexcept { return backing_ != nullptr; }

  /// Flat edge list reconstruction (used by MST and tests).
  std::vector<Edge> to_edges() const;

  const Coordinates& coordinates() const noexcept { return coords_; }
  void set_coordinates(Coordinates coords) { coords_ = std::move(coords); }

  /// Human-readable description, printed by the Table 1 bench.
  const std::string& description() const noexcept { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

 private:
  void assign(const Graph& other);
  void assign_move(Graph&& other) noexcept;

  // Owned storage (empty when mapped).
  std::vector<std::size_t> offsets_owned_;
  std::vector<Neighbor> adjacency_owned_;
  // The views every accessor reads — into the owned vectors or into the
  // backing mapping.
  std::span<const std::size_t> offsets_;
  std::span<const Neighbor> adjacency_;
  std::shared_ptr<const void> backing_;
  Coordinates coords_;
  std::string description_;
};

}  // namespace smq
