// The stealing buffer of the SMQ (paper Listing 4).
//
// A single-producer (the queue owner) / multi-consumer (stealers, and the
// owner itself) batch hand-off slot. Metadata — the buffer epoch and the
// "tasks are stolen" flag — live in one 64-bit atomic, packed as
// (epoch << 1) | stolen. The owner refills the buffer only while the
// stolen flag is set (so no reader will hand out its cells), then
// publishes with a release store that bumps the epoch and clears the
// flag. Consumers read optimistically and claim the whole batch with a
// single CAS (epoch, stolen=0) -> (epoch, stolen=1); a failed CAS means
// the batch was claimed or republished and the read data is discarded.
//
// Buffer cells are relaxed atomics, making the optimistic read a
// well-defined seqlock rather than a benign-race hack.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sched/task.h"

namespace smq {

class StealingBuffer {
 public:
  explicit StealingBuffer(std::size_t capacity)
      : prio_(capacity), payload_(capacity) {
    assert(capacity > 0);
  }

  std::size_t capacity() const noexcept { return prio_.size(); }

  /// True if the current batch has been claimed (or never published).
  bool is_stolen() const noexcept {
    return (state_.load(std::memory_order_acquire) & 1u) != 0;
  }

  /// Owner only, and only while is_stolen(): publish a new batch.
  void publish(const Task* tasks, std::size_t count) noexcept {
    assert(is_stolen());
    assert(count <= capacity());
    for (std::size_t i = 0; i < count; ++i) {
      prio_[i].store(tasks[i].priority, std::memory_order_relaxed);
      payload_[i].store(tasks[i].payload, std::memory_order_relaxed);
    }
    count_.store(count, std::memory_order_relaxed);
    const std::uint64_t epoch = state_.load(std::memory_order_relaxed) >> 1;
    state_.store((epoch + 1) << 1, std::memory_order_release);
  }

  /// Priority of the batch head, or Task::kInfinity when stolen/empty.
  /// Safe from any thread (paper's top()).
  std::uint64_t top_priority() const noexcept {
    while (true) {
      const std::uint64_t before = state_.load(std::memory_order_acquire);
      if ((before & 1u) != 0) return Task::kInfinity;
      if (count_.load(std::memory_order_relaxed) == 0) return Task::kInfinity;
      const std::uint64_t p = prio_[0].load(std::memory_order_relaxed);
      if (state_.load(std::memory_order_acquire) == before) return p;
      // Epoch moved mid-read: retry (paper Listing 4, line 24).
    }
  }

  /// Attempt to claim the whole batch (paper's steal(..)). On success the
  /// tasks are appended to `out` in priority order and the stolen flag is
  /// set; returns the number of tasks taken. Returns 0 if the batch was
  /// already stolen or a race lost.
  std::size_t try_claim(std::vector<Task>& out) {
    while (true) {
      const std::uint64_t before = state_.load(std::memory_order_acquire);
      if ((before & 1u) != 0) return 0;  // already stolen
      const std::size_t n = count_.load(std::memory_order_relaxed);
      const std::size_t base = out.size();
      out.resize(base + n);
      for (std::size_t i = 0; i < n; ++i) {
        out[base + i].priority = prio_[i].load(std::memory_order_relaxed);
        out[base + i].payload = payload_[i].load(std::memory_order_relaxed);
      }
      std::uint64_t expected = before;
      if (state_.compare_exchange_strong(expected, before | 1u,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return n;
      }
      out.resize(base);  // discard optimistic read
      if ((expected & 1u) != 0 && (expected >> 1) == (before >> 1)) {
        return 0;  // same epoch claimed by someone else
      }
      // Epoch moved: a fresh batch is there, retry.
    }
  }

  std::uint64_t epoch() const noexcept {
    return state_.load(std::memory_order_acquire) >> 1;
  }

 private:
  // Starts "stolen" so the owner's first fill publishes epoch 1.
  std::atomic<std::uint64_t> state_{1};
  std::atomic<std::size_t> count_{0};
  std::vector<std::atomic<std::uint64_t>> prio_;
  std::vector<std::atomic<std::uint64_t>> payload_;
};

}  // namespace smq
