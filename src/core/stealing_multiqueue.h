// The Stealing Multi-Queue (paper Section 2.2, Listing 2) — the paper's
// primary contribution.
//
// One thread-local priority queue per thread (m = T). insert() is purely
// local. delete() first drains the thread's buffer of previously stolen
// tasks; otherwise, with probability p_steal it compares the top of a
// randomly chosen victim queue against its own best task and steals the
// victim's whole published batch when the victim wins; otherwise it takes
// from its own queue. Stealing also kicks in whenever the local queue is
// empty, which keeps the scheduler work-conserving.
//
// The local queue type is a template parameter: DAryHeap (Section 4) or
// SequentialSkipList (Appendix D). NUMA-aware victim sampling (Section 4)
// plugs in through QueueSampler.
//
// The hot path lives on the per-thread Handle (HandleScheduler in
// scheduler_traits.h): acquiring `handle(tid)` resolves the thread's
// Local slot — local queue, stolen-task buffer, victim RNG — once; the
// tid-indexed methods are thin shims over a freshly built handle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/heap_with_stealing.h"
#include "core/numa_sampler.h"
#include "queues/d_ary_heap.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

struct SmqConfig {
  std::size_t steal_size = 4;  // batch size, SIZE_steal (paper default 4)
  double p_steal = 1.0 / 8.0;  // stealing probability (paper default 1/8)
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;  // NUMA-aware victim sampling
  double numa_weight_k = 8.0;          // weight K (paper default 8)

  friend bool operator==(const SmqConfig&, const SmqConfig&) = default;
};

template <typename LocalPQ = DAryHeap<Task, 4>>
class StealingMultiQueue {
 private:
  struct Local;

 public:
  using QueueType = HeapWithStealingBuffer<LocalPQ>;

  StealingMultiQueue(unsigned num_threads, SmqConfig cfg = {})
      : cfg_(cfg),
        num_threads_(num_threads),
        locals_(num_threads),
        sampler_(make_queue_sampler(num_threads, num_threads, cfg.topology,
                                    cfg.numa_weight_k)) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      Local& local = locals_[tid].value;
      local.queue = std::make_unique<QueueType>(cfg.steal_size);
      local.rng = Xoshiro256(thread_seed(cfg.seed, tid));
      local.stolen_tasks.reserve(cfg.steal_size);
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }

  /// Per-thread view with the thread's Local slot resolved once; the
  /// entire hot path (paper Listing 2) is implemented here.
  class Handle {
   public:
    Handle(StealingMultiQueue& sched, unsigned tid) noexcept
        : sched_(&sched), me_(&sched.locals_[tid].value), tid_(tid) {}

    /// insert(task): purely local (paper Listing 2, lines 6-7).
    void push(Task task) { me_->queue->add_local(task); }

    /// Bulk insert: local-queue inserts take no locks, so the batch op is
    /// just the loop — its value is letting callers behind a dispatch
    /// boundary (AnyScheduler) cross it once for the whole span.
    void push_batch(std::span<const Task> tasks) {
      QueueType& queue = *me_->queue;
      for (const Task& task : tasks) queue.add_local(task);
    }

    /// delete(): stolen-task buffer, then probabilistic steal, then the
    /// local queue, then a forced steal (paper Listing 2, lines 9-24).
    std::optional<Task> try_pop() {
      Local& me = *me_;
      if (me.next_stolen < me.stolen_tasks.size()) {
        return me.stolen_tasks[me.next_stolen++];
      }
      if (me.rng.next_bool(sched_->cfg_.p_steal)) {
        if (std::optional<Task> task = sched_->try_steal(tid_, me)) return task;
      }
      if (std::optional<Task> task = sched_->extract_top_local(me)) return task;
      return sched_->try_steal(tid_, me);  // local queue drained
    }

    /// Bulk extract: hand out the remainder of the last stolen batch
    /// wholesale (instead of dribbling it through per-pop calls), then
    /// top up from the usual pop path.
    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      Local& me = *me_;
      std::size_t taken = 0;
      while (taken < max && me.next_stolen < me.stolen_tasks.size()) {
        out.push_back(me.stolen_tasks[me.next_stolen++]);
        ++taken;
      }
      return taken + handle_pop_loop(*this, out, max - taken);
    }

    /// Inserts are purely local and immediately poppable; nothing to
    /// publish.
    void flush() noexcept {}

    /// Fold this thread's scheduler-private counters into the executor's
    /// per-thread stats: steal tallies plus the NUMA victim-sampling
    /// attribution that ExecStats reports as remote_accesses /
    /// sampled_accesses.
    void collect_stats(ThreadStats& st) const noexcept {
      collect_into(*me_, st);
    }

    unsigned thread_id() const noexcept { return tid_; }

   private:
    StealingMultiQueue* sched_;
    Local* me_;
    unsigned tid_;
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  // ---- tid-indexed shims (legacy surface) ------------------------------

  void push(unsigned tid, Task task) { handle(tid).push(task); }
  void push_batch(unsigned tid, std::span<const Task> tasks) {
    handle(tid).push_batch(tasks);
  }
  std::optional<Task> try_pop(unsigned tid) { return handle(tid).try_pop(); }
  std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                            std::size_t max) {
    return handle(tid).try_pop_batch(out, max);
  }
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    collect_into(locals_[tid].value, st);
  }

  // ---- introspection ---------------------------------------------------

  std::uint64_t steals(unsigned tid) const noexcept {
    return locals_[tid].value.steals;
  }
  std::uint64_t steal_failures(unsigned tid) const noexcept {
    return locals_[tid].value.steal_fails;
  }
  std::uint64_t remote_steals(unsigned tid) const noexcept {
    return locals_[tid].value.remote_steals;
  }
  std::uint64_t steal_samples(unsigned tid) const noexcept {
    return locals_[tid].value.steal_samples;
  }
  std::size_t local_heap_size(unsigned tid) const noexcept {
    return locals_[tid].value.queue->heap_size();
  }

  /// Total bytes across the local queues, when the substrate reports
  /// them (smq-skiplist does; the d-ary heap does not). Drives the
  /// service's steady-state footprint stat.
  std::size_t memory_footprint() const noexcept
      requires requires(const QueueType& q) { q.memory_footprint(); }
  {
    std::size_t total = 0;
    for (const auto& local : locals_) {
      total += local.value.queue->memory_footprint();
    }
    return total;
  }

  const SmqConfig& config() const noexcept { return cfg_; }

 private:
  struct Local {
    std::unique_ptr<QueueType> queue;
    // The paper's stolenTasks buffer (capacity SIZE_steal - 1): remainder
    // of the last stolen batch, consumed FIFO before any other source.
    std::vector<Task> stolen_tasks;
    std::size_t next_stolen = 0;
    Xoshiro256 rng;
    std::uint64_t steals = 0;
    std::uint64_t steal_fails = 0;
    // NUMA attribution: every victim choice is one sampled touch of the
    // victim's queue (reading its published top is already a cross-node
    // cache-line transfer, steal or not); remote_steals counts those
    // that landed out of node.
    std::uint64_t steal_samples = 0;
    std::uint64_t remote_steals = 0;
  };

  /// One stat-folding body shared by the handle and tid surfaces (the
  /// only reason it is not a handle call is that handle() is non-const).
  static void collect_into(const Local& me, ThreadStats& st) noexcept {
    st.steals += me.steals;
    st.steal_fails += me.steal_fails;
    st.sampled_accesses += me.steal_samples;
    st.remote_accesses += me.remote_steals;
  }

  /// trySteal() (paper Listing 2, lines 26-39).
  std::optional<Task> try_steal(unsigned tid, Local& me) {
    if (num_threads_ <= 1) return std::nullopt;
    // Self-exclusion must be bounded: a heavily weighted sampler on a
    // one-thread node returns `tid` with probability ~1, so the naive
    // resample-until-different loop could spin almost forever. After a
    // few tries, fall back to a uniform pick over the other threads.
    std::size_t victim = sampler_.sample(tid, me.rng);
    for (int attempt = 0; victim == tid && attempt < 8; ++attempt) {
      victim = sampler_.sample(tid, me.rng);
    }
    if (victim == tid) {
      victim = (tid + 1 + me.rng.next_below(num_threads_ - 1)) % num_threads_;
    }
    if (sampler_.topology_aware()) {
      ++me.steal_samples;
      if (sampler_.is_remote(tid, victim)) ++me.remote_steals;
    }
    QueueType& victim_queue = *locals_[victim].value.queue;

    // Steal only when the victim's visible top beats our local best.
    if (victim_queue.steal_top_priority() >=
        me.queue->local_top_priority()) {
      return std::nullopt;
    }
    me.stolen_tasks.clear();
    me.next_stolen = 0;
    const std::size_t n = victim_queue.try_steal(me.stolen_tasks);
    if (n == 0) {
      ++me.steal_fails;
      return std::nullopt;
    }
    ++me.steals;
    me.next_stolen = 1;  // hand out tasks [1, n) on subsequent pops
    return me.stolen_tasks.front();
  }

  /// Owner-side extraction: the better of the local heap top and the
  /// thread's own published batch, reclaiming the latter when it wins.
  std::optional<Task> extract_top_local(Local& me) {
    while (true) {
      switch (me.queue->classify_pop()) {
        case OwnerPopSource::kEmpty:
          return std::nullopt;
        case OwnerPopSource::kHeap:
          return me.queue->pop_heap();
        case OwnerPopSource::kBuffer: {
          me.stolen_tasks.clear();
          me.next_stolen = 0;
          const std::size_t n = me.queue->reclaim_buffer(me.stolen_tasks);
          if (n == 0) continue;  // a stealer won the race; re-classify
          me.next_stolen = 1;
          return me.stolen_tasks.front();
        }
      }
    }
  }

  SmqConfig cfg_;
  unsigned num_threads_;
  std::vector<Padded<Local>> locals_;
  QueueSampler sampler_;
};

/// The heap-based SMQ the paper evaluates as its main configuration.
using SmqHeap = StealingMultiQueue<DAryHeap<Task, 4>>;

static_assert(HandleScheduler<SmqHeap>,
              "the paper's primary scheduler must expose native handles");

}  // namespace smq
