// A thread-local priority queue with an affixed stealing buffer
// (paper Listing 4: HeapWithStealingBufferQueue).
//
// The owner stores tasks in a sequential local queue (d-ary heap by
// default, sequential skip list for the Appendix D variant) and
// periodically moves the best SIZE_steal of them into the stealing
// buffer, from which *either* other threads steal the whole batch or the
// owner reclaims them. Only the owner mutates the local queue; all
// cross-thread traffic flows through the buffer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/stealing_buffer.h"
#include "queues/d_ary_heap.h"
#include "sched/task.h"

namespace smq {

/// What the owner should do after comparing heap top and buffer head.
enum class OwnerPopSource { kEmpty, kHeap, kBuffer };

template <typename LocalPQ = DAryHeap<Task, 4>>
class HeapWithStealingBuffer {
 public:
  explicit HeapWithStealingBuffer(std::size_t steal_size)
      : buffer_(steal_size == 0 ? 1 : steal_size) {}

  // ---- owner-only interface -------------------------------------------

  /// addLocal(task): push into the local queue; refill the buffer if its
  /// previous batch was stolen, so the queue stays visible to stealers.
  void add_local(Task task) {
    heap_.push(task);
    if (buffer_.is_stolen()) fill_buffer();
  }

  /// Owner's view of the best available priority (min of heap top and an
  /// unstolen buffer head).
  std::uint64_t local_top_priority() const noexcept {
    const std::uint64_t heap_top =
        heap_.empty() ? Task::kInfinity : heap_.top().priority;
    return std::min(heap_top, buffer_.top_priority());
  }

  /// Decide where the owner's next task comes from; refills the buffer
  /// first so stolen batches are replaced eagerly (Listing 4 line 15).
  OwnerPopSource classify_pop() {
    if (buffer_.is_stolen()) fill_buffer();
    const std::uint64_t buf_top = buffer_.top_priority();
    const std::uint64_t heap_top =
        heap_.empty() ? Task::kInfinity : heap_.top().priority;
    if (buf_top == Task::kInfinity && heap_top == Task::kInfinity) {
      return OwnerPopSource::kEmpty;
    }
    return heap_top <= buf_top ? OwnerPopSource::kHeap : OwnerPopSource::kBuffer;
  }

  /// Pop from the local heap (owner, after classify_pop() == kHeap).
  Task pop_heap() { return heap_.pop(); }

  /// Reclaim the owner's own published batch (classify_pop() == kBuffer).
  /// May fail (returns 0) if a stealer won the race.
  std::size_t reclaim_buffer(std::vector<Task>& out) {
    const std::size_t n = buffer_.try_claim(out);
    if (buffer_.is_stolen()) fill_buffer();
    return n;
  }

  std::size_t heap_size() const noexcept { return heap_.size(); }

  /// Bytes held by the local queue, when it can report them (e.g. the
  /// skiplist substrate's node pool). Any-thread safe.
  std::size_t memory_footprint() const noexcept
      requires requires(const LocalPQ& q) { q.memory_footprint(); }
  {
    return heap_.memory_footprint();
  }

  // ---- any-thread interface -------------------------------------------

  /// Priority visible to stealers: the buffer head (paper's top()).
  std::uint64_t steal_top_priority() const noexcept {
    return buffer_.top_priority();
  }

  /// Steal the whole published batch; 0 on failure (paper's steal(..)).
  std::size_t try_steal(std::vector<Task>& out) {
    return buffer_.try_claim(out);
  }

  std::uint64_t buffer_epoch() const noexcept { return buffer_.epoch(); }

 private:
  /// fillBuffer(): move up to SIZE_steal best tasks from the local queue
  /// into the buffer and republish. Requires the stolen flag to be set.
  void fill_buffer() {
    scratch_.clear();
    for (std::size_t i = 0; i < buffer_.capacity(); ++i) {
      std::optional<Task> t = heap_.try_pop();
      if (!t) break;
      scratch_.push_back(*t);
    }
    buffer_.publish(scratch_.data(), scratch_.size());
  }

  LocalPQ heap_;
  StealingBuffer buffer_;
  std::vector<Task> scratch_;  // owner-only fill staging
};

}  // namespace smq
