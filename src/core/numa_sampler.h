// NUMA-aware weighted queue sampling (paper Section 4, "NUMA-Awareness").
//
// Queues are assigned to virtual NUMA nodes through their owning thread
// (queue q belongs to thread q mod T). When a thread samples a queue, all
// queues of its own node carry weight 1 and every remote queue carries
// weight 1/K. Sampling is done in two stages — flip a biased coin for
// local-vs-remote, then pick uniformly inside the chosen group — which is
// exactly equivalent to the weighted distribution and O(1).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "sched/topology.h"
#include "support/rng.h"

namespace smq {

class QueueSampler {
 public:
  /// Uniform sampling over [0, num_queues) — the UMA / K = 1 case.
  explicit QueueSampler(std::size_t num_queues) : num_queues_(num_queues) {}

  /// Weighted sampling: own-node queues weight 1, remote queues 1/K.
  QueueSampler(std::size_t num_queues, unsigned num_threads,
               const Topology& topo, double k_weight)
      : num_queues_(num_queues) {
    if (k_weight <= 1.0 || topo.num_nodes() <= 1) return;  // stays uniform
    per_node_.resize(topo.num_nodes());
    thread_node_.resize(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      thread_node_[tid] = topo.node_of_thread(tid);
    }
    for (std::size_t q = 0; q < num_queues; ++q) {
      const unsigned owner = static_cast<unsigned>(q % num_threads);
      const unsigned node = topo.node_of_thread(owner);
      for (unsigned n = 0; n < topo.num_nodes(); ++n) {
        (n == node ? per_node_[n].local : per_node_[n].remote).push_back(q);
      }
    }
    for (auto& group : per_node_) {
      const double w_local = static_cast<double>(group.local.size());
      const double w_remote =
          static_cast<double>(group.remote.size()) / k_weight;
      group.p_local =
          w_local + w_remote == 0 ? 1.0 : w_local / (w_local + w_remote);
    }
  }

  std::size_t num_queues() const noexcept { return num_queues_; }
  bool is_weighted() const noexcept { return !per_node_.empty(); }

  std::size_t sample(unsigned tid, Xoshiro256& rng) const {
    if (per_node_.empty()) return rng.next_below(num_queues_);
    const NodeGroup& group = per_node_[thread_node_[tid]];
    if (!group.local.empty() && rng.next_bool(group.p_local)) {
      return group.local[rng.next_below(group.local.size())];
    }
    if (group.remote.empty()) {
      return group.local[rng.next_below(group.local.size())];
    }
    return group.remote[rng.next_below(group.remote.size())];
  }

  /// Whether `queue` is remote for `tid` (used for the remote-access stat).
  bool is_remote(unsigned tid, std::size_t queue) const noexcept {
    if (per_node_.empty()) return false;
    // Queues are distributed round-robin, so membership is computable.
    const unsigned owner =
        static_cast<unsigned>(queue % thread_node_.size());
    return thread_node_[owner] != thread_node_[tid];
  }

 private:
  struct NodeGroup {
    std::vector<std::size_t> local;
    std::vector<std::size_t> remote;
    double p_local = 1.0;
  };

  std::size_t num_queues_;
  std::vector<NodeGroup> per_node_;
  std::vector<unsigned> thread_node_;
};

inline QueueSampler make_queue_sampler(std::size_t num_queues,
                                       unsigned num_threads,
                                       const Topology* topo, double k_weight) {
  if (topo == nullptr || k_weight <= 1.0 || topo->num_nodes() <= 1) {
    return QueueSampler(num_queues);
  }
  return QueueSampler(num_queues, num_threads, *topo, k_weight);
}

}  // namespace smq
