// NUMA-aware weighted queue sampling (paper Section 4, "NUMA-Awareness").
//
// Queues are assigned to virtual NUMA nodes through their owning thread
// (queue q belongs to thread q mod T). When a thread samples a queue, all
// queues of its own node carry weight 1 and every remote queue carries
// weight 1/K. Sampling is done in two stages — flip a biased coin for
// local-vs-remote, then pick uniformly inside the chosen group — which is
// exactly equivalent to the weighted distribution and O(1).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "sched/topology.h"
#include "support/rng.h"

namespace smq {

/// How queue indices map to owning threads (and through them to nodes).
/// Round-robin (q mod T) matches the Multi-Queue families, where queues
/// are only conventionally assigned; blocked (q div C) matches RELD,
/// where thread t structurally owns queues [t*C, (t+1)*C).
enum class QueueOwnership { kRoundRobin, kBlocked };

class QueueSampler {
 public:
  /// Uniform sampling over [0, num_queues) — the UMA case. Knows no
  /// topology, so is_remote() is identically false.
  explicit QueueSampler(std::size_t num_queues) : num_queues_(num_queues) {}

  /// Topology-aware sampling: own-node queues weight 1, remote queues
  /// 1/K. K <= 1 keeps the *sampling* uniform but still records node
  /// membership, so is_remote() can attribute accesses — the K = 1
  /// column of the paper's NUMA tables needs a measured remote fraction
  /// for the non-NUMA algorithm too.
  QueueSampler(std::size_t num_queues, unsigned num_threads,
               const Topology& topo, double k_weight,
               QueueOwnership ownership = QueueOwnership::kRoundRobin)
      : num_queues_(num_queues),
        weighted_(k_weight > 1.0 && topo.num_nodes() > 1) {
    if (topo.num_nodes() <= 1 || num_threads == 0) return;
    thread_node_.resize(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      thread_node_[tid] = topo.node_of_thread(tid);
    }
    queue_node_.resize(num_queues);
    const std::size_t per_thread =
        num_queues < num_threads ? 1 : num_queues / num_threads;
    for (std::size_t q = 0; q < num_queues; ++q) {
      const std::size_t owner = ownership == QueueOwnership::kRoundRobin
                                    ? q % num_threads
                                    : std::min<std::size_t>(q / per_thread,
                                                            num_threads - 1);
      queue_node_[q] = topo.node_of_thread(static_cast<unsigned>(owner));
    }
    if (!weighted_) return;  // groups only exist to bias the sampling
    per_node_.resize(topo.num_nodes());
    for (std::size_t q = 0; q < num_queues; ++q) {
      for (unsigned n = 0; n < topo.num_nodes(); ++n) {
        (n == queue_node_[q] ? per_node_[n].local : per_node_[n].remote)
            .push_back(q);
      }
    }
    for (auto& group : per_node_) {
      const double w_local = static_cast<double>(group.local.size());
      const double w_remote =
          static_cast<double>(group.remote.size()) / k_weight;
      group.p_local =
          w_local + w_remote == 0 ? 1.0 : w_local / (w_local + w_remote);
    }
  }

  std::size_t num_queues() const noexcept { return num_queues_; }
  /// Sampling is biased toward the caller's node (K > 1).
  bool is_weighted() const noexcept { return weighted_; }
  /// Node membership is known, so is_remote() is meaningful (even when
  /// the sampling itself is uniform, i.e. K <= 1).
  bool topology_aware() const noexcept { return !thread_node_.empty(); }

  std::size_t sample(unsigned tid, Xoshiro256& rng) const {
    if (!weighted_) return rng.next_below(num_queues_);
    const NodeGroup& group = per_node_[thread_node_[tid]];
    // A node can own no queues (fewer queues than threads), and in the
    // degenerate single-queue case the remote group is empty too; fall
    // back to uniform rather than index into an empty vector.
    if (group.local.empty() && group.remote.empty()) {
      return rng.next_below(num_queues_);
    }
    if (group.remote.empty() ||
        (!group.local.empty() && rng.next_bool(group.p_local))) {
      return group.local[rng.next_below(group.local.size())];
    }
    return group.remote[rng.next_below(group.remote.size())];
  }

  /// Whether `queue` is remote for `tid` (used for the remote-access stat).
  bool is_remote(unsigned tid, std::size_t queue) const noexcept {
    if (thread_node_.empty()) return false;
    return queue_node_[queue] != thread_node_[tid];
  }

 private:
  struct NodeGroup {
    std::vector<std::size_t> local;
    std::vector<std::size_t> remote;
    double p_local = 1.0;
  };

  std::size_t num_queues_;
  bool weighted_ = false;
  std::vector<NodeGroup> per_node_;
  // smq-lint: no-pad written once in the ctor, concurrent reads only —
  // read-shared cache lines do not ping-pong
  std::vector<unsigned> thread_node_;
  std::vector<unsigned> queue_node_;
};

inline QueueSampler make_queue_sampler(
    std::size_t num_queues, unsigned num_threads, const Topology* topo,
    double k_weight, QueueOwnership ownership = QueueOwnership::kRoundRobin) {
  if (topo == nullptr || topo->num_nodes() <= 1) {
    return QueueSampler(num_queues);
  }
  return QueueSampler(num_queues, num_threads, *topo, k_weight, ownership);
}

}  // namespace smq
