// Exact sequential priority scheduler — the single-threaded baseline all
// speedups in the paper are measured against, and the source of the
// reference task counts used by the "work increase" metric (an exact
// priority order never processes a reachable SSSP vertex more than the
// label-correcting minimum).
#pragma once

#include <cassert>
#include <optional>

#include "queues/d_ary_heap.h"
#include "sched/task.h"

namespace smq {

class SequentialScheduler {
 public:
  explicit SequentialScheduler(unsigned num_threads = 1) {
    assert(num_threads == 1 && "SequentialScheduler is single-threaded");
    (void)num_threads;
  }

  unsigned num_threads() const noexcept { return 1; }

  void push(unsigned /*tid*/, Task task) { heap_.push(task); }

  std::optional<Task> try_pop(unsigned /*tid*/) { return heap_.try_pop(); }

  std::size_t size() const noexcept { return heap_.size(); }

 private:
  DAryHeap<Task, 4> heap_;
};

}  // namespace smq
