// Exact sequential priority scheduler — the single-threaded baseline all
// speedups in the paper are measured against, and the source of the
// reference task counts used by the "work increase" metric (an exact
// priority order never processes a reachable SSSP vertex more than the
// label-correcting minimum).
//
// Its Handle is the degenerate case of the handle API: a bare pointer to
// the one heap, so the measured baseline pays no per-op tid plumbing at
// all.
#pragma once

#include <cassert>
#include <optional>
#include <span>
#include <vector>

#include "queues/d_ary_heap.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"

namespace smq {

class SequentialScheduler {
 public:
  explicit SequentialScheduler(unsigned num_threads = 1) {
    assert(num_threads == 1 && "SequentialScheduler is single-threaded");
    (void)num_threads;
  }

  unsigned num_threads() const noexcept { return 1; }

  class Handle {
   public:
    explicit Handle(DAryHeap<Task, 4>& heap) noexcept : heap_(&heap) {}

    void push(Task task) { heap_->push(task); }
    void push_batch(std::span<const Task> tasks) {
      for (const Task& task : tasks) heap_->push(task);
    }
    std::optional<Task> try_pop() { return heap_->try_pop(); }
    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      return handle_pop_loop(*this, out, max);
    }
    void flush() noexcept {}
    void collect_stats(ThreadStats&) const noexcept {}
    unsigned thread_id() const noexcept { return 0; }

   private:
    DAryHeap<Task, 4>* heap_;
  };

  Handle handle(unsigned /*tid*/) noexcept { return Handle(heap_); }

  void push(unsigned /*tid*/, Task task) { heap_.push(task); }
  std::optional<Task> try_pop(unsigned /*tid*/) { return heap_.try_pop(); }

  std::size_t size() const noexcept { return heap_.size(); }

 private:
  DAryHeap<Task, 4> heap_;
};

static_assert(HandleScheduler<SequentialScheduler>);

}  // namespace smq
