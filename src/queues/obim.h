// OBIM — Ordered By Integer Metric (Nguyen, Lenharth, Pingali [20]) —
// and its adaptive PMOD extension (Yesil et al. [27]).
//
// Tasks are grouped into priority *levels*: level(p) = p & ~(delta - 1),
// i.e. the task's priority with the low `delta_shift` bits cleared.
// Each level owns a ChunkBag (per-NUMA-node chunk stacks). A global
// ordered map from level -> bag is guarded by a mutex and mirrored by
// every thread; a version counter invalidates the mirrors. Threads push
// into a thread-local chunk and flush it to the bag when full; pops
// consume a thread-local chunk taken from the lowest non-empty level.
//
// PMOD = OBIM + runtime delta adaptation: when threads repeatedly scan
// past empty levels (starvation — too fine a delta), delta is doubled so
// that future pushes merge levels; when a single level accumulates too
// many tasks (too coarse — priority inversions), delta is halved. Levels
// are keyed by their representative (minimum) priority, so bags created
// under different deltas still order correctly and drain naturally —
// this reproduces PMOD's merge/split behaviour without bag migration.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "queues/chunk_bag.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "sched/topology.h"
#include "support/mutex.h"
#include "support/padding.h"
#include "support/thread_annotations.h"

namespace smq {

struct ObimConfig {
  std::size_t chunk_size = 64;   // CHUNK_SIZE (paper tunes 32..256)
  unsigned delta_shift = 10;     // log2(delta) (paper tunes 0..18)
  bool adaptive = false;         // true => PMOD behaviour
  // PMOD heuristic knobs ([27]: merge levels that run empty, split
  // levels that over-fill).
  unsigned adapt_interval = 64;  // chunk-pops between adaptation checks
  // Merge (coarsen delta) when the average population of a non-empty
  // level cannot fill this fraction of a chunk — levels too sparse.
  double sparsity_threshold = 0.5;
  // Split (refine delta) when the lowest non-empty level holds more
  // tasks than this — priority inversions inside one level.
  std::int64_t split_threshold = 4096;
  unsigned min_shift = 0;
  unsigned max_shift = 30;
  const Topology* topology = nullptr;  // per-node bag sharding
  // Lock-free (Treiber) chunk stacks with epoch-based reclamation of
  // drained chunks; false keeps the historical spinlocked stacks.
  bool reclaim = false;

  friend bool operator==(const ObimConfig&, const ObimConfig&) = default;
};

class Obim {
 private:
  struct Local;

 public:
  using Config = ObimConfig;

  Obim(unsigned num_threads, Config cfg = {})
      : cfg_(cfg),
        num_threads_(num_threads),
        num_nodes_(cfg.topology ? cfg.topology->num_nodes() : 1),
        shift_(cfg.delta_shift),
        locals_(num_threads),
        epochs_(cfg.reclaim
                    ? std::make_unique<EpochManager>(num_threads ? num_threads
                                                                 : 1)
                    : nullptr) {
    if (cfg_.chunk_size == 0) cfg_.chunk_size = 1;
    if (cfg_.chunk_size > Chunk::kCapacity) cfg_.chunk_size = Chunk::kCapacity;
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      locals_[tid].value.node =
          cfg.topology ? cfg.topology->node_of_thread(tid) : 0;
    }
  }

  ~Obim() {
    for (auto& local : locals_) {
      if (local.value.push_chunk != nullptr) alloc_.free(local.value.push_chunk);
      if (local.value.pop_chunk != nullptr) alloc_.free(local.value.pop_chunk);
    }
  }

  Obim(const Obim&) = delete;
  Obim& operator=(const Obim&) = delete;

  unsigned num_threads() const noexcept { return num_threads_; }
  /// Post-clamp configuration (chunk_size bounded to [1, Chunk::kCapacity]).
  const Config& config() const noexcept { return cfg_; }
  unsigned current_shift() const noexcept {
    return shift_.load(std::memory_order_relaxed);
  }

  /// Per-thread view with the thread's bucket cursor (push chunk + its
  /// level, pop chunk, level-map mirror) resolved once.
  class Handle {
   public:
    Handle(Obim& sched, unsigned tid) noexcept
        : sched_(&sched), me_(&sched.locals_[tid].value), tid_(tid) {}

    void push(Task task) {
      Local& local = *me_;
      const std::uint64_t level = sched_->level_of(task.priority);
      if (local.push_chunk != nullptr && local.push_level == level &&
          !local.push_chunk->full(sched_->cfg_.chunk_size)) {
        local.push_chunk->push(task);
        return;
      }
      sched_->flush_push_chunk(local);
      local.push_chunk = sched_->alloc_.make();
      local.push_level = level;
      local.push_chunk->push(task);
    }

    /// Bulk insert: consecutive tasks of one level share the chunk-fill
    /// fast path; the batch's value is one boundary crossing for the span.
    void push_batch(std::span<const Task> tasks) {
      for (const Task& task : tasks) push(task);
    }

    std::optional<Task> try_pop() {
      Local& local = *me_;
      if (local.pop_chunk != nullptr && !local.pop_chunk->empty()) {
        return local.pop_chunk->pop();
      }
      sched_->maybe_adapt(local);
      // The freshest (and often highest-priority) tasks are in our own
      // unflushed push chunk; flush it so they are poppable in level
      // order.
      sched_->flush_push_chunk(local);

      sched_->refresh_mirror_if_stale(local);

      // One pin for the whole scan: in Treiber mode every pop_chunk
      // below dereferences stack tops a concurrent popper may retire.
      EpochManager::Guard guard(sched_->epochs_.get(), tid_);

      // Full in-order scan: levels can refill below any cached position
      // (another thread may still be expanding a lower-level chunk), so
      // no scan-start shortcut is sound. The per-level check is one
      // atomic load, amortized over CHUNK_SIZE pops.
      for (std::size_t i = 0; i < local.mirror.size(); ++i) {
        auto& [level, bag] = local.mirror[i];
        if (bag->looks_empty()) {
          ++local.scanned_empty;
          continue;
        }
        if (Chunk* chunk = bag->pop_chunk(local.node)) {
          sched_->discard_pop_chunk(tid_, local);
          local.pop_chunk = chunk;
          ++local.pops;
          return local.pop_chunk->pop();
        }
        ++local.scanned_empty;
      }
      // Mirror may be stale even if version matched at entry; force
      // resync once before reporting empty.
      if (sched_->refresh_mirror(local)) {
        for (auto& [level, bag] : local.mirror) {
          if (bag->looks_empty()) continue;
          if (Chunk* chunk = bag->pop_chunk(local.node)) {
            sched_->discard_pop_chunk(tid_, local);
            local.pop_chunk = chunk;
            ++local.pops;
            return local.pop_chunk->pop();
          }
        }
      }
      return std::nullopt;
    }

    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      return handle_pop_loop(*this, out, max);
    }

    /// Publish the thread's partially filled push chunk (termination).
    void flush() { sched_->flush_push_chunk(*me_); }

    /// OBIM keeps no executor-reportable counters.
    void collect_stats(ThreadStats&) const noexcept {}

    unsigned thread_id() const noexcept { return tid_; }

   private:
    Obim* sched_;
    Local* me_;
    unsigned tid_;
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  // ---- tid-indexed shims (legacy surface) ------------------------------

  void push(unsigned tid, Task task) { handle(tid).push(task); }
  std::optional<Task> try_pop(unsigned tid) { return handle(tid).try_pop(); }
  void flush(unsigned tid) { handle(tid).flush(); }

  /// Idle hook (ReclaimingScheduler): a parked worker lets the epoch
  /// advance so retired chunks drain between bursts.
  void quiesce(unsigned tid) {
    if (epochs_ != nullptr) epochs_->quiesce(tid);
  }

  /// Bytes held in live chunks (bag stacks + thread locals + epoch
  /// limbo). Advisory, any-thread safe.
  std::size_t memory_footprint() const noexcept { return alloc_.bytes(); }

  EpochManager* epochs() const noexcept { return epochs_.get(); }

 private:
  struct Local {
    Chunk* push_chunk = nullptr;
    std::uint64_t push_level = 0;
    Chunk* pop_chunk = nullptr;
    unsigned node = 0;
    // Thread-local mirror of the global level map (Galois' local "bag
    // map" cache), refreshed when the global version moves.
    std::vector<std::pair<std::uint64_t, ChunkBag*>> mirror;
    std::uint64_t mirror_version = 0;
    // PMOD counters.
    std::uint64_t pops = 0;
    std::uint64_t scanned_empty = 0;  // informational
    std::uint64_t last_adapt_pops = 0;
  };

  std::uint64_t level_of(std::uint64_t priority) const noexcept {
    const unsigned shift = shift_.load(std::memory_order_relaxed);
    return shift >= 64 ? 0 : (priority >> shift) << shift;
  }

  ChunkBag* bag_of(std::uint64_t level) SMQ_EXCLUDES(map_mutex_) {
    MutexLock guard(map_mutex_);
    auto [it, inserted] = levels_.try_emplace(level, nullptr);
    if (inserted) {
      // Every level's bag shares the scheduler-wide epoch manager.
      it->second = std::make_unique<ChunkBag>(num_nodes_, epochs_.get());
      version_.fetch_add(1, std::memory_order_release);
    }
    return it->second.get();
  }

  /// Dispose of the thread's drained pop chunk: epoch-retire in
  /// reclaim mode (a concurrent Treiber popper may still hold the
  /// pointer), free immediately otherwise.
  void discard_pop_chunk(unsigned tid, Local& local) {
    if (local.pop_chunk == nullptr) return;
    if (epochs_ != nullptr) {
      epochs_->retire(tid, local.pop_chunk, &ChunkAlloc::deleter, &alloc_);
    } else {
      alloc_.free(local.pop_chunk);
    }
    local.pop_chunk = nullptr;
  }

  void flush_push_chunk(Local& local) {
    if (local.push_chunk == nullptr || local.push_chunk->empty()) return;
    bag_of(local.push_level)->push_chunk(local.node, local.push_chunk);
    local.push_chunk = nullptr;
  }

  void refresh_mirror_if_stale(Local& local) {
    if (local.mirror_version != version_.load(std::memory_order_acquire)) {
      refresh_mirror(local);
    }
  }

  /// Returns true if the mirror changed.
  bool refresh_mirror(Local& local) SMQ_EXCLUDES(map_mutex_) {
    MutexLock guard(map_mutex_);
    const std::uint64_t version = version_.load(std::memory_order_relaxed);
    if (version == local.mirror_version && !local.mirror.empty()) return false;
    local.mirror.clear();
    local.mirror.reserve(levels_.size());
    for (const auto& [level, bag] : levels_) {
      local.mirror.emplace_back(level, bag.get());
    }
    local.mirror_version = version;
    return true;
  }

  /// PMOD's runtime delta adaptation (approximation of [27]; see header).
  /// Inspects the live level population: too-sparse levels => merge
  /// (threads would starve for full chunks); an over-full lowest level =>
  /// split (too many priority inversions inside one level).
  void maybe_adapt(Local& local) {
    if (!cfg_.adaptive) return;
    if (local.pops - local.last_adapt_pops < cfg_.adapt_interval) return;
    local.last_adapt_pops = local.pops;
    refresh_mirror_if_stale(local);

    std::size_t nonempty = 0;
    std::int64_t total_tasks = 0;
    std::int64_t lowest_level_tasks = 0;
    for (const auto& [level, bag] : local.mirror) {
      const std::int64_t t = bag->approx_tasks();
      if (t <= 0) continue;
      if (nonempty == 0) lowest_level_tasks = t;
      ++nonempty;
      total_tasks += t;
    }
    if (nonempty == 0) return;

    unsigned expected = shift_.load(std::memory_order_relaxed);
    if (lowest_level_tasks > cfg_.split_threshold &&
        expected > cfg_.min_shift) {
      shift_.compare_exchange_strong(expected, expected - 1,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
      return;
    }
    const double avg_per_level =
        static_cast<double>(total_tasks) / static_cast<double>(nonempty);
    const bool enough_work =
        total_tasks >
        static_cast<std::int64_t>(num_threads_) *
            static_cast<std::int64_t>(cfg_.chunk_size);
    if (enough_work &&
        avg_per_level <
            cfg_.sparsity_threshold * static_cast<double>(cfg_.chunk_size) &&
        expected < cfg_.max_shift) {
      shift_.compare_exchange_strong(expected, expected + 1,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
    }
  }

  Config cfg_;
  unsigned num_threads_;
  unsigned num_nodes_;
  std::atomic<unsigned> shift_;
  std::vector<Padded<Local>> locals_;

  // alloc_ before epochs_: the manager's destructor drains limbo
  // entries whose deleter context is alloc_.
  ChunkAlloc alloc_;
  std::unique_ptr<EpochManager> epochs_;

  Mutex map_mutex_;
  // The level map is plain data under map_mutex_; threads read it
  // through their lock-free mirrors, refreshed when version_ moves.
  std::map<std::uint64_t, std::unique_ptr<ChunkBag>> levels_
      SMQ_GUARDED_BY(map_mutex_);
  std::atomic<std::uint64_t> version_{1};
};

static_assert(HandleScheduler<Obim>);
static_assert(ReclaimingScheduler<Obim>);
static_assert(MemoryReportingScheduler<Obim>);

/// PMOD is OBIM with runtime delta adaptation enabled (paper Section 1,
/// [27]); starting delta and chunk size remain tunable.
class Pmod : public Obim {
 public:
  explicit Pmod(unsigned num_threads, Config cfg = {})
      : Obim(num_threads, enable_adaptive(cfg)) {}

 private:
  static Config enable_adaptive(Config cfg) {
    cfg.adaptive = true;
    return cfg;
  }
};

}  // namespace smq
