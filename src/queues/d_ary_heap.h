// Sequential d-ary min-heap.
//
// The paper (Section 4) finds sequential d-ary heaps (d = 4) the best
// local-queue structure for the SMQ: the wide fan-out shortens sift-down
// paths and keeps children of a node in one or two cache lines. This heap
// is strictly single-owner; all cross-thread access goes through the
// stealing buffer layered on top.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "sched/task.h"

namespace smq {

template <typename T = Task, unsigned D = 4, typename Compare = std::less<T>>
class DAryHeap {
  static_assert(D >= 2, "heap arity must be at least 2");

 public:
  DAryHeap() = default;
  explicit DAryHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  bool empty() const noexcept { return data_.empty(); }
  std::size_t size() const noexcept { return data_.size(); }

  void reserve(std::size_t n) { data_.reserve(n); }
  void clear() noexcept { data_.clear(); }

  const T& top() const noexcept {
    assert(!data_.empty());
    return data_.front();
  }

  void push(const T& value) {
    data_.push_back(value);
    sift_up(data_.size() - 1);
  }

  T pop() {
    assert(!data_.empty());
    T result = data_.front();
    data_.front() = data_.back();
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return result;
  }

  std::optional<T> try_pop() {
    if (data_.empty()) return std::nullopt;
    return pop();
  }

  /// Heap invariant check for tests: every child >= its parent.
  bool is_valid_heap() const {
    for (std::size_t i = 1; i < data_.size(); ++i) {
      if (cmp_(data_[i], data_[(i - 1) / D])) return false;
    }
    return true;
  }

 private:
  void sift_up(std::size_t i) {
    T moving = std::move(data_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!cmp_(moving, data_[parent])) break;
      data_[i] = std::move(data_[parent]);
      i = parent;
    }
    data_[i] = std::move(moving);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    T moving = std::move(data_[i]);
    while (true) {
      const std::size_t first_child = i * D + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + D, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (cmp_(data_[c], data_[best])) best = c;
      }
      if (!cmp_(data_[best], moving)) break;
      data_[i] = std::move(data_[best]);
      i = best;
    }
    data_[i] = std::move(moving);
  }

  std::vector<T> data_;
  Compare cmp_{};
};

}  // namespace smq
