// Lock-free skip list with marked-pointer deletion (Harris/Fraser style).
//
// Substrate for the SprayList baseline [6]. Nodes are logically deleted
// by CAS-setting a mark bit in their level-0 next pointer; traversals
// help unlink marked nodes. Keys are Tasks ordered by (priority, payload)
// and duplicates are allowed (equal keys insert adjacently).
//
// Reclamation: nodes come from per-thread bump arenas owned by the list
// and are freed wholesale on destruction. Unlinked nodes are never
// recycled during a run, so no ABA and no hazard pointers are needed;
// peak memory is proportional to total insertions (documented trade-off
// for a benchmark substrate; DESIGN.md "SprayList").
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

class LockFreeSkipList {
 public:
  static constexpr int kMaxLevel = 20;

  struct Node {
    Task task;
    int height;
    std::array<std::atomic<Node*>, kMaxLevel> next;
  };

  explicit LockFreeSkipList(unsigned num_threads)
      : arenas_(num_threads == 0 ? 1 : num_threads) {
    head_ = allocate(0, Task{0, 0}, kMaxLevel);
    for (int level = 0; level < kMaxLevel; ++level) {
      head_->next[static_cast<std::size_t>(level)].store(
          nullptr, std::memory_order_relaxed);
    }
  }

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;
  ~LockFreeSkipList() = default;  // arenas free all nodes

  /// Insert a task. Duplicates allowed. Height drawn from tid's RNG.
  void insert(unsigned tid, Task task, Xoshiro256& rng) {
    const int height = random_height(rng);
    Node* fresh = allocate(tid, task, height);

    while (true) {
      Node* preds[kMaxLevel];
      Node* succs[kMaxLevel];
      find(task, preds, succs);
      fresh->next[0].store(succs[0], std::memory_order_relaxed);
      if (!preds[0]->next[0].compare_exchange_strong(
              succs[0], fresh, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        continue;  // level-0 CAS lost; retry from scratch
      }
      for (int level = 1; level < height; ++level) {
        while (true) {
          fresh->next[static_cast<std::size_t>(level)].store(
              succs[level], std::memory_order_relaxed);
          if (preds[level]
                  ->next[static_cast<std::size_t>(level)]
                  .compare_exchange_strong(succs[level], fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            break;
          }
          // Upper-level link lost a race: recompute neighbours. If the
          // node got deleted meanwhile, stop linking upper levels.
          if (is_marked(fresh->next[0].load(std::memory_order_acquire))) {
            return;
          }
          find(task, preds, succs);
        }
      }
      return;
    }
  }

  /// Exact delete-min: mark and return the first live node's task.
  std::optional<Task> pop_min() {
    while (true) {
      Node* node = strip(head_->next[0].load(std::memory_order_acquire));
      while (node != nullptr &&
             is_marked(node->next[0].load(std::memory_order_acquire))) {
        node = strip(node->next[0].load(std::memory_order_acquire));
      }
      if (node == nullptr) return std::nullopt;
      if (try_mark(node)) {
        unlink(node->task);
        return node->task;
      }
    }
  }

  /// Claim one specific node starting from `start` at level 0: walk
  /// forward over marked nodes and try to mark the first live one, for at
  /// most `attempts` candidates. Used by the spray.
  std::optional<Task> pop_from(Node* start, int attempts) {
    Node* node = start;
    while (node != nullptr && attempts-- > 0) {
      Node* next = node->next[0].load(std::memory_order_acquire);
      if (!is_marked(next) && try_mark(node)) {
        unlink(node->task);
        return node->task;
      }
      node = strip(node->next[0].load(std::memory_order_acquire));
    }
    return std::nullopt;
  }

  bool empty() const noexcept {
    Node* node = strip(head_->next[0].load(std::memory_order_acquire));
    while (node != nullptr &&
           is_marked(node->next[0].load(std::memory_order_acquire))) {
      node = strip(node->next[0].load(std::memory_order_acquire));
    }
    return node == nullptr;
  }

  /// Live-node count — O(n), test/debug only.
  std::size_t count_live() const {
    std::size_t count = 0;
    for (Node* node = strip(head_->next[0].load(std::memory_order_acquire));
         node != nullptr;
         node = strip(node->next[0].load(std::memory_order_acquire))) {
      if (!is_marked(node->next[0].load(std::memory_order_acquire))) ++count;
    }
    return count;
  }

  Node* head() const noexcept { return head_; }

  /// Spray walk (SprayList [6]): descend from `start_level`, jumping a
  /// uniformly random number of nodes in [0, max_jump] per level, landing
  /// on a node in a prefix of size roughly O(T log^3 T).
  Node* spray(int start_level, int max_jump, Xoshiro256& rng) const {
    Node* node = head_;
    for (int level = std::min(start_level, kMaxLevel - 1); level >= 0;
         --level) {
      std::uint64_t jump = rng.next_below(static_cast<std::uint64_t>(max_jump) + 1);
      while (jump > 0) {
        Node* next =
            strip(node->next[static_cast<std::size_t>(level)].load(
                std::memory_order_acquire));
        if (next == nullptr) break;
        node = next;
        --jump;
      }
    }
    return node == head_
               ? strip(head_->next[0].load(std::memory_order_acquire))
               : node;
  }

 private:
  static Node* strip(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) & ~1ull);
  }
  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1ull) != 0;
  }
  static Node* marked(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1ull);
  }

  /// Logically delete `node` by marking its level-0 next pointer, then
  /// marking upper levels (best effort).
  bool try_mark(Node* node) noexcept {
    Node* next = node->next[0].load(std::memory_order_acquire);
    while (!is_marked(next)) {
      if (node->next[0].compare_exchange_weak(next, marked(next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        for (int level = 1; level < node->height; ++level) {
          Node* up = node->next[static_cast<std::size_t>(level)].load(
              std::memory_order_acquire);
          while (!is_marked(up) &&
                 !node->next[static_cast<std::size_t>(level)]
                      .compare_exchange_weak(up, marked(up),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          }
        }
        return true;
      }
    }
    return false;
  }

  /// Search for `task`, returning preds/succs per level; physically
  /// unlinks marked nodes encountered on the way (Harris helping).
  void find(const Task& task, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      Node* curr = strip(
          pred->next[static_cast<std::size_t>(level)].load(
              std::memory_order_acquire));
      while (true) {
        if (curr == nullptr) break;
        Node* succ =
            curr->next[static_cast<std::size_t>(level)].load(
                std::memory_order_acquire);
        if (is_marked(succ)) {
          // Help unlink curr at this level.
          Node* expected = curr;
          if (!pred->next[static_cast<std::size_t>(level)]
                   .compare_exchange_strong(expected, strip(succ),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
            goto retry;
          }
          curr = strip(succ);
          continue;
        }
        if (!(curr->task < task)) break;
        pred = curr;
        curr = strip(succ);
      }
      preds[level] = pred;
      succs[level] = curr;
    }
  }

  /// Physically unlink a marked node (by key) via a full find().
  void unlink(const Task& task) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find(task, preds, succs);
  }

  int random_height(Xoshiro256& rng) noexcept {
    const std::uint64_t bits = rng();
    int height = 1;
    while (height < kMaxLevel && ((bits >> height) & 1u) != 0) ++height;
    return height;
  }

  Node* allocate(unsigned tid, Task task, int height) {
    Arena& arena = arenas_[tid].value;
    if (arena.used >= arena.block_size || arena.blocks.empty()) {
      arena.blocks.push_back(std::make_unique<Node[]>(arena.block_size));
      arena.used = 0;
    }
    Node* node = &arena.blocks.back()[arena.used++];
    node->task = task;
    node->height = height;
    for (auto& next : node->next) {
      next.store(nullptr, std::memory_order_relaxed);
    }
    return node;
  }

  struct Arena {
    static constexpr std::size_t kDefaultBlock = 4096;
    std::size_t block_size = kDefaultBlock;
    std::size_t used = 0;
    std::vector<std::unique_ptr<Node[]>> blocks;
  };

  Node* head_;
  std::vector<Padded<Arena>> arenas_;
};

}  // namespace smq
