// Lock-free skip list with marked-pointer deletion (Harris/Fraser style).
//
// Substrate for the SprayList baseline [6]. Nodes are logically deleted
// by CAS-setting a mark bit in their level-0 next pointer; traversals
// help unlink marked nodes. Keys are Tasks ordered by (priority, payload)
// and duplicates are allowed (equal keys insert adjacently).
//
// Reclamation: nodes come from per-thread bump arenas owned by the list.
// Without an EpochManager the historical behaviour is kept — unlinked
// nodes are abandoned and freed wholesale on destruction (run-once
// benchmark mode, peak memory proportional to total insertions). With an
// EpochManager, a node is *retired* once it is physically unlinked from
// every level, and after the two-epoch grace period it lands on the
// retiring thread's free list, where allocate() reuses it — steady-state
// footprint is bounded by the live set plus what is in flight, which is
// what a long-lived service needs.
//
// Unlink detection is a per-node link count (crossbeam-skiplist's
// scheme): `refs` equals the number of levels at which the node is
// currently physically linked. Insert counts a level before its
// pred-CAS creates the link (increment-if-nonzero, so a fully-unlinked
// node can never be resurrected); every successful help-unlink CAS in
// find() drops one; whoever drops the count to zero retires the node.
// Callers in reclamation mode must hold an EpochManager::Guard around
// any operation that touches list nodes, including const traversals.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sched/epoch.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"
#include "support/thread_annotations.h"

namespace smq {

class LockFreeSkipList {
 public:
  static constexpr int kMaxLevel = 20;

  struct Node {
    Task task;
    int height;
    // Number of levels at which this node is physically linked; the
    // transition to zero is the (unique) retirement point.
    std::atomic<int> refs;
    std::array<std::atomic<Node*>, kMaxLevel> next;
  };

  explicit LockFreeSkipList(unsigned num_threads,
                            EpochManager* epochs = nullptr)
      : epochs_(epochs),
        arenas_(num_threads == 0 ? 1 : num_threads),
        free_lists_(num_threads == 0 ? 1 : num_threads) {
    head_ = allocate(0, Task{0, 0}, kMaxLevel);
    for (int level = 0; level < kMaxLevel; ++level) {
      head_->next[static_cast<std::size_t>(level)].store(
          nullptr, std::memory_order_relaxed);
    }
  }

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;

  ~LockFreeSkipList() {
    // Flush pending retirements into the free lists while they are
    // still alive; the arenas then free every node wholesale.
    if (epochs_ != nullptr) epochs_->drain_all();
  }

  EpochManager* epochs() const noexcept { return epochs_; }

  /// Insert a task. Duplicates allowed. Height drawn from tid's RNG.
  void insert(unsigned tid, Task task, Xoshiro256& rng) SMQ_REQUIRES_PIN {
    const int height = random_height(rng);
    Node* fresh = allocate(tid, task, height);

    while (true) {
      Node* preds[kMaxLevel];
      Node* succs[kMaxLevel];
      find(tid, task, preds, succs);
      // The node is still private: a plain store cannot clobber a mark.
      fresh->next[0].store(succs[0], std::memory_order_relaxed);
      if (!preds[0]->next[0].compare_exchange_strong(
              succs[0], fresh, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        continue;  // level-0 CAS lost; retry from scratch
      }
      // Published: refs (initialized to 1) now counts the level-0 link.
      for (int level = 1; level < height; ++level) {
        while (true) {
          // Aim the node's own pointer at its successor without
          // overwriting a concurrent deleter's mark.
          if (!set_next_unmarked(fresh, level, succs[level])) return;
          // Count the link we are about to create. Failure means the
          // node is already fully unlinked (and retired) — abandon.
          if (!try_add_ref(fresh)) return;
          if (preds[level]
                  ->next[static_cast<std::size_t>(level)]
                  .compare_exchange_strong(succs[level], fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            break;
          }
          release_ref(tid, fresh);  // link did not happen
          // Upper-level link lost a race: recompute neighbours. If the
          // node got deleted meanwhile, stop linking upper levels.
          if (is_marked(fresh->next[0].load(std::memory_order_acquire))) {
            return;
          }
          find(tid, task, preds, succs);
        }
      }
      return;
    }
  }

  /// Exact delete-min: mark and return the first live node's task.
  /// `tid` owns any retirement triggered by the helping unlink.
  std::optional<Task> pop_min(unsigned tid = 0) SMQ_REQUIRES_PIN {
    while (true) {
      Node* node = strip(head_->next[0].load(std::memory_order_acquire));
      while (node != nullptr &&
             is_marked(node->next[0].load(std::memory_order_acquire))) {
        node = strip(node->next[0].load(std::memory_order_acquire));
      }
      if (node == nullptr) return std::nullopt;
      if (try_mark(node)) {
        const Task task = node->task;
        unlink(tid, task);
        return task;
      }
    }
  }

  /// Claim one specific node starting from `start` at level 0: walk
  /// forward over marked nodes and try to mark the first live one, for at
  /// most `attempts` candidates. Used by the spray.
  std::optional<Task> pop_from(Node* start, int attempts,
                               unsigned tid = 0) SMQ_REQUIRES_PIN {
    Node* node = start;
    while (node != nullptr && attempts-- > 0) {
      Node* next = node->next[0].load(std::memory_order_acquire);
      if (!is_marked(next) && try_mark(node)) {
        const Task task = node->task;
        unlink(tid, task);
        return task;
      }
      node = strip(node->next[0].load(std::memory_order_acquire));
    }
    return std::nullopt;
  }

  bool empty() const noexcept {
    Node* node = strip(head_->next[0].load(std::memory_order_acquire));
    while (node != nullptr &&
           is_marked(node->next[0].load(std::memory_order_acquire))) {
      node = strip(node->next[0].load(std::memory_order_acquire));
    }
    return node == nullptr;
  }

  /// Live-node count — O(n), test/debug only.
  std::size_t count_live() const SMQ_REQUIRES_PIN {
    std::size_t count = 0;
    for (Node* node = strip(head_->next[0].load(std::memory_order_acquire));
         node != nullptr;
         node = strip(node->next[0].load(std::memory_order_acquire))) {
      if (!is_marked(node->next[0].load(std::memory_order_acquire))) ++count;
    }
    return count;
  }

  Node* head() const noexcept { return head_; }

  /// Bytes held in node arenas. With reclamation on, this plateaus once
  /// the free lists satisfy steady-state churn; without it, it grows
  /// with total insertions. Any-thread safe.
  std::size_t memory_footprint() const noexcept {
    return arena_bytes_.load(std::memory_order_relaxed);
  }

  /// Nodes parked on tid's free list (test/debug).
  std::size_t free_count(unsigned tid) const noexcept {
    return free_lists_[tid].value.count;
  }

  /// Spray walk (SprayList [6]): descend from `start_level`, jumping a
  /// uniformly random number of nodes in [0, max_jump] per level, landing
  /// on a node in a prefix of size roughly O(T log^3 T).
  Node* spray(int start_level, int max_jump,
              Xoshiro256& rng) const SMQ_REQUIRES_PIN {
    Node* node = head_;
    for (int level = std::min(start_level, kMaxLevel - 1); level >= 0;
         --level) {
      std::uint64_t jump = rng.next_below(static_cast<std::uint64_t>(max_jump) + 1);
      while (jump > 0) {
        Node* next =
            strip(node->next[static_cast<std::size_t>(level)].load(
                std::memory_order_acquire));
        if (next == nullptr) break;
        node = next;
        --jump;
      }
    }
    return node == head_
               ? strip(head_->next[0].load(std::memory_order_acquire))
               : node;
  }

 private:
  static Node* strip(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) & ~1ull);
  }
  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1ull) != 0;
  }
  static Node* marked(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1ull);
  }

  /// CAS `node->next[level]` to `value`, preserving a concurrent mark.
  /// Returns false iff the pointer is (or became) marked.
  static bool set_next_unmarked(Node* node, int level, Node* value) noexcept {
    Node* cur =
        node->next[static_cast<std::size_t>(level)].load(
            std::memory_order_acquire);
    while (true) {
      if (is_marked(cur)) return false;
      if (cur == value) return true;
      if (node->next[static_cast<std::size_t>(level)].compare_exchange_weak(
              cur, value, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        return true;
      }
    }
  }

  /// Count one more physical link, unless the node already dropped to
  /// zero (fully unlinked, retirement underway — must not resurrect).
  static bool try_add_ref(Node* node) noexcept {
    int refs = node->refs.load(std::memory_order_relaxed);
    while (refs != 0) {
      if (node->refs.compare_exchange_weak(refs, refs + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Drop one physical link; the thread that drops the last one owns
  /// the retirement.
  void release_ref(unsigned tid, Node* node) {
    if (node->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (epochs_ != nullptr) {
        epochs_->retire(tid, node, &reclaim_into_free_list,
                        &free_lists_[tid].value);
      }
      // Without a manager the node stays abandoned in its arena
      // (historical leak-until-destruction mode).
    }
  }

  /// Logically delete `node` by marking its level-0 next pointer, then
  /// marking upper levels (best effort; insert's set_next_unmarked
  /// refuses to overwrite these marks).
  bool try_mark(Node* node) noexcept {
    Node* next = node->next[0].load(std::memory_order_acquire);
    while (!is_marked(next)) {
      if (node->next[0].compare_exchange_weak(next, marked(next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        for (int level = 1; level < node->height; ++level) {
          Node* up = node->next[static_cast<std::size_t>(level)].load(
              std::memory_order_acquire);
          while (!is_marked(up) &&
                 !node->next[static_cast<std::size_t>(level)]
                      .compare_exchange_weak(up, marked(up),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          }
        }
        return true;
      }
    }
    return false;
  }

  /// Search for `task`, returning preds/succs per level; physically
  /// unlinks marked nodes encountered on the way (Harris helping).
  /// `tid` owns retirements of nodes this call fully unlinks.
  void find(unsigned tid, const Task& task, Node** preds,
            Node** succs) SMQ_REQUIRES_PIN {
  retry:
    Node* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      Node* curr = strip(
          pred->next[static_cast<std::size_t>(level)].load(
              std::memory_order_acquire));
      while (true) {
        if (curr == nullptr) break;
        Node* succ =
            curr->next[static_cast<std::size_t>(level)].load(
                std::memory_order_acquire);
        if (is_marked(succ)) {
          // Help unlink curr at this level. The CAS can succeed at most
          // once per (node, level): it removes the unique unmarked
          // incoming pointer, and marked nodes are never re-linked.
          Node* expected = curr;
          if (!pred->next[static_cast<std::size_t>(level)]
                   .compare_exchange_strong(expected, strip(succ),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
            goto retry;
          }
          release_ref(tid, curr);
          curr = strip(succ);
          continue;
        }
        if (!(curr->task < task)) break;
        pred = curr;
        curr = strip(succ);
      }
      preds[level] = pred;
      succs[level] = curr;
    }
  }

  /// Physically unlink a marked node (by key) via a full find().
  void unlink(unsigned tid, const Task& task) SMQ_REQUIRES_PIN {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find(tid, task, preds, succs);
  }

  int random_height(Xoshiro256& rng) noexcept {
    const std::uint64_t bits = rng();
    int height = 1;
    while (height < kMaxLevel && ((bits >> height) & 1u) != 0) ++height;
    return height;
  }

  struct FreeList {
    Node* head = nullptr;
    std::size_t count = 0;
  };

  /// EpochManager deleter: the grace period has elapsed, park the node
  /// on the retiring thread's free list for reuse. Runs on the thread
  /// that retired, so the free list needs no synchronization.
  static void reclaim_into_free_list(void* ptr, void* ctx) {
    Node* node = static_cast<Node*>(ptr);
    auto* free_list = static_cast<FreeList*>(ctx);
    node->next[0].store(free_list->head, std::memory_order_relaxed);
    free_list->head = node;
    ++free_list->count;
  }

  Node* allocate(unsigned tid, Task task, int height) {
    FreeList& free_list = free_lists_[tid].value;
    Node* node;
    if (free_list.head != nullptr) {
      node = free_list.head;
      free_list.head = free_list.head->next[0].load(std::memory_order_relaxed);
      --free_list.count;
    } else {
      Arena& arena = arenas_[tid].value;
      if (arena.used >= arena.block_size || arena.blocks.empty()) {
        arena.blocks.push_back(std::make_unique<Node[]>(arena.block_size));
        arena.used = 0;
        arena_bytes_.fetch_add(arena.block_size * sizeof(Node),
                               std::memory_order_relaxed);
      }
      node = &arena.blocks.back()[arena.used++];
    }
    node->task = task;
    node->height = height;
    node->refs.store(1, std::memory_order_relaxed);
    for (auto& next : node->next) {
      next.store(nullptr, std::memory_order_relaxed);
    }
    return node;
  }

  struct Arena {
    static constexpr std::size_t kDefaultBlock = 4096;
    std::size_t block_size = kDefaultBlock;
    std::size_t used = 0;
    std::vector<std::unique_ptr<Node[]>> blocks;
  };

  EpochManager* epochs_;
  Node* head_;
  std::vector<Padded<Arena>> arenas_;
  std::vector<Padded<FreeList>> free_lists_;
  std::atomic<std::size_t> arena_bytes_{0};
};

}  // namespace smq
