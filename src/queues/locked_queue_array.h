// Shared substrate for every lock-based Multi-Queue variant: an array of
// spinlock-protected sequential d-ary heaps, each publishing an atomic
// (top priority, size) snapshot so that delete() can compare queue tops
// without taking locks — mirroring the Galois Multi-Queue implementation
// the paper's Listing 1 models.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "queues/d_ary_heap.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"
#include "support/spinlock.h"
#include "support/thread_annotations.h"

namespace smq {

class LockedQueueArray {
 public:
  explicit LockedQueueArray(std::size_t num_queues)
      : queues_(num_queues < 2 ? 2 : num_queues) {}

  std::size_t size() const noexcept { return queues_.size(); }

  /// Lock-free peek of queue i's top priority (may be stale).
  std::uint64_t top_priority(std::size_t i) const noexcept {
    return queues_[i].value.top_priority.load(std::memory_order_acquire);
  }

  /// Try to push one task into queue i; fails if the lock is contended.
  bool try_push(std::size_t i, Task task) {
    Queue& q = queues_[i].value;
    if (!q.lock.try_lock()) return false;
    q.heap.push(task);
    publish(q, +1);
    q.lock.unlock();
    return true;
  }

  /// Try to push a batch with a single lock acquisition.
  bool try_push_batch(std::size_t i, const Task* tasks, std::size_t count) {
    Queue& q = queues_[i].value;
    if (!q.lock.try_lock()) return false;
    for (std::size_t k = 0; k < count; ++k) q.heap.push(tasks[k]);
    publish(q, static_cast<std::int64_t>(count));
    q.lock.unlock();
    return true;
  }

  enum class PopStatus { kLockBusy, kEmpty, kOk };

  /// Try to pop up to max_count tasks (ascending priority) from queue i.
  PopStatus try_pop_batch(std::size_t i, std::vector<Task>& out,
                          std::size_t max_count) {
    Queue& q = queues_[i].value;
    if (!q.lock.try_lock()) return PopStatus::kLockBusy;
    std::size_t popped = 0;
    while (popped < max_count && !q.heap.empty()) {
      out.push_back(q.heap.pop());
      ++popped;
    }
    publish(q, -static_cast<std::int64_t>(popped));
    q.lock.unlock();
    return popped == 0 ? PopStatus::kEmpty : PopStatus::kOk;
  }

  bool all_empty() const noexcept {
    for (const auto& q : queues_) {
      if (q.value.size.load(std::memory_order_acquire) > 0) return false;
    }
    return true;
  }

  std::uint64_t approx_total() const noexcept {
    std::int64_t total = 0;
    for (const auto& q : queues_) {
      total += q.value.size.load(std::memory_order_relaxed);
    }
    return total < 0 ? 0 : static_cast<std::uint64_t>(total);
  }

  /// Drain-phase fallback: scan all queues from a random start, pop the
  /// first task found. Used once the sampled queues keep coming up empty.
  std::optional<Task> pop_any(std::size_t start) {
    std::vector<Task> out;
    for (std::size_t k = 0; k < queues_.size(); ++k) {
      const std::size_t i = (start + k) % queues_.size();
      if (queues_[i].value.size.load(std::memory_order_acquire) <= 0) continue;
      if (try_pop_batch(i, out, 1) == PopStatus::kOk) return out.front();
    }
    return std::nullopt;
  }

 private:
  struct Queue {
    Spinlock lock;
    // The heap is plain data: every touch must hold `lock`, and
    // -Wthread-safety proves it. top_priority/size stay lock-free
    // atomics — they are the published snapshot read without the lock.
    DAryHeap<Task, 4> heap SMQ_GUARDED_BY(lock);
    std::atomic<std::uint64_t> top_priority{Task::kInfinity};
    std::atomic<std::int64_t> size{0};
  };

  static void publish(Queue& q, std::int64_t delta) noexcept
      SMQ_REQUIRES(q.lock) {
    q.size.fetch_add(delta, std::memory_order_relaxed);
    q.top_priority.store(
        q.heap.empty() ? Task::kInfinity : q.heap.top().priority,
        std::memory_order_release);
  }

  std::vector<Padded<Queue>> queues_;
};

}  // namespace smq
