// Chunked task bags — the per-priority-level containers of OBIM/PMOD.
//
// A bag is an unordered set of task *chunks* (fixed-capacity arrays).
// Following Galois [20], each bag keeps one stack of chunks per NUMA
// node; threads push/pop chunks on their own node's stack and steal a
// chunk from another node only when theirs is empty. Chunks are the unit
// of transfer, which is what gives OBIM its low synchronization cost:
// one stack operation per CHUNK_SIZE tasks.
//
// Two stack implementations share the interface:
//  - Locked (default, no EpochManager): a spinlock per node stack.
//    Chunks are deleted as soon as a popper drains them, which is only
//    safe because nobody else can hold a popped chunk.
//  - Treiber (lock-free, with an EpochManager): push is a release CAS;
//    pop CASes the top while *pinned*, so a racing popper reading
//    `chunk->next` of a just-popped chunk reads live memory. The ABA
//    hazard (top re-pointing at a recycled chunk mid-CAS) is absent
//    because drained chunks are epoch-retired, never freed or reused
//    before every pinned reader has unpinned. Callers in Treiber mode
//    must hold an EpochManager::Guard around pop_chunk() and must
//    retire (not delete) drained chunks via retire_chunk().
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sched/epoch.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/spinlock.h"
#include "support/thread_annotations.h"

namespace smq {

/// Fixed-capacity task array; intrusive stack link. The capacity is a
/// compile-time maximum; the runtime CHUNK_SIZE only fills a prefix.
struct Chunk {
  static constexpr std::size_t kCapacity = 256;

  std::array<Task, kCapacity> tasks;
  std::uint32_t count = 0;
  // Atomic because a Treiber popper reads the next pointer of a chunk
  // a concurrent popper may be unlinking (and later resetting) — a
  // plain pointer would be a data race even when the value is discarded.
  std::atomic<Chunk*> next{nullptr};

  bool full(std::size_t limit) const noexcept { return count >= limit; }
  bool empty() const noexcept { return count == 0; }

  void push(Task t) noexcept {
    assert(count < kCapacity);
    tasks[count++] = t;
  }

  Task pop() noexcept {
    assert(count > 0);
    return tasks[--count];
  }
};

/// Shared new/delete accounting for chunks, so owners can report a
/// steady-state footprint. `live` counts allocated-but-not-yet-freed
/// chunks (wherever they sit: stacks, thread locals, or epoch limbo).
struct ChunkAlloc {
  std::atomic<std::int64_t> live{0};

  Chunk* make() {
    live.fetch_add(1, std::memory_order_relaxed);
    return new Chunk();
  }

  void free(Chunk* chunk) {
    live.fetch_sub(1, std::memory_order_relaxed);
    delete chunk;
  }

  /// EpochManager deleter (`ctx` is the ChunkAlloc).
  static void deleter(void* ptr, void* ctx) {
    static_cast<ChunkAlloc*>(ctx)->free(static_cast<Chunk*>(ptr));
  }

  std::size_t bytes() const noexcept {
    const std::int64_t n = live.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) * sizeof(Chunk) : 0;
  }
};

/// One priority level's worth of chunks, sharded per NUMA node.
class ChunkBag {
 public:
  explicit ChunkBag(unsigned num_nodes, EpochManager* epochs = nullptr)
      : stacks_(num_nodes ? num_nodes : 1), epochs_(epochs) {}

  ChunkBag(const ChunkBag&) = delete;
  ChunkBag& operator=(const ChunkBag&) = delete;

  ~ChunkBag() {
    for (auto& stack : stacks_) {
      // Acquire loads: the destructor typically runs after joining the
      // worker threads, but the publishing CAS/unlock is the only
      // operation guaranteed to have released the chunk contents —
      // make the ordering explicit instead of leaning on join order.
      Chunk* chunk = stack.value.top.load(std::memory_order_acquire);
      while (chunk != nullptr) {
        Chunk* next = chunk->next.load(std::memory_order_acquire);
        delete chunk;
        chunk = next;
      }
    }
  }

  EpochManager* epochs() const noexcept { return epochs_; }

  /// Push a full (or final partial) chunk onto `node`'s stack.
  void push_chunk(unsigned node, Chunk* chunk) noexcept {
    // Capture the count before the chunk is published: one unlock (or
    // CAS) later it can already be popped and drained by another
    // thread, and chunk->count is not ours to read anymore.
    const std::uint32_t count = chunk->count;
    NodeStack& stack = stacks_[node].value;
    if (epochs_ != nullptr) {
      // Treiber push needs no pin: it dereferences nothing.
      Chunk* top = stack.top.load(std::memory_order_relaxed);
      do {
        chunk->next.store(top, std::memory_order_relaxed);
      } while (!stack.top.compare_exchange_weak(top, chunk,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
    } else {
      stack.lock.lock();
      chunk->next.store(stack.top.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      stack.top.store(chunk, std::memory_order_relaxed);
      stack.lock.unlock();
    }
    tasks_.fetch_add(count, std::memory_order_release);
  }

  /// Pop a chunk, preferring `node`'s own stack; steals round-robin from
  /// the other nodes' stacks when the local one is empty. In Treiber
  /// mode the caller must be pinned (lint-enforced via the marker).
  Chunk* pop_chunk(unsigned node) noexcept SMQ_REQUIRES_PIN {
    const unsigned n = static_cast<unsigned>(stacks_.size());
    for (unsigned k = 0; k < n; ++k) {
      NodeStack& stack = stacks_[(node + k) % n].value;
      Chunk* chunk;
      if (epochs_ != nullptr) {
        chunk = stack.top.load(std::memory_order_acquire);
        while (chunk != nullptr) {
          Chunk* next = chunk->next.load(std::memory_order_acquire);
          if (stack.top.compare_exchange_weak(chunk, next,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            break;
          }
        }
      } else {
        // Optimistic peek avoids taking remote locks on empty stacks;
        // the authoritative read happens under the lock.
        if (stack.top.load(std::memory_order_acquire) == nullptr) continue;
        stack.lock.lock();
        chunk = stack.top.load(std::memory_order_relaxed);
        if (chunk != nullptr) {
          stack.top.store(chunk->next.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
        }
        stack.lock.unlock();
      }
      if (chunk != nullptr) {
        chunk->next.store(nullptr, std::memory_order_relaxed);
        tasks_.fetch_sub(chunk->count, std::memory_order_release);
        return chunk;
      }
    }
    return nullptr;
  }

  /// Dispose of a drained chunk the caller popped earlier: epoch-retire
  /// in Treiber mode (a racing popper may still hold the pointer),
  /// free immediately in locked mode.
  void retire_chunk(unsigned tid, Chunk* chunk, ChunkAlloc& alloc) {
    if (epochs_ != nullptr) {
      epochs_->retire(tid, chunk, &ChunkAlloc::deleter, &alloc);
    } else {
      alloc.free(chunk);
    }
  }

  bool looks_empty() const noexcept {
    return tasks_.load(std::memory_order_acquire) <= 0;
  }

  std::int64_t approx_tasks() const noexcept {
    return tasks_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeStack {
    Spinlock lock;
    std::atomic<Chunk*> top{nullptr};
  };

  std::vector<Padded<NodeStack>> stacks_;
  EpochManager* epochs_;
  std::atomic<std::int64_t> tasks_{0};
};

}  // namespace smq
