// Chunked task bags — the per-priority-level containers of OBIM/PMOD.
//
// A bag is an unordered set of task *chunks* (fixed-capacity arrays).
// Following Galois [20], each bag keeps one stack of chunks per NUMA
// node; threads push/pop chunks on their own node's stack and steal a
// chunk from another node only when theirs is empty. Chunks are the unit
// of transfer, which is what gives OBIM its low synchronization cost:
// one stack operation per CHUNK_SIZE tasks. Because the per-chunk cost
// is already amortized, each node stack is guarded by a spinlock rather
// than a lock-free Treiber stack — this sidesteps ABA/reclamation
// hazards entirely (chunks are deleted as soon as a popper drains them).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sched/task.h"
#include "support/padding.h"
#include "support/spinlock.h"

namespace smq {

/// Fixed-capacity task array; intrusive stack link. The capacity is a
/// compile-time maximum; the runtime CHUNK_SIZE only fills a prefix.
struct Chunk {
  static constexpr std::size_t kCapacity = 256;

  std::array<Task, kCapacity> tasks;
  std::uint32_t count = 0;
  Chunk* next = nullptr;

  bool full(std::size_t limit) const noexcept { return count >= limit; }
  bool empty() const noexcept { return count == 0; }

  void push(Task t) noexcept {
    assert(count < kCapacity);
    tasks[count++] = t;
  }

  Task pop() noexcept {
    assert(count > 0);
    return tasks[--count];
  }
};

/// One priority level's worth of chunks, sharded per NUMA node.
class ChunkBag {
 public:
  explicit ChunkBag(unsigned num_nodes) : stacks_(num_nodes ? num_nodes : 1) {}

  ChunkBag(const ChunkBag&) = delete;
  ChunkBag& operator=(const ChunkBag&) = delete;

  ~ChunkBag() {
    for (auto& stack : stacks_) {
      Chunk* chunk = stack.value.top.load(std::memory_order_relaxed);
      while (chunk != nullptr) {
        Chunk* next = chunk->next;
        delete chunk;
        chunk = next;
      }
    }
  }

  /// Push a full (or final partial) chunk onto `node`'s stack.
  void push_chunk(unsigned node, Chunk* chunk) noexcept {
    // Capture the count before the chunk is published: one unlock later
    // it can already be popped and drained by another thread, and
    // chunk->count is not ours to read anymore.
    const std::uint32_t count = chunk->count;
    NodeStack& stack = stacks_[node].value;
    stack.lock.lock();
    chunk->next = stack.top.load(std::memory_order_relaxed);
    stack.top.store(chunk, std::memory_order_relaxed);
    stack.lock.unlock();
    tasks_.fetch_add(count, std::memory_order_release);
  }

  /// Pop a chunk, preferring `node`'s own stack; steals round-robin from
  /// the other nodes' stacks when the local one is empty.
  Chunk* pop_chunk(unsigned node) noexcept {
    const unsigned n = static_cast<unsigned>(stacks_.size());
    for (unsigned k = 0; k < n; ++k) {
      NodeStack& stack = stacks_[(node + k) % n].value;
      // Optimistic peek avoids taking remote locks on empty stacks; the
      // authoritative read happens under the lock.
      if (stack.top.load(std::memory_order_relaxed) == nullptr) continue;
      stack.lock.lock();
      Chunk* chunk = stack.top.load(std::memory_order_relaxed);
      if (chunk != nullptr) stack.top.store(chunk->next, std::memory_order_relaxed);
      stack.lock.unlock();
      if (chunk != nullptr) {
        chunk->next = nullptr;
        tasks_.fetch_sub(chunk->count, std::memory_order_release);
        return chunk;
      }
    }
    return nullptr;
  }

  bool looks_empty() const noexcept {
    return tasks_.load(std::memory_order_acquire) <= 0;
  }

  std::int64_t approx_tasks() const noexcept {
    return tasks_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeStack {
    Spinlock lock;
    std::atomic<Chunk*> top{nullptr};
  };

  std::vector<Padded<NodeStack>> stacks_;
  std::atomic<std::int64_t> tasks_{0};
};

}  // namespace smq
