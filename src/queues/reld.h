// RELD — Random Enqueue, Local Dequeue (Jeffrey et al., MICRO'15 [14]).
//
// Inserts go to a uniformly random queue; deletes come from the thread's
// own queue, falling back to scanning other queues only when the local
// one is empty. The cheapest communication-avoiding Multi-Queue relative;
// it has no rank guarantees (a thread may sit on arbitrarily stale
// priorities) and the paper uses it as a lower anchor in Figure 2.
//
// The random-enqueue side is exactly the operation the paper's NUMA
// weighting (Section 4) applies to, so RELD participates in the NUMA
// grid too: insert targets go through QueueSampler with *blocked*
// ownership (thread t structurally owns queues [t*C, (t+1)*C)), unlike
// the Multi-Queues' conventional round-robin assignment.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/numa_sampler.h"
#include "queues/locked_queue_array.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

struct ReldConfig {
  unsigned queue_multiplier = 1;  // one queue per thread by default
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;  // nullptr => uniform enqueue
  double numa_weight_k = 1.0;
};

class ReldQueue {
 public:
  using Config = ReldConfig;

  ReldQueue(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads),
        queues_per_thread_(cfg.queue_multiplier == 0 ? 1 : cfg.queue_multiplier),
        queues_(static_cast<std::size_t>(num_threads) * queues_per_thread_),
        rngs_(num_threads),
        scratch_(num_threads),
        numa_(num_threads),
        sampler_(make_queue_sampler(queues_.size(), num_threads, cfg.topology,
                                    cfg.numa_weight_k,
                                    QueueOwnership::kBlocked)) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      rngs_[tid].value = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }
  std::size_t num_queues() const noexcept { return queues_.size(); }

  void push(unsigned tid, Task task) {
    Xoshiro256& rng = rngs_[tid].value;
    while (true) {
      const std::size_t target = sampler_.sample(tid, rng);
      if (sampler_.topology_aware()) {
        NumaCounters& c = numa_[tid].value;
        ++c.sampled;
        if (sampler_.is_remote(tid, target)) ++c.remote;
      }
      if (queues_.try_push(target, task)) return;
    }
  }

  /// Fold NUMA enqueue attribution into the executor's per-thread stats
  /// (StatReportingScheduler). Zeros under UMA.
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    st.sampled_accesses += numa_[tid].value.sampled;
    st.remote_accesses += numa_[tid].value.remote;
  }

  std::optional<Task> try_pop(unsigned tid) {
    auto& out = scratch_[tid].value;
    out.clear();
    // Local first: round-robin over the thread's own queues.
    for (unsigned k = 0; k < queues_per_thread_; ++k) {
      const std::size_t i =
          static_cast<std::size_t>(tid) * queues_per_thread_ + k;
      if (queues_.try_pop_batch(i, out, 1) == LockedQueueArray::PopStatus::kOk) {
        return out.front();
      }
    }
    // Local queues empty: scan the rest (work-conserving fallback).
    return queues_.pop_any(rngs_[tid].value.next_below(queues_.size()));
  }

  std::uint64_t approx_size() const noexcept { return queues_.approx_total(); }

 private:
  struct NumaCounters {
    std::uint64_t sampled = 0;
    std::uint64_t remote = 0;
  };

  unsigned num_threads_;
  unsigned queues_per_thread_;
  LockedQueueArray queues_;
  std::vector<Padded<Xoshiro256>> rngs_;
  std::vector<Padded<std::vector<Task>>> scratch_;
  std::vector<Padded<NumaCounters>> numa_;
  QueueSampler sampler_;
};

}  // namespace smq
