// RELD — Random Enqueue, Local Dequeue (Jeffrey et al., MICRO'15 [14]).
//
// Inserts go to a uniformly random queue; deletes come from the thread's
// own queue, falling back to scanning other queues only when the local
// one is empty. The cheapest communication-avoiding Multi-Queue relative;
// it has no rank guarantees (a thread may sit on arbitrarily stale
// priorities) and the paper uses it as a lower anchor in Figure 2.
//
// The random-enqueue side is exactly the operation the paper's NUMA
// weighting (Section 4) applies to, so RELD participates in the NUMA
// grid too: insert targets go through QueueSampler with *blocked*
// ownership (thread t structurally owns queues [t*C, (t+1)*C)), unlike
// the Multi-Queues' conventional round-robin assignment.
//
// The Handle resolves the thread's RNG, pop scratch, NUMA counters and
// the index range of its owned queues once; tid calls shim through it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/numa_sampler.h"
#include "queues/locked_queue_array.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

struct ReldConfig {
  unsigned queue_multiplier = 1;  // one queue per thread by default
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;  // nullptr => uniform enqueue
  double numa_weight_k = 1.0;
};

class ReldQueue {
 private:
  struct Local;

 public:
  using Config = ReldConfig;

  ReldQueue(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads),
        queues_per_thread_(cfg.queue_multiplier == 0 ? 1 : cfg.queue_multiplier),
        queues_(static_cast<std::size_t>(num_threads) * queues_per_thread_),
        locals_(num_threads),
        sampler_(make_queue_sampler(queues_.size(), num_threads, cfg.topology,
                                    cfg.numa_weight_k,
                                    QueueOwnership::kBlocked)) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      locals_[tid].value.rng = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }
  std::size_t num_queues() const noexcept { return queues_.size(); }
  std::uint64_t approx_size() const noexcept { return queues_.approx_total(); }

  /// Per-thread view: random enqueue through the (possibly weighted)
  /// sampler, dequeue from the thread's structurally owned queue block.
  class Handle {
   public:
    Handle(ReldQueue& sched, unsigned tid) noexcept
        : sched_(&sched),
          me_(&sched.locals_[tid].value),
          tid_(tid),
          first_own_(static_cast<std::size_t>(tid) *
                     sched.queues_per_thread_) {}

    void push(Task task) {
      Xoshiro256& rng = me_->rng;
      while (true) {
        const std::size_t target = sched_->sampler_.sample(tid_, rng);
        if (sched_->sampler_.topology_aware()) {
          ++me_->numa.sampled;
          if (sched_->sampler_.is_remote(tid_, target)) ++me_->numa.remote;
        }
        if (sched_->queues_.try_push(target, task)) return;
      }
    }

    void push_batch(std::span<const Task> tasks) {
      for (const Task& task : tasks) push(task);
    }

    std::optional<Task> try_pop() {
      auto& out = me_->scratch;
      out.clear();
      LockedQueueArray& queues = sched_->queues_;
      // Local first: round-robin over the thread's own queue block.
      for (unsigned k = 0; k < sched_->queues_per_thread_; ++k) {
        if (queues.try_pop_batch(first_own_ + k, out, 1) ==
            LockedQueueArray::PopStatus::kOk) {
          return out.front();
        }
      }
      // Local queues empty: scan the rest (work-conserving fallback).
      return queues.pop_any(me_->rng.next_below(queues.size()));
    }

    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      return handle_pop_loop(*this, out, max);
    }

    /// Inserts publish immediately (no local buffering).
    void flush() noexcept {}

    /// Fold NUMA enqueue attribution into the executor's per-thread
    /// stats. Zeros under UMA.
    void collect_stats(ThreadStats& st) const noexcept {
      collect_into(*me_, st);
    }

    unsigned thread_id() const noexcept { return tid_; }

   private:
    ReldQueue* sched_;
    Local* me_;
    unsigned tid_;
    std::size_t first_own_;  // start of the thread's owned queue block
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  // ---- tid-indexed shims (legacy surface) ------------------------------

  void push(unsigned tid, Task task) { handle(tid).push(task); }
  std::optional<Task> try_pop(unsigned tid) { return handle(tid).try_pop(); }
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    collect_into(locals_[tid].value, st);
  }

 private:
  struct NumaCounters {
    std::uint64_t sampled = 0;
    std::uint64_t remote = 0;
  };

  struct Local {
    Xoshiro256 rng;
    std::vector<Task> scratch;
    NumaCounters numa;
  };

  /// One stat-folding body shared by the handle and tid surfaces.
  static void collect_into(const Local& me, ThreadStats& st) noexcept {
    st.sampled_accesses += me.numa.sampled;
    st.remote_accesses += me.numa.remote;
  }

  unsigned num_threads_;
  unsigned queues_per_thread_;
  LockedQueueArray queues_;
  std::vector<Padded<Local>> locals_;
  QueueSampler sampler_;
};

static_assert(HandleScheduler<ReldQueue>);

}  // namespace smq
