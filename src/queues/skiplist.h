// Sequential skip list ordered by Task (priority, payload).
//
// Appendix D of the paper evaluates the SMQ with local skip lists instead
// of d-ary heaps; this is that local-queue substrate. Single-owner, no
// synchronization. pop() removes the smallest element in O(level);
// push() is the classic O(log n) tower insert with geometric heights.
//
// Popped nodes are recycled through a free list instead of hitting the
// allocator: a service that pushes and pops millions of tasks per query
// otherwise churns malloc on its hottest path and its footprint is
// whatever the allocator never returns. allocated_nodes() (atomic, so a
// service thread can read another worker's count) makes the resulting
// steady-state footprint observable.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>

#include "sched/task.h"
#include "support/rng.h"

namespace smq {

class SequentialSkipList {
 public:
  static constexpr int kMaxLevel = 24;

  explicit SequentialSkipList(std::uint64_t seed = 0xDEADBEEF)
      : rng_(seed), head_(new Node(Task{0, 0}, kMaxLevel)) {
    head_->next.fill(nullptr);
  }

  ~SequentialSkipList() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next[0];
      delete node;
      node = next;
    }
    node = free_;
    while (node != nullptr) {
      Node* next = node->next[0];
      delete node;
      node = next;
    }
  }

  SequentialSkipList(const SequentialSkipList&) = delete;
  SequentialSkipList& operator=(const SequentialSkipList&) = delete;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  const Task& top() const noexcept {
    assert(!empty());
    return head_->next[0]->task;
  }

  void push(const Task& task) {
    std::array<Node*, kMaxLevel> preds;
    Node* node = head_;
    for (int level = level_ - 1; level >= 0; --level) {
      while (node->next[level] != nullptr && node->next[level]->task < task) {
        node = node->next[level];
      }
      preds[static_cast<std::size_t>(level)] = node;
    }
    const int height = random_height();
    for (int level = level_; level < height; ++level) {
      preds[static_cast<std::size_t>(level)] = head_;
    }
    if (height > level_) level_ = height;

    Node* fresh = allocate(task, height);
    for (int level = 0; level < height; ++level) {
      fresh->next[static_cast<std::size_t>(level)] =
          preds[static_cast<std::size_t>(level)]
              ->next[static_cast<std::size_t>(level)];
      preds[static_cast<std::size_t>(level)]
          ->next[static_cast<std::size_t>(level)] = fresh;
    }
    ++size_;
  }

  Task pop() {
    assert(!empty());
    Node* first = head_->next[0];
    for (int level = 0; level < first->height; ++level) {
      head_->next[static_cast<std::size_t>(level)] =
          first->next[static_cast<std::size_t>(level)];
    }
    Task result = first->task;
    recycle(first);
    --size_;
    while (level_ > 1 && head_->next[static_cast<std::size_t>(level_ - 1)] ==
                             nullptr) {
      --level_;
    }
    return result;
  }

  std::optional<Task> try_pop() {
    if (empty()) return std::nullopt;
    return pop();
  }

  /// Invariant check for tests: level-0 chain strictly ascending, towers
  /// are sub-chains of level 0.
  /// Nodes this list has allocated and not yet returned to the
  /// allocator (live + free list + head). Readable from any thread.
  std::size_t allocated_nodes() const noexcept {
    return allocated_nodes_.load(std::memory_order_relaxed);
  }

  /// Bytes held by this list's nodes (footprint stat).
  std::size_t memory_footprint() const noexcept {
    return allocated_nodes() * sizeof(Node);
  }

  bool is_valid() const {
    for (const Node* n = head_->next[0]; n != nullptr && n->next[0] != nullptr;
         n = n->next[0]) {
      if (!(n->task < n->next[0]->task)) return false;
    }
    return true;
  }

 private:
  struct Node {
    Task task;
    int height;
    // Flexible tower: allocate exactly `height` pointers.
    std::array<Node*, kMaxLevel> next;

    Node(Task t, int h) : task(t), height(h) { next.fill(nullptr); }
  };

  int random_height() {
    // Geometric with p = 1/2, capped.
    const std::uint64_t bits = rng_();
    int height = 1;
    while (height < kMaxLevel && (bits >> height & 1u) != 0) ++height;
    return height;
  }

  Node* allocate(const Task& task, int height) {
    if (free_ != nullptr) {
      Node* node = free_;
      free_ = node->next[0];
      --free_count_;
      node->task = task;
      node->height = height;
      node->next.fill(nullptr);
      return node;
    }
    allocated_nodes_.fetch_add(1, std::memory_order_relaxed);
    return new Node(task, height);
  }

  void recycle(Node* node) noexcept {
    node->next[0] = free_;
    free_ = node;
    ++free_count_;
  }

  Xoshiro256 rng_;
  Node* head_;
  Node* free_ = nullptr;
  std::size_t free_count_ = 0;
  int level_ = 1;
  std::size_t size_ = 0;
  // head included; relaxed is fine — pushes/pops on other threads that
  // could race this count are rare once the free list warms up, and the
  // stat is advisory.
  std::atomic<std::size_t> allocated_nodes_{1};
};

}  // namespace smq
