// Optimized classic Multi-Queue variants (paper Section 2.1, Appendix C).
//
// Two independent optimizations, each applicable to insert() and to
// delete(), giving the four combinations the appendix ablates:
//
//  * Task batching (Optimization 1): inserts are buffered thread-locally
//    and flushed to one random queue with a single lock acquisition once
//    BATCH_insert tasks accumulate; deletes retrieve BATCH_delete tasks
//    from the chosen queue at once into a thread-local buffer.
//  * Temporal locality (Optimization 2): before each operation the thread
//    flips a coin with probability p_change of re-sampling a queue, and
//    otherwise keeps using the queue of its previous operation.
//
// The paper's sweeps use p in {1/1, 1/2, ..., 1/1024} (p = 1 reproduces
// the classic behaviour) and batch sizes in {1, 2, ..., 1024}.
//
// Both optimizations are per-thread-state tricks (insert/delete buffers,
// the sticky queue choice), which is exactly what the Handle hoists: it
// holds the thread's Local slot directly, so a buffered push is a
// pointer-chase-free append. The tid-indexed calls shim through it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "core/numa_sampler.h"
#include "queues/locked_queue_array.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

enum class InsertPolicy { kTemporalLocality, kBatching };
enum class DeletePolicy { kTemporalLocality, kBatching };

struct OptimizedMqConfig {
  unsigned queue_multiplier = 4;
  InsertPolicy insert_policy = InsertPolicy::kTemporalLocality;
  DeletePolicy delete_policy = DeletePolicy::kTemporalLocality;
  // Temporal locality: probability of changing queues before an op.
  double p_insert_change = 1.0;
  double p_delete_change = 1.0;
  // Batching: local buffer capacities.
  std::size_t insert_batch = 1;
  std::size_t delete_batch = 1;
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;
  double numa_weight_k = 1.0;

  friend bool operator==(const OptimizedMqConfig&,
                         const OptimizedMqConfig&) = default;
};

class OptimizedMultiQueue {
 private:
  struct Local;

 public:
  using Config = OptimizedMqConfig;

  OptimizedMultiQueue(unsigned num_threads, Config cfg)
      : cfg_(cfg),
        num_threads_(num_threads),
        queues_(static_cast<std::size_t>(num_threads) * cfg.queue_multiplier),
        locals_(num_threads),
        sampler_(make_queue_sampler(queues_.size(), num_threads, cfg.topology,
                                    cfg.numa_weight_k)) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      locals_[tid].value.rng = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }
  std::size_t num_queues() const noexcept { return queues_.size(); }
  const Config& config() const noexcept { return cfg_; }
  std::uint64_t approx_size() const noexcept { return queues_.approx_total(); }

  /// Per-thread view holding the thread's stickiness slots and
  /// insert/delete buffers directly.
  class Handle {
   public:
    Handle(OptimizedMultiQueue& sched, unsigned tid) noexcept
        : sched_(&sched), me_(&sched.locals_[tid].value), tid_(tid) {}

    void push(Task task) {
      Local& local = *me_;
      const Config& cfg = sched_->cfg_;
      if (cfg.insert_policy == InsertPolicy::kBatching) {
        local.insert_buffer.push_back(task);
        if (local.insert_buffer.size() >= cfg.insert_batch) flush_inserts();
        return;
      }
      // Temporal locality: maybe keep the previous insert queue. A sticky
      // reuse still touches the queue's node, so it still counts toward
      // the NUMA attribution.
      while (true) {
        if (local.insert_queue == kNone ||
            local.rng.next_bool(cfg.p_insert_change)) {
          local.insert_queue = sched_->sampler_.sample(tid_, local.rng);
        }
        record_touch(local.insert_queue);
        if (sched_->queues_.try_push(local.insert_queue, task)) return;
        local.insert_queue = kNone;  // contended: re-sample next round
      }
    }

    /// Bulk insert. Under the batching insert policy the whole span lands
    /// in the local buffer at once (flushing each time it fills); temporal
    /// locality degrades to the per-task path, which already amortizes
    /// sampling through the sticky queue choice.
    void push_batch(std::span<const Task> tasks) {
      Local& local = *me_;
      const Config& cfg = sched_->cfg_;
      if (cfg.insert_policy != InsertPolicy::kBatching) {
        for (const Task& task : tasks) push(task);
        return;
      }
      for (const Task& task : tasks) {
        local.insert_buffer.push_back(task);
        if (local.insert_buffer.size() >= cfg.insert_batch) flush_inserts();
      }
    }

    std::optional<Task> try_pop() {
      Local& local = *me_;
      if (!local.delete_buffer.empty()) {
        Task t = local.delete_buffer.front();
        local.delete_buffer.pop_front();
        return t;
      }
      const Config& cfg = sched_->cfg_;
      const std::size_t want =
          cfg.delete_policy == DeletePolicy::kBatching ? cfg.delete_batch : 1;

      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::size_t target = choose_delete_queue();
        if (target == kNone) {
          if (sched_->queues_.all_empty()) return drain();
          continue;
        }
        local.scratch.clear();
        switch (sched_->queues_.try_pop_batch(target, local.scratch, want)) {
          case LockedQueueArray::PopStatus::kOk: {
            Task first = local.scratch.front();
            local.delete_buffer.assign(local.scratch.begin() + 1,
                                       local.scratch.end());
            return first;
          }
          case LockedQueueArray::PopStatus::kEmpty:
            local.delete_queue = kNone;
            continue;
          case LockedQueueArray::PopStatus::kLockBusy:
            local.delete_queue = kNone;
            continue;
        }
      }
      return drain();
    }

    /// Bulk extract: drain the delete buffer wholesale between locked
    /// batch pops instead of paying one call per buffered task.
    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      Local& local = *me_;
      std::size_t taken = 0;
      while (taken < max) {
        while (taken < max && !local.delete_buffer.empty()) {
          out.push_back(local.delete_buffer.front());
          local.delete_buffer.pop_front();
          ++taken;
        }
        if (taken >= max) break;
        std::optional<Task> task = try_pop();  // refills delete_buffer
        if (!task) break;
        out.push_back(*task);
        ++taken;
      }
      return taken;
    }

    /// Publish buffered inserts; the executor calls this before trusting
    /// an empty pop (termination), and benches call it at a phase end.
    void flush() {
      if (!me_->insert_buffer.empty()) flush_inserts();
    }

    /// Fold NUMA sampling attribution into the executor's per-thread
    /// stats. Zeros under UMA.
    void collect_stats(ThreadStats& st) const noexcept {
      collect_into(*me_, st);
    }

    unsigned thread_id() const noexcept { return tid_; }

   private:
    void record_touch(std::size_t queue) noexcept {
      if (!sched_->sampler_.topology_aware()) return;
      ++me_->numa_sampled;
      if (sched_->sampler_.is_remote(tid_, queue)) ++me_->numa_remote;
    }

    void flush_inserts() {
      Local& local = *me_;
      while (true) {
        const std::size_t target = sched_->sampler_.sample(tid_, local.rng);
        record_touch(target);
        if (sched_->queues_.try_push_batch(target, local.insert_buffer.data(),
                                           local.insert_buffer.size())) {
          break;
        }
      }
      local.insert_buffer.clear();
    }

    /// Pick the queue to delete from, honouring the delete policy.
    /// Returns kNone when both sampled queues look empty.
    std::size_t choose_delete_queue() {
      Local& local = *me_;
      const Config& cfg = sched_->cfg_;
      if (cfg.delete_policy == DeletePolicy::kTemporalLocality &&
          local.delete_queue != kNone &&
          !local.rng.next_bool(cfg.p_delete_change)) {
        record_touch(local.delete_queue);
        return local.delete_queue;  // stick with the previous queue
      }
      const std::size_t i1 = sched_->sampler_.sample(tid_, local.rng);
      std::size_t i2 = sched_->sampler_.sample(tid_, local.rng);
      // Bounded distinct-pair resampling (see ClassicMultiQueue).
      for (int retry = 0; i2 == i1 && retry < 8; ++retry) {
        i2 = sched_->sampler_.sample(tid_, local.rng);
      }
      if (i2 == i1) i2 = (i1 + 1) % sched_->queues_.size();
      record_touch(i1);
      record_touch(i2);
      const std::uint64_t p1 = sched_->queues_.top_priority(i1);
      const std::uint64_t p2 = sched_->queues_.top_priority(i2);
      if (p1 == Task::kInfinity && p2 == Task::kInfinity) return kNone;
      local.delete_queue = p1 <= p2 ? i1 : i2;
      return local.delete_queue;
    }

    std::optional<Task> drain() {
      return sched_->queues_.pop_any(
          me_->rng.next_below(sched_->queues_.size()));
    }

    OptimizedMultiQueue* sched_;
    Local* me_;
    unsigned tid_;
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  // ---- tid-indexed shims (legacy surface) ------------------------------

  void push(unsigned tid, Task task) { handle(tid).push(task); }
  void push_batch(unsigned tid, std::span<const Task> tasks) {
    handle(tid).push_batch(tasks);
  }
  std::optional<Task> try_pop(unsigned tid) { return handle(tid).try_pop(); }
  std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                            std::size_t max) {
    return handle(tid).try_pop_batch(out, max);
  }
  void flush(unsigned tid) { handle(tid).flush(); }
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    collect_into(locals_[tid].value, st);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Local {
    Xoshiro256 rng;
    std::vector<Task> insert_buffer;
    std::deque<Task> delete_buffer;
    std::vector<Task> scratch;
    std::size_t insert_queue = kNone;  // temporal-locality memory
    std::size_t delete_queue = kNone;
    // NUMA attribution: queue touches routed through the sampler (one
    // per flushed insert batch, not per task — a batch is one lock
    // acquisition and one node crossing), and how many were remote.
    std::uint64_t numa_sampled = 0;
    std::uint64_t numa_remote = 0;
  };

  /// One stat-folding body shared by the handle and tid surfaces.
  static void collect_into(const Local& me, ThreadStats& st) noexcept {
    st.sampled_accesses += me.numa_sampled;
    st.remote_accesses += me.numa_remote;
  }

  Config cfg_;
  unsigned num_threads_;
  LockedQueueArray queues_;
  std::vector<Padded<Local>> locals_;
  QueueSampler sampler_;
};

static_assert(HandleScheduler<OptimizedMultiQueue>);

}  // namespace smq
