// Optimized classic Multi-Queue variants (paper Section 2.1, Appendix C).
//
// Two independent optimizations, each applicable to insert() and to
// delete(), giving the four combinations the appendix ablates:
//
//  * Task batching (Optimization 1): inserts are buffered thread-locally
//    and flushed to one random queue with a single lock acquisition once
//    BATCH_insert tasks accumulate; deletes retrieve BATCH_delete tasks
//    from the chosen queue at once into a thread-local buffer.
//  * Temporal locality (Optimization 2): before each operation the thread
//    flips a coin with probability p_change of re-sampling a queue, and
//    otherwise keeps using the queue of its previous operation.
//
// The paper's sweeps use p in {1/1, 1/2, ..., 1/1024} (p = 1 reproduces
// the classic behaviour) and batch sizes in {1, 2, ..., 1024}.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "core/numa_sampler.h"
#include "queues/locked_queue_array.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

enum class InsertPolicy { kTemporalLocality, kBatching };
enum class DeletePolicy { kTemporalLocality, kBatching };

struct OptimizedMqConfig {
  unsigned queue_multiplier = 4;
  InsertPolicy insert_policy = InsertPolicy::kTemporalLocality;
  DeletePolicy delete_policy = DeletePolicy::kTemporalLocality;
  // Temporal locality: probability of changing queues before an op.
  double p_insert_change = 1.0;
  double p_delete_change = 1.0;
  // Batching: local buffer capacities.
  std::size_t insert_batch = 1;
  std::size_t delete_batch = 1;
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;
  double numa_weight_k = 1.0;

  friend bool operator==(const OptimizedMqConfig&,
                         const OptimizedMqConfig&) = default;
};

class OptimizedMultiQueue {
 public:
  using Config = OptimizedMqConfig;

  OptimizedMultiQueue(unsigned num_threads, Config cfg)
      : cfg_(cfg),
        num_threads_(num_threads),
        queues_(static_cast<std::size_t>(num_threads) * cfg.queue_multiplier),
        locals_(num_threads),
        sampler_(make_queue_sampler(queues_.size(), num_threads, cfg.topology,
                                    cfg.numa_weight_k)) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      locals_[tid].value.rng = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }
  std::size_t num_queues() const noexcept { return queues_.size(); }
  const Config& config() const noexcept { return cfg_; }

  void push(unsigned tid, Task task) {
    Local& local = locals_[tid].value;
    if (cfg_.insert_policy == InsertPolicy::kBatching) {
      local.insert_buffer.push_back(task);
      if (local.insert_buffer.size() >= cfg_.insert_batch) flush_inserts(local, tid);
      return;
    }
    // Temporal locality: maybe keep the previous insert queue. A sticky
    // reuse still touches the queue's node, so it still counts toward
    // the NUMA attribution.
    while (true) {
      if (local.insert_queue == kNone ||
          local.rng.next_bool(cfg_.p_insert_change)) {
        local.insert_queue = sampler_.sample(tid, local.rng);
      }
      record_touch(local, tid, local.insert_queue);
      if (queues_.try_push(local.insert_queue, task)) return;
      local.insert_queue = kNone;  // contended: re-sample next round
    }
  }

  /// Bulk insert. Under the batching insert policy the whole span lands
  /// in the local buffer at once (flushing each time it fills); temporal
  /// locality degrades to the per-task path, which already amortizes
  /// sampling through the sticky queue choice.
  void push_batch(unsigned tid, std::span<const Task> tasks) {
    Local& local = locals_[tid].value;
    if (cfg_.insert_policy != InsertPolicy::kBatching) {
      for (const Task& task : tasks) push(tid, task);
      return;
    }
    for (const Task& task : tasks) {
      local.insert_buffer.push_back(task);
      if (local.insert_buffer.size() >= cfg_.insert_batch) {
        flush_inserts(local, tid);
      }
    }
  }

  /// Bulk extract: drain the delete buffer wholesale between locked batch
  /// pops instead of paying one call per buffered task.
  std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                            std::size_t max) {
    Local& local = locals_[tid].value;
    std::size_t taken = 0;
    while (taken < max) {
      while (taken < max && !local.delete_buffer.empty()) {
        out.push_back(local.delete_buffer.front());
        local.delete_buffer.pop_front();
        ++taken;
      }
      if (taken >= max) break;
      std::optional<Task> task = try_pop(tid);  // refills delete_buffer
      if (!task) break;
      out.push_back(*task);
      ++taken;
    }
    return taken;
  }

  std::optional<Task> try_pop(unsigned tid) {
    Local& local = locals_[tid].value;
    if (!local.delete_buffer.empty()) {
      Task t = local.delete_buffer.front();
      local.delete_buffer.pop_front();
      return t;
    }
    const std::size_t want =
        cfg_.delete_policy == DeletePolicy::kBatching ? cfg_.delete_batch : 1;

    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t target = choose_delete_queue(local, tid);
      if (target == kNone) {
        if (queues_.all_empty()) return drain(local, tid);
        continue;
      }
      local.scratch.clear();
      switch (queues_.try_pop_batch(target, local.scratch, want)) {
        case LockedQueueArray::PopStatus::kOk: {
          Task first = local.scratch.front();
          local.delete_buffer.assign(local.scratch.begin() + 1,
                                     local.scratch.end());
          return first;
        }
        case LockedQueueArray::PopStatus::kEmpty:
          local.delete_queue = kNone;
          continue;
        case LockedQueueArray::PopStatus::kLockBusy:
          local.delete_queue = kNone;
          continue;
      }
    }
    return drain(local, tid);
  }

  /// Publish buffered inserts; the executor calls this before trusting an
  /// empty pop (termination), and benches call it at the end of a phase.
  void flush(unsigned tid) {
    Local& local = locals_[tid].value;
    if (!local.insert_buffer.empty()) flush_inserts(local, tid);
  }

  std::uint64_t approx_size() const noexcept { return queues_.approx_total(); }

  /// Fold NUMA sampling attribution into the executor's per-thread
  /// stats (StatReportingScheduler). Zeros under UMA.
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    st.sampled_accesses += locals_[tid].value.numa_sampled;
    st.remote_accesses += locals_[tid].value.numa_remote;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Local {
    Xoshiro256 rng;
    std::vector<Task> insert_buffer;
    std::deque<Task> delete_buffer;
    std::vector<Task> scratch;
    std::size_t insert_queue = kNone;  // temporal-locality memory
    std::size_t delete_queue = kNone;
    // NUMA attribution: queue touches routed through the sampler (one
    // per flushed insert batch, not per task — a batch is one lock
    // acquisition and one node crossing), and how many were remote.
    std::uint64_t numa_sampled = 0;
    std::uint64_t numa_remote = 0;
  };

  void record_touch(Local& local, unsigned tid, std::size_t queue) noexcept {
    if (!sampler_.topology_aware()) return;
    ++local.numa_sampled;
    if (sampler_.is_remote(tid, queue)) ++local.numa_remote;
  }

  void flush_inserts(Local& local, unsigned tid) {
    while (true) {
      const std::size_t target = sampler_.sample(tid, local.rng);
      record_touch(local, tid, target);
      if (queues_.try_push_batch(target, local.insert_buffer.data(),
                                 local.insert_buffer.size())) {
        break;
      }
    }
    local.insert_buffer.clear();
  }

  /// Pick the queue to delete from, honouring the delete policy. Returns
  /// kNone when both sampled queues look empty.
  std::size_t choose_delete_queue(Local& local, unsigned tid) {
    if (cfg_.delete_policy == DeletePolicy::kTemporalLocality &&
        local.delete_queue != kNone &&
        !local.rng.next_bool(cfg_.p_delete_change)) {
      record_touch(local, tid, local.delete_queue);
      return local.delete_queue;  // stick with the previous queue
    }
    const std::size_t i1 = sampler_.sample(tid, local.rng);
    std::size_t i2 = sampler_.sample(tid, local.rng);
    // Bounded distinct-pair resampling (see ClassicMultiQueue::try_pop).
    for (int retry = 0; i2 == i1 && retry < 8; ++retry) {
      i2 = sampler_.sample(tid, local.rng);
    }
    if (i2 == i1) i2 = (i1 + 1) % queues_.size();
    record_touch(local, tid, i1);
    record_touch(local, tid, i2);
    const std::uint64_t p1 = queues_.top_priority(i1);
    const std::uint64_t p2 = queues_.top_priority(i2);
    if (p1 == Task::kInfinity && p2 == Task::kInfinity) return kNone;
    local.delete_queue = p1 <= p2 ? i1 : i2;
    return local.delete_queue;
  }

  std::optional<Task> drain(Local& local, unsigned tid) {
    (void)tid;
    return queues_.pop_any(local.rng.next_below(queues_.size()));
  }

  Config cfg_;
  unsigned num_threads_;
  LockedQueueArray queues_;
  std::vector<Padded<Local>> locals_;
  QueueSampler sampler_;
};

}  // namespace smq
