// The classic Multi-Queue (Rihani, Sanders, Dementiev; paper Listing 1).
//
// m = C * T sequential heaps, each guarded by a try-lock. insert(): lock
// a uniformly random queue, add, unlock; restart on lock failure.
// delete(): pick two distinct random queues, take the top of the one
// whose top has higher priority; restart on lock failure. Serves as the
// baseline of every speedup table in the paper, and supports the
// NUMA-weighted sampling extension (Section 4) through QueueSampler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/numa_sampler.h"
#include "queues/locked_queue_array.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

struct ClassicMqConfig {
  unsigned queue_multiplier = 4;  // C: queues per thread
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;  // nullptr => uniform sampling
  double numa_weight_k = 1.0;

  friend bool operator==(const ClassicMqConfig&,
                         const ClassicMqConfig&) = default;
};

class ClassicMultiQueue {
 public:
  using Config = ClassicMqConfig;

  ClassicMultiQueue(unsigned num_threads, Config cfg = {})
      : cfg_(cfg),
        num_threads_(num_threads),
        queues_(static_cast<std::size_t>(num_threads) * cfg.queue_multiplier),
        rngs_(num_threads),
        sampler_(make_queue_sampler(queues_.size(), num_threads, cfg.topology,
                                    cfg.numa_weight_k)),
        scratch_(num_threads),
        numa_(num_threads) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      rngs_[tid].value = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }
  std::size_t num_queues() const noexcept { return queues_.size(); }
  std::uint64_t approx_size() const noexcept { return queues_.approx_total(); }
  const Config& config() const noexcept { return cfg_; }

  void push(unsigned tid, Task task) {
    Xoshiro256& rng = rngs_[tid].value;
    while (true) {
      const std::size_t target = sampler_.sample(tid, rng);
      record_touch(tid, target);
      if (queues_.try_push(target, task)) return;
    }
  }

  std::optional<Task> try_pop(unsigned tid) {
    Xoshiro256& rng = rngs_[tid].value;
    scratch_[tid].value.clear();
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t i1 = sampler_.sample(tid, rng);
      std::size_t i2 = sampler_.sample(tid, rng);
      // Bounded distinct-pair resampling: a weighted sampler over a
      // near-singleton group could echo i1 indefinitely.
      for (int retry = 0; i2 == i1 && retry < 8; ++retry) {
        i2 = sampler_.sample(tid, rng);
      }
      if (i2 == i1) i2 = (i1 + 1) % queues_.size();
      record_touch(tid, i1);
      record_touch(tid, i2);
      const std::uint64_t p1 = queues_.top_priority(i1);
      const std::uint64_t p2 = queues_.top_priority(i2);
      if (p1 == Task::kInfinity && p2 == Task::kInfinity) {
        if (queues_.all_empty()) return std::nullopt;
        continue;
      }
      auto& out = scratch_[tid].value;
      switch (queues_.try_pop_batch(p1 <= p2 ? i1 : i2, out, 1)) {
        case LockedQueueArray::PopStatus::kOk:
          return out.front();
        case LockedQueueArray::PopStatus::kEmpty:
        case LockedQueueArray::PopStatus::kLockBusy:
          continue;
      }
    }
    return queues_.pop_any(rngs_[tid].value.next_below(queues_.size()));
  }

  /// Fold NUMA sampling attribution into the executor's per-thread
  /// stats (StatReportingScheduler). Zeros under UMA.
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    st.sampled_accesses += numa_[tid].value.sampled;
    st.remote_accesses += numa_[tid].value.remote;
  }

 private:
  struct NumaCounters {
    std::uint64_t sampled = 0;
    std::uint64_t remote = 0;
  };

  /// Count one sampled queue touch; only when a topology is attached,
  /// so the UMA hot path stays increment-free.
  void record_touch(unsigned tid, std::size_t queue) noexcept {
    if (!sampler_.topology_aware()) return;
    NumaCounters& c = numa_[tid].value;
    ++c.sampled;
    if (sampler_.is_remote(tid, queue)) ++c.remote;
  }

  Config cfg_;
  unsigned num_threads_;
  LockedQueueArray queues_;
  std::vector<Padded<Xoshiro256>> rngs_;
  QueueSampler sampler_;
  // Per-thread scratch for pop batches; avoids an allocation per pop.
  std::vector<Padded<std::vector<Task>>> scratch_;
  std::vector<Padded<NumaCounters>> numa_;
};

}  // namespace smq
