// The classic Multi-Queue (Rihani, Sanders, Dementiev; paper Listing 1).
//
// m = C * T sequential heaps, each guarded by a try-lock. insert(): lock
// a uniformly random queue, add, unlock; restart on lock failure.
// delete(): pick two distinct random queues, take the top of the one
// whose top has higher priority; restart on lock failure. Serves as the
// baseline of every speedup table in the paper, and supports the
// NUMA-weighted sampling extension (Section 4) through QueueSampler.
//
// Per-thread state (RNG, pop scratch, NUMA counters) is resolved once by
// the Handle (HandleScheduler); the tid-indexed calls shim through it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/numa_sampler.h"
#include "queues/locked_queue_array.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

struct ClassicMqConfig {
  unsigned queue_multiplier = 4;  // C: queues per thread
  std::uint64_t seed = 1;
  const Topology* topology = nullptr;  // nullptr => uniform sampling
  double numa_weight_k = 1.0;

  friend bool operator==(const ClassicMqConfig&,
                         const ClassicMqConfig&) = default;
};

class ClassicMultiQueue {
 private:
  struct Local;

 public:
  using Config = ClassicMqConfig;

  ClassicMultiQueue(unsigned num_threads, Config cfg = {})
      : cfg_(cfg),
        num_threads_(num_threads),
        queues_(static_cast<std::size_t>(num_threads) * cfg.queue_multiplier),
        locals_(num_threads),
        sampler_(make_queue_sampler(queues_.size(), num_threads, cfg.topology,
                                    cfg.numa_weight_k)) {
    for (unsigned tid = 0; tid < num_threads; ++tid) {
      locals_[tid].value.rng = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }
  std::size_t num_queues() const noexcept { return queues_.size(); }
  std::uint64_t approx_size() const noexcept { return queues_.approx_total(); }
  const Config& config() const noexcept { return cfg_; }

  /// Per-thread view over the shared queue array: the thread's RNG, pop
  /// scratch and NUMA tallies are a pointer away instead of an index.
  class Handle {
   public:
    Handle(ClassicMultiQueue& sched, unsigned tid) noexcept
        : sched_(&sched), me_(&sched.locals_[tid].value), tid_(tid) {}

    void push(Task task) {
      while (true) {
        const std::size_t target = sched_->sampler_.sample(tid_, me_->rng);
        record_touch(target);
        if (sched_->queues_.try_push(target, task)) return;
      }
    }

    /// No native bulk insert: each task goes to an independently sampled
    /// queue by definition of the classic MQ, so the batch is the loop.
    void push_batch(std::span<const Task> tasks) {
      for (const Task& task : tasks) push(task);
    }

    std::optional<Task> try_pop() {
      LockedQueueArray& queues = sched_->queues_;
      Xoshiro256& rng = me_->rng;
      me_->scratch.clear();
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::size_t i1 = sched_->sampler_.sample(tid_, rng);
        std::size_t i2 = sched_->sampler_.sample(tid_, rng);
        // Bounded distinct-pair resampling: a weighted sampler over a
        // near-singleton group could echo i1 indefinitely.
        for (int retry = 0; i2 == i1 && retry < 8; ++retry) {
          i2 = sched_->sampler_.sample(tid_, rng);
        }
        if (i2 == i1) i2 = (i1 + 1) % queues.size();
        record_touch(i1);
        record_touch(i2);
        const std::uint64_t p1 = queues.top_priority(i1);
        const std::uint64_t p2 = queues.top_priority(i2);
        if (p1 == Task::kInfinity && p2 == Task::kInfinity) {
          if (queues.all_empty()) return std::nullopt;
          continue;
        }
        auto& out = me_->scratch;
        switch (queues.try_pop_batch(p1 <= p2 ? i1 : i2, out, 1)) {
          case LockedQueueArray::PopStatus::kOk:
            return out.front();
          case LockedQueueArray::PopStatus::kEmpty:
          case LockedQueueArray::PopStatus::kLockBusy:
            continue;
        }
      }
      return queues.pop_any(rng.next_below(queues.size()));
    }

    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      return handle_pop_loop(*this, out, max);
    }

    /// Inserts publish immediately (no local buffering).
    void flush() noexcept {}

    /// Fold NUMA sampling attribution into the executor's per-thread
    /// stats. Zeros under UMA.
    void collect_stats(ThreadStats& st) const noexcept {
      collect_into(*me_, st);
    }

    unsigned thread_id() const noexcept { return tid_; }

   private:
    /// Count one sampled queue touch; only when a topology is attached,
    /// so the UMA hot path stays increment-free.
    void record_touch(std::size_t queue) noexcept {
      if (!sched_->sampler_.topology_aware()) return;
      ++me_->numa.sampled;
      if (sched_->sampler_.is_remote(tid_, queue)) ++me_->numa.remote;
    }

    ClassicMultiQueue* sched_;
    Local* me_;
    unsigned tid_;
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  // ---- tid-indexed shims (legacy surface) ------------------------------

  void push(unsigned tid, Task task) { handle(tid).push(task); }
  std::optional<Task> try_pop(unsigned tid) { return handle(tid).try_pop(); }
  void collect_stats(unsigned tid, ThreadStats& st) const noexcept {
    collect_into(locals_[tid].value, st);
  }

 private:
  struct NumaCounters {
    std::uint64_t sampled = 0;
    std::uint64_t remote = 0;
  };

  struct Local {
    Xoshiro256 rng;
    // Per-thread scratch for pop batches; avoids an allocation per pop.
    std::vector<Task> scratch;
    NumaCounters numa;
  };

  /// One stat-folding body shared by the handle and tid surfaces.
  static void collect_into(const Local& me, ThreadStats& st) noexcept {
    st.sampled_accesses += me.numa.sampled;
    st.remote_accesses += me.numa.remote;
  }

  Config cfg_;
  unsigned num_threads_;
  LockedQueueArray queues_;
  std::vector<Padded<Local>> locals_;
  QueueSampler sampler_;
};

static_assert(HandleScheduler<ClassicMultiQueue>);

}  // namespace smq
