// SprayList (Alistarh, Kopinsky, Li, Shavit; PPoPP'15 [6]).
//
// A relaxed priority queue over a lock-free skip list: delete-min is
// replaced by a "spray" — a randomized descending walk that lands
// uniformly-ish inside the first O(T log^3 T) elements, so concurrent
// deleters collide rarely. One of the advanced-scheduler baselines in
// Figure 2 of the paper.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "queues/lockfree_skiplist.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"

namespace smq {

struct SprayConfig {
  std::uint64_t seed = 1;
  // Spray shape knobs; defaults follow the SprayList paper's
  // H = log T + K and uniform jumps of length O(log T).
  int height_offset = 1;
  int jump_scale = 1;
};

class SprayList {
 public:
  using Config = SprayConfig;

  SprayList(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads),
        list_(num_threads_),
        rngs_(num_threads_) {
    for (unsigned tid = 0; tid < num_threads_; ++tid) {
      rngs_[tid].value = Xoshiro256(thread_seed(cfg.seed, tid));
    }
    const int log_t = num_threads_ <= 1
                          ? 0
                          : static_cast<int>(std::ceil(std::log2(num_threads_)));
    spray_height_ = log_t + cfg.height_offset;
    max_jump_ = (log_t + 1) * cfg.jump_scale;
  }

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned tid, Task task) {
    list_.insert(tid, task, rngs_[tid].value);
  }

  std::optional<Task> try_pop(unsigned tid) {
    Xoshiro256& rng = rngs_[tid].value;
    if (num_threads_ == 1) return list_.pop_min();
    // A few spray attempts, then fall back to exact delete-min so the
    // drain phase terminates (the original does the same via "become a
    // cleaner" mode).
    for (int attempt = 0; attempt < 4; ++attempt) {
      LockFreeSkipList::Node* node =
          list_.spray(spray_height_, max_jump_, rng);
      if (node == nullptr) break;
      if (std::optional<Task> task = list_.pop_from(node, max_jump_ + 1)) {
        return task;
      }
    }
    return list_.pop_min();
  }

  bool empty() const noexcept { return list_.empty(); }

 private:
  unsigned num_threads_;
  LockFreeSkipList list_;
  std::vector<Padded<Xoshiro256>> rngs_;
  int spray_height_ = 1;
  int max_jump_ = 1;
};

}  // namespace smq
