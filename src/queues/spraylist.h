// SprayList (Alistarh, Kopinsky, Li, Shavit; PPoPP'15 [6]).
//
// A relaxed priority queue over a lock-free skip list: delete-min is
// replaced by a "spray" — a randomized descending walk that lands
// uniformly-ish inside the first O(T log^3 T) elements, so concurrent
// deleters collide rarely. One of the advanced-scheduler baselines in
// Figure 2 of the paper.
//
// With `reclaim = true` the scheduler owns an EpochManager: every
// handle operation pins the epoch once (per op or per batch, never per
// pointer), unlinked nodes are retired and recycled through per-thread
// free lists, and quiesce() lets parked service workers advance
// reclamation between query bursts.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "queues/lockfree_skiplist.h"
#include "sched/epoch.h"
#include "sched/scheduler_traits.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"
#include "support/thread_annotations.h"

namespace smq {

struct SprayConfig {
  std::uint64_t seed = 1;
  // Spray shape knobs; defaults follow the SprayList paper's
  // H = log T + K and uniform jumps of length O(log T).
  int height_offset = 1;
  int jump_scale = 1;
  // Epoch-based reclamation: bounded steady-state footprint for
  // long-lived (service) use, small pin cost per operation.
  bool reclaim = false;
};

class SprayList {
 public:
  using Config = SprayConfig;

  SprayList(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads),
        epochs_(cfg.reclaim ? std::make_unique<EpochManager>(num_threads_)
                            : nullptr),
        list_(num_threads_, epochs_.get()),
        rngs_(num_threads_) {
    for (unsigned tid = 0; tid < num_threads_; ++tid) {
      rngs_[tid].value = Xoshiro256(thread_seed(cfg.seed, tid));
    }
    const int log_t = num_threads_ <= 1
                          ? 0
                          : static_cast<int>(std::ceil(std::log2(num_threads_)));
    spray_height_ = log_t + cfg.height_offset;
    max_jump_ = (log_t + 1) * cfg.jump_scale;
  }

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned tid, Task task) {
    EpochManager::Guard guard(epochs_.get(), tid);
    list_.insert(tid, task, rngs_[tid].value);
  }

  std::optional<Task> try_pop(unsigned tid) {
    EpochManager::Guard guard(epochs_.get(), tid);
    return pop_pinned(tid);
  }

  /// Per-thread handle: one epoch pin per operation or batch.
  class Handle {
   public:
    Handle(SprayList& sched, unsigned tid) noexcept
        : sched_(&sched), tid_(tid) {}

    void push(Task t) { sched_->push(tid_, t); }
    std::optional<Task> try_pop() { return sched_->try_pop(tid_); }

    void push_batch(std::span<const Task> tasks) {
      EpochManager::Guard guard(sched_->epochs_.get(), tid_);
      Xoshiro256& rng = sched_->rngs_[tid_].value;
      for (const Task& t : tasks) sched_->list_.insert(tid_, t, rng);
    }

    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      EpochManager::Guard guard(sched_->epochs_.get(), tid_);
      std::size_t taken = 0;
      while (taken < max) {
        std::optional<Task> task = sched_->pop_pinned(tid_);
        if (!task) break;
        out.push_back(*task);
        ++taken;
      }
      return taken;
    }

    void flush() {}
    void collect_stats(ThreadStats&) const {}
    unsigned thread_id() const noexcept { return tid_; }

   private:
    SprayList* sched_;
    unsigned tid_;
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  /// Idle hook (ReclaimingScheduler): called unpinned, typically by a
  /// parked service worker.
  void quiesce(unsigned tid) {
    if (epochs_ != nullptr) epochs_->quiesce(tid);
  }

  /// Bytes held in skiplist node arenas (recycled nodes included).
  std::size_t memory_footprint() const noexcept {
    return list_.memory_footprint();
  }

  EpochManager* epochs() const noexcept { return epochs_.get(); }

  /// Quiescent-only in reclaim mode (unpinned traversal; test/teardown).
  bool empty() const noexcept { return list_.empty(); }

 private:
  std::optional<Task> pop_pinned(unsigned tid) SMQ_REQUIRES_PIN {
    Xoshiro256& rng = rngs_[tid].value;
    if (num_threads_ == 1) return list_.pop_min(tid);
    // A few spray attempts, then fall back to exact delete-min so the
    // drain phase terminates (the original does the same via "become a
    // cleaner" mode).
    for (int attempt = 0; attempt < 4; ++attempt) {
      LockFreeSkipList::Node* node =
          list_.spray(spray_height_, max_jump_, rng);
      if (node == nullptr) break;
      if (std::optional<Task> task =
              list_.pop_from(node, max_jump_ + 1, tid)) {
        return task;
      }
    }
    return list_.pop_min(tid);
  }

  unsigned num_threads_;
  // Declared before the list: the manager must outlive it so the
  // list destructor can drain pending retirements into its free lists.
  std::unique_ptr<EpochManager> epochs_;
  LockFreeSkipList list_;
  std::vector<Padded<Xoshiro256>> rngs_;
  int spray_height_ = 1;
  int max_jump_ = 1;
};

static_assert(HandleScheduler<SprayList>);
static_assert(ReclaimingScheduler<SprayList>);
static_assert(MemoryReportingScheduler<SprayList>);

}  // namespace smq
