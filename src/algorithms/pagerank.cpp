#include "algorithms/pagerank.h"

#include <cmath>

namespace smq {

SequentialPageRankResult sequential_pagerank(const Graph& graph,
                                             PageRankOptions opts,
                                             unsigned max_iterations) {
  // Jacobi power iteration of the same unnormalized fixpoint the push
  // variant solves: r(v) = (1 - d) + d * sum_{u->v} r(u) / outdeg(u),
  // with dangling-vertex mass dropped (matching the push rule).
  const std::size_t n = graph.num_vertices();
  SequentialPageRankResult result;
  result.ranks.assign(n, 1.0 - opts.damping);
  std::vector<double> next(n);

  for (unsigned iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    std::fill(next.begin(), next.end(), 1.0 - opts.damping);
    for (VertexId u = 0; u < n; ++u) {
      const auto degree = static_cast<double>(graph.out_degree(u));
      if (degree == 0) continue;
      const double share = opts.damping * result.ranks[u] / degree;
      for (const Graph::Neighbor& e : graph.neighbors(u)) {
        next[e.to] += share;
      }
    }
    double delta = 0;
    for (std::size_t v = 0; v < n; ++v) {
      delta = std::max(delta, std::abs(next[v] - result.ranks[v]));
    }
    result.ranks.swap(next);
    if (delta < opts.tolerance) break;
  }
  return result;
}

}  // namespace smq
