// Parallel Boruvka minimum spanning tree / forest (paper Section 5).
//
// Task = component, priority = component degree (the paper: "task
// priority equal to the degree of the associated vertex") — processing
// small components first keeps merges cheap and balanced. A task scans
// its component's candidate edge list for the lightest edge leaving the
// component, locks both component roots in id order, merges the smaller
// edge list into the larger, and reschedules the merged component.
// Self-edges are compacted away during scans, so total edge-list work is
// O(E alpha(V)) amortized across the run.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "algorithms/union_find.h"
#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"
#include "support/padding.h"
#include "support/spinlock.h"
#include "support/thread_annotations.h"

namespace smq {

struct MstResult {
  std::uint64_t total_weight = 0;
  std::uint64_t edges_in_forest = 0;
  RunResult run;
};

namespace detail {

struct Component {
  Spinlock lock;
  // Edges possibly leaving the component; scanned and compacted only by
  // the task holding `lock`.
  std::vector<Edge> candidates SMQ_GUARDED_BY(lock);
};

/// Symmetrize the graph into per-vertex candidate lists and emit the
/// initial degree-priority tasks. Runs strictly before the worker pool
/// exists, so the component locks are provably uncontended — which the
/// static analysis cannot see, hence the opt-out.
inline std::vector<Task> build_components(
    const Graph& graph, std::vector<Padded<Component>>& components)
    SMQ_NO_THREAD_SAFETY_ANALYSIS {
  const VertexId n = graph.num_vertices();
  // MST treats arcs as undirected, and the cut property needs every
  // component to see *all* edges crossing its cut, including in-arcs.
  // Directed inputs (e.g. RMAT) would otherwise produce a heavier forest.
  for (VertexId v = 0; v < n; ++v) {
    for (const Graph::Neighbor& e : graph.neighbors(v)) {
      if (e.to == v) continue;
      components[v].value.candidates.push_back(Edge{v, e.to, e.weight});
      components[e.to].value.candidates.push_back(Edge{e.to, v, e.weight});
    }
  }
  std::vector<Task> seeds;
  seeds.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    auto& comp = components[v].value;
    if (!comp.candidates.empty()) {
      seeds.push_back(Task{comp.candidates.size(), v});
    }
  }
  return seeds;
}

}  // namespace detail

template <typename Ctx>
void merge_components(UnionFind& uf,
                      std::vector<Padded<detail::Component>>& components,
                      VertexId a, VertexId b, const Edge& connecting,
                      std::atomic<std::uint64_t>& total_weight,
                      std::atomic<std::uint64_t>& forest_edges, Ctx& ctx);

template <PriorityScheduler S>
MstResult parallel_boruvka(const Graph& graph, S& sched,
                           unsigned num_threads,
                           const ExecutorOptions& exec = {}) {
  const VertexId n = graph.num_vertices();
  UnionFind uf(n);
  std::vector<Padded<detail::Component>> components(n);
  std::atomic<std::uint64_t> total_weight{0};
  std::atomic<std::uint64_t> forest_edges{0};

  std::vector<Task> seeds = detail::build_components(graph, components);

  auto handler = [&](Task task, auto& ctx) {
    const auto claimed = static_cast<VertexId>(task.payload);
    for (int attempt = 0; attempt < 128; ++attempt) {
      const VertexId root = uf.find(claimed);
      detail::Component& comp = components[root].value;
      comp.lock.lock();
      if (uf.find(root) != root) {
        comp.lock.unlock();
        ctx.mark_wasted();  // merged away while we raced for the lock
        return;
      }
      // Find the lightest edge leaving the component; drop internal edges.
      Edge best{0, 0, 0};
      bool found = false;
      auto& cand = comp.candidates;
      std::size_t keep = 0;
      for (const Edge& e : cand) {
        if (uf.find(e.to) == root) continue;  // self-edge after merges
        cand[keep++] = e;
        if (!found || e.weight < best.weight) {
          best = e;
          found = true;
        }
      }
      cand.resize(keep);
      if (!found) {
        comp.lock.unlock();  // component is a finished MST piece
        return;
      }
      const VertexId other = uf.find(best.to);
      if (other == root) {
        comp.lock.unlock();
        continue;  // other side merged mid-scan; rescan
      }
      // Lock ordering by root id prevents deadlock; we already hold
      // `root`, so if the other root is smaller we must restart.
      if (other < root) {
        comp.lock.unlock();
        detail::Component& lo = components[other].value;
        detail::Component& hi = comp;
        lo.lock.lock();
        hi.lock.lock();
        if (uf.find(other) != other || uf.find(root) != root ||
            uf.find(best.to) != other) {
          hi.lock.unlock();
          lo.lock.unlock();
          continue;  // world changed; revalidate from scratch
        }
        merge_components(uf, components, root, other, best, total_weight,
                         forest_edges, ctx);
        hi.lock.unlock();
        lo.lock.unlock();
        return;
      }
      detail::Component& second = components[other].value;
      second.lock.lock();
      if (uf.find(other) != other || uf.find(best.to) != other) {
        second.lock.unlock();
        comp.lock.unlock();
        continue;
      }
      merge_components(uf, components, root, other, best, total_weight,
                       forest_edges, ctx);
      second.lock.unlock();
      comp.lock.unlock();
      return;
    }
    // Contention cap hit: requeue ourselves rather than spin.
    ctx.push(Task{task.priority, claimed});
  };

  RunResult run = run_parallel(sched, std::span<const Task>(seeds), handler,
                               num_threads, exec);
  // Relaxed is enough: run_parallel joined every worker, and the joins
  // already ordered all task-side fetch_adds before these reads.
  return MstResult{total_weight.load(std::memory_order_relaxed),
                   forest_edges.load(std::memory_order_relaxed), run};
}

/// Merge component `b` into `a` (both locked, both roots), record the
/// connecting edge, and reschedule the survivor.
///
/// Analysis opt-out: the two locks are chosen dynamically through
/// union-find roots (`components[uf.find(..)].value.lock`), an aliasing
/// pattern Clang's lexical lock analysis cannot express. The caller
/// (parallel_boruvka's handler, which *is* analyzed) holds both locks in
/// id order for the duration of this call.
template <typename Ctx>
void merge_components(UnionFind& uf,
                      std::vector<Padded<detail::Component>>& components,
                      VertexId a, VertexId b, const Edge& connecting,
                      std::atomic<std::uint64_t>& total_weight,
                      std::atomic<std::uint64_t>& forest_edges,
                      Ctx& ctx) SMQ_NO_THREAD_SAFETY_ANALYSIS {
  auto& ca = components[a].value.candidates;
  auto& cb = components[b].value.candidates;
  // Survivor = larger candidate list (small-into-large keeps total merge
  // work O(E log V)).
  VertexId survivor = a, absorbed = b;
  if (cb.size() > ca.size()) std::swap(survivor, absorbed);
  auto& cs = components[survivor].value.candidates;
  auto& cx = components[absorbed].value.candidates;
  cs.insert(cs.end(), cx.begin(), cx.end());
  cx.clear();
  cx.shrink_to_fit();
  uf.link(absorbed, survivor);

  total_weight.fetch_add(connecting.weight, std::memory_order_relaxed);
  forest_edges.fetch_add(1, std::memory_order_relaxed);
  ctx.push(Task{cs.size(), survivor});
}

/// Exact sequential Kruskal: MST oracle for tests and the reference task
/// count (= number of merges = V - #components) for work increase.
struct SequentialMstResult {
  std::uint64_t total_weight = 0;
  std::uint64_t edges_in_forest = 0;
};

SequentialMstResult sequential_kruskal(const Graph& graph);

}  // namespace smq
