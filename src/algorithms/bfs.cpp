#include "algorithms/bfs.h"

#include <deque>

namespace smq {

SequentialBfsResult sequential_bfs(const Graph& graph, VertexId source) {
  SequentialBfsResult result;
  result.levels.assign(graph.num_vertices(), DistanceArray::kUnreached);
  result.levels[source] = 0;
  std::deque<VertexId> frontier{source};
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    ++result.visited;
    for (const Graph::Neighbor& n : graph.neighbors(v)) {
      if (result.levels[n.to] == DistanceArray::kUnreached) {
        result.levels[n.to] = result.levels[v] + 1;
        frontier.push_back(n.to);
      }
    }
  }
  return result;
}

}  // namespace smq
