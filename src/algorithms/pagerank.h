// Residual-priority PageRank — the paper's future-work direction
// ("other applications, such as iterative machine learning algorithms
// e.g. [2]", Section 6), in the style of relaxed-scheduling residual
// iteration: each task carries a vertex whose accumulated residual is
// pushed to its out-neighbours; task priority is the (quantized,
// inverted) residual magnitude so that high-residual vertices are
// processed first. Priority order only affects convergence *speed*, so
// this workload shows the wasted-work/rank story on a non-graph-search
// algorithm: bad schedulers re-process low-residual vertices.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"

namespace smq {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-4;  // residual threshold for (re)scheduling
};

struct PageRankResult {
  std::vector<double> ranks;
  RunResult run;
};

namespace detail {

/// Quantized priority: larger residual => smaller priority value (more
/// urgent). log2-bucketized so priorities are stable integers.
inline std::uint64_t residual_priority(double residual) noexcept {
  if (residual <= 0) return Task::kInfinity;
  // residual in (0, ~1]; -log2(residual) in [0, ~60).
  const double bucket = -std::log2(residual);
  return bucket <= 0 ? 0 : static_cast<std::uint64_t>(bucket * 4.0);
}

/// Atomic double accumulator (CAS add), standard for residual PR.
class AtomicDoubleArray {
 public:
  explicit AtomicDoubleArray(std::size_t n)
      : bits_(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      bits_[i].store(0, std::memory_order_relaxed);
    }
  }

  double load(std::size_t i) const noexcept {
    return from_bits(bits_[i].load(std::memory_order_relaxed));
  }

  void store(std::size_t i, double v) noexcept {
    bits_[i].store(to_bits(v), std::memory_order_relaxed);
  }

  double fetch_add(std::size_t i, double delta) noexcept {
    std::uint64_t observed = bits_[i].load(std::memory_order_relaxed);
    while (true) {
      const double current = from_bits(observed);
      if (bits_[i].compare_exchange_weak(observed, to_bits(current + delta),
                                         std::memory_order_relaxed)) {
        return current;
      }
    }
  }

  /// Swap the stored value with zero; returns the previous value.
  double exchange_zero(std::size_t i) noexcept {
    return from_bits(bits_[i].exchange(0, std::memory_order_relaxed));
  }

 private:
  static std::uint64_t to_bits(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double from_bits(std::uint64_t bits) noexcept {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> bits_;
};

}  // namespace detail

/// Push-based residual PageRank over any priority scheduler. Terminates
/// when every vertex's residual falls below opts.tolerance.
template <PriorityScheduler S>
PageRankResult parallel_pagerank(const Graph& graph, S& sched,
                                 unsigned num_threads,
                                 PageRankOptions opts = {},
                                 const ExecutorOptions& exec = {}) {
  const std::size_t n = graph.num_vertices();
  detail::AtomicDoubleArray rank(n);
  detail::AtomicDoubleArray residual(n);

  const double base = 1.0 - opts.damping;
  std::vector<Task> seeds;
  seeds.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    rank.store(v, 0.0);
    residual.store(v, base);
    seeds.push_back(Task{detail::residual_priority(base), v});
  }

  RunResult run = run_parallel(
      sched, std::span<const Task>(seeds),
      [&](Task task, auto& ctx) {
        const auto v = static_cast<std::size_t>(task.payload);
        const double r = residual.exchange_zero(v);
        if (r < opts.tolerance) {
          // Residual already harvested by an earlier (duplicate) task.
          if (r > 0) residual.fetch_add(v, r);  // put tiny residue back
          ctx.mark_wasted();
          return;
        }
        rank.fetch_add(v, r);
        const auto degree = static_cast<double>(graph.out_degree(v));
        if (degree == 0) return;
        const double share = opts.damping * r / degree;
        for (const Graph::Neighbor& e : graph.neighbors(static_cast<VertexId>(v))) {
          const double before = residual.fetch_add(e.to, share);
          const double after = before + share;
          // Schedule the neighbour when its residual first crosses the
          // tolerance (crossing exactly once avoids task explosion).
          if (before < opts.tolerance && after >= opts.tolerance) {
            ctx.push(Task{detail::residual_priority(after), e.to});
          }
        }
      },
      num_threads, exec);

  PageRankResult result;
  result.ranks.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    result.ranks[v] = rank.load(v) + residual.load(v);
  }
  result.run = run;
  return result;
}

/// Exact sequential power iteration (oracle).
struct SequentialPageRankResult {
  std::vector<double> ranks;
  unsigned iterations = 0;
};

SequentialPageRankResult sequential_pagerank(const Graph& graph,
                                             PageRankOptions opts = {},
                                             unsigned max_iterations = 200);

}  // namespace smq
