// A* point-to-point shortest path (paper Section 5).
//
// Priority = g(v) + h(v) where h is the equirectangular-approximation
// distance to the destination, scaled by the road generator's
// weight-per-unit-distance so that h never overestimates (admissible).
// With relaxed schedulers the search runs to quiescence: tasks whose
// f-value cannot beat the best known destination distance are pruned as
// wasted work, so scheduler rank quality directly controls how much of
// the search frontier is explored beyond the optimum.
#pragma once

#include <cmath>
#include <span>

#include "algorithms/relax.h"
#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"

namespace smq {

/// Admissible heuristic: scaled planar distance to `target`.
class EquirectangularHeuristic {
 public:
  EquirectangularHeuristic(const Graph& graph, VertexId target,
                           double weight_scale)
      : coords_(&graph.coordinates()),
        target_(target),
        scale_(weight_scale) {}

  std::uint64_t operator()(VertexId v) const noexcept {
    if (coords_->empty()) return 0;  // degrades to Dijkstra
    const double dx = coords_->x[v] - coords_->x[target_];
    const double dy = coords_->y[v] - coords_->y[target_];
    return static_cast<std::uint64_t>(std::sqrt(dx * dx + dy * dy) * scale_);
  }

 private:
  const Coordinates* coords_;
  VertexId target_;
  double scale_;
};

struct AStarResult {
  std::uint64_t distance = DistanceArray::kUnreached;
  RunResult run;
};

template <PriorityScheduler S>
AStarResult parallel_astar(const Graph& graph, VertexId source,
                           VertexId target, S& sched, unsigned num_threads,
                           double weight_scale = 100.0,
                           const ExecutorOptions& exec = {}) {
  const EquirectangularHeuristic h(graph, target, weight_scale);
  DistanceArray g_val(graph.num_vertices());
  g_val.store(source, 0);
  std::atomic<std::uint64_t> best_target{DistanceArray::kUnreached};

  const Task seed{h(source), source};
  RunResult run = run_parallel(
      sched, std::span<const Task>(&seed, 1),
      [&](Task task, auto& ctx) {
        const auto v = static_cast<VertexId>(task.payload);
        // Recover g from f: h(v) is deterministic per vertex.
        const std::uint64_t f = task.priority;
        const std::uint64_t g = f - h(v);
        if (g_val.load(v) < g ||
            f >= best_target.load(std::memory_order_relaxed)) {
          ctx.mark_wasted();
          return;
        }
        for (const Graph::Neighbor& n : graph.neighbors(v)) {
          const std::uint64_t ng = g + n.weight;
          if (!g_val.relax_min(n.to, ng)) continue;
          if (n.to == target) {
            // CAS-min the incumbent; no push needed for the target.
            std::uint64_t cur = best_target.load(std::memory_order_relaxed);
            while (ng < cur &&
                   !best_target.compare_exchange_weak(
                       cur, ng, std::memory_order_relaxed)) {
            }
            continue;
          }
          const std::uint64_t nf = ng + h(n.to);
          if (nf < best_target.load(std::memory_order_relaxed)) {
            ctx.push(Task{nf, n.to});
          }
        }
      },
      num_threads, exec);

  return AStarResult{best_target.load(std::memory_order_relaxed), run};
}

/// Exact sequential A*: oracle + reference task count (expanded nodes).
struct SequentialAStarResult {
  std::uint64_t distance = DistanceArray::kUnreached;
  std::uint64_t expanded = 0;
};

SequentialAStarResult sequential_astar(const Graph& graph, VertexId source,
                                       VertexId target,
                                       double weight_scale = 100.0);

}  // namespace smq
