// Breadth-first search as a priority workload (paper Section 5).
//
// "The classic traversal algorithm, where the weight of each edge is 1":
// BFS is SSSP over unit weights, with task priority = level. On
// low-diameter social graphs priorities are nearly flat, which is the
// regime where the paper reports throughput (OBIM/PMOD) beating rank
// quality (SMQ) — reproducing that crossover needs this exact workload.
#pragma once

#include <span>

#include "algorithms/relax.h"
#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"

namespace smq {

template <PriorityScheduler S>
ShortestPathResult parallel_bfs(const Graph& graph, VertexId source, S& sched,
                                unsigned num_threads,
                                const ExecutorOptions& exec = {}) {
  DistanceArray level(graph.num_vertices());
  level.store(source, 0);
  const Task seed{0, source};

  RunResult run = run_parallel(
      sched, std::span<const Task>(&seed, 1),
      [&](Task task, auto& ctx) {
        const auto v = static_cast<VertexId>(task.payload);
        const std::uint64_t d = task.priority;
        if (level.load(v) < d) {
          ctx.mark_wasted();
          return;
        }
        for (const Graph::Neighbor& n : graph.neighbors(v)) {
          if (level.relax_min(n.to, d + 1)) ctx.push(Task{d + 1, n.to});
        }
      },
      num_threads, exec);

  return ShortestPathResult{level.snapshot(), run};
}

/// Exact sequential BFS: oracle + reference task count.
struct SequentialBfsResult {
  std::vector<std::uint64_t> levels;
  std::uint64_t visited = 0;
};

SequentialBfsResult sequential_bfs(const Graph& graph, VertexId source);

}  // namespace smq
