// Concurrent union-find for parallel Boruvka.
//
// find() is wait-free for readers (path halving with relaxed CAS — the
// structure only ever contracts, so stale reads are harmless and retried
// by the caller's validation). link() is performed by Boruvka while
// holding both component locks, so the parent store needs no CAS loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "graph/graph.h"

namespace smq {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n)
      : size_(n), parent_(std::make_unique<std::atomic<VertexId>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i].store(static_cast<VertexId>(i), std::memory_order_relaxed);
    }
  }

  VertexId find(VertexId v) const noexcept {
    while (true) {
      VertexId parent = parent_[v].load(std::memory_order_relaxed);
      if (parent == v) return v;
      const VertexId grand = parent_[parent].load(std::memory_order_relaxed);
      if (grand != parent) {
        // Path halving; losing the CAS only means someone else compressed.
        VertexId expected = parent;
        parent_[v].compare_exchange_weak(expected, grand,
                                         std::memory_order_relaxed);
      }
      v = parent;
    }
  }

  /// Make `child` point at `root`. Caller must hold locks making both
  /// current roots stable (Boruvka locks both components).
  void link(VertexId child, VertexId root) noexcept {
    parent_[child].store(root, std::memory_order_release);
  }

  bool same_component(VertexId a, VertexId b) const noexcept {
    // Best-effort under concurrency; exact when the caller has both locked.
    return find(a) == find(b);
  }

  std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_;
  std::unique_ptr<std::atomic<VertexId>[]> parent_;
};

}  // namespace smq
