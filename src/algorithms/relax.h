// Shared label-correcting machinery for SSSP / BFS / A*.
//
// All three workloads are "relax a vertex, CAS-min a distance, push the
// successors" loops over a relaxed priority scheduler; only the task
// priority and the edge cost differ. A task is *wasted* (the paper's
// metric) if by the time it is popped its vertex already has a better
// distance — exactly the out-of-order processing cost the paper
// attributes to rank relaxation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/task.h"

namespace smq {

/// Atomic distance array with CAS-min updates.
class DistanceArray {
 public:
  explicit DistanceArray(std::size_t n)
      : size_(n), dist_(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      dist_[i].store(kUnreached, std::memory_order_relaxed);
    }
  }

  static constexpr std::uint64_t kUnreached = Task::kInfinity;

  std::uint64_t load(VertexId v) const noexcept {
    return dist_[v].load(std::memory_order_relaxed);
  }

  void store(VertexId v, std::uint64_t d) noexcept {
    dist_[v].store(d, std::memory_order_relaxed);
  }

  /// Lower dist[v] to `d` if it improves; returns true when we won.
  bool relax_min(VertexId v, std::uint64_t d) noexcept {
    std::uint64_t current = dist_[v].load(std::memory_order_relaxed);
    while (d < current) {
      if (dist_[v].compare_exchange_weak(current, d,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  std::size_t size() const noexcept { return size_; }

  std::vector<std::uint64_t> snapshot() const {
    std::vector<std::uint64_t> out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = load(static_cast<VertexId>(i));
    return out;
  }

 private:
  std::size_t size_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> dist_;
};

struct ShortestPathResult {
  std::vector<std::uint64_t> distances;  // kUnreached if not reachable
  RunResult run;
};

}  // namespace smq
