// Single-source shortest paths over a relaxed priority scheduler.
//
// The asynchronous label-correcting formulation the paper benchmarks
// (Galois' delta-stepping collapses to this when the scheduler itself
// provides the priority order): task = (tentative distance, vertex);
// processing re-checks the distance (stale => wasted work), then relaxes
// all out-edges with CAS-min and pushes improved neighbours.
#pragma once

#include <span>

#include "algorithms/relax.h"
#include "graph/graph.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"

namespace smq {

/// Priority mapping for SSSP: the tentative distance itself. OBIM/PMOD
/// group it by their delta internally.
template <PriorityScheduler S>
ShortestPathResult parallel_sssp(const Graph& graph, VertexId source,
                                 S& sched, unsigned num_threads,
                                 const ExecutorOptions& exec = {}) {
  DistanceArray dist(graph.num_vertices());
  dist.store(source, 0);
  const Task seed{0, source};

  RunResult run = run_parallel(
      sched, std::span<const Task>(&seed, 1),
      [&](Task task, auto& ctx) {
        const auto v = static_cast<VertexId>(task.payload);
        const std::uint64_t d = task.priority;
        if (dist.load(v) < d) {
          ctx.mark_wasted();
          return;
        }
        for (const Graph::Neighbor& n : graph.neighbors(v)) {
          const std::uint64_t nd = d + n.weight;
          if (dist.relax_min(n.to, nd)) ctx.push(Task{nd, n.to});
        }
      },
      num_threads, exec);

  return ShortestPathResult{dist.snapshot(), run};
}

/// Exact sequential Dijkstra: correctness oracle and the source of the
/// reference task count for the work-increase metric (settles each
/// reachable vertex exactly once).
struct SequentialSsspResult {
  std::vector<std::uint64_t> distances;
  std::uint64_t settled = 0;  // reference task count
};

SequentialSsspResult sequential_sssp(const Graph& graph, VertexId source);

}  // namespace smq
