#include "algorithms/sssp.h"

#include "queues/d_ary_heap.h"

namespace smq {

SequentialSsspResult sequential_sssp(const Graph& graph, VertexId source) {
  SequentialSsspResult result;
  result.distances.assign(graph.num_vertices(), DistanceArray::kUnreached);
  result.distances[source] = 0;

  DAryHeap<Task, 4> heap;
  heap.push(Task{0, source});
  while (!heap.empty()) {
    const Task task = heap.pop();
    const auto v = static_cast<VertexId>(task.payload);
    if (result.distances[v] < task.priority) continue;  // stale entry
    ++result.settled;
    for (const Graph::Neighbor& n : graph.neighbors(v)) {
      const std::uint64_t nd = task.priority + n.weight;
      if (nd < result.distances[n.to]) {
        result.distances[n.to] = nd;
        heap.push(Task{nd, n.to});
      }
    }
  }
  return result;
}

}  // namespace smq
