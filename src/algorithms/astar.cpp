#include "algorithms/astar.h"

#include "queues/d_ary_heap.h"

namespace smq {

SequentialAStarResult sequential_astar(const Graph& graph, VertexId source,
                                       VertexId target, double weight_scale) {
  const EquirectangularHeuristic h(graph, target, weight_scale);
  SequentialAStarResult result;
  std::vector<std::uint64_t> g_val(graph.num_vertices(),
                                   DistanceArray::kUnreached);
  g_val[source] = 0;

  DAryHeap<Task, 4> open;
  open.push(Task{h(source), source});
  while (!open.empty()) {
    const Task task = open.pop();
    const auto v = static_cast<VertexId>(task.payload);
    const std::uint64_t g = task.priority - h(v);
    if (g_val[v] < g) continue;  // stale
    if (v == target) {
      result.distance = g;
      return result;
    }
    ++result.expanded;
    for (const Graph::Neighbor& n : graph.neighbors(v)) {
      const std::uint64_t ng = g + n.weight;
      if (ng < g_val[n.to]) {
        g_val[n.to] = ng;
        open.push(Task{ng + h(n.to), n.to});
      }
    }
  }
  return result;  // unreachable
}

}  // namespace smq
