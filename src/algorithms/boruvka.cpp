#include "algorithms/boruvka.h"

#include <algorithm>
#include <numeric>

namespace smq {

namespace {

/// Plain sequential union-find with path compression for Kruskal.
class SeqUnionFind {
 public:
  explicit SeqUnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  bool unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

SequentialMstResult sequential_kruskal(const Graph& graph) {
  std::vector<Edge> edges = graph.to_edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.weight < b.weight;
  });
  SeqUnionFind uf(graph.num_vertices());
  SequentialMstResult result;
  for (const Edge& e : edges) {
    if (e.from == e.to) continue;
    if (uf.unite(e.from, e.to)) {
      result.total_weight += e.weight;
      ++result.edges_in_forest;
    }
  }
  return result;
}

}  // namespace smq
