// Human-readable enumeration of the three registries, shared by
// `smq_run --list` and the quickstart example.
#pragma once

#include <ostream>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/scheduler_registry.h"

namespace smq {

inline void print_tunables(std::ostream& os, const std::vector<Tunable>& ts) {
  for (const Tunable& t : ts) {
    os << "      --" << t.name;
    if (!t.default_value.empty()) os << " (default " << t.default_value << ")";
    os << ": " << t.description << "\n";
  }
}

inline void print_registry_listing(std::ostream& os) {
  os << "schedulers:\n";
  // The pseudo-scheduler first: not a registry entry (it resolves to
  // one), but it is a valid --sched value and must be discoverable.
  os << "  auto - pick the preset the tuning metrics table measured best "
        "for this\n         (graph class, algorithm, threads) — see smq_tune "
        "and data/tuning/\n";
  for (const SchedulerEntry& e : SchedulerRegistry::instance().entries()) {
    os << "  " << e.name;
    if (e.max_threads == 1) os << " [single-threaded]";
    os << " - " << e.description << "\n";
    print_tunables(os, e.tunables);
  }
  os << "\nalgorithms:\n";
  for (const AlgorithmEntry& e : AlgorithmRegistry::instance().entries()) {
    os << "  " << e.name << " - " << e.description << "\n";
    print_tunables(os, e.tunables);
  }
  os << "\ngraph sources:\n";
  for (const GraphSourceEntry& e : GraphRegistry::instance().entries()) {
    os << "  " << e.name << " - " << e.description << "\n";
    print_tunables(os, e.tunables);
  }
}

}  // namespace smq
