#include "registry/service_factory.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "registry/any_scheduler.h"
#include "registry/scheduler_registry.h"
#include "service/scheduler_service.h"

namespace smq {

unsigned service_effective_threads(std::string_view sched_name,
                                   unsigned requested) {
  const SchedulerEntry* entry =
      SchedulerRegistry::instance().find(sched_name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown scheduler: " +
                                std::string(sched_name));
  }
  return effective_threads(*entry, requested);
}

std::unique_ptr<QueryService> make_service(std::string_view sched_name,
                                           unsigned threads,
                                           const ParamMap& params,
                                           const GraphInstance& graph,
                                           ServiceOptions opts) {
  const unsigned workers = service_effective_threads(sched_name, threads);
  opts.weight_scale = graph.weight_scale;
  AnyScheduler sched =
      SchedulerRegistry::instance().create(sched_name, workers, params);
  return std::make_unique<SchedulerService<AnyScheduler>>(
      graph.graph, workers, opts, std::move(sched));
}

}  // namespace smq
