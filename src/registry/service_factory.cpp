#include "registry/service_factory.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "registry/any_scheduler.h"
#include "registry/scheduler_registry.h"
#include "service/scheduler_service.h"

namespace smq {

std::string_view service_auto_algorithm(const GraphInstance& graph) {
  return graph.graph != nullptr && !graph.graph->coordinates().empty()
             ? "astar"
             : "sssp";
}

unsigned service_effective_threads(std::string_view sched_name,
                                   unsigned requested) {
  if (sched_name == tuning::kAutoSchedulerName) {
    return requested == 0 ? 1 : requested;
  }
  const SchedulerEntry* entry =
      SchedulerRegistry::instance().find(sched_name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown scheduler: " +
                                std::string(sched_name));
  }
  return effective_threads(*entry, requested);
}

std::unique_ptr<QueryService> make_service(std::string_view sched_name,
                                           unsigned threads,
                                           const ParamMap& params,
                                           const GraphInstance& graph,
                                           ServiceOptions opts,
                                           tuning::AutoSelection* selection) {
  std::string resolved(sched_name);
  if (sched_name == tuning::kAutoSchedulerName) {
    tuning::AutoSelection sel = tuning::select_scheduler(
        graph, service_auto_algorithm(graph), threads == 0 ? 1 : threads,
        params.get("tuning-table", ""));
    resolved = sel.preset;
    if (selection != nullptr) *selection = std::move(sel);
  }
  const unsigned workers = service_effective_threads(resolved, threads);
  opts.weight_scale = graph.weight_scale;
  AnyScheduler sched =
      SchedulerRegistry::instance().create(resolved, workers, params);
  return std::make_unique<SchedulerService<AnyScheduler>>(
      graph.graph, workers, opts, std::move(sched));
}

}  // namespace smq
