// String-keyed graph-source registry: synthetic generators (road, rmat,
// rand, grid, path) plus file loaders (DIMACS .gr/.co text, binary CSR
// cache). A source turns a ParamMap into a GraphInstance — the graph
// itself plus the defaults an algorithm needs (source/target vertices,
// the A* heuristic scale).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "registry/params.h"
#include "registry/registry.h"

namespace smq {

struct GraphInstance {
  std::shared_ptr<const Graph> graph;
  std::string name;            // resolved, e.g. "road(vertices=40000)"
  VertexId default_source = 0;
  VertexId default_target = 0;  // A*: defaults to the last vertex
  double weight_scale = 100.0;  // A* heuristic scale (road generator's)
};

struct GraphSourceEntry {
  std::string name;         // registry key, e.g. "road"
  std::string description;  // one-liner for --list
  std::vector<Tunable> tunables;
  std::function<GraphInstance(const ParamMap&)> make;
  // File sources accept the "name:ARG" shorthand (e.g. --graph
  // dimacs:data/dimacs/sample.gr): the text after the first ':' binds to
  // this tunable. Empty = no shorthand.
  std::string inline_param = {};
};

class GraphRegistry : public NamedRegistry<GraphSourceEntry> {
 public:
  static GraphRegistry& instance();

  /// Build the graph named by `name`. File sources also accept the
  /// inline form "name:PATH" ("dimacs:usa.gr" == "dimacs --file
  /// usa.gr"). Throws std::invalid_argument on an unknown source; file
  /// sources throw std::runtime_error on bad input.
  GraphInstance create(std::string_view name, const ParamMap& params = {}) const;

  /// Like create(), but consult/populate a binary CSR cache under
  /// `cache_dir` (created if missing), keyed by a hash of (source name,
  /// binary format version, the entry's tunables as resolved from
  /// `params`). Repeated sweeps over the same graph spec skip
  /// generation/parsing entirely, and cache hits are memory-mapped
  /// (page-in, not parse — the difference between seconds and minutes
  /// on the 58M-arc USA graph); the "binary" source itself is never
  /// re-cached. Cached instances carry the source defaults for
  /// source/target metadata and honour a weight-scale tunable when the
  /// source declares one. An unreadable or stale cache file (including
  /// any v1 entry, whose key no longer matches) falls back to
  /// regeneration and is overwritten in the current format.
  GraphInstance create_cached(std::string_view name, const ParamMap& params,
                              const std::string& cache_dir) const;
};

}  // namespace smq
