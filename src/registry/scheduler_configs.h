// Concrete scheduler configuration builders: ParamMap -> config struct.
//
// Split out of the registry factories so that the two dispatch paths
// share one source of truth for tunables parsing: the scheduler registry
// wraps the result in AnyScheduler, while the static dispatch table
// (static_dispatch.h) instantiates the concrete scheduler types directly.
// Each builder also hands back the simulated-NUMA Topology (when
// requested) as a shared_ptr the caller must keep alive for the
// scheduler's lifetime — the configs hold a raw pointer into it.
#pragma once

#include <memory>
#include <vector>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "registry/params.h"
#include "sched/topology.h"

namespace smq {

/// NUMA options accepted in three spellings: "--numa 2" (node count),
/// "--numa nodes=2,k=8", "--numa k=8" (implies 2 nodes), plus the
/// separate "--numa-k 8". Simulated topology, see sched/topology.h.
struct NumaOptions {
  unsigned nodes = 0;
  double k = 1.0;
};

NumaOptions parse_numa(const ParamMap& params, unsigned threads,
                       double default_k);

/// Build the simulated topology when requested; the caller ties its
/// lifetime to the scheduler (configs hold a raw pointer into it).
std::shared_ptr<Topology> make_topology(const NumaOptions& numa,
                                        unsigned threads);

const std::vector<Tunable>& numa_tunables();

/// Parse "--reclaim {none,epoch}" into a scheduler's cfg.reclaim flag.
/// Shared by every scheduler that owns an EpochManager so the spelling
/// (and the error message) is uniform. Throws std::invalid_argument on
/// any other value.
bool parse_reclaim(const ParamMap& params);

/// The registry row for the shared "--reclaim" knob.
const Tunable& reclaim_tunable();

// Each builder fills `topology` (possibly with nullptr) with the object
// its returned config points into.
SmqConfig make_smq_config(unsigned threads, const ParamMap& params,
                          std::shared_ptr<Topology>& topology);
ClassicMqConfig make_classic_mq_config(unsigned threads, const ParamMap& params,
                                       std::shared_ptr<Topology>& topology);
OptimizedMqConfig make_optimized_mq_config(unsigned threads,
                                           const ParamMap& params,
                                           std::shared_ptr<Topology>& topology);
ReldConfig make_reld_config(unsigned threads, const ParamMap& params,
                            std::shared_ptr<Topology>& topology);
ObimConfig make_obim_config(unsigned threads, const ParamMap& params,
                            std::shared_ptr<Topology>& topology);
/// Obim config plus the PMOD adaptation knobs.
ObimConfig make_pmod_config(unsigned threads, const ParamMap& params,
                            std::shared_ptr<Topology>& topology);

}  // namespace smq
