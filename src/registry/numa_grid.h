// NUMA sweep grids for the run-driver layer (paper Section 4,
// Tables 16-27).
//
// A grid spec like "nodes=1,2,4:k=1,4,8,16" names the cross product of
// virtual node counts and remote-weight divisors K; the driver runs its
// scheduler x threads sweep once per grid point, rebuilding the
// simulated Topology each time through the ordinary `numa` tunable
// (scheduler_configs.h). The same parser backs `smq_run --numa-grid`
// and the Table 16-27 bench binaries, so "the grid" means one thing
// everywhere.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "registry/params.h"

namespace smq {

/// One point of a NUMA sweep. nodes <= 1 is the UMA row (K then has no
/// effect: no topology is built).
struct NumaGridPoint {
  unsigned nodes = 0;
  double k = 1.0;
  bool k_set = false;  // false => leave K to the scheduler's default

  /// Whether this point asks for a simulated topology at all.
  bool active() const noexcept { return nodes > 1; }

  /// The value of the `numa` tunable selecting this point.
  std::string spec() const;

  /// Compact display form, e.g. "2/8" (nodes/K) or "-" for UMA.
  std::string label() const;
};

/// Parse "nodes=1,2,4:k=1,4,8,16" into the cross product (nodes-major
/// order). Either dimension may be omitted — "k=1,8,64" sweeps K over
/// 2 nodes, "nodes=2,4" sweeps node counts at K=1 (the non-NUMA
/// algorithm; every parsed point pins K explicitly so the recorded
/// analytic E always matches the run). nodes<=1 entries collapse to a
/// single UMA point: K has no effect without a topology, so crossing
/// them with the K dimension would only re-measure identical runs.
/// Throws std::invalid_argument on malformed specs or empty dimensions.
std::vector<NumaGridPoint> parse_numa_grid(std::string_view spec);

/// Rewrite `params`' `numa` tunable to select `point` (erasing any
/// conflicting `numa-k`).
void apply_numa_point(ParamMap& params, const NumaGridPoint& point);

/// The analytic expected internal (same-node) fraction E for this point
/// at `threads` threads — Section 4's metric, 1.0 for UMA points.
double expected_internal_fraction(const NumaGridPoint& point,
                                  unsigned threads);

}  // namespace smq
