// Static-dispatch escape hatch for the hot scheduler keys.
//
// AnyScheduler buys runtime selection at one virtual call per scheduler
// op (or per batch, with the batched loop). For publishing absolute
// numbers the run driver needs a path with *zero* erasure overhead:
// run_static_dispatch() maps the hot registry keys (smq, smq-skiplist,
// mq, mq-opt, obim) to directly instantiated Executor<Concrete> runs —
// the same templated runners (algo_runners.h), the same config parsing
// (scheduler_configs.h), but monomorphized end to end exactly like the
// seed's hand-written benches. Selected via `smq_run --dispatch static`.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/params.h"

namespace smq {

/// How the run driver crosses the scheduler boundary.
enum class DispatchMode {
  kVirtual,  // AnyScheduler, one virtual call per push/pop
  kBatched,  // AnyScheduler, one virtual call per task batch
  kStatic,   // concrete Executor<S> instantiation, no erasure
};

std::optional<DispatchMode> parse_dispatch_mode(std::string_view name);
std::string_view to_string(DispatchMode mode);

/// True when `scheduler` (a SchedulerRegistry key) has a static table
/// entry — directly, or through its preset family (an obim-d4 run
/// dispatches to the obim row with delta-shift pinned).
bool has_static_dispatch(std::string_view scheduler);

/// The config-family keys with static entries, in table order (presets
/// resolving to these families are static-dispatchable too).
std::vector<std::string> static_dispatch_keys();

/// Run `algorithm` under a directly instantiated `scheduler`, validating
/// against `ref` when non-null. Returns nullopt when the scheduler has no
/// static entry or the algorithm name is unknown — callers fall back to
/// the virtual path. `threads` must already be clamped via
/// effective_threads(). Honors the same ParamMap tunables as the
/// registry factories, including `batch-size`.
std::optional<AlgoResult> run_static_dispatch(std::string_view scheduler,
                                              std::string_view algorithm,
                                              const GraphInstance& graph,
                                              unsigned threads,
                                              const ParamMap& params,
                                              const AlgoReference* ref);

}  // namespace smq
