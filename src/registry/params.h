// Shared vocabulary of the registry layer: string-keyed parameter maps
// (parsed from the command line) and tunable descriptors (self-describing
// metadata every registry entry publishes for `smq_run --list`).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smq {

class ArgParser;

/// One configurable knob of a registry entry, for listings and docs.
struct Tunable {
  std::string name;           // CLI key, e.g. "steal-size"
  std::string default_value;  // printed, not enforced
  std::string description;
};

/// Flat string key-value configuration, the lingua franca between the CLI
/// and registry factories. Typed getters parse on demand; factories read
/// only the keys they know, so one map can configure scheduler, algorithm
/// and graph source at once.
class ParamMap {
 public:
  ParamMap() = default;

  void set(std::string key, std::string value) {
    kv_[std::move(key)] = std::move(value);
  }

  void erase(const std::string& key) { kv_.erase(key); }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, std::string fallback = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() || it->second.empty()
               ? fallback
               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() || it->second.empty()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() || it->second.empty()
               ? fallback
               : std::strtod(it->second.c_str(), nullptr);
  }

  /// Probabilities appear both as decimals ("0.125") and as the paper's
  /// fraction notation ("1/8").
  double get_probability(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end() || it->second.empty()) return fallback;
    const std::string& v = it->second;
    if (const auto slash = v.find('/'); slash != std::string::npos) {
      const double num = std::strtod(v.substr(0, slash).c_str(), nullptr);
      const double den = std::strtod(v.substr(slash + 1).c_str(), nullptr);
      return den == 0 ? fallback : num / den;
    }
    return std::strtod(v.c_str(), nullptr);
  }

  const std::map<std::string, std::string>& entries() const { return kv_; }

  /// Lift every "--key value" / "--key=value" option of an already-parsed
  /// command line into a ParamMap (defined in scheduler_registry.cpp to
  /// keep this header light).
  static ParamMap from_args(const ArgParser& args);

 private:
  std::map<std::string, std::string> kv_;
};

/// Literal ParamMap construction, for registration tables and suite
/// definitions: params_of({{"c", "4"}, {"seed", "1"}}).
inline ParamMap params_of(
    std::initializer_list<std::pair<const char*, std::string>> kvs) {
  ParamMap params;
  for (const auto& [key, value] : kvs) params.set(key, value);
  return params;
}

}  // namespace smq
