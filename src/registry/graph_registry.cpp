#include "registry/graph_registry.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "graph/binary_io.h"
#include "graph/dimacs.h"
#include "graph/dimacs_catalog.h"
#include "graph/generators.h"

namespace smq {

namespace {

/// FNV-1a over the resolved tunable values: the cache key must change
/// whenever any parameter that shapes the graph changes, and only then.
std::uint64_t fnv1a(std::uint64_t hash, std::string_view s) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t graph_cache_key(const GraphSourceEntry& entry,
                              const ParamMap& params) {
  std::uint64_t hash = 14695981039346656037ull;
  hash = fnv1a(hash, entry.name);
  // A format bump must invalidate every cache entry: old files would
  // still *read* (v1 compat) but silently keep paying the edge-list
  // rebuild the new format exists to avoid.
  hash = fnv1a(hash, "#fmt=" + std::to_string(kBinaryFormatVersion));
  for (const Tunable& t : entry.tunables) {
    const std::string value = params.get(t.name, t.default_value);
    hash = fnv1a(hash, t.name);
    hash = fnv1a(hash, "=");
    hash = fnv1a(hash, value);
    // File-backed sources (dimacs --file/--coords) must not serve a
    // stale cache entry after the file at the same path changes; fold
    // the file's size and mtime into the key.
    if ((t.name == "file" || t.name == "coords") && !value.empty()) {
      std::error_code ec;
      const auto size = std::filesystem::file_size(value, ec);
      if (!ec) {
        hash = fnv1a(hash, ":");
        hash = fnv1a(hash, std::to_string(size));
      }
      const auto mtime = std::filesystem::last_write_time(value, ec);
      if (!ec) {
        hash = fnv1a(hash, ":");
        hash = fnv1a(hash, std::to_string(mtime.time_since_epoch().count()));
      }
    }
  }
  return hash;
}

GraphInstance wrap(Graph graph, std::string name, double weight_scale = 100.0) {
  GraphInstance inst;
  inst.graph = std::make_shared<Graph>(std::move(graph));
  inst.name = std::move(name);
  inst.default_source = 0;
  inst.default_target =
      inst.graph->num_vertices() == 0 ? 0 : inst.graph->num_vertices() - 1;
  inst.weight_scale = weight_scale;
  return inst;
}

void register_builtins(GraphRegistry& reg) {
  reg.add({
      .name = "road",
      .description = "road-network stand-in: 2D lattice + shortcuts, "
                     "coordinates for A* (models USA/WEST)",
      .tunables = {{"vertices", "40000", "approximate vertex count"},
                   {"seed", "42", "generator seed"},
                   {"shortcut-fraction", "0.05",
                    "extra highway edges relative to |V|"}},
      .make =
          [](const ParamMap& params) {
            const auto n =
                static_cast<VertexId>(params.get_int("vertices", 40000));
            RoadLikeOptions opts;
            opts.seed = params.get_uint("seed", 42);
            opts.shortcut_fraction =
                params.get_double("shortcut-fraction", 0.05);
            return wrap(make_road_like(n, opts),
                        "road(vertices=" + std::to_string(n) + ")",
                        opts.weight_scale);
          },
  });

  reg.add({
      .name = "rmat",
      .description = "RMAT power-law directed graph, uniform weights "
                     "(models TWITTER/WEB)",
      .tunables = {{"scale", "14", "2^scale vertices"},
                   {"edge-factor", "16", "edges per vertex"},
                   {"seed", "42", "generator seed"},
                   {"max-weight", "255", "uniform weights in [0, max]"}},
      .make =
          [](const ParamMap& params) {
            const auto scale =
                static_cast<unsigned>(params.get_int("scale", 14));
            RmatOptions opts;
            opts.seed = params.get_uint("seed", 42);
            opts.edge_factor =
                static_cast<unsigned>(params.get_int("edge-factor", 16));
            opts.max_weight =
                static_cast<Weight>(params.get_int("max-weight", 255));
            return wrap(make_rmat(scale, opts),
                        "rmat(scale=" + std::to_string(scale) + ")");
          },
  });

  reg.add({
      .name = "rand",
      .description = "uniform random directed multigraph (Erdos-Renyi)",
      .tunables = {{"vertices", "10000", "vertex count"},
                   {"edges", "8*vertices", "edge count"},
                   {"seed", "42", "generator seed"}},
      .make =
          [](const ParamMap& params) {
            const auto n =
                static_cast<VertexId>(params.get_int("vertices", 10000));
            const auto m = static_cast<std::size_t>(
                params.get_int("edges", static_cast<std::int64_t>(n) * 8));
            return wrap(make_erdos_renyi(n, m, params.get_uint("seed", 42)),
                        "rand(vertices=" + std::to_string(n) +
                            ",edges=" + std::to_string(m) + ")");
          },
  });

  reg.add({
      .name = "grid",
      .description = "exact 2D lattice (known shortest paths)",
      .tunables = {{"width", "64", "grid width"},
                   {"height", "64", "grid height"},
                   {"unit-weights", "1", "1 = all weights 1, 0 = random"},
                   {"seed", "42", "weight seed"}},
      .make =
          [](const ParamMap& params) {
            const auto w = static_cast<VertexId>(params.get_int("width", 64));
            const auto h = static_cast<VertexId>(params.get_int("height", 64));
            const bool unit = params.get_int("unit-weights", 1) != 0;
            return wrap(make_grid2d(w, h, unit, params.get_uint("seed", 42)),
                        "grid(" + std::to_string(w) + "x" + std::to_string(h) +
                            ")");
          },
  });

  reg.add({
      .name = "path",
      .description = "path graph (worst-case diameter)",
      .tunables = {{"vertices", "1000", "vertex count"},
                   {"weight", "1", "uniform edge weight"}},
      .make =
          [](const ParamMap& params) {
            const auto n =
                static_cast<VertexId>(params.get_int("vertices", 1000));
            const auto w = static_cast<Weight>(params.get_int("weight", 1));
            return wrap(make_path(n, w),
                        "path(vertices=" + std::to_string(n) + ")");
          },
  });

  reg.add({
      .name = "dimacs",
      .description = "DIMACS .gr file (9th-challenge format), optional "
                     ".co coordinates",
      .tunables = {{"file", "", "path to the .gr file (required)"},
                   {"coords", "", "path to the matching .co file"}},
      .make =
          [](const ParamMap& params) {
            const std::string path = params.get("file");
            if (path.empty()) {
              throw std::invalid_argument(
                  "graph source 'dimacs' requires --file <path.gr>");
            }
            Graph graph = load_dimacs_gr(path);
            const std::string coords = params.get("coords");
            if (!coords.empty()) load_dimacs_co(coords, graph);
            return wrap(std::move(graph), "dimacs(" + path + ")");
          },
      .inline_param = "file",
  });

  reg.add({
      .name = "binary",
      .description = "binary CSR graph cache (see graph/binary_io.h)",
      .tunables = {{"file", "", "path to the cached graph (required)"}},
      .make =
          [](const ParamMap& params) {
            const std::string path = params.get("file");
            if (path.empty()) {
              throw std::invalid_argument(
                  "graph source 'binary' requires --file <path>");
            }
            return wrap(load_binary_graph_mmap(path), "binary(" + path + ")");
          },
      .inline_param = "file",
  });

  // Named 9th-DIMACS road networks (--graph usa/ctr/west/east/ny):
  // resolved against the fetch tool's cache directory, validated
  // against the catalog's pinned Table 1 sizes on load.
  for (const DimacsGraphInfo& info : dimacs_catalog()) {
    reg.add({
        .name = info.key,
        .description =
            std::string("DIMACS road network ") + info.file_stem + " (" +
            info.label + ", fetched by tools/fetch_dimacs.py)",
        .tunables = {{"dir", "",
                      "directory holding the fetched .gr/.co files "
                      "(default $SMQ_GRAPH_DIR or data/dimacs/cache)"},
                     {"weight-scale", "0",
                      "A* heuristic scale; 0 disables the heuristic "
                      "(always admissible)"}},
        .make =
            // The catalog has static storage duration; the pointer is
            // valid for the registry's lifetime.
            [info = &info](const ParamMap& params) {
              std::string dir = params.get("dir");
              if (dir.empty()) dir = default_dimacs_dir();
              const std::string gr = dimacs_gr_path(*info, dir);
              if (!std::filesystem::exists(gr)) {
                throw std::runtime_error(
                    std::string("graph '") + info->key + "': " + gr +
                    " not found; fetch it with `python3 "
                    "tools/fetch_dimacs.py --graphs " +
                    info->key + " --graph-cache " + dir + "`");
              }
              Graph graph = load_dimacs_gr(gr);
              if (graph.num_vertices() != info->vertices ||
                  graph.num_edges() != info->arcs) {
                throw std::runtime_error(
                    std::string("graph '") + info->key + "': " + gr +
                    " has " + std::to_string(graph.num_vertices()) + "/" +
                    std::to_string(graph.num_edges()) +
                    " vertices/arcs, catalog pins " +
                    std::to_string(info->vertices) + "/" +
                    std::to_string(info->arcs) + " (corrupt fetch?)");
              }
              const std::string co = dimacs_co_path(*info, dir);
              if (std::filesystem::exists(co)) load_dimacs_co(co, graph);
              graph.set_description(std::string(info->label) +
                                    " road network (" + info->file_stem + ")");
              return wrap(std::move(graph), std::string(info->key),
                          params.get_double("weight-scale", 0));
            },
    });
  }
}

/// Resolve `name` against the registry, honouring the "source:ARG"
/// inline shorthand of file sources: the suffix after the first ':'
/// lands in the entry's inline_param tunable (an explicit --file wins
/// only if the shorthand is absent — the shorthand *is* the file).
struct ResolvedSource {
  const GraphSourceEntry* entry = nullptr;
  ParamMap params;
};

ResolvedSource resolve_source(const GraphRegistry& reg, std::string_view name,
                              const ParamMap& params) {
  if (const GraphSourceEntry* entry = reg.find(name)) {
    return {entry, params};
  }
  const std::size_t colon = name.find(':');
  if (colon != std::string_view::npos) {
    const GraphSourceEntry* entry = reg.find(name.substr(0, colon));
    if (entry != nullptr && !entry->inline_param.empty()) {
      ResolvedSource resolved{entry, params};
      resolved.params.set(entry->inline_param,
                          std::string(name.substr(colon + 1)));
      return resolved;
    }
  }
  return {};
}

}  // namespace

GraphRegistry& GraphRegistry::instance() {
  static GraphRegistry* reg = [] {
    auto* r = new GraphRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

GraphInstance GraphRegistry::create(std::string_view name,
                                    const ParamMap& params) const {
  const auto [entry, resolved] = resolve_source(*this, name, params);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown graph source: " + std::string(name));
  }
  return entry->make(resolved);
}

GraphInstance GraphRegistry::create_cached(std::string_view name,
                                           const ParamMap& params,
                                           const std::string& cache_dir) const {
  const auto [entry, resolved] = resolve_source(*this, name, params);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown graph source: " + std::string(name));
  }
  // Caching an already-binary file would only copy it.
  if (entry->name == "binary" || cache_dir.empty()) return entry->make(resolved);

  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(graph_cache_key(*entry, resolved)));
  const std::filesystem::path path =
      std::filesystem::path(cache_dir) / (entry->name + "-" + hex + ".smqbin");

  if (std::filesystem::exists(path)) {
    try {
      // The display name is deliberately stable across machines and
      // cache states ("usa(cached)", not the key hash): the perf gate
      // matches baseline rows on the report's graph name.
      GraphInstance inst = wrap(load_binary_graph_mmap(path.string()),
                                entry->name + "(cached)");
      // Sources that expose a weight-scale tunable (the DIMACS road
      // graphs) must keep it on the cached path too, or A* would run an
      // inadmissible heuristic straight from the cache.
      for (const Tunable& t : entry->tunables) {
        if (t.name == "weight-scale") {
          inst.weight_scale =
              resolved.get_double("weight-scale", std::stod(t.default_value));
        }
      }
      return inst;
    } catch (const std::exception&) {
      // Truncated or stale-format file: fall through and regenerate.
    }
  }

  GraphInstance inst = entry->make(resolved);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (!ec) save_binary_graph(path.string(), *inst.graph);
  return inst;
}

}  // namespace smq
