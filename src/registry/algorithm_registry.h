// String-keyed algorithm registry: every parallel workload (sssp, bfs,
// astar, pagerank, boruvka) behind one run signature that takes a
// type-erased AnyScheduler. Each entry also knows how to compute its
// sequential oracle (reference answer + reference task count for the
// paper's work-increase metric) and how to validate a parallel result
// against it, so the run driver and the benches share one validation
// path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "registry/any_scheduler.h"
#include "registry/graph_registry.h"
#include "registry/params.h"
#include "registry/registry.h"
#include "sched/stats.h"

namespace smq {

/// Sequential-oracle data for one (algorithm, graph, params) triple.
/// `oracle` is an algorithm-private payload (e.g. the full distance
/// vector) consumed by the entry's own run() for validation.
struct AlgoReference {
  std::uint64_t reference_tasks = 0;   // work-increase denominator
  std::uint64_t reference_answer = 0;  // display checksum
  double seconds = 0;                  // sequential wall time
  std::shared_ptr<const void> oracle;
};

struct AlgoResult {
  RunResult run;
  std::uint64_t answer = 0;  // checksum / distance / forest weight
  bool validated = false;    // an oracle was supplied and consulted
  bool valid = false;        // result matched the oracle
};

struct AlgorithmEntry {
  std::string name;         // registry key, e.g. "sssp"
  std::string description;  // one-liner for --list
  std::vector<Tunable> tunables;

  /// Compute the sequential oracle (exact answer, reference task count).
  std::function<AlgoReference(const GraphInstance&, const ParamMap&)>
      make_reference;

  /// Run the parallel algorithm under `sched`; validates against `ref`
  /// when non-null.
  std::function<AlgoResult(const GraphInstance&, AnyScheduler& sched,
                           unsigned threads, const ParamMap&,
                           const AlgoReference* ref)>
      run;
};

class AlgorithmRegistry : public NamedRegistry<AlgorithmEntry> {
 public:
  static AlgorithmRegistry& instance();
};

}  // namespace smq
