// Shared machinery of the string-keyed registries: an ordered list of
// entries addressed by their `name` field. Registration order is
// preserved so listings and sweeps are deterministic. Lookup is a
// linear scan — registries hold a dozen entries, and the factories they
// return do all the real work.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smq {

template <typename Entry>
class NamedRegistry {
 public:
  void add(Entry entry) { entries_.push_back(std::move(entry)); }

  const Entry* find(std::string_view name) const {
    for (const Entry& entry : entries_) {
      if (entry.name == name) return &entry;
    }
    return nullptr;
  }

  const std::vector<Entry>& entries() const { return entries_; }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_) out.push_back(entry.name);
    return out;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace smq
