#include "registry/algorithm_registry.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "algorithms/astar.h"
#include "algorithms/bfs.h"
#include "algorithms/boruvka.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "support/timer.h"

namespace smq {

namespace {

std::uint64_t distance_checksum(const std::vector<std::uint64_t>& dist) {
  std::uint64_t checksum = 0;
  for (const std::uint64_t d : dist) {
    if (d != DistanceArray::kUnreached) checksum += d;
  }
  return checksum;
}

VertexId checked_vertex(const GraphInstance& g, const char* what,
                        std::int64_t v) {
  if (v < 0 || static_cast<std::uint64_t>(v) >= g.graph->num_vertices()) {
    throw std::invalid_argument(std::string(what) + " vertex " +
                                std::to_string(v) + " out of range [0, " +
                                std::to_string(g.graph->num_vertices()) + ")");
  }
  return static_cast<VertexId>(v);
}

VertexId source_of(const GraphInstance& g, const ParamMap& params) {
  return checked_vertex(
      g, "source",
      params.get_int("source", static_cast<std::int64_t>(g.default_source)));
}

VertexId target_of(const GraphInstance& g, const ParamMap& params) {
  return checked_vertex(
      g, "target",
      params.get_int("target", static_cast<std::int64_t>(g.default_target)));
}

/// Exact-distance validation shared by sssp and bfs: the oracle payload
/// is the full distance vector.
AlgoResult validate_distances(ShortestPathResult result,
                              const AlgoReference* ref) {
  AlgoResult out;
  out.run = result.run;
  out.answer = distance_checksum(result.distances);
  if (ref != nullptr && ref->oracle != nullptr) {
    const auto& expected =
        *static_cast<const std::vector<std::uint64_t>*>(ref->oracle.get());
    out.validated = true;
    out.valid = result.distances == expected;
  }
  return out;
}

PageRankOptions pagerank_options(const ParamMap& params) {
  PageRankOptions opts;
  opts.damping = params.get_double("damping", 0.85);
  opts.tolerance = params.get_double("tolerance", 1e-4);
  return opts;
}

void register_builtins(AlgorithmRegistry& reg) {
  reg.add({
      .name = "sssp",
      .description = "single-source shortest paths (label-correcting)",
      .tunables = {{"source", "0", "source vertex"}},
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            Timer timer;
            SequentialSsspResult seq =
                sequential_sssp(*g.graph, source_of(g, params));
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.settled;
            ref.reference_answer = distance_checksum(seq.distances);
            ref.oracle = std::make_shared<std::vector<std::uint64_t>>(
                std::move(seq.distances));
            return ref;
          },
      .run =
          [](const GraphInstance& g, AnyScheduler& sched, unsigned threads,
             const ParamMap& params, const AlgoReference* ref) {
            return validate_distances(
                parallel_sssp(*g.graph, source_of(g, params), sched, threads),
                ref);
          },
  });

  reg.add({
      .name = "bfs",
      .description = "breadth-first search (unit-weight SSSP, priority = "
                     "level)",
      .tunables = {{"source", "0", "source vertex"}},
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            Timer timer;
            SequentialBfsResult seq =
                sequential_bfs(*g.graph, source_of(g, params));
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.visited;
            ref.reference_answer = distance_checksum(seq.levels);
            ref.oracle = std::make_shared<std::vector<std::uint64_t>>(
                std::move(seq.levels));
            return ref;
          },
      .run =
          [](const GraphInstance& g, AnyScheduler& sched, unsigned threads,
             const ParamMap& params, const AlgoReference* ref) {
            return validate_distances(
                parallel_bfs(*g.graph, source_of(g, params), sched, threads),
                ref);
          },
  });

  reg.add({
      .name = "astar",
      .description = "point-to-point A* (admissible planar heuristic; "
                     "Dijkstra without coordinates)",
      .tunables = {{"source", "0", "source vertex"},
                   {"target", "V-1", "target vertex"}},
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            Timer timer;
            const SequentialAStarResult seq =
                sequential_astar(*g.graph, source_of(g, params),
                                 target_of(g, params), g.weight_scale);
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.expanded;
            ref.reference_answer = seq.distance;
            ref.oracle = std::make_shared<std::uint64_t>(seq.distance);
            return ref;
          },
      .run =
          [](const GraphInstance& g, AnyScheduler& sched, unsigned threads,
             const ParamMap& params, const AlgoReference* ref) {
            const AStarResult result =
                parallel_astar(*g.graph, source_of(g, params),
                               target_of(g, params), sched, threads,
                               g.weight_scale);
            AlgoResult out;
            out.run = result.run;
            out.answer = result.distance;
            if (ref != nullptr && ref->oracle != nullptr) {
              out.validated = true;
              out.valid = result.distance ==
                          *static_cast<const std::uint64_t*>(ref->oracle.get());
            }
            return out;
          },
  });

  reg.add({
      .name = "pagerank",
      .description = "residual-priority PageRank (priority = quantized "
                     "residual magnitude)",
      .tunables = {{"damping", "0.85", "damping factor"},
                   {"tolerance", "1e-4", "residual scheduling threshold"}},
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            PageRankOptions opts = pagerank_options(params);
            // Tighter oracle so validation slack is dominated by the
            // parallel run's own tolerance, not the oracle's.
            PageRankOptions oracle_opts = opts;
            oracle_opts.tolerance = opts.tolerance / 10;
            Timer timer;
            SequentialPageRankResult seq =
                sequential_pagerank(*g.graph, oracle_opts, 1000);
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks =
                static_cast<std::uint64_t>(seq.iterations) *
                g.graph->num_vertices();
            double sum = 0;
            for (const double r : seq.ranks) sum += r;
            ref.reference_answer = static_cast<std::uint64_t>(sum);
            ref.oracle = std::make_shared<std::vector<double>>(
                std::move(seq.ranks));
            return ref;
          },
      .run =
          [](const GraphInstance& g, AnyScheduler& sched, unsigned threads,
             const ParamMap& params, const AlgoReference* ref) {
            const PageRankOptions opts = pagerank_options(params);
            const PageRankResult result =
                parallel_pagerank(*g.graph, sched, threads, opts);
            AlgoResult out;
            out.run = result.run;
            double sum = 0;
            for (const double r : result.ranks) sum += r;
            out.answer = static_cast<std::uint64_t>(sum);
            if (ref != nullptr && ref->oracle != nullptr) {
              const auto& expected =
                  *static_cast<const std::vector<double>*>(ref->oracle.get());
              // Residuals below `tolerance` stay unpushed, so per-vertex
              // ranks can legitimately differ by a small multiple of it.
              const double eps = std::max(1e-9, opts.tolerance * 100);
              out.validated = true;
              out.valid = result.ranks.size() == expected.size();
              for (std::size_t v = 0; out.valid && v < expected.size(); ++v) {
                out.valid = std::abs(result.ranks[v] - expected[v]) <= eps;
              }
            }
            return out;
          },
  });

  reg.add({
      .name = "boruvka",
      .description = "parallel Boruvka minimum spanning forest "
                     "(priority = component degree)",
      .tunables = {},
      .make_reference =
          [](const GraphInstance& g, const ParamMap&) {
            Timer timer;
            const SequentialMstResult seq = sequential_kruskal(*g.graph);
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.edges_in_forest;
            ref.reference_answer = seq.total_weight;
            ref.oracle = std::make_shared<std::uint64_t>(seq.total_weight);
            return ref;
          },
      .run =
          [](const GraphInstance& g, AnyScheduler& sched, unsigned threads,
             const ParamMap&, const AlgoReference* ref) {
            const MstResult result =
                parallel_boruvka(*g.graph, sched, threads);
            AlgoResult out;
            out.run = result.run;
            out.answer = result.total_weight;
            if (ref != nullptr && ref->oracle != nullptr) {
              out.validated = true;
              out.valid = result.total_weight ==
                          *static_cast<const std::uint64_t*>(ref->oracle.get());
            }
            return out;
          },
  });
}

}  // namespace

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry* reg = [] {
    auto* r = new AlgorithmRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

}  // namespace smq
