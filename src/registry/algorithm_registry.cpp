#include "registry/algorithm_registry.h"

#include <string>
#include <utility>
#include <vector>

#include "registry/algo_runners.h"
#include "support/timer.h"

namespace smq {

namespace {

/// Executor tunables every workload accepts; appended to each entry so
/// `smq_run --list` self-describes the batched hot path.
const std::vector<Tunable> kExecutorTunables = {
    {"batch-size", "1",
     "tasks per executor scheduler call (one dispatch + one pending-counter "
     "update per batch; >1 enables the batched worker loop)"},
};

std::vector<Tunable> with_executor_tunables(std::vector<Tunable> tunables) {
  tunables.insert(tunables.end(), kExecutorTunables.begin(),
                  kExecutorTunables.end());
  return tunables;
}

void register_builtins(AlgorithmRegistry& reg) {
  reg.add({
      .name = "sssp",
      .description = "single-source shortest paths (label-correcting)",
      .tunables = with_executor_tunables({{"source", "0", "source vertex"}}),
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            Timer timer;
            SequentialSsspResult seq =
                sequential_sssp(*g.graph, source_of(g, params));
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.settled;
            ref.reference_answer = distance_checksum(seq.distances);
            ref.oracle = std::make_shared<std::vector<std::uint64_t>>(
                std::move(seq.distances));
            return ref;
          },
      .run = run_sssp_algo<AnyScheduler>,
  });

  reg.add({
      .name = "bfs",
      .description = "breadth-first search (unit-weight SSSP, priority = "
                     "level)",
      .tunables = with_executor_tunables({{"source", "0", "source vertex"}}),
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            Timer timer;
            SequentialBfsResult seq =
                sequential_bfs(*g.graph, source_of(g, params));
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.visited;
            ref.reference_answer = distance_checksum(seq.levels);
            ref.oracle = std::make_shared<std::vector<std::uint64_t>>(
                std::move(seq.levels));
            return ref;
          },
      .run = run_bfs_algo<AnyScheduler>,
  });

  reg.add({
      .name = "astar",
      .description = "point-to-point A* (admissible planar heuristic; "
                     "Dijkstra without coordinates)",
      .tunables =
          with_executor_tunables({{"source", "0", "source vertex"},
                                  {"target", "V-1", "target vertex"}}),
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            Timer timer;
            const SequentialAStarResult seq =
                sequential_astar(*g.graph, source_of(g, params),
                                 target_of(g, params), g.weight_scale);
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.expanded;
            ref.reference_answer = seq.distance;
            ref.oracle = std::make_shared<std::uint64_t>(seq.distance);
            return ref;
          },
      .run = run_astar_algo<AnyScheduler>,
  });

  reg.add({
      .name = "pagerank",
      .description = "residual-priority PageRank (priority = quantized "
                     "residual magnitude)",
      .tunables = with_executor_tunables(
          {{"damping", "0.85", "damping factor"},
           {"tolerance", "1e-4", "residual scheduling threshold"}}),
      .make_reference =
          [](const GraphInstance& g, const ParamMap& params) {
            PageRankOptions opts = pagerank_options(params);
            // Tighter oracle so validation slack is dominated by the
            // parallel run's own tolerance, not the oracle's.
            PageRankOptions oracle_opts = opts;
            oracle_opts.tolerance = opts.tolerance / 10;
            Timer timer;
            SequentialPageRankResult seq =
                sequential_pagerank(*g.graph, oracle_opts, 1000);
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks =
                static_cast<std::uint64_t>(seq.iterations) *
                g.graph->num_vertices();
            double sum = 0;
            for (const double r : seq.ranks) sum += r;
            ref.reference_answer = static_cast<std::uint64_t>(sum);
            ref.oracle = std::make_shared<std::vector<double>>(
                std::move(seq.ranks));
            return ref;
          },
      .run = run_pagerank_algo<AnyScheduler>,
  });

  reg.add({
      .name = "boruvka",
      .description = "parallel Boruvka minimum spanning forest "
                     "(priority = component degree)",
      .tunables = with_executor_tunables({}),
      .make_reference =
          [](const GraphInstance& g, const ParamMap&) {
            Timer timer;
            const SequentialMstResult seq = sequential_kruskal(*g.graph);
            AlgoReference ref;
            ref.seconds = timer.seconds();
            ref.reference_tasks = seq.edges_in_forest;
            ref.reference_answer = seq.total_weight;
            ref.oracle = std::make_shared<std::uint64_t>(seq.total_weight);
            return ref;
          },
      .run = run_boruvka_algo<AnyScheduler>,
  });
}

}  // namespace

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry* reg = [] {
    auto* r = new AlgorithmRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

}  // namespace smq
