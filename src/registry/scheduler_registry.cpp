#include "registry/scheduler_registry.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/sequential_scheduler.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"
#include "registry/adapters.h"
#include "registry/scheduler_configs.h"
#include "sched/topology.h"
#include "support/cli.h"

namespace smq {

ParamMap ParamMap::from_args(const ArgParser& args) {
  ParamMap params;
  for (const auto& [key, value] : args.options()) params.set(key, value);
  return params;
}

ParamMap resolve_preset_params(const ParamMap& params, const ParamMap& defaults,
                               const ParamMap& pinned) {
  ParamMap resolved = params;
  for (const auto& [key, value] : defaults.entries()) {
    if (!resolved.has(key)) resolved.set(key, value);
  }
  for (const auto& [key, value] : pinned.entries()) {
    resolved.set(key, value);
  }
  return resolved;
}

ParamMap resolve_preset_params(const SchedulerEntry& entry,
                               const ParamMap& params) {
  return resolve_preset_params(params, entry.defaults, entry.pinned);
}

namespace {

void append(std::vector<Tunable>& dst, const std::vector<Tunable>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Register `name` as a preset over the already-registered `family`
/// entry: same factory, params resolved through pinned/defaults. The
/// preset inherits the family's tunables minus the pinned keys (those
/// are no longer knobs) with preset defaults substituted in.
void add_preset(SchedulerRegistry& reg, std::string name,
                std::string description, std::string family, ParamMap pinned,
                ParamMap defaults = {}) {
  const SchedulerEntry* base = reg.find(family);
  if (base == nullptr) {
    throw std::logic_error("preset '" + name + "' names unknown family '" +
                           family + "'");
  }
  SchedulerEntry entry;
  entry.name = std::move(name);
  entry.description = std::move(description);
  entry.max_threads = base->max_threads;
  entry.family = std::move(family);
  entry.pinned = std::move(pinned);
  entry.defaults = std::move(defaults);
  for (const Tunable& t : base->tunables) {
    if (entry.pinned.has(t.name)) continue;
    Tunable preset_t = t;
    if (entry.defaults.has(t.name)) {
      preset_t.default_value = entry.defaults.get(t.name);
    }
    entry.tunables.push_back(std::move(preset_t));
  }
  // Capture the overlays by value: the factory must resolve exactly like
  // resolve_preset_params() so virtual and static dispatch agree.
  entry.make = [base_make = base->make, pinned_copy = entry.pinned,
                defaults_copy = entry.defaults](unsigned threads,
                                                const ParamMap& params) {
    return base_make(
        threads, resolve_preset_params(params, defaults_copy, pinned_copy));
  };
  reg.add(std::move(entry));
}

template <typename LocalPQ>
AnyScheduler make_smq(unsigned threads, const ParamMap& params) {
  std::shared_ptr<Topology> topo;
  const SmqConfig cfg = make_smq_config(threads, params, topo);
  auto any = AnyScheduler::make<StealingMultiQueue<LocalPQ>>(threads, cfg);
  if (topo) any.attach(std::move(topo));
  return any;
}

std::vector<Tunable> smq_tunables() {
  std::vector<Tunable> t = {
      {"steal-size", "4", "batch size SIZE_steal"},
      {"p-steal", "1/8", "stealing probability (decimal or fraction)"},
      {"seed", "1", "RNG seed"},
  };
  append(t, numa_tunables());
  return t;
}

void register_builtins(SchedulerRegistry& reg) {
  reg.add({
      .name = "smq",
      .description = "Stealing Multi-Queue, d-ary heap local queues "
                     "(the paper's contribution)",
      .tunables = smq_tunables(),
      .make = make_smq<DAryHeap<Task, 4>>,
  });

  reg.add({
      .name = "smq-skiplist",
      .description = "Stealing Multi-Queue with skip-list local queues "
                     "(Appendix D)",
      .tunables = smq_tunables(),
      .make = make_smq<SequentialSkipList>,
  });

  {
    std::vector<Tunable> t = {
        {"c", "4", "queues per thread (m = C*T)"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "mq",
        .description = "classic Multi-Queue (Rihani et al.; paper Listing 1)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ClassicMqConfig cfg =
                  make_classic_mq_config(threads, params, topo);
              auto any = AnyScheduler::make<ClassicMultiQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  {
    std::vector<Tunable> t = {
        {"c", "4", "queues per thread"},
        {"insert-policy", "batch", "\"batch\" or \"local\" (temporal locality)"},
        {"delete-policy", "batch", "\"batch\" or \"local\""},
        {"insert-batch", "16", "insert buffer size (batch policy)"},
        {"delete-batch", "16", "delete batch size (batch policy)"},
        {"p-insert", "1", "probability of re-sampling the insert queue"},
        {"p-delete", "1", "probability of re-sampling the delete queue"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "mq-opt",
        .description = "optimized Multi-Queue: task batching / temporal "
                       "locality (Section 2.1, Appendix C)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const OptimizedMqConfig cfg =
                  make_optimized_mq_config(threads, params, topo);
              auto any = AnyScheduler::make<OptimizedMultiQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  {
    std::vector<Tunable> t = {
        {"chunk-size", "64", "tasks per chunk"},
        {"delta-shift", "10", "log2(delta): priority bits merged per level"},
    };
    append(t, numa_tunables());
    t.push_back(reclaim_tunable());
    reg.add({
        .name = "obim",
        .description = "Ordered By Integer Metric (Galois; Nguyen et al.)",
        .tunables = t,
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ObimConfig cfg = make_obim_config(threads, params, topo);
              auto any = AnyScheduler::make<Obim>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });

    t.push_back({"adapt-interval", "64", "chunk-pops between delta checks"});
    t.push_back({"split-threshold", "4096",
                 "tasks in the lowest level that force a delta split"});
    reg.add({
        .name = "pmod",
        .description = "OBIM with runtime delta adaptation (Yesil et al.)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ObimConfig cfg = make_pmod_config(threads, params, topo);
              auto any = AnyScheduler::make<Pmod>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  reg.add({
      .name = "spraylist",
      .description = "SprayList relaxed skip-list PQ (Alistarh et al.)",
      .tunables = {{"seed", "1", "RNG seed"},
                   {"height-offset", "1", "spray height = log T + offset"},
                   {"jump-scale", "1", "max jump multiplier"},
                   reclaim_tunable()},
      .make =
          [](unsigned threads, const ParamMap& params) {
            SprayConfig cfg;
            cfg.seed = params.get_uint("seed", 1);
            cfg.height_offset =
                static_cast<int>(params.get_int("height-offset", 1));
            cfg.jump_scale = static_cast<int>(params.get_int("jump-scale", 1));
            cfg.reclaim = parse_reclaim(params);
            return AnyScheduler::make<SprayList>(threads, cfg);
          },
  });

  {
    std::vector<Tunable> t = {
        {"c", "1", "queues per thread"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "reld",
        .description = "Random Enqueue, Local Dequeue (Jeffrey et al.)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ReldConfig cfg = make_reld_config(threads, params, topo);
              auto any = AnyScheduler::make<ReldQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  reg.add({
      .name = "lockfree-skiplist",
      .description = "exact delete-min over the lock-free skip list "
                     "(SprayList without the spray)",
      .tunables = {{"seed", "1", "RNG seed"}, reclaim_tunable()},
      .make =
          [](unsigned threads, const ParamMap& params) {
            GlobalSkipListScheduler::Config cfg;
            cfg.seed = params.get_uint("seed", 1);
            cfg.reclaim = parse_reclaim(params);
            return AnyScheduler::make<GlobalSkipListScheduler>(threads, cfg);
          },
  });

  reg.add({
      .name = "dary-heap",
      .description = "one global spinlocked d-ary heap (strict concurrent "
                     "PQ anchor)",
      .tunables = {},
      .make =
          [](unsigned threads, const ParamMap&) {
            return AnyScheduler::make<GlobalHeapScheduler>(threads);
          },
  });

  reg.add({
      .name = "chunk-bag",
      .description = "single unordered chunk bag (no priorities; "
                     "throughput anchor)",
      .tunables = {{"chunk-size", "64", "tasks per chunk"}, reclaim_tunable()},
      .make =
          [](unsigned threads, const ParamMap& params) {
            ChunkBagScheduler::Config cfg;
            cfg.chunk_size =
                static_cast<std::size_t>(params.get_int("chunk-size", 64));
            cfg.reclaim = parse_reclaim(params);
            return AnyScheduler::make<ChunkBagScheduler>(threads, cfg);
          },
  });

  reg.add({
      .name = "sequential",
      .description = "exact single-thread d-ary heap (speedup baseline)",
      .max_threads = 1,
      .tunables = {},
      .make =
          [](unsigned, const ParamMap&) {
            return AnyScheduler::make<SequentialScheduler>(1u);
          },
  });

  // ---- named sweep presets -------------------------------------------
  //
  // The paper's parameter grids as first-class registry keys, so
  // `--sched`, the NUMA grid and the figure suites (registry/suites.h)
  // can enumerate them like any other scheduler instead of benches
  // hand-rolling the loops. Pinned knobs win over conflicting CLI
  // tunables — that is what makes the key a preset; everything else
  // (c, seed, numa, steal-size, chunk-size, ...) still flows through.

  // mq-tl-p<D>: optimized MQ, temporal locality on insert AND delete
  // with p_change = 1/D (Figures 7-14's stickiness sweep; p = 1
  // reproduces the classic MQ behaviour).
  for (const int denom : {1, 4, 16, 64, 256, 1024}) {
    const std::string p = "1/" + std::to_string(denom);
    add_preset(reg, "mq-tl-p" + std::to_string(denom),
               "preset: mq-opt, temporal locality, p = " + p, "mq-opt",
               params_of({{"insert-policy", "local"},
                          {"delete-policy", "local"},
                          {"p-insert", p},
                          {"p-delete", p}}));
  }

  // reld-c<C>: RELD with C queues per thread (the C-sweep anchor).
  for (const unsigned c : {1u, 2u, 4u, 8u}) {
    add_preset(reg, "reld-c" + std::to_string(c),
               "preset: RELD with " + std::to_string(c) + " queues per thread",
               "reld", params_of({{"c", std::to_string(c)}}));
  }

  // obim-d<S> / pmod-d<S>: the Figures 3-6 delta sweep, delta = 2^S.
  // chunk-size stays tunable (the figures' other axis).
  for (const unsigned shift : {0u, 2u, 4u, 8u, 12u, 16u}) {
    const std::string s = std::to_string(shift);
    add_preset(reg, "obim-d" + s, "preset: OBIM with delta = 2^" + s, "obim",
               params_of({{"delta-shift", s}}));
    add_preset(reg, "pmod-d" + s,
               "preset: PMOD starting from delta = 2^" + s, "pmod",
               params_of({{"delta-shift", s}}));
  }

  // mq-c<C>: the classic-MQ queue-multiplier sweep (Tables 2-3).
  for (const unsigned c : {1u, 2u, 4u, 8u, 16u}) {
    add_preset(reg, "mq-c" + std::to_string(c),
               "preset: classic MQ with C = " + std::to_string(c),
               "mq", params_of({{"c", std::to_string(c)}}));
  }

  // smq-p<D> / smq-sl-p<D>: the SMQ ablation pair (Figure 1 and
  // Figures 19-20), p_steal = 1/D; steal-size stays tunable (the
  // figures' other axis).
  for (const int denom : {2, 4, 8, 16, 32, 64}) {
    const std::string p = "1/" + std::to_string(denom);
    add_preset(reg, "smq-p" + std::to_string(denom),
               "preset: SMQ (heap), p_steal = " + p, "smq",
               params_of({{"p-steal", p}}));
  }
  for (const int denom : {2, 4, 8, 16, 32}) {
    const std::string p = "1/" + std::to_string(denom);
    add_preset(reg, "smq-sl-p" + std::to_string(denom),
               "preset: SMQ (skip list), p_steal = " + p, "smq-skiplist",
               params_of({{"p-steal", p}}));
  }

  // The MQ-Optimized ablation stack (Figures 7-16): which optimization
  // family is on. `none` degenerates to the classic MQ (buffers of 1);
  // `buf` is task batching on both sides (buffer-size sub-sweep via
  // insert-batch/delete-batch); `stick` is temporal locality on both
  // sides (stickiness sub-sweep via p-insert/p-delete); `full` combines
  // the families at the paper's representative settings — insertion
  // batching plus deletion temporal locality.
  add_preset(reg, "mq-opt-none",
             "preset: mq-opt with every optimization off (classic MQ)",
             "mq-opt",
             params_of({{"insert-policy", "batch"},
                        {"delete-policy", "batch"},
                        {"insert-batch", "1"},
                        {"delete-batch", "1"}}));
  add_preset(reg, "mq-opt-buf",
             "preset: mq-opt, task batching on insert and delete", "mq-opt",
             params_of({{"insert-policy", "batch"}, {"delete-policy", "batch"}}),
             params_of({{"insert-batch", "16"}, {"delete-batch", "16"}}));
  add_preset(reg, "mq-opt-stick",
             "preset: mq-opt, temporal locality on insert and delete",
             "mq-opt",
             params_of({{"insert-policy", "local"}, {"delete-policy", "local"}}),
             params_of({{"p-insert", "1/16"}, {"p-delete", "1/16"}}));
  add_preset(reg, "mq-opt-full",
             "preset: mq-opt, insert batching + delete temporal locality",
             "mq-opt",
             params_of({{"insert-policy", "batch"}, {"delete-policy", "local"}}),
             params_of({{"insert-batch", "16"}, {"p-delete", "1/16"}}));
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry* reg = [] {
    auto* r = new SchedulerRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

AnyScheduler SchedulerRegistry::create(std::string_view name, unsigned threads,
                                       const ParamMap& params) const {
  const SchedulerEntry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown scheduler: " + std::string(name));
  }
  return entry->make(effective_threads(*entry, threads), params);
}

}  // namespace smq
