#include "registry/scheduler_registry.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/sequential_scheduler.h"
#include "queues/skiplist.h"
#include "queues/spraylist.h"
#include "registry/adapters.h"
#include "registry/scheduler_configs.h"
#include "sched/topology.h"
#include "support/cli.h"

namespace smq {

ParamMap ParamMap::from_args(const ArgParser& args) {
  ParamMap params;
  for (const auto& [key, value] : args.options()) params.set(key, value);
  return params;
}

namespace {

void append(std::vector<Tunable>& dst, const std::vector<Tunable>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

template <typename LocalPQ>
AnyScheduler make_smq(unsigned threads, const ParamMap& params) {
  std::shared_ptr<Topology> topo;
  const SmqConfig cfg = make_smq_config(threads, params, topo);
  auto any = AnyScheduler::make<StealingMultiQueue<LocalPQ>>(threads, cfg);
  if (topo) any.attach(std::move(topo));
  return any;
}

std::vector<Tunable> smq_tunables() {
  std::vector<Tunable> t = {
      {"steal-size", "4", "batch size SIZE_steal"},
      {"p-steal", "1/8", "stealing probability (decimal or fraction)"},
      {"seed", "1", "RNG seed"},
  };
  append(t, numa_tunables());
  return t;
}

void register_builtins(SchedulerRegistry& reg) {
  reg.add({
      .name = "smq",
      .description = "Stealing Multi-Queue, d-ary heap local queues "
                     "(the paper's contribution)",
      .tunables = smq_tunables(),
      .make = make_smq<DAryHeap<Task, 4>>,
  });

  reg.add({
      .name = "smq-skiplist",
      .description = "Stealing Multi-Queue with skip-list local queues "
                     "(Appendix D)",
      .tunables = smq_tunables(),
      .make = make_smq<SequentialSkipList>,
  });

  {
    std::vector<Tunable> t = {
        {"c", "4", "queues per thread (m = C*T)"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "mq",
        .description = "classic Multi-Queue (Rihani et al.; paper Listing 1)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ClassicMqConfig cfg =
                  make_classic_mq_config(threads, params, topo);
              auto any = AnyScheduler::make<ClassicMultiQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  {
    std::vector<Tunable> t = {
        {"c", "4", "queues per thread"},
        {"insert-policy", "batch", "\"batch\" or \"local\" (temporal locality)"},
        {"delete-policy", "batch", "\"batch\" or \"local\""},
        {"insert-batch", "16", "insert buffer size (batch policy)"},
        {"delete-batch", "16", "delete batch size (batch policy)"},
        {"p-insert", "1", "probability of re-sampling the insert queue"},
        {"p-delete", "1", "probability of re-sampling the delete queue"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "mq-opt",
        .description = "optimized Multi-Queue: task batching / temporal "
                       "locality (Section 2.1, Appendix C)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const OptimizedMqConfig cfg =
                  make_optimized_mq_config(threads, params, topo);
              auto any = AnyScheduler::make<OptimizedMultiQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  {
    std::vector<Tunable> t = {
        {"chunk-size", "64", "tasks per chunk"},
        {"delta-shift", "10", "log2(delta): priority bits merged per level"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "obim",
        .description = "Ordered By Integer Metric (Galois; Nguyen et al.)",
        .tunables = t,
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ObimConfig cfg = make_obim_config(threads, params, topo);
              auto any = AnyScheduler::make<Obim>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });

    t.push_back({"adapt-interval", "64", "chunk-pops between delta checks"});
    t.push_back({"split-threshold", "4096",
                 "tasks in the lowest level that force a delta split"});
    reg.add({
        .name = "pmod",
        .description = "OBIM with runtime delta adaptation (Yesil et al.)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ObimConfig cfg = make_pmod_config(threads, params, topo);
              auto any = AnyScheduler::make<Pmod>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  reg.add({
      .name = "spraylist",
      .description = "SprayList relaxed skip-list PQ (Alistarh et al.)",
      .tunables = {{"seed", "1", "RNG seed"},
                   {"height-offset", "1", "spray height = log T + offset"},
                   {"jump-scale", "1", "max jump multiplier"}},
      .make =
          [](unsigned threads, const ParamMap& params) {
            SprayConfig cfg;
            cfg.seed = params.get_uint("seed", 1);
            cfg.height_offset =
                static_cast<int>(params.get_int("height-offset", 1));
            cfg.jump_scale = static_cast<int>(params.get_int("jump-scale", 1));
            return AnyScheduler::make<SprayList>(threads, cfg);
          },
  });

  {
    std::vector<Tunable> t = {
        {"c", "1", "queues per thread"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "reld",
        .description = "Random Enqueue, Local Dequeue (Jeffrey et al.)",
        .tunables = std::move(t),
        .make =
            [](unsigned threads, const ParamMap& params) {
              std::shared_ptr<Topology> topo;
              const ReldConfig cfg = make_reld_config(threads, params, topo);
              auto any = AnyScheduler::make<ReldQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }

  reg.add({
      .name = "lockfree-skiplist",
      .description = "exact delete-min over the lock-free skip list "
                     "(SprayList without the spray)",
      .tunables = {{"seed", "1", "RNG seed"}},
      .make =
          [](unsigned threads, const ParamMap& params) {
            GlobalSkipListScheduler::Config cfg;
            cfg.seed = params.get_uint("seed", 1);
            return AnyScheduler::make<GlobalSkipListScheduler>(threads, cfg);
          },
  });

  reg.add({
      .name = "dary-heap",
      .description = "one global spinlocked d-ary heap (strict concurrent "
                     "PQ anchor)",
      .tunables = {},
      .make =
          [](unsigned threads, const ParamMap&) {
            return AnyScheduler::make<GlobalHeapScheduler>(threads);
          },
  });

  reg.add({
      .name = "chunk-bag",
      .description = "single unordered chunk bag (no priorities; "
                     "throughput anchor)",
      .tunables = {{"chunk-size", "64", "tasks per chunk"}},
      .make =
          [](unsigned threads, const ParamMap& params) {
            ChunkBagScheduler::Config cfg;
            cfg.chunk_size =
                static_cast<std::size_t>(params.get_int("chunk-size", 64));
            return AnyScheduler::make<ChunkBagScheduler>(threads, cfg);
          },
  });

  reg.add({
      .name = "sequential",
      .description = "exact single-thread d-ary heap (speedup baseline)",
      .max_threads = 1,
      .tunables = {},
      .make =
          [](unsigned, const ParamMap&) {
            return AnyScheduler::make<SequentialScheduler>(1u);
          },
  });

  // ---- named sweep presets -------------------------------------------
  //
  // The paper's remaining parameter grids as first-class registry keys,
  // so `--sched` (and the NUMA grid sweep) can enumerate them like any
  // other scheduler instead of benches hand-rolling the loops:
  //  * mq-tl-p<D>: optimized MQ, temporal locality on insert AND delete
  //    with p_change = 1/D (Figures 7-14's p-sweep; p = 1 reproduces
  //    the classic MQ behaviour);
  //  * reld-c<C>: RELD with C queues per thread (the C-sweep anchor).
  // The pinned knobs win over conflicting CLI tunables — that is what
  // makes the key a preset; everything else (c, seed, numa, ...) still
  // flows through.
  for (const int denom : {1, 4, 16, 64, 256, 1024}) {
    std::vector<Tunable> t = {
        {"c", "4", "queues per thread"},
        {"seed", "1", "RNG seed"},
    };
    append(t, numa_tunables());
    reg.add({
        .name = "mq-tl-p" + std::to_string(denom),
        .description = "preset: mq-opt, temporal locality, p = 1/" +
                       std::to_string(denom),
        .tunables = std::move(t),
        .make =
            [denom](unsigned threads, const ParamMap& params) {
              ParamMap preset = params;
              preset.set("insert-policy", "local");
              preset.set("delete-policy", "local");
              preset.set("p-insert", "1/" + std::to_string(denom));
              preset.set("p-delete", "1/" + std::to_string(denom));
              std::shared_ptr<Topology> topo;
              const OptimizedMqConfig cfg =
                  make_optimized_mq_config(threads, preset, topo);
              auto any = AnyScheduler::make<OptimizedMultiQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }
  for (const unsigned c : {1u, 2u, 4u, 8u}) {
    std::vector<Tunable> t = {{"seed", "1", "RNG seed"}};
    append(t, numa_tunables());
    reg.add({
        .name = "reld-c" + std::to_string(c),
        .description =
            "preset: RELD with " + std::to_string(c) + " queues per thread",
        .tunables = std::move(t),
        .make =
            [c](unsigned threads, const ParamMap& params) {
              ParamMap preset = params;
              preset.set("c", std::to_string(c));
              std::shared_ptr<Topology> topo;
              const ReldConfig cfg = make_reld_config(threads, preset, topo);
              auto any = AnyScheduler::make<ReldQueue>(threads, cfg);
              if (topo) any.attach(std::move(topo));
              return any;
            },
    });
  }
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry* reg = [] {
    auto* r = new SchedulerRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

AnyScheduler SchedulerRegistry::create(std::string_view name, unsigned threads,
                                       const ParamMap& params) const {
  const SchedulerEntry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown scheduler: " + std::string(name));
  }
  return entry->make(effective_threads(*entry, threads), params);
}

}  // namespace smq
