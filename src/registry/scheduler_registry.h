// String-keyed scheduler factory registry.
//
// Every scheduler family in src/queues/ and src/core/ registers itself
// under a stable name ("smq", "obim", ...) with a one-line description,
// its tunables, and a factory that parses a ParamMap into the family's
// config struct and returns a type-erased AnyScheduler. This is the
// single place the scheduler x config matrix lives; the run driver,
// benches, examples and tests all enumerate it instead of hand-listing
// template instantiations.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "registry/any_scheduler.h"
#include "registry/params.h"
#include "registry/registry.h"

namespace smq {

struct SchedulerEntry {
  std::string name;         // registry key, e.g. "smq"
  std::string description;  // one-liner for --list
  unsigned max_threads = 0; // 0 = unlimited; 1 = single-threaded baseline
  std::vector<Tunable> tunables;
  std::function<AnyScheduler(unsigned threads, const ParamMap&)> make;

  // Presets: a preset entry is a config family plus a fixed knob
  // assignment. `family` names the base entry whose factory (and static
  // dispatch row, if any) the preset reuses; empty for base entries.
  // `pinned` knobs always win over caller params (that is what makes the
  // key a preset); `defaults` fill in only when the caller left the key
  // unset. Both the virtual factory and the static-dispatch path resolve
  // params through resolve_preset_params(), so the two cannot drift.
  std::string family = {};
  ParamMap pinned = {};
  ParamMap defaults = {};
};

/// `params` with `defaults` filled in where unset and `pinned` forced.
ParamMap resolve_preset_params(const ParamMap& params, const ParamMap& defaults,
                               const ParamMap& pinned);

/// `params` with the entry's preset defaults filled in and its pinned
/// knobs forced. Identity for base (non-preset) entries.
ParamMap resolve_preset_params(const SchedulerEntry& entry,
                               const ParamMap& params);

class SchedulerRegistry : public NamedRegistry<SchedulerEntry> {
 public:
  /// The process-wide registry, with all built-in schedulers registered
  /// on first use.
  static SchedulerRegistry& instance();

  /// Build `name` for `threads` threads (clamped to the entry's
  /// max_threads). Throws std::invalid_argument on an unknown name.
  AnyScheduler create(std::string_view name, unsigned threads,
                      const ParamMap& params = {}) const;
};

/// The thread count `entry` will actually run with.
inline unsigned effective_threads(const SchedulerEntry& entry,
                                  unsigned requested) {
  if (requested == 0) requested = 1;
  return entry.max_threads != 0 && requested > entry.max_threads
             ? entry.max_threads
             : requested;
}

}  // namespace smq
