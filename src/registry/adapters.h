// Scheduler adapters for substrates that are not schedulers by
// themselves. These give the registry its exact and priority-oblivious
// anchor points:
//
//  * GlobalHeapScheduler — one spinlock-protected d-ary heap shared by
//    all threads: the strict (non-relaxed) concurrent PQ whose
//    delete-min bottleneck motivates the whole relaxed-scheduler line of
//    work (paper Section 1).
//  * GlobalSkipListScheduler — exact delete-min over the lock-free skip
//    list, i.e. SprayList with the spray removed (Figure 1's "try to
//    remove the minimum" baseline).
//  * ChunkBagScheduler — a single unordered chunk bag: maximal
//    throughput, zero rank quality, the far anchor for the wasted-work
//    metric.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "queues/chunk_bag.h"
#include "queues/d_ary_heap.h"
#include "queues/lockfree_skiplist.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"
#include "support/spinlock.h"

namespace smq {

/// One global lock around one sequential d-ary heap.
class GlobalHeapScheduler {
 public:
  explicit GlobalHeapScheduler(unsigned num_threads)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {}

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned /*tid*/, Task task) {
    lock_.lock();
    heap_.push(task);
    lock_.unlock();
  }

  std::optional<Task> try_pop(unsigned /*tid*/) {
    lock_.lock();
    std::optional<Task> task = heap_.try_pop();
    lock_.unlock();
    return task;
  }

  /// Bulk insert under one lock acquisition — for the global-lock anchor
  /// this is exactly the contention reduction batching is meant to buy.
  void push_batch(unsigned /*tid*/, std::span<const Task> tasks) {
    lock_.lock();
    for (const Task& task : tasks) heap_.push(task);
    lock_.unlock();
  }

  /// Bulk extract under one lock acquisition.
  std::size_t try_pop_batch(unsigned /*tid*/, std::vector<Task>& out,
                            std::size_t max) {
    lock_.lock();
    std::size_t taken = 0;
    while (taken < max) {
      std::optional<Task> task = heap_.try_pop();
      if (!task) break;
      out.push_back(*task);
      ++taken;
    }
    lock_.unlock();
    return taken;
  }

 private:
  unsigned num_threads_;
  Spinlock lock_;
  DAryHeap<Task, 4> heap_;
};

struct GlobalSkipListConfig {
  std::uint64_t seed = 1;
};

/// Exact concurrent delete-min over the lock-free skip list.
class GlobalSkipListScheduler {
 public:
  using Config = GlobalSkipListConfig;

  explicit GlobalSkipListScheduler(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads),
        list_(num_threads_),
        rngs_(num_threads_) {
    for (unsigned tid = 0; tid < num_threads_; ++tid) {
      rngs_[tid].value = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned tid, Task task) {
    list_.insert(tid, task, rngs_[tid].value);
  }

  std::optional<Task> try_pop(unsigned /*tid*/) { return list_.pop_min(); }

 private:
  unsigned num_threads_;
  LockFreeSkipList list_;
  std::vector<Padded<Xoshiro256>> rngs_;
};

/// A single unordered ChunkBag shared by all threads (OBIM with exactly
/// one priority level). Buffers pushes into thread-local chunks, so it is
/// flushable; pops drain a thread-local chunk taken from the bag.
struct ChunkBagSchedulerConfig {
  std::size_t chunk_size = 64;
};

class ChunkBagScheduler {
 public:
  using Config = ChunkBagSchedulerConfig;

  ChunkBagScheduler(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads),
        chunk_size_(cfg.chunk_size == 0
                        ? 1
                        : (cfg.chunk_size > Chunk::kCapacity ? Chunk::kCapacity
                                                             : cfg.chunk_size)),
        bag_(1),
        locals_(num_threads_) {}

  ~ChunkBagScheduler() {
    for (auto& local : locals_) {
      delete local.value.push_chunk;
      delete local.value.pop_chunk;
    }
  }

  ChunkBagScheduler(const ChunkBagScheduler&) = delete;
  ChunkBagScheduler& operator=(const ChunkBagScheduler&) = delete;

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned tid, Task task) {
    Local& local = locals_[tid].value;
    if (local.push_chunk == nullptr) local.push_chunk = new Chunk();
    local.push_chunk->push(task);
    if (local.push_chunk->full(chunk_size_)) {
      bag_.push_chunk(0, local.push_chunk);
      local.push_chunk = nullptr;
    }
  }

  std::optional<Task> try_pop(unsigned tid) {
    Local& local = locals_[tid].value;
    if (local.pop_chunk != nullptr && !local.pop_chunk->empty()) {
      return local.pop_chunk->pop();
    }
    if (Chunk* chunk = bag_.pop_chunk(0)) {
      delete local.pop_chunk;
      local.pop_chunk = chunk;
      return local.pop_chunk->pop();
    }
    // Nothing published: fall back to our own unflushed chunk.
    if (local.push_chunk != nullptr && !local.push_chunk->empty()) {
      return local.push_chunk->pop();
    }
    return std::nullopt;
  }

  void flush(unsigned tid) {
    Local& local = locals_[tid].value;
    if (local.push_chunk == nullptr || local.push_chunk->empty()) return;
    bag_.push_chunk(0, local.push_chunk);
    local.push_chunk = nullptr;
  }

 private:
  struct Local {
    Chunk* push_chunk = nullptr;
    Chunk* pop_chunk = nullptr;
  };

  unsigned num_threads_;
  std::size_t chunk_size_;
  ChunkBag bag_;
  std::vector<Padded<Local>> locals_;
};

}  // namespace smq
