// Scheduler adapters for substrates that are not schedulers by
// themselves. These give the registry its exact and priority-oblivious
// anchor points:
//
//  * GlobalHeapScheduler — one spinlock-protected d-ary heap shared by
//    all threads: the strict (non-relaxed) concurrent PQ whose
//    delete-min bottleneck motivates the whole relaxed-scheduler line of
//    work (paper Section 1).
//  * GlobalSkipListScheduler — exact delete-min over the lock-free skip
//    list, i.e. SprayList with the spray removed (Figure 1's "try to
//    remove the minimum" baseline).
//  * ChunkBagScheduler — a single unordered chunk bag: maximal
//    throughput, zero rank quality, the far anchor for the wasted-work
//    metric.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "queues/chunk_bag.h"
#include "queues/d_ary_heap.h"
#include "queues/lockfree_skiplist.h"
#include "sched/epoch.h"
#include "sched/scheduler_traits.h"
#include "sched/stats.h"
#include "sched/task.h"
#include "support/padding.h"
#include "support/rng.h"
#include "support/spinlock.h"
#include "support/thread_annotations.h"

namespace smq {

/// One global lock around one sequential d-ary heap.
///
/// Has a native Handle even though it keeps no per-thread state: the
/// handle caches the lock/heap pair, and more importantly keeps the
/// strict-PQ anchor on the same zero-probe hot path as the relaxed
/// schedulers it is measured against. (GlobalSkipListScheduler and
/// ChunkBagScheduler below intentionally stay tid-only — they are the
/// standing exercise of the TidHandle migration shim.)
class GlobalHeapScheduler {
 public:
  explicit GlobalHeapScheduler(unsigned num_threads)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {}

  unsigned num_threads() const noexcept { return num_threads_; }

  class Handle {
   public:
    Handle(GlobalHeapScheduler& sched, unsigned tid) noexcept
        : sched_(&sched), tid_(tid) {}

    void push(Task task) {
      sched_->lock_.lock();
      sched_->heap_.push(task);
      sched_->lock_.unlock();
    }

    /// Bulk insert under one lock acquisition — for the global-lock
    /// anchor this is exactly the contention reduction batching buys.
    void push_batch(std::span<const Task> tasks) {
      sched_->lock_.lock();
      for (const Task& task : tasks) sched_->heap_.push(task);
      sched_->lock_.unlock();
    }

    std::optional<Task> try_pop() {
      sched_->lock_.lock();
      std::optional<Task> task = sched_->heap_.try_pop();
      sched_->lock_.unlock();
      return task;
    }

    /// Bulk extract under one lock acquisition.
    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      sched_->lock_.lock();
      std::size_t taken = 0;
      while (taken < max) {
        std::optional<Task> task = sched_->heap_.try_pop();
        if (!task) break;
        out.push_back(*task);
        ++taken;
      }
      sched_->lock_.unlock();
      return taken;
    }

    void flush() noexcept {}
    void collect_stats(ThreadStats&) const noexcept {}
    unsigned thread_id() const noexcept { return tid_; }

   private:
    GlobalHeapScheduler* sched_;
    unsigned tid_;
  };

  Handle handle(unsigned tid) noexcept { return Handle(*this, tid); }

  void push(unsigned tid, Task task) { handle(tid).push(task); }
  std::optional<Task> try_pop(unsigned tid) { return handle(tid).try_pop(); }
  void push_batch(unsigned tid, std::span<const Task> tasks) {
    handle(tid).push_batch(tasks);
  }
  std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                            std::size_t max) {
    return handle(tid).try_pop_batch(out, max);
  }

 private:
  unsigned num_threads_;
  Spinlock lock_;
  DAryHeap<Task, 4> heap_ SMQ_GUARDED_BY(lock_);
};

static_assert(HandleScheduler<GlobalHeapScheduler>);

struct GlobalSkipListConfig {
  std::uint64_t seed = 1;
  bool reclaim = false;  // epoch-based node reclamation + reuse
};

/// Exact concurrent delete-min over the lock-free skip list. Stays
/// tid-only on purpose (the standing exercise of the TidHandle shim);
/// with reclamation on, each tid call pins the epoch for its duration.
class GlobalSkipListScheduler {
 public:
  using Config = GlobalSkipListConfig;

  explicit GlobalSkipListScheduler(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads),
        epochs_(cfg.reclaim ? std::make_unique<EpochManager>(num_threads_)
                            : nullptr),
        list_(num_threads_, epochs_.get()),
        rngs_(num_threads_) {
    for (unsigned tid = 0; tid < num_threads_; ++tid) {
      rngs_[tid].value = Xoshiro256(thread_seed(cfg.seed, tid));
    }
  }

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned tid, Task task) {
    EpochManager::Guard guard(epochs_.get(), tid);
    list_.insert(tid, task, rngs_[tid].value);
  }

  std::optional<Task> try_pop(unsigned tid) {
    EpochManager::Guard guard(epochs_.get(), tid);
    return list_.pop_min(tid);
  }

  void quiesce(unsigned tid) {
    if (epochs_ != nullptr) epochs_->quiesce(tid);
  }

  std::size_t memory_footprint() const noexcept {
    return list_.memory_footprint();
  }

  EpochManager* epochs() const noexcept { return epochs_.get(); }

 private:
  unsigned num_threads_;
  // Before the list: its destructor drains retirements into the list's
  // free lists, which must still exist.
  std::unique_ptr<EpochManager> epochs_;
  LockFreeSkipList list_;
  std::vector<Padded<Xoshiro256>> rngs_;
};

static_assert(ReclaimingScheduler<GlobalSkipListScheduler>);
static_assert(MemoryReportingScheduler<GlobalSkipListScheduler>);

/// A single unordered ChunkBag shared by all threads (OBIM with exactly
/// one priority level). Buffers pushes into thread-local chunks, so it is
/// flushable; pops drain a thread-local chunk taken from the bag.
struct ChunkBagSchedulerConfig {
  std::size_t chunk_size = 64;
  bool reclaim = false;  // Treiber stacks + epoch-retired chunks
};

class ChunkBagScheduler {
 public:
  using Config = ChunkBagSchedulerConfig;

  ChunkBagScheduler(unsigned num_threads, Config cfg = {})
      : num_threads_(num_threads == 0 ? 1 : num_threads),
        chunk_size_(cfg.chunk_size == 0
                        ? 1
                        : (cfg.chunk_size > Chunk::kCapacity ? Chunk::kCapacity
                                                             : cfg.chunk_size)),
        epochs_(cfg.reclaim ? std::make_unique<EpochManager>(num_threads_)
                            : nullptr),
        bag_(1, epochs_.get()),
        locals_(num_threads_) {}

  ~ChunkBagScheduler() {
    for (auto& local : locals_) {
      if (local.value.push_chunk != nullptr) alloc_.free(local.value.push_chunk);
      if (local.value.pop_chunk != nullptr) alloc_.free(local.value.pop_chunk);
    }
  }

  ChunkBagScheduler(const ChunkBagScheduler&) = delete;
  ChunkBagScheduler& operator=(const ChunkBagScheduler&) = delete;

  unsigned num_threads() const noexcept { return num_threads_; }

  void push(unsigned tid, Task task) {
    Local& local = locals_[tid].value;
    if (local.push_chunk == nullptr) local.push_chunk = alloc_.make();
    local.push_chunk->push(task);
    if (local.push_chunk->full(chunk_size_)) {
      bag_.push_chunk(0, local.push_chunk);
      local.push_chunk = nullptr;
    }
  }

  std::optional<Task> try_pop(unsigned tid) {
    Local& local = locals_[tid].value;
    if (local.pop_chunk != nullptr && !local.pop_chunk->empty()) {
      return local.pop_chunk->pop();
    }
    // One pin covers the Treiber pop and the retirement of the chunk
    // it replaces (no-op guard in locked mode).
    EpochManager::Guard guard(epochs_.get(), tid);
    if (Chunk* chunk = bag_.pop_chunk(0)) {
      if (local.pop_chunk != nullptr) {
        bag_.retire_chunk(tid, local.pop_chunk, alloc_);
      }
      local.pop_chunk = chunk;
      return local.pop_chunk->pop();
    }
    // Nothing published: fall back to our own unflushed chunk.
    if (local.push_chunk != nullptr && !local.push_chunk->empty()) {
      return local.push_chunk->pop();
    }
    return std::nullopt;
  }

  void flush(unsigned tid) {
    Local& local = locals_[tid].value;
    if (local.push_chunk == nullptr || local.push_chunk->empty()) return;
    bag_.push_chunk(0, local.push_chunk);
    local.push_chunk = nullptr;
  }

  void quiesce(unsigned tid) {
    if (epochs_ != nullptr) epochs_->quiesce(tid);
  }

  std::size_t memory_footprint() const noexcept { return alloc_.bytes(); }

  EpochManager* epochs() const noexcept { return epochs_.get(); }

 private:
  struct Local {
    Chunk* push_chunk = nullptr;
    Chunk* pop_chunk = nullptr;
  };

  unsigned num_threads_;
  std::size_t chunk_size_;
  // alloc_ before epochs_: limbo deleters reference alloc_.
  ChunkAlloc alloc_;
  std::unique_ptr<EpochManager> epochs_;
  ChunkBag bag_;
  std::vector<Padded<Local>> locals_;
};

static_assert(ReclaimingScheduler<ChunkBagScheduler>);
static_assert(MemoryReportingScheduler<ChunkBagScheduler>);

}  // namespace smq
