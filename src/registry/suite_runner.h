// Shared sweep execution and emission for the run driver and the figure
// suites.
//
// One (scheduler, params, threads) result row and one table/JSON
// emission path, used by both the ad-hoc `smq_run --sched ...` sweep and
// the suite expansion (`smq_run --suite fig3_6`, bench_fig*_* wrappers)
// — "the suite emits the same rows as an ad-hoc sweep" is structural,
// not a convention. run_suite() expands a SuiteDef against the
// registries; run_suite_main() is the complete CLI entry point the thin
// bench wrappers delegate to.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/numa_grid.h"
#include "registry/params.h"
#include "registry/scheduler_registry.h"
#include "registry/static_dispatch.h"
#include "registry/suites.h"

namespace smq {

class ArgParser;

/// One result row of a sweep (ad-hoc or suite).
struct SweepRow {
  std::string label;      // display / JSON "scheduler" (unique per row)
  std::string scheduler;  // registry key (JSON "preset" when != label)
  ParamMap row_params;    // per-run overrides (suite grids; empty ad-hoc)
  unsigned requested_threads = 0;
  unsigned threads = 0;   // effective (clamped) count
  DispatchMode dispatch = DispatchMode::kVirtual;  // actually used
  NumaGridPoint numa;     // this row's grid point (inactive w/o a grid)
  bool numa_grid = false; // row came from a --numa-grid sweep
  AlgoResult result;
  int reps = 1;
  // `--sched auto` provenance: the row ran `scheduler` because the
  // tuning table picked it (label stays "auto"); match kind and the
  // resolver's explanation are surfaced in the table and JSON.
  bool auto_selected = false;
  std::string auto_match;  // "exact" | "nearest-threads" | ...
  std::string auto_why;
};

/// Everything the table and JSON emitters need about one sweep.
struct SweepReport {
  std::string algorithm;
  GraphInstance graph;
  ParamMap params;             // global params (graph + CLI tunables)
  DispatchMode dispatch = DispatchMode::kVirtual;  // requested mode
  std::string numa_grid_spec;  // empty without a grid
  std::string suite;           // suite name; empty for ad-hoc sweeps
  const AlgoReference* reference = nullptr;  // null without validation
  std::vector<SweepRow> rows;
};

/// The paper-style fixed-width table over the report's rows.
void print_sweep_table(std::ostream& os, const SweepReport& report);

/// The machine-readable report (tools/perf_check.py's input format).
void write_sweep_json(std::ostream& os, const SweepReport& report);

/// Route the report per `json_path`: "" = no JSON, "-" = onto `out`
/// after the table, else a file (noting the write on `out`). Returns
/// false when the file cannot be opened.
bool emit_sweep_json(const SweepReport& report, const std::string& json_path,
                     std::ostream& out, std::ostream& err);

/// The sequential oracle with its wall time taken best-of-`reps`: it is
/// the speedup normalizer the CI perf gate compares, so it must not be
/// a single noisy sample.
AlgoReference measure_reference(const AlgorithmEntry& algo,
                                const GraphInstance& graph,
                                const ParamMap& params, int reps);

/// Best-of-`reps` measurement of one sweep row under `entry`
/// (registered as `scheduler`): the static-dispatch path when
/// `dispatch` is kStatic and the key resolves to a static row, the
/// virtual factory otherwise. Prefers valid results, then the fastest
/// wall time. `threads` must already be clamped via effective_threads().
AlgoResult measure_sweep_row(const SchedulerEntry& entry,
                             std::string_view scheduler,
                             const AlgorithmEntry& algo,
                             std::string_view algo_name,
                             const GraphInstance& graph, unsigned threads,
                             const ParamMap& run_params, DispatchMode dispatch,
                             const AlgoReference* ref, int reps);

/// Normalize --dispatch/--batch-size into the mode that will actually
/// run: the executor picks its loop from batch-size alone, so
/// `--batch-size 64` without `--dispatch` IS a batched run and
/// `--dispatch batched` defaults batch-size to 64. Returns nullopt (and
/// explains on `err`) for an unknown mode name. The perf gate keys
/// baseline rows on this label; it must not lie.
std::optional<DispatchMode> resolve_dispatch_mode(const ArgParser& args,
                                                  ParamMap& params,
                                                  std::ostream& err);

struct SuiteOptions {
  std::vector<unsigned> threads;  // empty = the suite's default sweep
  int reps = 1;
  bool validate = true;
  DispatchMode dispatch = DispatchMode::kVirtual;
  ParamMap cli_params;        // --key value tunables + graph overrides
  std::string algo_override;  // empty = suite default
  std::string graph_override;
  std::string graph_cache;    // --graph-cache DIR; empty = no cache
  std::string json_path;      // --json PATH|-; empty = table only
};

/// Expand `suite` into its preset x threads sweep, validate against the
/// sequential oracle, print the table (and JSON when requested) to
/// `out`. Returns 0 on success, 1 when any row failed validation, 2 on
/// configuration errors.
int run_suite(const SuiteDef& suite, const SuiteOptions& opts,
              std::ostream& out, std::ostream& err);

/// Full CLI entry point over run_suite(): parses --threads/--reps/
/// --dispatch/--json/--graph/--algo/--graph-cache/--no-validate plus
/// scheduler tunables from argv. The bench figure binaries are thin
/// wrappers over this.
int run_suite_main(std::string_view suite_name, int argc, char** argv);

}  // namespace smq
