#include "registry/suites.h"

namespace smq {

namespace {

SuiteRun run_of(std::string scheduler,
                std::initializer_list<std::pair<const char*, std::string>>
                    kvs = {},
                std::string label = "") {
  return {std::move(scheduler), params_of(kvs), std::move(label)};
}

/// The paper's per-thread-count baseline, first row of every speedup
/// figure: classic MQ with C = 4.
SuiteRun mq_baseline() { return run_of("mq-c4", {}, "mq-c4 (baseline)"); }

std::vector<SuiteDef> build_suites() {
  std::vector<SuiteDef> defs;

  // Figure 1 (+ Figures 17-18, Tables 12-13): SMQ(heap) ablation,
  // p_steal x steal-buffer size, vs classic MQ C=4.
  {
    SuiteDef d;
    d.name = "fig1";
    d.figure = "Figure 1 / Figures 17-18 / Tables 12-13";
    d.description = "SMQ (heap) ablation: p_steal x steal-buffer size";
    d.threads = {4};
    d.runs.push_back(mq_baseline());
    for (const int denom : {2, 4, 8, 16, 32, 64}) {
      for (const char* size : {"1", "4", "16", "64"}) {
        d.runs.push_back(run_of("smq-p" + std::to_string(denom),
                                {{"steal-size", size}}));
      }
    }
    defs.push_back(std::move(d));
  }

  // Figures 3-6 (Appendix B): OBIM and PMOD delta x CHUNK_SIZE tuning.
  {
    SuiteDef d;
    d.name = "fig3_6";
    d.figure = "Figures 3-6";
    d.description = "OBIM/PMOD tuning: delta shift x chunk size";
    d.threads = {4};
    d.runs.push_back(mq_baseline());
    for (const char* family : {"obim-d", "pmod-d"}) {
      for (const unsigned shift : {0u, 2u, 4u, 8u, 12u, 16u}) {
        for (const char* chunk : {"16", "64", "256"}) {
          d.runs.push_back(run_of(family + std::to_string(shift),
                                  {{"chunk-size", chunk}}));
        }
      }
    }
    defs.push_back(std::move(d));
  }

  // Figures 7-14 / Tables 4-11 (Appendix C): the classic-MQ optimization
  // sub-sweeps along the figures' diagonal — temporal-locality stickiness
  // (p_insert = p_delete = 1/D via the mq-tl-p presets) and task-batching
  // buffer size (insert = delete buffer via mq-opt-buf).
  {
    SuiteDef d;
    d.name = "fig7_14";
    d.figure = "Figures 7-14 / Tables 4-11";
    d.description = "MQ optimization sub-sweeps: stickiness and buffer size";
    d.threads = {4};
    d.runs.push_back(mq_baseline());
    for (const int denom : {1, 4, 16, 64, 256, 1024}) {
      d.runs.push_back(run_of("mq-tl-p" + std::to_string(denom)));
    }
    for (const char* batch : {"1", "4", "16", "64", "256", "1024"}) {
      d.runs.push_back(run_of(
          "mq-opt-buf", {{"insert-batch", batch}, {"delete-batch", batch}},
          std::string("mq-opt-buf/b=") + batch));
    }
    defs.push_back(std::move(d));
  }

  // Figures 15-16 (Appendix C.9): the optimization combos head-to-head
  // at representative settings (p = 1/16, buffers of 16).
  {
    SuiteDef d;
    d.name = "fig15_16";
    d.figure = "Figures 15-16";
    d.description = "MQ optimization combos head-to-head";
    d.threads = {4};
    d.runs.push_back(mq_baseline());
    d.runs.push_back(run_of("mq-opt-none"));
    d.runs.push_back(run_of("mq-opt-stick", {}, "mq-opt-stick (TL/TL)"));
    d.runs.push_back(run_of("mq-opt-buf", {}, "mq-opt-buf (B/B)"));
    d.runs.push_back(run_of("mq-opt-full", {}, "mq-opt-full (B/TL)"));
    d.runs.push_back(run_of("mq-opt",
                            {{"insert-policy", "local"},
                             {"p-insert", "1/16"},
                             {"delete-policy", "batch"},
                             {"delete-batch", "16"}},
                            "mq-opt (TL/B)"));
    defs.push_back(std::move(d));
  }

  // Figures 19-20 / Tables 14-15 (Appendix D): the SMQ skip-list
  // ablation, with the d-ary-heap variant at the same grid so the gap
  // is visible.
  {
    SuiteDef d;
    d.name = "fig19_20";
    d.figure = "Figures 19-20 / Tables 14-15";
    d.description = "SMQ (skip list) ablation, heap variant paired";
    d.threads = {4};
    d.runs.push_back(mq_baseline());
    for (const char* variant : {"smq-sl-p", "smq-p"}) {
      for (const int denom : {2, 4, 8, 16, 32}) {
        for (const char* size : {"1", "8", "64"}) {
          d.runs.push_back(run_of(variant + std::to_string(denom),
                                  {{"steal-size", size}}));
        }
      }
    }
    defs.push_back(std::move(d));
  }

  // Tables 2-3: classic MQ speedup vs queue multiplier C.
  {
    SuiteDef d;
    d.name = "table2_3";
    d.figure = "Tables 2-3";
    d.description = "classic MQ C-sweep vs the sequential exact PQ";
    d.threads = {4};
    for (const unsigned c : {1u, 2u, 4u, 8u, 16u}) {
      d.runs.push_back(run_of("mq-c" + std::to_string(c)));
    }
    defs.push_back(std::move(d));
  }

  // Shared graph default: the perf-gate graph, small enough for CI yet
  // contended enough to separate the schedulers; --graph/--vertices
  // override it, and real DIMACS inputs reproduce the paper's numbers.
  for (SuiteDef& d : defs) {
    d.graph_params = params_of({{"vertices", "20000"}});
  }
  return defs;
}

}  // namespace

const std::vector<SuiteDef>& suites() {
  static const std::vector<SuiteDef>* defs =
      new std::vector<SuiteDef>(build_suites());
  return *defs;
}

const SuiteDef* find_suite(std::string_view name) {
  for (const SuiteDef& d : suites()) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  names.reserve(suites().size());
  for (const SuiteDef& d : suites()) names.push_back(d.name);
  return names;
}

std::string suite_run_label(const SuiteRun& run) {
  if (!run.label.empty()) return run.label;
  std::string label = run.scheduler;
  for (const auto& [key, value] : run.params.entries()) {
    label += "/" + key + "=" + value;
  }
  return label;
}

std::string unknown_suite_message(std::string_view name) {
  std::string msg = "unknown suite: " + std::string(name) + " (expected ";
  const std::vector<std::string> names = suite_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    msg += (i == 0 ? "" : ", ") + names[i];
  }
  msg += ")";
  return msg;
}

}  // namespace smq
