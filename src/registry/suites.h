// Figure suites: the paper's remaining ablation studies as declarative
// preset sweeps.
//
// A suite names the exact (scheduler preset, per-run params) tuples,
// thread counts and default graph that reproduce one figure or table of
// conf_ppopp_PostnikovaKNA22 through the registry runners. `smq_run
// --suite fig3_6` (and the thin bench wrappers, bench_fig*_*.cpp) expand
// a suite with registry/suite_runner.h, emitting the same ASCII table
// and JSON rows as an ad-hoc `--sched` sweep — so every figure's
// configuration is enumerable, validated against the sequential oracle,
// and gateable by tools/perf_check.py. The expansions are golden-tested
// in tests/test_suite_expansion.cpp; change them deliberately.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "registry/params.h"

namespace smq {

/// One row group of a suite: a registry scheduler key (usually a
/// preset) plus the tunables this run pins on top of it.
struct SuiteRun {
  std::string scheduler;  // SchedulerRegistry key
  ParamMap params;        // per-run tunable overrides (win over the CLI)
  std::string label;      // display name; empty = derived from the above
};

struct SuiteDef {
  std::string name;         // CLI key, e.g. "fig3_6"
  std::string figure;       // the paper artifact, e.g. "Figures 3-6"
  std::string description;  // one-liner for listings
  std::string algo = "sssp";
  std::string graph = "rand";
  ParamMap graph_params;            // graph defaults (CLI overrides win)
  std::vector<unsigned> threads;    // default thread sweep
  std::vector<SuiteRun> runs;
};

/// Every registered suite, in listing order.
const std::vector<SuiteDef>& suites();

const SuiteDef* find_suite(std::string_view name);

std::vector<std::string> suite_names();

/// The display label of a run: its explicit label, else the scheduler
/// key with any per-run params appended ("obim-d4/chunk-size=64").
std::string suite_run_label(const SuiteRun& run);

/// Error text for an unknown suite name, listing every valid one.
std::string unknown_suite_message(std::string_view name);

}  // namespace smq
