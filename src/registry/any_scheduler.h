// Type-erased priority scheduler.
//
// Every scheduler in this library is a distinct type behind the
// PriorityScheduler concept, which forces template instantiation at every
// call site (the seed's benches each hand-listed every scheduler type).
// AnyScheduler wraps any concrete scheduler behind one virtual interface
// while itself modelling FlushableScheduler, so Executor and every
// algorithm template instantiate exactly once for it — runtime scheduler
// selection with a single indirect call per push/pop. The indirection is
// uniform across schedulers, which is what a comparison harness needs;
// perf-critical single-scheduler code can still use static dispatch
// (src/registry/static_dispatch.h).
//
// The batch entry points (push_batch / try_pop_batch) cross the virtual
// boundary once per batch instead of once per task; each Model forwards
// to the scheduler's native batch ops when the BatchPush/BatchPop
// concepts detect them, and to a plain loop on the concrete type
// otherwise — so even the fallback pays the indirection only once.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sched/scheduler_traits.h"
#include "sched/task.h"

namespace smq {

class AnyScheduler {
 public:
  AnyScheduler() = default;
  AnyScheduler(AnyScheduler&&) noexcept = default;
  AnyScheduler& operator=(AnyScheduler&&) noexcept = default;

  /// Construct a scheduler of type S in place (many schedulers own
  /// mutexes and are not movable, so erasure must build them directly).
  template <typename S, typename... Args>
  static AnyScheduler make(Args&&... args) {
    AnyScheduler any;
    any.impl_ = std::make_unique<Model<S>>(std::forward<Args>(args)...);
    return any;
  }

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  /// Tie an auxiliary object's lifetime to this scheduler (e.g. the
  /// Topology a NUMA-aware config points into).
  void attach(std::shared_ptr<void> dependency) {
    deps_ = std::move(dependency);
  }

  // ---- PriorityScheduler / FlushableScheduler interface ---------------

  void push(unsigned tid, Task t) { impl_->push(tid, t); }
  std::optional<Task> try_pop(unsigned tid) { return impl_->try_pop(tid); }
  void push_batch(unsigned tid, std::span<const Task> tasks) {
    impl_->push_batch(tid, tasks);
  }
  std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                            std::size_t max) {
    return impl_->try_pop_batch(tid, out, max);
  }
  void flush(unsigned tid) { impl_->flush(tid); }
  void collect_stats(unsigned tid, ThreadStats& st) const {
    impl_->collect_stats(tid, st);
  }
  unsigned num_threads() const { return impl_->num_threads(); }

  /// Access the concrete scheduler (tests, stat scraping). Returns
  /// nullptr if the erased type is not S.
  template <typename S>
  S* get_if() noexcept {
    auto* model = dynamic_cast<Model<S>*>(impl_.get());
    return model == nullptr ? nullptr : &model->sched;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void push(unsigned tid, Task t) = 0;
    virtual std::optional<Task> try_pop(unsigned tid) = 0;
    virtual void push_batch(unsigned tid, std::span<const Task> tasks) = 0;
    virtual std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                                      std::size_t max) = 0;
    virtual void flush(unsigned tid) = 0;
    virtual void collect_stats(unsigned tid, ThreadStats& st) const = 0;
    virtual unsigned num_threads() const = 0;
  };

  template <PriorityScheduler S>
  struct Model final : Concept {
    template <typename... Args>
    explicit Model(Args&&... args) : sched(std::forward<Args>(args)...) {}

    void push(unsigned tid, Task t) override { sched.push(tid, t); }
    std::optional<Task> try_pop(unsigned tid) override {
      return sched.try_pop(tid);
    }
    void push_batch(unsigned tid, std::span<const Task> tasks) override {
      push_batch_adapted(sched, tid, tasks);
    }
    std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                              std::size_t max) override {
      return try_pop_batch_adapted(sched, tid, out, max);
    }
    void flush(unsigned tid) override { flush_if_supported(sched, tid); }
    void collect_stats(unsigned tid, ThreadStats& st) const override {
      collect_stats_if_supported(sched, tid, st);
    }
    unsigned num_threads() const override { return sched.num_threads(); }

    S sched;
  };

  std::unique_ptr<Concept> impl_;
  std::shared_ptr<void> deps_;
};

static_assert(FlushableScheduler<AnyScheduler>,
              "AnyScheduler must model the concept it erases");
static_assert(BatchPushScheduler<AnyScheduler> &&
                  BatchPopScheduler<AnyScheduler>,
              "AnyScheduler must expose the one-virtual-call-per-batch path");
static_assert(StatReportingScheduler<AnyScheduler>,
              "AnyScheduler must forward scheduler-private stat collection");

}  // namespace smq
