// Type-erased priority scheduler.
//
// Every scheduler in this library is a distinct type behind the
// PriorityScheduler concept, which forces template instantiation at every
// call site (the seed's benches each hand-listed every scheduler type).
// AnyScheduler wraps any concrete scheduler behind one virtual interface
// while itself modelling FlushableScheduler *and* HandleScheduler, so
// Executor and every algorithm template instantiate exactly once for it —
// runtime scheduler selection with a single indirect call per operation.
// The indirection is uniform across schedulers, which is what a
// comparison harness needs; perf-critical single-scheduler code can still
// use static dispatch (src/registry/static_dispatch.h).
//
// Three boundaries, cheapest first:
//  * HandleView (via handle(tid)): the executor acquires one erased
//    per-thread handle per run. Acquisition resolves the concrete
//    scheduler's thread-local state once — the view wraps the concrete
//    S::Handle (or its TidHandle shim) — so each subsequent operation is
//    one virtual call with no tid re-indexing behind it.
//  * The batch entry points (push_batch / try_pop_batch): cross the
//    virtual boundary once per batch instead of once per task; each
//    Model forwards to the scheduler's native batch ops when the
//    BatchPush/BatchPop concepts detect them, and to a plain loop on the
//    concrete type otherwise — so even the fallback pays the indirection
//    only once.
//  * The tid-indexed per-op virtuals: the legacy surface, kept for
//    callers that poke a single operation (tests, micro-benches).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sched/scheduler_traits.h"
#include "sched/task.h"

namespace smq {

class AnyScheduler {
 public:
  /// The erased per-thread handle interface. One virtual call per
  /// operation; the model behind it holds the concrete scheduler's
  /// native handle, so the thread-state resolution the tid virtuals pay
  /// per call has already happened at acquisition.
  class HandleView {
   public:
    virtual ~HandleView() = default;
    virtual void push(Task t) = 0;
    virtual std::optional<Task> try_pop() = 0;
    virtual void push_batch(std::span<const Task> tasks) = 0;
    virtual std::size_t try_pop_batch(std::vector<Task>& out,
                                      std::size_t max) = 0;
    virtual void flush() = 0;
    virtual void collect_stats(ThreadStats& st) const = 0;
    virtual unsigned thread_id() const = 0;
  };

  /// The value type handle() returns: owns the erased view and models
  /// SchedulerHandle, so the executor treats AnyScheduler handles and
  /// concrete handles identically. Acquiring one costs an allocation —
  /// per thread per run, not per operation.
  class Handle {
   public:
    explicit Handle(std::unique_ptr<HandleView> view) noexcept
        : view_(std::move(view)) {}

    void push(Task t) { view_->push(t); }
    std::optional<Task> try_pop() { return view_->try_pop(); }
    void push_batch(std::span<const Task> tasks) { view_->push_batch(tasks); }
    std::size_t try_pop_batch(std::vector<Task>& out, std::size_t max) {
      return view_->try_pop_batch(out, max);
    }
    void flush() { view_->flush(); }
    void collect_stats(ThreadStats& st) const { view_->collect_stats(st); }
    unsigned thread_id() const { return view_->thread_id(); }

    /// The erased view, for callers that want to hold the boundary
    /// directly (tests).
    HandleView& view() noexcept { return *view_; }

   private:
    std::unique_ptr<HandleView> view_;
  };

  AnyScheduler() = default;
  AnyScheduler(AnyScheduler&&) noexcept = default;
  AnyScheduler& operator=(AnyScheduler&&) noexcept = default;

  /// Construct a scheduler of type S in place (many schedulers own
  /// mutexes and are not movable, so erasure must build them directly).
  template <typename S, typename... Args>
  static AnyScheduler make(Args&&... args) {
    AnyScheduler any;
    any.impl_ = std::make_unique<Model<S>>(std::forward<Args>(args)...);
    return any;
  }

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  /// Tie an auxiliary object's lifetime to this scheduler (e.g. the
  /// Topology a NUMA-aware config points into).
  void attach(std::shared_ptr<void> dependency) {
    deps_ = std::move(dependency);
  }

  /// Acquire the per-thread handle (HandleScheduler interface).
  Handle handle(unsigned tid) { return Handle(impl_->acquire(tid)); }

  // ---- PriorityScheduler / FlushableScheduler interface ---------------

  void push(unsigned tid, Task t) { impl_->push(tid, t); }
  std::optional<Task> try_pop(unsigned tid) { return impl_->try_pop(tid); }
  void push_batch(unsigned tid, std::span<const Task> tasks) {
    impl_->push_batch(tid, tasks);
  }
  std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                            std::size_t max) {
    return impl_->try_pop_batch(tid, out, max);
  }
  void flush(unsigned tid) { impl_->flush(tid); }
  void collect_stats(unsigned tid, ThreadStats& st) const {
    impl_->collect_stats(tid, st);
  }
  unsigned num_threads() const { return impl_->num_threads(); }

  /// Reclamation idle hook; no-op for schedulers that do not defer any.
  void quiesce(unsigned tid) { impl_->quiesce(tid); }

  /// Bytes held by the concrete scheduler's queues; 0 when it does not
  /// report.
  std::size_t memory_footprint() const { return impl_->memory_footprint(); }

  /// Access the concrete scheduler (tests, stat scraping). Returns
  /// nullptr if the erased type is not S.
  template <typename S>
  S* get_if() noexcept {
    auto* model = dynamic_cast<Model<S>*>(impl_.get());
    return model == nullptr ? nullptr : &model->sched;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void push(unsigned tid, Task t) = 0;
    virtual std::optional<Task> try_pop(unsigned tid) = 0;
    virtual void push_batch(unsigned tid, std::span<const Task> tasks) = 0;
    virtual std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                                      std::size_t max) = 0;
    virtual void flush(unsigned tid) = 0;
    virtual void collect_stats(unsigned tid, ThreadStats& st) const = 0;
    virtual unsigned num_threads() const = 0;
    virtual void quiesce(unsigned tid) = 0;
    virtual std::size_t memory_footprint() const = 0;
    virtual std::unique_ptr<HandleView> acquire(unsigned tid) = 0;
  };

  template <PriorityScheduler S>
  struct Model final : Concept {
    template <typename... Args>
    explicit Model(Args&&... args) : sched(std::forward<Args>(args)...) {}

    /// The erased handle: wraps whatever handle_adapted() yields for S —
    /// the native S::Handle when S models HandleScheduler, the TidHandle
    /// shim otherwise. Either way the concrete handle is resolved here,
    /// once, and every virtual below is a plain forward.
    struct HandleModel final : HandleView {
      HandleModel(S& sched, unsigned tid) : h(handle_adapted(sched, tid)) {}

      void push(Task t) override { h.push(t); }
      std::optional<Task> try_pop() override { return h.try_pop(); }
      void push_batch(std::span<const Task> tasks) override {
        h.push_batch(tasks);
      }
      std::size_t try_pop_batch(std::vector<Task>& out,
                                std::size_t max) override {
        return h.try_pop_batch(out, max);
      }
      void flush() override { h.flush(); }
      void collect_stats(ThreadStats& st) const override {
        h.collect_stats(st);
      }
      unsigned thread_id() const override { return h.thread_id(); }

      HandleOf<S> h;
    };

    void push(unsigned tid, Task t) override { sched.push(tid, t); }
    std::optional<Task> try_pop(unsigned tid) override {
      return sched.try_pop(tid);
    }
    void push_batch(unsigned tid, std::span<const Task> tasks) override {
      push_batch_adapted(sched, tid, tasks);
    }
    std::size_t try_pop_batch(unsigned tid, std::vector<Task>& out,
                              std::size_t max) override {
      return try_pop_batch_adapted(sched, tid, out, max);
    }
    void flush(unsigned tid) override { flush_if_supported(sched, tid); }
    void collect_stats(unsigned tid, ThreadStats& st) const override {
      collect_stats_if_supported(sched, tid, st);
    }
    unsigned num_threads() const override { return sched.num_threads(); }
    void quiesce(unsigned tid) override { quiesce_if_supported(sched, tid); }
    std::size_t memory_footprint() const override {
      return memory_footprint_if_supported(sched);
    }
    std::unique_ptr<HandleView> acquire(unsigned tid) override {
      return std::make_unique<HandleModel>(sched, tid);
    }

    S sched;
  };

  std::unique_ptr<Concept> impl_;
  std::shared_ptr<void> deps_;
};

static_assert(FlushableScheduler<AnyScheduler>,
              "AnyScheduler must model the concept it erases");
static_assert(BatchPushScheduler<AnyScheduler> &&
                  BatchPopScheduler<AnyScheduler>,
              "AnyScheduler must expose the one-virtual-call-per-batch path");
static_assert(StatReportingScheduler<AnyScheduler>,
              "AnyScheduler must forward scheduler-private stat collection");
static_assert(HandleScheduler<AnyScheduler>,
              "AnyScheduler must expose the once-per-run handle boundary");
static_assert(SchedulerHandle<AnyScheduler::Handle>);
static_assert(ReclaimingScheduler<AnyScheduler> &&
                  MemoryReportingScheduler<AnyScheduler>,
              "AnyScheduler must forward the reclamation hooks");

}  // namespace smq
