// Templated algorithm runners shared by every dispatch path.
//
// Each run_*_algo<S>() runs one registered workload under a scheduler of
// *any* concrete type modelling PriorityScheduler and validates against
// the sequential oracle. All three dispatch modes resolve to the same
// handle API underneath: the executor acquires one per-thread handle
// (handle_adapted) per run, so
//  * the algorithm registry instantiates these with S = AnyScheduler,
//    whose handle() crosses the HandleView virtual boundary — one
//    acquisition per thread, then one virtual per op (--dispatch
//    virtual) or per batch (--dispatch batched);
//  * the static dispatch table (static_dispatch.h) instantiates them
//    with the concrete scheduler types, whose native handles inline.
// Both paths share the exact oracle-comparison and checksum logic and
// can never drift apart.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/astar.h"
#include "algorithms/bfs.h"
#include "algorithms/boruvka.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "registry/algorithm_registry.h"
#include "registry/graph_registry.h"
#include "registry/params.h"
#include "sched/executor.h"
#include "sched/scheduler_traits.h"

namespace smq {

inline std::uint64_t distance_checksum(const std::vector<std::uint64_t>& dist) {
  std::uint64_t checksum = 0;
  for (const std::uint64_t d : dist) {
    if (d != DistanceArray::kUnreached) checksum += d;
  }
  return checksum;
}

inline VertexId checked_vertex(const GraphInstance& g, const char* what,
                               std::int64_t v) {
  if (v < 0 || static_cast<std::uint64_t>(v) >= g.graph->num_vertices()) {
    throw std::invalid_argument(std::string(what) + " vertex " +
                                std::to_string(v) + " out of range [0, " +
                                std::to_string(g.graph->num_vertices()) + ")");
  }
  return static_cast<VertexId>(v);
}

inline VertexId source_of(const GraphInstance& g, const ParamMap& params) {
  return checked_vertex(
      g, "source",
      params.get_int("source", static_cast<std::int64_t>(g.default_source)));
}

inline VertexId target_of(const GraphInstance& g, const ParamMap& params) {
  return checked_vertex(
      g, "target",
      params.get_int("target", static_cast<std::int64_t>(g.default_target)));
}

/// The executor knobs every workload accepts, read from the shared
/// ParamMap (`--batch-size N` on the command line).
inline ExecutorOptions executor_options(const ParamMap& params) {
  ExecutorOptions exec;
  const std::int64_t batch = params.get_int("batch-size", 1);
  exec.batch_size = batch < 1 ? 1 : static_cast<std::size_t>(batch);
  return exec;
}

inline PageRankOptions pagerank_options(const ParamMap& params) {
  PageRankOptions opts;
  opts.damping = params.get_double("damping", 0.85);
  opts.tolerance = params.get_double("tolerance", 1e-4);
  return opts;
}

/// Exact-distance validation shared by sssp and bfs: the oracle payload
/// is the full distance vector.
inline AlgoResult validate_distances(ShortestPathResult result,
                                     const AlgoReference* ref) {
  AlgoResult out;
  out.run = result.run;
  out.answer = distance_checksum(result.distances);
  if (ref != nullptr && ref->oracle != nullptr) {
    const auto& expected =
        *static_cast<const std::vector<std::uint64_t>*>(ref->oracle.get());
    out.validated = true;
    out.valid = result.distances == expected;
  }
  return out;
}

// ---- one runner per registered algorithm ----------------------------------

template <PriorityScheduler S>
AlgoResult run_sssp_algo(const GraphInstance& g, S& sched, unsigned threads,
                         const ParamMap& params, const AlgoReference* ref) {
  return validate_distances(
      parallel_sssp(*g.graph, source_of(g, params), sched, threads,
                    executor_options(params)),
      ref);
}

template <PriorityScheduler S>
AlgoResult run_bfs_algo(const GraphInstance& g, S& sched, unsigned threads,
                        const ParamMap& params, const AlgoReference* ref) {
  return validate_distances(
      parallel_bfs(*g.graph, source_of(g, params), sched, threads,
                   executor_options(params)),
      ref);
}

template <PriorityScheduler S>
AlgoResult run_astar_algo(const GraphInstance& g, S& sched, unsigned threads,
                          const ParamMap& params, const AlgoReference* ref) {
  const AStarResult result =
      parallel_astar(*g.graph, source_of(g, params), target_of(g, params),
                     sched, threads, g.weight_scale, executor_options(params));
  AlgoResult out;
  out.run = result.run;
  out.answer = result.distance;
  if (ref != nullptr && ref->oracle != nullptr) {
    out.validated = true;
    out.valid =
        result.distance == *static_cast<const std::uint64_t*>(ref->oracle.get());
  }
  return out;
}

template <PriorityScheduler S>
AlgoResult run_pagerank_algo(const GraphInstance& g, S& sched, unsigned threads,
                             const ParamMap& params, const AlgoReference* ref) {
  const PageRankOptions opts = pagerank_options(params);
  const PageRankResult result = parallel_pagerank(
      *g.graph, sched, threads, opts, executor_options(params));
  AlgoResult out;
  out.run = result.run;
  double sum = 0;
  for (const double r : result.ranks) sum += r;
  out.answer = static_cast<std::uint64_t>(sum);
  if (ref != nullptr && ref->oracle != nullptr) {
    const auto& expected =
        *static_cast<const std::vector<double>*>(ref->oracle.get());
    // Residuals below `tolerance` stay unpushed, so per-vertex ranks can
    // legitimately differ by a small multiple of it.
    const double eps = std::max(1e-9, opts.tolerance * 100);
    out.validated = true;
    out.valid = result.ranks.size() == expected.size();
    for (std::size_t v = 0; out.valid && v < expected.size(); ++v) {
      out.valid = std::abs(result.ranks[v] - expected[v]) <= eps;
    }
  }
  return out;
}

template <PriorityScheduler S>
AlgoResult run_boruvka_algo(const GraphInstance& g, S& sched, unsigned threads,
                            const ParamMap& params, const AlgoReference* ref) {
  const MstResult result =
      parallel_boruvka(*g.graph, sched, threads, executor_options(params));
  AlgoResult out;
  out.run = result.run;
  out.answer = result.total_weight;
  if (ref != nullptr && ref->oracle != nullptr) {
    out.validated = true;
    out.valid = result.total_weight ==
                *static_cast<const std::uint64_t*>(ref->oracle.get());
  }
  return out;
}

/// Name-keyed dispatch over the runners above, for callers that already
/// hold a concrete scheduler (the static dispatch table). Returns false
/// when `algo` is not a registered algorithm name.
template <PriorityScheduler S>
bool run_algo_by_name(std::string_view algo, const GraphInstance& g, S& sched,
                      unsigned threads, const ParamMap& params,
                      const AlgoReference* ref, AlgoResult& out) {
  if (algo == "sssp") {
    out = run_sssp_algo(g, sched, threads, params, ref);
  } else if (algo == "bfs") {
    out = run_bfs_algo(g, sched, threads, params, ref);
  } else if (algo == "astar") {
    out = run_astar_algo(g, sched, threads, params, ref);
  } else if (algo == "pagerank") {
    out = run_pagerank_algo(g, sched, threads, params, ref);
  } else if (algo == "boruvka") {
    out = run_boruvka_algo(g, sched, threads, params, ref);
  } else {
    return false;
  }
  return true;
}

}  // namespace smq
