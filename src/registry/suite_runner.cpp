#include "registry/suite_runner.h"

#include <fstream>
#include <iostream>
#include <ostream>

#include "registry/scheduler_registry.h"
#include "support/cli.h"
#include "support/json_writer.h"

namespace smq {

void print_sweep_table(std::ostream& os, const SweepReport& report) {
  const AlgoReference* ref = report.reference;
  TablePrinter table({"scheduler", "threads", "dispatch", "numa", "time ms",
                      "tasks", "wasted", "work inc", "speedup", "remote",
                      "valid"});
  for (const SweepRow& row : report.rows) {
    const ThreadStats& stats = row.result.run.stats;
    const double work_inc =
        ref != nullptr && ref->reference_tasks > 0
            ? row.result.run.work_increase(ref->reference_tasks)
            : 0;
    const double speedup = ref != nullptr && row.result.run.seconds > 0
                               ? ref->seconds / row.result.run.seconds
                               : 0;
    // Auto rows show the preset the table resolved, not just "auto" —
    // the chosen config must be readable off the table.
    const std::string label =
        row.auto_selected ? row.label + ":" + row.scheduler : row.label;
    table.add_row(
        {label, std::to_string(row.threads),
         std::string(to_string(row.dispatch)),
         row.numa_grid ? row.numa.label() : report.params.get("numa", "-"),
         TablePrinter::fmt(row.result.run.seconds * 1e3),
         std::to_string(stats.pops), std::to_string(stats.wasted),
         ref != nullptr ? TablePrinter::fmt(work_inc) : "-",
         ref != nullptr ? TablePrinter::fmt(speedup) : "-",
         stats.sampled_accesses > 0 ? TablePrinter::fmt(stats.remote_frac())
                                    : "-",
         row.result.validated ? (row.result.valid ? "yes" : "NO") : "-"});
  }
  table.print(os);
}

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  const AlgoReference* ref = report.reference;
  JsonWriter json(os);
  json.begin_object();
  json.member("tool", "smq_run");
  if (!report.suite.empty()) json.member("suite", report.suite);
  json.member("algorithm", report.algorithm);
  json.member("dispatch", std::string(to_string(report.dispatch)));
  if (!report.numa_grid_spec.empty()) {
    json.member("numa_grid", report.numa_grid_spec);
  }

  json.key("graph").begin_object();
  json.member("name", report.graph.name);
  json.member("vertices",
              static_cast<std::uint64_t>(report.graph.graph->num_vertices()));
  json.member("edges",
              static_cast<std::uint64_t>(report.graph.graph->num_edges()));
  json.end_object();

  json.key("params").begin_object();
  for (const auto& [key, value] : report.params.entries()) {
    json.member(key, value);
  }
  json.end_object();

  if (ref != nullptr) {
    json.key("reference").begin_object();
    json.member("tasks", ref->reference_tasks);
    json.member("answer", ref->reference_answer);
    json.member("seconds", ref->seconds);
    json.end_object();
  }

  json.key("results").begin_array();
  for (const SweepRow& row : report.rows) {
    const ThreadStats& stats = row.result.run.stats;
    json.begin_object();
    json.member("scheduler", row.label);
    if (row.label != row.scheduler) json.member("preset", row.scheduler);
    if (row.auto_selected) {
      json.member("auto", true);
      json.member("auto_match", row.auto_match);
      json.member("auto_why", row.auto_why);
    }
    if (!row.row_params.entries().empty()) {
      json.key("params").begin_object();
      for (const auto& [key, value] : row.row_params.entries()) {
        json.member(key, value);
      }
      json.end_object();
    }
    json.member("threads", row.threads);
    if (row.threads != row.requested_threads) {
      json.member("requested_threads", row.requested_threads);
    }
    json.member("dispatch", std::string(to_string(row.dispatch)));
    if (row.numa_grid) {
      json.member("numa_nodes", row.numa.nodes);
      if (row.numa.k_set) json.member("numa_k", row.numa.k);
      json.member("internal_frac_expected",
                  expected_internal_fraction(row.numa, row.threads));
    }
    json.member("seconds", row.result.run.seconds);
    json.member("tasks", stats.pops);
    json.member("wasted", stats.wasted);
    json.member("pushes", stats.pushes);
    json.member("empty_pops", stats.empty_pops);
    json.member("steals", stats.steals);
    if (stats.sampled_accesses > 0) {
      json.member("sampled_accesses", stats.sampled_accesses);
      json.member("remote_accesses", stats.remote_accesses);
      json.member("remote_frac", stats.remote_frac());
    }
    if (ref != nullptr && ref->reference_tasks > 0) {
      json.member("work_increase",
                  row.result.run.work_increase(ref->reference_tasks));
    }
    if (ref != nullptr && ref->seconds > 0 && row.result.run.seconds > 0) {
      json.member("speedup_vs_seq", ref->seconds / row.result.run.seconds);
    }
    json.member("reps", row.reps);
    if (row.result.validated) {
      json.member("valid", row.result.valid);
    }
    json.member("answer", row.result.answer);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

bool emit_sweep_json(const SweepReport& report, const std::string& json_path,
                     std::ostream& out, std::ostream& err) {
  if (json_path.empty()) return true;
  if (json_path == "-") {
    write_sweep_json(out, report);
    return true;
  }
  std::ofstream file(json_path);
  if (!file) {
    err << "cannot write " << json_path << "\n";
    return false;
  }
  write_sweep_json(file, report);
  out << "\nwrote " << json_path << "\n";
  return true;
}

AlgoReference measure_reference(const AlgorithmEntry& algo,
                                const GraphInstance& graph,
                                const ParamMap& params, int reps) {
  AlgoReference reference = algo.make_reference(graph, params);
  for (int rep = 1; rep < reps; ++rep) {
    const AlgoReference again = algo.make_reference(graph, params);
    if (again.seconds < reference.seconds) reference.seconds = again.seconds;
  }
  return reference;
}

AlgoResult measure_sweep_row(const SchedulerEntry& entry,
                             std::string_view scheduler,
                             const AlgorithmEntry& algo,
                             std::string_view algo_name,
                             const GraphInstance& graph, unsigned threads,
                             const ParamMap& run_params, DispatchMode dispatch,
                             const AlgoReference* ref, int reps) {
  AlgoResult best;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    AlgoResult result;
    std::optional<AlgoResult> static_result;
    if (dispatch == DispatchMode::kStatic) {
      static_result = run_static_dispatch(scheduler, algo_name, graph,
                                          threads, run_params, ref);
    }
    if (static_result) {
      result = *static_result;
    } else {
      AnyScheduler sched = entry.make(threads, run_params);
      result = algo.run(graph, sched, threads, run_params, ref);
    }
    const bool better = rep == 0 || (result.valid && !best.valid) ||
                        (result.valid == best.valid &&
                         result.run.seconds < best.run.seconds);
    if (better) best = result;
  }
  return best;
}

std::optional<DispatchMode> resolve_dispatch_mode(const ArgParser& args,
                                                  ParamMap& params,
                                                  std::ostream& err) {
  const std::string dispatch_name = args.get("dispatch", "virtual");
  const std::optional<DispatchMode> dispatch =
      parse_dispatch_mode(dispatch_name);
  if (!dispatch) {
    err << "unknown dispatch mode: " << dispatch_name
        << " (expected virtual, batched or static)\n";
    return std::nullopt;
  }
  // Batched dispatch amortizes the erasure boundary over --batch-size
  // tasks; default it so `--dispatch batched` alone does something.
  if (*dispatch == DispatchMode::kBatched && !params.has("batch-size")) {
    params.set("batch-size", "64");
  }
  DispatchMode mode = *dispatch;
  if (mode != DispatchMode::kStatic) {
    mode = params.get_int("batch-size", 1) > 1 ? DispatchMode::kBatched
                                               : DispatchMode::kVirtual;
    if (mode != *dispatch) {
      err << "note: --batch-size " << params.get("batch-size", "1")
          << " makes this a " << to_string(mode) << " run\n";
    }
  }
  return mode;
}

int run_suite(const SuiteDef& suite, const SuiteOptions& opts,
              std::ostream& out, std::ostream& err) {
  const std::string algo_name =
      opts.algo_override.empty() ? suite.algo : opts.algo_override;
  const AlgorithmEntry* algo = AlgorithmRegistry::instance().find(algo_name);
  if (algo == nullptr) {
    err << "unknown algorithm: " << algo_name << " (see smq_run --list)\n";
    return 2;
  }

  // Graph: suite defaults under the CLI's overrides.
  const std::string graph_name =
      opts.graph_override.empty() ? suite.graph : opts.graph_override;
  ParamMap params = suite.graph_params;
  for (const auto& [key, value] : opts.cli_params.entries()) {
    params.set(key, value);
  }
  SweepReport report;
  try {
    report.graph =
        opts.graph_cache.empty()
            ? GraphRegistry::instance().create(graph_name, params)
            : GraphRegistry::instance().create_cached(graph_name, params,
                                                      opts.graph_cache);
  } catch (const std::exception& e) {
    err << e.what() << " (see smq_run --list)\n";
    return 2;
  }
  report.algorithm = algo_name;
  report.params = params;
  report.dispatch = opts.dispatch;
  report.suite = suite.name;

  const std::vector<unsigned>& thread_counts =
      opts.threads.empty() ? suite.threads : opts.threads;
  const int reps = std::max(1, opts.reps);

  out << "suite: " << suite.name << " (" << suite.figure << ": "
      << suite.description << ")\n"
      << "graph: " << report.graph.name << " ("
      << report.graph.graph->num_vertices() << " vertices, "
      << report.graph.graph->num_edges() << " edges)\n"
      << "algorithm: " << algo_name << "\n"
      << "dispatch: " << to_string(opts.dispatch);
  if (opts.dispatch == DispatchMode::kBatched) {
    out << " (batch-size " << params.get("batch-size") << ")";
  }
  out << "\n";

  AlgoReference reference;
  if (opts.validate) {
    reference = measure_reference(*algo, report.graph, params, reps);
    report.reference = &reference;
    out << "reference: " << reference.reference_tasks << " tasks, "
        << TablePrinter::fmt(reference.seconds * 1e3) << " ms sequential\n";
  }
  out << '\n';

  bool any_invalid = false;
  for (const SuiteRun& run : suite.runs) {
    const SchedulerEntry* entry =
        SchedulerRegistry::instance().find(run.scheduler);
    if (entry == nullptr) {
      err << "suite " << suite.name << " names unknown scheduler: "
          << run.scheduler << "\n";
      return 2;
    }
    DispatchMode row_dispatch = opts.dispatch;
    if (row_dispatch == DispatchMode::kStatic &&
        !has_static_dispatch(run.scheduler)) {
      err << "note: no static dispatch entry for '" << run.scheduler
          << "'; running it virtual\n";
      row_dispatch = DispatchMode::kVirtual;
    }
    // The run's grid point wins over conflicting CLI tunables — it IS
    // the suite's sweep axis.
    ParamMap run_params = params;
    for (const auto& [key, value] : run.params.entries()) {
      run_params.set(key, value);
    }
    for (const unsigned requested : thread_counts) {
      SweepRow row;
      row.label = suite_run_label(run);
      row.scheduler = run.scheduler;
      row.row_params = run.params;
      row.requested_threads = requested;
      row.threads = effective_threads(*entry, requested);
      row.dispatch = row_dispatch;
      row.reps = reps;
      row.result = measure_sweep_row(*entry, run.scheduler, *algo, algo_name,
                                     report.graph, row.threads, run_params,
                                     row_dispatch, report.reference, reps);
      if (row.result.validated && !row.result.valid) any_invalid = true;
      report.rows.push_back(std::move(row));
    }
  }

  print_sweep_table(out, report);
  if (!emit_sweep_json(report, opts.json_path, out, err)) return 2;

  if (any_invalid) {
    err << "\nERROR: at least one scheduler produced a wrong answer\n";
    return 1;
  }
  return 0;
}

int run_suite_main(std::string_view suite_name, int argc, char** argv) {
  const ArgParser args(argc, argv);
  const SuiteDef* suite = find_suite(suite_name);
  if (suite == nullptr) {
    std::cerr << unknown_suite_message(suite_name) << "\n";
    return 2;
  }

  if (args.has_flag("help") || args.has_flag("h")) {
    std::cout << "usage: reproduce " << suite->figure << " ("
              << suite->description << ")\n"
                 "  [--threads N[,N...]] [--reps N] [--json PATH|-]\n"
                 "  [--dispatch virtual|batched|static] [--batch-size N]\n"
                 "  [--graph NAME] [--algo NAME] [--graph-cache DIR]\n"
                 "  [--no-validate] [--<tunable> VALUE ...]\n\n"
                 "Expands the suite's preset sweep through the registry "
                 "runners; every row\nis validated against the sequential "
                 "oracle. See also: smq_run --suite "
              << suite->name << "\n";
    return 0;
  }

  SuiteOptions opts;
  opts.cli_params = ParamMap::from_args(args);

  const std::optional<DispatchMode> mode =
      resolve_dispatch_mode(args, opts.cli_params, std::cerr);
  if (!mode) return 2;
  opts.dispatch = *mode;

  if (args.has_flag("threads")) {
    try {
      opts.threads = parse_thread_list(args.get("threads"));
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  opts.reps = static_cast<int>(args.get_int("reps", 1));
  opts.validate = !args.has_flag("no-validate");
  opts.algo_override = args.get("algo");
  opts.graph_override = args.get("graph");
  opts.graph_cache = args.get("graph-cache");
  opts.json_path = args.get("json");

  try {
    return run_suite(*suite, opts, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "suite " << suite->name << ": " << e.what() << "\n";
    return 2;
  }
}

}  // namespace smq
