// The erased service boundary: build a QueryService over any registered
// scheduler (presets included) by name, the way smq_run and the benches
// resolve every other axis. One SchedulerService<AnyScheduler>
// instantiation serves the whole registry; static instantiation of a
// concrete SchedulerService<S> remains available to code that names S
// (tests do).
#pragma once

#include <memory>
#include <string_view>

#include "registry/graph_registry.h"
#include "registry/params.h"
#include "service/query.h"
#include "tuning/auto_select.h"

namespace smq {

/// The algorithm `--sched auto` tunes a service for: the service runs
/// point-to-point queries, which are A* when the graph carries
/// coordinates and plain SSSP otherwise.
std::string_view service_auto_algorithm(const GraphInstance& graph);

/// Build a running service for `sched_name` x `threads` over `graph`.
/// The worker count is clamped to the scheduler's thread capacity
/// (effective_threads), the heuristic scale comes from the graph
/// instance, and `params` reaches the scheduler factory untouched —
/// presets resolve exactly as in a sweep. "auto" resolves through the
/// tuning metrics table first (service_auto_algorithm picks the tuned
/// algorithm; `selection`, when non-null, receives the provenance).
/// Throws std::invalid_argument on an unknown scheduler.
std::unique_ptr<QueryService> make_service(std::string_view sched_name,
                                           unsigned threads,
                                           const ParamMap& params,
                                           const GraphInstance& graph,
                                           ServiceOptions opts = {},
                                           tuning::AutoSelection* selection = nullptr);

/// The worker count make_service will actually run with. For "auto"
/// this is the requested count (every preset family the table can name
/// is thread-capable; the resolved entry still clamps inside
/// make_service).
unsigned service_effective_threads(std::string_view sched_name,
                                   unsigned requested);

}  // namespace smq
