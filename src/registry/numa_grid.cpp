#include "registry/numa_grid.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "sched/topology.h"
#include "support/cli.h"

namespace smq {

namespace {

/// Format K without trailing zeros ("8", "1.5").
std::string fmt_k(double k) {
  std::ostringstream os;
  os << k;
  return os.str();
}

}  // namespace

std::string NumaGridPoint::spec() const {
  std::string s = "nodes=" + std::to_string(nodes);
  if (k_set) s += ",k=" + fmt_k(k);
  return s;
}

std::string NumaGridPoint::label() const {
  if (!active()) return "-";
  return std::to_string(nodes) + "/" + (k_set ? fmt_k(k) : "d");
}

std::vector<NumaGridPoint> parse_numa_grid(std::string_view spec) {
  std::vector<unsigned> nodes;
  std::vector<double> ks;
  for (const std::string& dim : split_list(spec, ':')) {
    const std::size_t eq = dim.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("numa-grid dimension '" + dim +
                                  "' is not key=v1,v2,...");
    }
    const std::string key = dim.substr(0, eq);
    std::vector<std::string> values = split_list(dim.substr(eq + 1), ',');
    if (values.empty()) {
      throw std::invalid_argument("numa-grid dimension '" + key +
                                  "' has no values");
    }
    if (key == "nodes") {
      for (const std::string& v : values) {
        char* end = nullptr;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
          throw std::invalid_argument("bad numa-grid node count: " + v);
        }
        nodes.push_back(static_cast<unsigned>(n == 0 ? 1 : n));
      }
    } else if (key == "k") {
      for (const std::string& v : values) {
        char* end = nullptr;
        const double k = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0' || k <= 0) {
          throw std::invalid_argument("bad numa-grid K weight: " + v);
        }
        ks.push_back(k);
      }
    } else {
      throw std::invalid_argument("unknown numa-grid dimension: " + key +
                                  " (expected nodes or k)");
    }
  }
  if (nodes.empty() && ks.empty()) {
    throw std::invalid_argument(
        "empty numa-grid spec (expected e.g. nodes=1,2,4:k=1,4,8,16)");
  }
  // A K sweep without a nodes dimension mirrors parse_numa's "k=8 alone
  // implies 2 nodes" rule; a nodes sweep without K pins K=1 (the
  // non-NUMA algorithm) — leaving K to the scheduler's own default
  // would make the recorded analytic E wrong for what actually ran.
  if (nodes.empty()) nodes.push_back(2);
  if (ks.empty()) ks.push_back(1.0);

  std::vector<NumaGridPoint> grid;
  bool have_uma = false;
  for (const unsigned n : nodes) {
    // K has no effect without a topology, so a nodes<=1 entry collapses
    // to one UMA point instead of |ks| identical re-measurements.
    if (n <= 1) {
      if (!have_uma) grid.push_back({.nodes = 1, .k = 1.0, .k_set = true});
      have_uma = true;
      continue;
    }
    for (const double k : ks) {
      grid.push_back({.nodes = n, .k = k, .k_set = true});
    }
  }
  return grid;
}

void apply_numa_point(ParamMap& params, const NumaGridPoint& point) {
  params.set("numa", point.spec());
  // A stray --numa-k would override every grid point's K.
  params.erase("numa-k");
}

double expected_internal_fraction(const NumaGridPoint& point,
                                  unsigned threads) {
  if (!point.active() || threads == 0) return 1.0;
  const Topology topo(threads, point.nodes);
  return topo.expected_internal_fraction(point.k_set && point.k > 1.0 ? point.k
                                                                      : 1.0);
}

}  // namespace smq
