#include "registry/scheduler_configs.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "support/cli.h"

namespace smq {

NumaOptions parse_numa(const ParamMap& params, unsigned threads,
                       double default_k) {
  NumaOptions numa;
  bool k_given = false;  // explicit K (even K=1) must never be overridden
  const std::string spec = params.get("numa");
  for (const std::string& part : split_list(spec, ',')) {
    if (const auto eq = part.find('='); eq != std::string::npos) {
      const std::string key = part.substr(0, eq);
      const double value = std::strtod(part.substr(eq + 1).c_str(), nullptr);
      if (key == "nodes") numa.nodes = static_cast<unsigned>(value);
      if (key == "k") {
        numa.k = value;
        k_given = true;
      }
    } else {
      numa.nodes = static_cast<unsigned>(std::strtoul(part.c_str(), nullptr, 10));
    }
  }
  if (params.has("numa-k")) {
    numa.k = params.get_double("numa-k", numa.k);
    k_given = true;
  }
  if (numa.k <= 0) numa.k = 1.0;
  // "--numa k=8" alone asks for weighted sampling without a node count.
  if (numa.nodes == 0 && numa.k > 1.0) numa.nodes = 2;
  if (!k_given && numa.nodes > 1) numa.k = default_k;
  numa.nodes = std::min(numa.nodes, threads);
  return numa;
}

std::shared_ptr<Topology> make_topology(const NumaOptions& numa,
                                        unsigned threads) {
  if (numa.nodes <= 1) return nullptr;
  return std::make_shared<Topology>(threads, numa.nodes);
}

const std::vector<Tunable>& numa_tunables() {
  static const std::vector<Tunable> tunables = {
      {"numa", "0", "virtual NUMA nodes: \"2\", \"nodes=2,k=8\" or \"k=8\""},
      {"numa-k", "", "remote-queue sampling weight divisor K"},
  };
  return tunables;
}

bool parse_reclaim(const ParamMap& params) {
  const std::string mode = params.get("reclaim", "none");
  if (mode.empty() || mode == "none") return false;
  if (mode == "epoch") return true;
  throw std::invalid_argument("unknown --reclaim mode '" + mode +
                              "' (expected none|epoch)");
}

const Tunable& reclaim_tunable() {
  static const Tunable t = {"reclaim", "none",
                            "memory reclamation: none|epoch"};
  return t;
}

SmqConfig make_smq_config(unsigned threads, const ParamMap& params,
                          std::shared_ptr<Topology>& topology) {
  const NumaOptions numa = parse_numa(params, threads, /*default_k=*/8.0);
  topology = make_topology(numa, threads);
  SmqConfig cfg;
  cfg.steal_size = static_cast<std::size_t>(params.get_int("steal-size", 4));
  cfg.p_steal = params.get_probability("p-steal", 1.0 / 8.0);
  cfg.seed = params.get_uint("seed", 1);
  cfg.topology = topology.get();
  cfg.numa_weight_k = numa.k;
  return cfg;
}

ClassicMqConfig make_classic_mq_config(unsigned threads, const ParamMap& params,
                                       std::shared_ptr<Topology>& topology) {
  const NumaOptions numa = parse_numa(params, threads, 8.0);
  topology = make_topology(numa, threads);
  ClassicMqConfig cfg;
  cfg.queue_multiplier = static_cast<unsigned>(params.get_int("c", 4));
  cfg.seed = params.get_uint("seed", 1);
  cfg.topology = topology.get();
  cfg.numa_weight_k = numa.k;
  return cfg;
}

OptimizedMqConfig make_optimized_mq_config(unsigned threads,
                                           const ParamMap& params,
                                           std::shared_ptr<Topology>& topology) {
  const NumaOptions numa = parse_numa(params, threads, 8.0);
  topology = make_topology(numa, threads);
  OptimizedMqConfig cfg;
  cfg.queue_multiplier = static_cast<unsigned>(params.get_int("c", 4));
  cfg.insert_policy = params.get("insert-policy", "batch") == "local"
                          ? InsertPolicy::kTemporalLocality
                          : InsertPolicy::kBatching;
  cfg.delete_policy = params.get("delete-policy", "batch") == "local"
                          ? DeletePolicy::kTemporalLocality
                          : DeletePolicy::kBatching;
  cfg.p_insert_change = params.get_probability("p-insert", 1.0);
  cfg.p_delete_change = params.get_probability("p-delete", 1.0);
  cfg.insert_batch =
      static_cast<std::size_t>(params.get_int("insert-batch", 16));
  cfg.delete_batch =
      static_cast<std::size_t>(params.get_int("delete-batch", 16));
  cfg.seed = params.get_uint("seed", 1);
  cfg.topology = topology.get();
  cfg.numa_weight_k = numa.k;
  return cfg;
}

ReldConfig make_reld_config(unsigned threads, const ParamMap& params,
                            std::shared_ptr<Topology>& topology) {
  const NumaOptions numa = parse_numa(params, threads, 8.0);
  topology = make_topology(numa, threads);
  ReldConfig cfg;
  cfg.queue_multiplier = static_cast<unsigned>(params.get_int("c", 1));
  cfg.seed = params.get_uint("seed", 1);
  cfg.topology = topology.get();
  cfg.numa_weight_k = numa.k;
  return cfg;
}

ObimConfig make_obim_config(unsigned threads, const ParamMap& params,
                            std::shared_ptr<Topology>& topology) {
  const NumaOptions numa = parse_numa(params, threads, 1.0);
  topology = make_topology(numa, threads);
  ObimConfig cfg;
  cfg.chunk_size = static_cast<std::size_t>(params.get_int("chunk-size", 64));
  cfg.delta_shift = static_cast<unsigned>(params.get_int("delta-shift", 10));
  cfg.reclaim = parse_reclaim(params);
  cfg.topology = topology.get();
  return cfg;
}

ObimConfig make_pmod_config(unsigned threads, const ParamMap& params,
                            std::shared_ptr<Topology>& topology) {
  ObimConfig cfg = make_obim_config(threads, params, topology);
  cfg.adapt_interval =
      static_cast<unsigned>(params.get_int("adapt-interval", 64));
  cfg.split_threshold = params.get_int("split-threshold", 4096);
  return cfg;
}

}  // namespace smq
