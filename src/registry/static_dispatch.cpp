#include "registry/static_dispatch.h"

#include <array>
#include <functional>
#include <memory>

#include "core/stealing_multiqueue.h"
#include "queues/classic_multiqueue.h"
#include "queues/mq_variants.h"
#include "queues/obim.h"
#include "queues/skiplist.h"
#include "registry/algo_runners.h"
#include "registry/scheduler_configs.h"
#include "registry/scheduler_registry.h"

namespace smq {

namespace {

/// Construct the concrete scheduler, run the named algorithm through the
/// shared templated runners, and keep the simulated-NUMA topology alive
/// for the duration (the config holds a raw pointer into it). The
/// executor drives the scheduler through its native per-thread Handle
/// here — the same handle API the virtual path reaches through
/// AnyScheduler::HandleView — so static rows measure pure inlined
/// handles, not a different protocol.
template <typename S, typename ConfigFn>
std::optional<AlgoResult> run_concrete(ConfigFn make_config,
                                       std::string_view algorithm,
                                       const GraphInstance& graph,
                                       unsigned threads, const ParamMap& params,
                                       const AlgoReference* ref) {
  std::shared_ptr<Topology> topology;
  S sched(threads, make_config(threads, params, topology));
  AlgoResult result;
  if (!run_algo_by_name(algorithm, graph, sched, threads, params, ref,
                        result)) {
    return std::nullopt;
  }
  return result;
}

using StaticRunFn = std::optional<AlgoResult> (*)(std::string_view,
                                                  const GraphInstance&,
                                                  unsigned, const ParamMap&,
                                                  const AlgoReference*);

struct StaticEntry {
  std::string_view scheduler;
  StaticRunFn run;
};

// The hot config families of the paper's evaluation; the long tail of
// anchor schedulers stays virtual-only (they are baselines, not the
// product). Presets resolve to their family's row with their pinned
// params applied, so every obim-d*/mq-c*/smq-p*/mq-opt-* key is
// static-dispatchable too.
constexpr std::array<StaticEntry, 6> kStaticTable{{
    {"smq",
     [](std::string_view algo, const GraphInstance& g, unsigned threads,
        const ParamMap& params, const AlgoReference* ref) {
       return run_concrete<StealingMultiQueue<DAryHeap<Task, 4>>>(
           make_smq_config, algo, g, threads, params, ref);
     }},
    {"smq-skiplist",
     [](std::string_view algo, const GraphInstance& g, unsigned threads,
        const ParamMap& params, const AlgoReference* ref) {
       return run_concrete<StealingMultiQueue<SequentialSkipList>>(
           make_smq_config, algo, g, threads, params, ref);
     }},
    {"mq",
     [](std::string_view algo, const GraphInstance& g, unsigned threads,
        const ParamMap& params, const AlgoReference* ref) {
       return run_concrete<ClassicMultiQueue>(make_classic_mq_config, algo, g,
                                              threads, params, ref);
     }},
    {"mq-opt",
     [](std::string_view algo, const GraphInstance& g, unsigned threads,
        const ParamMap& params, const AlgoReference* ref) {
       return run_concrete<OptimizedMultiQueue>(make_optimized_mq_config, algo,
                                                g, threads, params, ref);
     }},
    {"obim",
     [](std::string_view algo, const GraphInstance& g, unsigned threads,
        const ParamMap& params, const AlgoReference* ref) {
       return run_concrete<Obim>(make_obim_config, algo, g, threads, params,
                                 ref);
     }},
    {"pmod",
     [](std::string_view algo, const GraphInstance& g, unsigned threads,
        const ParamMap& params, const AlgoReference* ref) {
       return run_concrete<Pmod>(make_pmod_config, algo, g, threads, params,
                                 ref);
     }},
}};

const StaticEntry* find_static(std::string_view scheduler) {
  for (const StaticEntry& entry : kStaticTable) {
    if (entry.scheduler == scheduler) return &entry;
  }
  return nullptr;
}

/// The static row and resolved params for a registry key: a preset
/// dispatches to its family's row with its pinned/default params
/// applied — the same resolution its virtual factory performs, so the
/// two paths cannot construct different configs.
struct ResolvedStatic {
  const StaticEntry* entry = nullptr;
  ParamMap params;
};

ResolvedStatic resolve_static(std::string_view scheduler,
                              const ParamMap& params) {
  const SchedulerEntry* reg_entry =
      SchedulerRegistry::instance().find(scheduler);
  if (reg_entry == nullptr || reg_entry->family.empty()) {
    return {find_static(scheduler), params};
  }
  return {find_static(reg_entry->family),
          resolve_preset_params(*reg_entry, params)};
}

}  // namespace

std::optional<DispatchMode> parse_dispatch_mode(std::string_view name) {
  if (name == "virtual") return DispatchMode::kVirtual;
  if (name == "batched") return DispatchMode::kBatched;
  if (name == "static") return DispatchMode::kStatic;
  return std::nullopt;
}

std::string_view to_string(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kVirtual: return "virtual";
    case DispatchMode::kBatched: return "batched";
    case DispatchMode::kStatic: return "static";
  }
  return "virtual";
}

bool has_static_dispatch(std::string_view scheduler) {
  return resolve_static(scheduler, {}).entry != nullptr;
}

std::vector<std::string> static_dispatch_keys() {
  std::vector<std::string> keys;
  keys.reserve(kStaticTable.size());
  for (const StaticEntry& entry : kStaticTable) {
    keys.emplace_back(entry.scheduler);
  }
  return keys;
}

std::optional<AlgoResult> run_static_dispatch(std::string_view scheduler,
                                              std::string_view algorithm,
                                              const GraphInstance& graph,
                                              unsigned threads,
                                              const ParamMap& params,
                                              const AlgoReference* ref) {
  const ResolvedStatic resolved = resolve_static(scheduler, params);
  if (resolved.entry == nullptr) return std::nullopt;
  return resolved.entry->run(algorithm, graph, threads, resolved.params, ref);
}

}  // namespace smq
