// Minimal JSON parser, the read-side counterpart of json_writer.h.
//
// Dependency-free on purpose (same policy as cli.h / json_writer.h):
// the tuning table and bench baselines only need objects, arrays,
// strings, finite numbers, booleans and null. Objects preserve member
// order (vector of pairs, linear lookup) — tables are small and
// deterministic round-trips matter more than O(1) access.
//
// Errors throw std::runtime_error with a line:column position.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smq {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  static JsonValue parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const {
    require(Type::kBool, "bool");
    return bool_;
  }
  double as_double() const {
    require(Type::kNumber, "number");
    return number_;
  }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_double()); }
  std::uint64_t as_uint() const {
    const double v = as_double();
    if (v < 0) throw std::runtime_error("json: negative value where unsigned expected");
    return static_cast<std::uint64_t>(v);
  }
  const std::string& as_string() const {
    require(Type::kString, "string");
    return string_;
  }

  const std::vector<JsonValue>& items() const {
    require(Type::kArray, "array");
    return array_;
  }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    require(Type::kObject, "object");
    return object_;
  }

  std::size_t size() const {
    return is_array() ? array_.size() : members().size();
  }

  /// Object member by key, or nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : object_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Object member by key; throws naming the missing key.
  const JsonValue& at(std::string_view key) const {
    if (const JsonValue* v = find(key)) return *v;
    throw std::runtime_error("json: missing member \"" + std::string(key) + '"');
  }

  /// Typed member lookups with defaults, for optional table fields.
  double get_double(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v && v->is_number() ? v->number_ : fallback;
  }
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const {
    const JsonValue* v = find(key);
    return v && v->is_number() ? v->as_uint() : fallback;
  }
  std::string get_string(std::string_view key, std::string fallback) const {
    const JsonValue* v = find(key);
    return v && v->is_string() ? v->string_ : std::move(fallback);
  }

 private:
  void require(Type t, const char* what) const {
    if (type_ != t) {
      throw std::runtime_error(std::string("json: expected ") + what);
    }
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

/// Recursive-descent parser over a string_view; not exposed directly,
/// use JsonValue::parse.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string_value();
      case 't': expect_word("true"); return make_bool(true);
      case 'f': expect_word("false"); return make_bool(false);
      case 'n': expect_word("null"); return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string_raw();
      skip_ws();
      if (peek() != ':') fail("expected ':' after key");
      ++pos_;
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.string_ = parse_string_raw();
    return v;
  }

  std::string parse_string_raw() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out.append(parse_unicode_escape()); break;
        default: fail("unknown escape sequence");
      }
    }
    fail("unterminated string");
    return out;  // unreachable
  }

  /// \uXXXX -> UTF-8. Surrogate pairs are combined; a lone surrogate is
  /// an error (the writer never emits one).
  std::string parse_unicode_escape() {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired high surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    std::string out;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("invalid number");
    while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("digit expected after '.'");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) fail("digit expected in exponent");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    // The slice is a valid JSON number, which stod accepts exactly.
    v.number_ = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json parse error at " + std::to_string(line) + ':' +
                             std::to_string(col) + ": " + what);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace smq
