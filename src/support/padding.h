// Cache-line padding utilities.
//
// Concurrent counters and per-thread slots are padded to a full cache line
// (actually two lines, to defeat adjacent-line prefetching on x86) so that
// logically independent data never false-shares.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace smq {

// Two cache lines: x86 prefetchers pull adjacent lines, so 128 bytes is the
// effective false-sharing granularity.
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kFalseSharingRange = 128;

/// Wraps a value so that distinct instances in an array never share a
/// cache line. The wrapped value stays at offset 0.
template <typename T>
struct alignas(kFalseSharingRange) Padded {
  T value{};

  Padded() = default;

  template <typename... Args,
            typename = std::enable_if_t<std::is_constructible_v<T, Args...>>>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<int>) == kFalseSharingRange);
static_assert(sizeof(Padded<int>) == kFalseSharingRange);

}  // namespace smq
