// Test-and-test-and-set spinlock with exponential backoff.
//
// The classic Multi-Queue (Listing 1 of the paper) protects every
// sequential queue with a try-lock: an operation that fails to acquire the
// lock restarts with freshly sampled queues instead of waiting, so the
// lock must expose a cheap try_lock. Meets the Lockable requirements, so
// it composes with std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/thread_annotations.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace smq {

/// CPU pause hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // smq-lint: seq-cst compiler-only fence (no hardware barrier); the
  // portable fallback just pins the spin-loop read in program order.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded exponential backoff for contended retry loops.
class Backoff {
 public:
  explicit Backoff(std::uint32_t limit = 1024) noexcept : limit_(limit) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ < limit_) current_ *= 2;
  }

  void reset() noexcept { current_ = 1; }

 private:
  std::uint32_t current_ = 1;
  std::uint32_t limit_;
};

/// TTAS spinlock. Not reentrant. Annotated as a thread-safety capability
/// so `-Wthread-safety` checks acquire/release pairing and SMQ_GUARDED_BY
/// data at compile time.
class SMQ_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  bool try_lock() noexcept SMQ_TRY_ACQUIRE(true) {
    // Cheap read first: avoids a cache-line invalidation storm when the
    // lock is held (the dominant case under Multi-Queue contention).
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void lock() noexcept SMQ_ACQUIRE() {
    Backoff backoff;
    while (!try_lock()) backoff.pause();
  }

  void unlock() noexcept SMQ_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace smq
