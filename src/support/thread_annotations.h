// Clang thread-safety analysis annotations (no-ops elsewhere).
//
// These macros attach capability semantics to the repo's lock types and
// lock-protected data, so `clang++ -Wthread-safety` (the SMQ_THREAD_SAFETY
// CMake option promotes it to an error) proves lock discipline at compile
// time: every access to a SMQ_GUARDED_BY member must happen with its
// capability held, every SMQ_ACQUIRE has a matching SMQ_RELEASE on every
// path, and SMQ_REQUIRES obligations propagate to callers. The macro
// shapes follow the canonical LLVM/abseil thread_annotations.h so the
// analysis-side behaviour is the well-tested one.
//
// SMQ_REQUIRES_PIN is different in kind: it is a *lint* marker, not a
// compiler attribute. Functions that dereference epoch-protected nodes
// (see sched/epoch.h) carry it, and tools/concurrency_lint.py enforces
// that every call site either sits inside an EpochManager::Guard scope
// or is itself marked (pushing the obligation to its callers) — the
// EBR analogue of SMQ_REQUIRES, checked lexically because no compiler
// models reclamation pins.
#pragma once

#if defined(__clang__) && !defined(SMQ_NO_THREAD_SAFETY_ANNOTATIONS)
#define SMQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMQ_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lock) the analysis can track.
#define SMQ_CAPABILITY(x) SMQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SMQ_SCOPED_CAPABILITY SMQ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define SMQ_GUARDED_BY(x) SMQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* requires the capability.
#define SMQ_PT_GUARDED_BY(x) SMQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capabilities held on entry (and keeps them).
#define SMQ_REQUIRES(...) \
  SMQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability; it must not already be held.
#define SMQ_ACQUIRE(...) SMQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability; it must be held on entry.
#define SMQ_RELEASE(...) SMQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; first argument is the return
/// value that signals success.
#define SMQ_TRY_ACQUIRE(...) \
  SMQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capabilities *not* held (deadlock
/// documentation for non-reentrant locks acquired inside).
#define SMQ_EXCLUDES(...) SMQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its data.
#define SMQ_RETURN_CAPABILITY(x) SMQ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: skip analysis of one function body. Use only where the
/// analysis cannot express a correct pattern (e.g. locks selected
/// dynamically through union-find roots) and say why in a comment.
#define SMQ_NO_THREAD_SAFETY_ANALYSIS \
  SMQ_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Lint-only marker (expands to nothing for every compiler): the function
/// dereferences nodes that a concurrent thread may epoch-retire, so its
/// caller must hold an EpochManager::Guard (or be marked itself).
/// Enforced by tools/concurrency_lint.py, rule `pin`.
#define SMQ_REQUIRES_PIN
