// Minimal streaming JSON writer for machine-readable bench results.
//
// Dependency-free on purpose (same policy as cli.h): the bench
// trajectory only needs objects, arrays, strings, numbers and booleans.
// The writer tracks nesting in a small stack and inserts commas and
// indentation; keys and values must alternate correctly inside objects
// (asserted in debug builds).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace smq {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent_width = 2)
      : os_(os), indent_width_(indent_width) {}

  JsonWriter& begin_object() {
    open('{', Frame::kObject);
    return *this;
  }
  JsonWriter& end_object() {
    close('}', Frame::kObject);
    return *this;
  }
  JsonWriter& begin_array() {
    open('[', Frame::kArray);
    return *this;
  }
  JsonWriter& end_array() {
    close(']', Frame::kArray);
    return *this;
  }

  /// Object member key; must be followed by exactly one value (or
  /// container) before the next key.
  JsonWriter& key(std::string_view name) {
    assert(!stack_.empty() && stack_.back() == Frame::kObject);
    assert(!pending_key_);
    separate();
    write_string(name);
    os_ << ": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    begin_value();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    begin_value();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    begin_value();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no NaN/Inf
    } else {
      // Round-trip precision without trailing noise on simple values.
      std::ostringstream ss;
      ss.precision(15);
      ss << v;
      os_ << ss.str();
    }
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    begin_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    begin_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null() {
    begin_value();
    os_ << "null";
    return *this;
  }

  /// key(...).value(...) in one call.
  template <typename V>
  JsonWriter& member(std::string_view name, V&& v) {
    key(name);
    return value(std::forward<V>(v));
  }

  /// True when every container has been closed.
  bool complete() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  enum class Frame { kObject, kArray };

  void open(char bracket, Frame frame) {
    begin_value();
    os_ << bracket;
    stack_.push_back(frame);
    first_in_frame_ = true;
  }

  void close(char bracket, [[maybe_unused]] Frame frame) {
    assert(!stack_.empty() && stack_.back() == frame);
    assert(!pending_key_);
    stack_.pop_back();
    if (!first_in_frame_) {
      os_ << '\n';
      write_indent();
    }
    os_ << bracket;
    first_in_frame_ = false;
  }

  /// Position the stream for a value: handle commas inside arrays,
  /// consume a pending object key.
  void begin_value() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    assert(stack_.empty() || stack_.back() == Frame::kArray);
    if (!stack_.empty()) {
      separate();
    } else {
      assert(!wrote_root_ && "only one root value allowed");
      wrote_root_ = true;
    }
  }

  /// Comma + newline + indent before an element or key.
  void separate() {
    if (!first_in_frame_) os_ << ',';
    os_ << '\n';
    write_indent();
    first_in_frame_ = false;
  }

  void write_indent() {
    for (std::size_t i = 0; i < stack_.size() * indent_width_; ++i) os_ << ' ';
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            os_ << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::size_t indent_width_;
  std::vector<Frame> stack_;
  bool first_in_frame_ = true;
  bool pending_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace smq
