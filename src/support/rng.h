// Fast per-thread pseudo-random number generation.
//
// Scheduler hot paths (queue sampling, steal coin flips) cannot afford
// std::mt19937's state size or modulo-based range reduction, so we use
// xoshiro256** seeded via splitmix64 and Lemire's multiply-shift range
// reduction. Deterministic given a seed, which the tests rely on.
#pragma once

#include <array>
#include <cstdint>

namespace smq {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  Xoshiro256() noexcept : Xoshiro256(0x853C49E6748FEA9BULL) {}

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift. Slightly
  /// biased for huge bounds; irrelevant for queue sampling (bound <= 2^20).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Bernoulli trial with probability numerator/denominator.
  bool next_bool(std::uint64_t numerator, std::uint64_t denominator) noexcept {
    return next_below(denominator) < numerator;
  }

  /// Bernoulli trial with probability p (0 <= p <= 1).
  bool next_bool(double p) noexcept {
    constexpr double k2p64 = 18446744073709551616.0;  // 2^64
    return static_cast<double>(operator()()) < p * k2p64;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable per-thread seed derivation: one root seed, distinct streams.
inline std::uint64_t thread_seed(std::uint64_t root, unsigned thread_id) noexcept {
  std::uint64_t s = root ^ (0x9E3779B97F4A7C15ULL * (thread_id + 1));
  return splitmix64(s);
}

}  // namespace smq
