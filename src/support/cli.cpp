#include "support/cli.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smq {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      options_.emplace_back(std::string(arg.substr(0, eq)),
                            std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      options_.emplace_back(std::string(arg), std::string(argv[++i]));
    } else {
      options_.emplace_back(std::string(arg), "");
    }
  }
}

bool ArgParser::has_flag(std::string_view name) const {
  return std::any_of(options_.begin(), options_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

std::string ArgParser::get(std::string_view name, std::string fallback) const {
  for (const auto& [key, value] : options_) {
    if (key == name) return value;
  }
  return fallback;
}

std::int64_t ArgParser::get_int(std::string_view name, std::int64_t fallback) const {
  const std::string v = get(name);
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double ArgParser::get_double(std::string_view name, double fallback) const {
  const std::string v = get(name);
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 10) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtod(v, nullptr) : fallback;
}

std::vector<std::string> split_list(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos <= text.size();) {
    std::size_t end = text.find(sep, pos);
    if (end == std::string_view::npos) end = text.size();
    if (end > pos) out.emplace_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

std::vector<unsigned> parse_thread_list(std::string_view spec) {
  // Far above any real machine, far below where the unsigned narrowing
  // could wrap: overflowing values must be rejected, not reinterpreted.
  constexpr long kMaxThreads = 1 << 20;
  std::vector<unsigned> counts;
  for (const std::string& part : split_list(spec, ',')) {
    char* end = nullptr;
    const long n = std::strtol(part.c_str(), &end, 10);
    if (n <= 0 || n > kMaxThreads || end == part.c_str() || *end != '\0') {
      throw std::invalid_argument("bad thread count: " + part);
    }
    counts.push_back(static_cast<unsigned>(n));
  }
  if (counts.empty()) {
    throw std::invalid_argument("empty thread list: " + std::string(spec));
  }
  return counts;
}

std::string oversubscription_warning(const std::vector<unsigned>& threads,
                                     unsigned hardware_threads) {
  if (hardware_threads == 0) return {};
  unsigned worst = 0;
  for (const unsigned n : threads) worst = std::max(worst, n);
  if (worst <= hardware_threads) return {};
  std::ostringstream ss;
  ss << "warning: --threads " << worst << " exceeds the "
     << hardware_threads << " hardware thread"
     << (hardware_threads == 1 ? "" : "s")
     << " of this machine; timings will measure oversubscription, not "
        "scheduler contention";
  return ss.str();
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // One-row Levenshtein; names are short, so O(|a|*|b|) is nothing.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute = diagonal + (a[i - 1] != b[j - 1]);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

std::string nearest_name(std::string_view unknown,
                         const std::vector<std::string>& known) {
  std::string best;
  std::size_t best_distance = ~std::size_t{0};
  for (const std::string& candidate : known) {
    const std::size_t d = edit_distance(unknown, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  // A suggestion further than a plausible typo misleads more than it
  // helps: allow 2 edits, or a third of the name for long names.
  const std::size_t budget = std::max<std::size_t>(2, unknown.size() / 3);
  return best_distance <= budget ? best : std::string{};
}

std::string unknown_flag_message(std::string_view flag,
                                 const std::vector<std::string>& known) {
  std::string msg = "unknown option --" + std::string(flag);
  const std::string suggestion = nearest_name(flag, known);
  if (!suggestion.empty()) msg += " (did you mean --" + suggestion + "?)";
  return msg;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) line(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace smq
