// Annotated mutex wrappers for Clang thread-safety analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so data guarded by a bare std::mutex is invisible to
// `-Wthread-safety`. smq::Mutex is a zero-overhead std::mutex wrapper
// marked as a capability, and smq::MutexLock is the scoped acquisition
// the analysis understands (the abseil MutexLock shape). Blocking
// condition waits go through std::condition_variable_any, which accepts
// MutexLock directly as its Lockable — write the predicate loop inline
// (`while (!pred) cv.wait(lk);`) so the analysis sees the guarded reads
// under the held capability instead of inside an opaque lambda.
//
// Spinlock (support/spinlock.h) is annotated the same way; use Mutex
// where waiters should sleep (admission queues, lifecycle state) and
// Spinlock on try-lock hot paths.
#pragma once

#include <mutex>

#include "support/thread_annotations.h"

namespace smq {

/// std::mutex as a thread-safety capability.
class SMQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SMQ_ACQUIRE() { m_.lock(); }
  void unlock() SMQ_RELEASE() { m_.unlock(); }
  bool try_lock() SMQ_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped acquisition of a Mutex, visible to the analysis.
class SMQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SMQ_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() SMQ_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for std::condition_variable_any, which
  // unlocks around the park and relocks before returning — a temporary
  // release/reacquire of the same capability that the analysis need
  // not (and cannot) observe, hence the analysis opt-outs.
  void lock() SMQ_NO_THREAD_SAFETY_ANALYSIS { m_.lock(); }
  void unlock() SMQ_NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }

 private:
  Mutex& m_;
};

}  // namespace smq
