// Minimal command-line / environment parsing and table printing for the
// bench harness and examples. Deliberately dependency-free.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace smq {

/// Parses "--key value" and "--key=value" pairs plus bare "--flag"s.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  bool has_flag(std::string_view name) const;
  std::string get(std::string_view name, std::string fallback = "") const;
  std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  double get_double(std::string_view name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Every parsed "--key value" pair, in command-line order (consumed by
  /// ParamMap::from_args so registry factories can read their tunables).
  const std::vector<std::pair<std::string, std::string>>& options() const {
    return options_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> options_;
  std::vector<std::string> positional_;
};

/// Environment variable helpers used by every bench to scale workloads.
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);

/// Split `text` on `sep`, dropping empty segments — the list syntax of
/// every CLI value here ("smq,mq", "nodes=1,2,4", "1,8,64"). One
/// definition so the parsers' edge cases cannot drift apart.
std::vector<std::string> split_list(std::string_view text, char sep);

/// Parse a "--threads 1,4,8" sweep spec into thread counts. Throws
/// std::invalid_argument on an empty list or a non-positive /
/// non-numeric element ("--threads 0" is rejected here).
std::vector<unsigned> parse_thread_list(std::string_view spec);

/// Non-empty warning when any requested count oversubscribes the
/// machine (`hardware_threads` from std::thread::hardware_concurrency(),
/// passed in so the policy is unit-testable; 0 = unknown, never warns).
/// Oversubscription is legal — spin-heavy schedulers just measure
/// timeslice luck instead of contention — so this warns, not rejects.
std::string oversubscription_warning(const std::vector<unsigned>& threads,
                                     unsigned hardware_threads);

/// Levenshtein distance between two names (insert/delete/substitute,
/// unit costs); the "did you mean" metric for unknown CLI flags.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The closest entry of `known` to `unknown` within a sane typo budget
/// (distance <= 2, or <= len/3 for long names); "" when nothing close.
std::string nearest_name(std::string_view unknown,
                         const std::vector<std::string>& known);

/// "unknown option --X (did you mean --Y?)" — the suggestion clause is
/// dropped when no known name is near.
std::string unknown_flag_message(std::string_view flag,
                                 const std::vector<std::string>& known);

/// Fixed-width ASCII table, paper-style: header row, then data rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smq
