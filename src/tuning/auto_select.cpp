#include "tuning/auto_select.h"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "registry/scheduler_registry.h"

namespace smq::tuning {

AutoSelection select_scheduler(const MetricsTable& table,
                               std::string_view table_origin,
                               const WorkloadFingerprint& fp,
                               std::string_view algorithm, unsigned threads) {
  const auto& registry = SchedulerRegistry::instance();
  const auto is_registered = [&registry](const std::string& preset) {
    return registry.find(preset) != nullptr;
  };
  Resolution res = resolve_preset(table, fp, algorithm, threads, is_registered);

  AutoSelection sel;
  sel.preset = std::move(res.preset);
  sel.match = res.match;
  sel.confidence = res.confidence;
  sel.why = std::move(res.why);
  sel.table_origin = std::string(table_origin);
  sel.fingerprint = fp;
  return sel;
}

AutoSelection select_scheduler(const GraphInstance& graph,
                               std::string_view algorithm, unsigned threads,
                               const std::string& table_path) {
  if (!graph.graph) {
    throw std::invalid_argument("auto scheduler: graph instance has no graph");
  }
  std::string origin;
  MetricsTable table;
  if (table_path.empty()) {
    table = MetricsTable::load_or_embedded(MetricsTable::default_path(), &origin);
  } else {
    // An explicit path is a user decision: fail loudly if it is absent
    // rather than silently answering from the embedded copy.
    origin = table_path;
    table = MetricsTable::load(table_path);
  }
  return select_scheduler(table, origin, fingerprint_graph(*graph.graph),
                          algorithm, threads);
}

std::string describe_selection(const AutoSelection& sel,
                               std::string_view algorithm, unsigned threads) {
  std::ostringstream os;
  os << "auto: " << algorithm << " @ " << threads << "t on "
     << to_string(sel.fingerprint.cls) << " graph -> " << sel.preset << " ["
     << to_string(sel.match) << ", table: " << sel.table_origin << "] — "
     << sel.why;
  return os.str();
}

}  // namespace smq::tuning
