// `--sched auto`: resolve a (graph, algorithm, threads) workload to a
// registered preset via the tuning metrics table.
//
// This is the runtime half of the subsystem: fingerprint the graph,
// load the table (file path, $SMQ_TUNING_TABLE, or the embedded copy),
// and walk the nearest-neighbor lookup in metrics_table.h. The result
// always names a preset the SchedulerRegistry can create, so callers
// can feed it straight into virtual, batched, or static dispatch.
#pragma once

#include <string>
#include <string_view>

#include "registry/graph_registry.h"
#include "tuning/metrics_table.h"

namespace smq::tuning {

/// The pseudo-scheduler name accepted by smq_run / make_service.
inline constexpr std::string_view kAutoSchedulerName = "auto";

struct AutoSelection {
  std::string preset;  // registered preset key, ready for create()
  MatchKind match = MatchKind::kDefault;
  double confidence = 0;
  std::string why;           // explanation surfaced in table/JSON output
  std::string table_origin;  // table file path, or "embedded"
  WorkloadFingerprint fingerprint;
};

/// Resolve `auto` for one workload. `table_path` empty means
/// MetricsTable::default_path() (falling back to the embedded table
/// when the file does not exist); a non-empty path must load or this
/// throws. Unknown-preset rows are skipped via the scheduler registry.
AutoSelection select_scheduler(const GraphInstance& graph,
                               std::string_view algorithm, unsigned threads,
                               const std::string& table_path = {});

/// Same lookup against an already-loaded table (tests, repeated
/// per-thread-count resolution without re-reading the file).
AutoSelection select_scheduler(const MetricsTable& table,
                               std::string_view table_origin,
                               const WorkloadFingerprint& fp,
                               std::string_view algorithm, unsigned threads);

/// One-line provenance note, printed by drivers before running:
/// "auto: sssp @ 4t on road graph -> smq-p8 [exact] (...)".
std::string describe_selection(const AutoSelection& sel,
                               std::string_view algorithm, unsigned threads);

}  // namespace smq::tuning
