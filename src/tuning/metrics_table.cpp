#include "tuning/metrics_table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "support/json_reader.h"
#include "support/json_writer.h"

namespace smq::tuning {

namespace {

constexpr std::string_view kFormatTag = "smq-tuning-table";

std::string format_throughput(double tasks_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", tasks_per_sec);
  return buf;
}

std::string describe_row(const MetricsRow& row) {
  std::ostringstream os;
  os << row.preset << " (" << format_throughput(row.tasks_per_sec)
     << " tasks/s, speedup " << format_throughput(row.speedup_vs_seq)
     << "x, confidence " << format_throughput(row.confidence) << ", measured on "
     << row.graph << ')';
  return os.str();
}

auto row_sort_key(const MetricsRow& row) {
  return std::tie(row.graph_class, row.algorithm, row.threads, row.preset);
}

MetricsRow parse_row(const JsonValue& v) {
  MetricsRow row;
  row.graph_class = v.at("graph_class").as_string();
  row.algorithm = v.at("algorithm").as_string();
  row.threads = static_cast<unsigned>(v.at("threads").as_uint());
  row.preset = v.at("preset").as_string();
  row.tasks_per_sec = v.get_double("tasks_per_sec", 0);
  row.speedup_vs_seq = v.get_double("speedup_vs_seq", 0);
  row.confidence = v.get_double("confidence", 0);
  row.graph = v.get_string("graph", "");
  row.vertices = v.get_uint("vertices", 0);
  row.edges = v.get_uint("edges", 0);
  row.avg_degree = v.get_double("avg_degree", 0);
  row.max_weight = v.get_uint("max_weight", 0);
  row.reps = static_cast<int>(v.get_uint("reps", 0));
  if (row.graph_class.empty() || row.algorithm.empty() || row.preset.empty() ||
      row.threads == 0) {
    throw std::runtime_error("tuning table row missing key fields");
  }
  return row;
}

}  // namespace

std::string MetricsTable::default_path() {
  if (const char* env = std::getenv(std::string(kPathEnvVar).c_str());
      env != nullptr && *env != '\0') {
    return env;
  }
  return std::string(kDefaultPath);
}

MetricsTable MetricsTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open tuning table: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_text(buf.str(), path);
}

MetricsTable MetricsTable::parse_text(std::string_view text,
                                      const std::string& origin) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(origin + ": " + e.what());
  }
  if (doc.get_string("format", "") != kFormatTag) {
    throw std::runtime_error(origin + ": not a " + std::string(kFormatTag) +
                             " file");
  }
  MetricsTable table;
  table.version = static_cast<int>(doc.get_uint("version", 0));
  if (table.version > kFormatVersion) {
    throw std::runtime_error(origin + ": table version " +
                             std::to_string(table.version) +
                             " is newer than this binary (max " +
                             std::to_string(kFormatVersion) + ")");
  }
  for (const JsonValue& item : doc.at("rows").items()) {
    table.rows.push_back(parse_row(item));
  }
  return table;
}

MetricsTable MetricsTable::load_or_embedded(const std::string& path,
                                            std::string* origin) {
  if (!path.empty() && std::filesystem::exists(path)) {
    if (origin != nullptr) *origin = path;
    return load(path);
  }
  if (origin != nullptr) *origin = "embedded";
  return embedded();
}

void MetricsTable::write(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.member("format", kFormatTag);
  w.member("version", version);
  w.key("rows").begin_array();
  for (const MetricsRow& row : rows) {
    w.begin_object();
    w.member("graph_class", row.graph_class);
    w.member("algorithm", row.algorithm);
    w.member("threads", row.threads);
    w.member("preset", row.preset);
    w.member("tasks_per_sec", row.tasks_per_sec);
    w.member("speedup_vs_seq", row.speedup_vs_seq);
    w.member("confidence", row.confidence);
    w.member("graph", row.graph);
    w.member("vertices", row.vertices);
    w.member("edges", row.edges);
    w.member("avg_degree", row.avg_degree);
    w.member("max_weight", row.max_weight);
    w.member("reps", row.reps);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void MetricsTable::save(const std::string& path) const {
  MetricsTable sorted = *this;
  sorted.sort();
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    sorted.write(out);
    if (!out) throw std::runtime_error("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " over " + path);
  }
}

const MetricsRow* MetricsTable::find(std::string_view graph_class,
                                     std::string_view algorithm,
                                     unsigned threads) const noexcept {
  for (const MetricsRow& row : rows) {
    if (row.graph_class == graph_class && row.algorithm == algorithm &&
        row.threads == threads) {
      return &row;
    }
  }
  return nullptr;
}

void MetricsTable::upsert(MetricsRow row) {
  for (MetricsRow& existing : rows) {
    if (existing.graph_class == row.graph_class &&
        existing.algorithm == row.algorithm && existing.threads == row.threads) {
      existing = std::move(row);
      return;
    }
  }
  rows.push_back(std::move(row));
}

void MetricsTable::sort() {
  std::sort(rows.begin(), rows.end(), [](const MetricsRow& a, const MetricsRow& b) {
    return row_sort_key(a) < row_sort_key(b);
  });
}

std::string_view to_string(MatchKind kind) noexcept {
  switch (kind) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kNearestThreads: return "nearest-threads";
    case MatchKind::kNearestFingerprint: return "nearest-fingerprint";
    case MatchKind::kDefault: return "default";
  }
  return "default";
}

Resolution resolve_preset(
    const MetricsTable& table, const WorkloadFingerprint& fp,
    std::string_view algorithm, unsigned threads,
    const std::function<bool(const std::string&)>& is_registered) {
  const std::string cls(to_string(fp.cls));

  // Usable rows: right algorithm, preset this binary actually has.
  std::vector<const MetricsRow*> usable;
  for (const MetricsRow& row : table.rows) {
    if (row.algorithm == algorithm && row.threads > 0 &&
        (!is_registered || is_registered(row.preset))) {
      usable.push_back(&row);
    }
  }

  Resolution res;
  const auto fill = [&res](const MetricsRow& row, MatchKind match) {
    res.preset = row.preset;
    res.match = match;
    res.tasks_per_sec = row.tasks_per_sec;
    res.speedup_vs_seq = row.speedup_vs_seq;
    res.confidence = row.confidence;
  };

  // 1. Exact (class, algorithm, threads).
  for (const MetricsRow* row : usable) {
    if (row->graph_class == cls && row->threads == threads) {
      fill(*row, MatchKind::kExact);
      std::ostringstream why;
      why << "exact match " << cls << '/' << algorithm << " @ " << threads
          << "t -> " << describe_row(*row);
      res.why = why.str();
      return res;
    }
  }

  // 2. Same class + algorithm at the nearest thread count; ties go to
  // the smaller count (undersubscribing a preset is safer than
  // oversubscribing it), then to preset name for determinism.
  const MetricsRow* best = nullptr;
  const auto thread_gap = [threads](const MetricsRow* row) {
    return row->threads > threads ? row->threads - threads : threads - row->threads;
  };
  for (const MetricsRow* row : usable) {
    if (row->graph_class != cls) continue;
    if (best == nullptr ||
        std::make_tuple(thread_gap(row), row->threads, std::cref(row->preset)) <
            std::make_tuple(thread_gap(best), best->threads, std::cref(best->preset))) {
      best = row;
    }
  }
  if (best != nullptr) {
    fill(*best, MatchKind::kNearestThreads);
    std::ostringstream why;
    why << "no " << cls << '/' << algorithm << " row @ " << threads
        << "t; nearest thread count " << best->threads << "t -> "
        << describe_row(*best);
    res.why = why.str();
    return res;
  }

  // 3. Nearest fingerprint across classes; ties broken by thread gap,
  // then (class, threads, preset) order — fully deterministic.
  double best_dist = 0;
  for (const MetricsRow* row : usable) {
    const auto row_class = parse_graph_class(row->graph_class);
    if (!row_class) continue;
    const double dist = fingerprint_distance(fp, *row_class, row->vertices,
                                             row->avg_degree, row->max_weight);
    const auto key = std::make_tuple(dist, thread_gap(row),
                                     std::cref(row->graph_class), row->threads,
                                     std::cref(row->preset));
    if (best == nullptr ||
        key < std::make_tuple(best_dist, thread_gap(best),
                              std::cref(best->graph_class), best->threads,
                              std::cref(best->preset))) {
      best = row;
      best_dist = dist;
    }
  }
  if (best != nullptr) {
    fill(*best, MatchKind::kNearestFingerprint);
    std::ostringstream why;
    why << "no " << cls << '/' << algorithm << " rows; nearest fingerprint "
        << best->graph_class << '/' << best->algorithm << " @ " << best->threads
        << "t (distance " << format_throughput(best_dist) << ") -> "
        << describe_row(*best);
    res.why = why.str();
    return res;
  }

  // 4. Nothing usable: the paper's headline scheduler.
  res.preset = std::string(kFallbackPreset);
  res.match = MatchKind::kDefault;
  std::ostringstream why;
  why << "no usable " << algorithm << " rows in table; falling back to paper default '"
      << kFallbackPreset << "'";
  res.why = why.str();
  return res;
}

}  // namespace smq::tuning
