// Workload fingerprints: the lookup key of the tuning metrics table.
//
// The paper's winning scheduler config depends on graph class (road vs
// social vs uniform-random), algorithm, and thread count. A fingerprint
// condenses a Graph into the handful of scalars that predict that
// choice — |V|, |E|, degree-distribution shape, and the edge-weight
// range — plus a coarse GraphClass label derived from them. The table
// keys rows on the class; the raw scalars drive the nearest-neighbor
// fallback when no row matches exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "graph/graph.h"

namespace smq::tuning {

/// Coarse graph taxonomy mirroring the paper's benchmark families:
/// road networks (bounded degree, long diameter), social/web graphs
/// (power-law degrees), and uniform-random graphs (concentrated
/// degrees, short diameter).
enum class GraphClass { kRoad, kUniform, kSocial };

std::string_view to_string(GraphClass cls) noexcept;
std::optional<GraphClass> parse_graph_class(std::string_view name) noexcept;

struct WorkloadFingerprint {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  double avg_degree = 0.0;
  std::uint64_t max_degree = 0;
  /// Coefficient of variation of out-degrees (stddev / mean): ~0 for
  /// lattices, <1 for Erdos-Renyi, >>1 for power-law graphs.
  double degree_cv = 0.0;
  /// Largest edge weight seen in the (possibly sampled) scan.
  std::uint64_t max_weight = 0;
  bool has_coordinates = false;
  GraphClass cls = GraphClass::kUniform;
};

/// Classify from degree-distribution shape alone (exposed separately so
/// boundary tests don't need to build graphs for every corner).
GraphClass classify_degrees(double avg_degree, std::uint64_t max_degree,
                            double degree_cv) noexcept;

/// Compute the fingerprint. Degree statistics scan every vertex (the
/// offsets array is O(V) and already resident); edge weights are
/// sampled with a deterministic stride capped at ~64k probes so mapped
/// multi-GB graphs don't page in their whole adjacency.
WorkloadFingerprint fingerprint_graph(const Graph& g);

/// Log-scale distance between a live fingerprint and a recorded table
/// row, used for the nearest-fingerprint fallback. Smaller is closer;
/// a class mismatch dominates size differences by design.
double fingerprint_distance(const WorkloadFingerprint& a, GraphClass row_class,
                            std::uint64_t row_vertices, double row_avg_degree,
                            std::uint64_t row_max_weight) noexcept;

}  // namespace smq::tuning
