// The tuning metrics table: measured (workload, algorithm, threads) ->
// best preset mappings, checked in as data/tuning/metrics_table.json
// with an embedded fallback compiled into the library.
//
// Modeled on untangle's metrics.h: an offline tuner (tools/smq_tune)
// measures the preset grid and records the winner per key; `--sched
// auto` consults the table at runtime. Rows carry the measurement
// provenance (graph spec, size, tasks/s, speedup vs the sequential
// oracle, confidence) so a resolution can explain itself — the
// `why` string surfaced in table/JSON output — and so CI can re-measure
// rows and catch staleness (smq_tune --verify-only).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "tuning/fingerprint.h"

namespace smq::tuning {

/// One measured table entry. The key is (graph_class, algorithm,
/// threads); everything else is the measured answer plus provenance.
struct MetricsRow {
  // --- key ---
  std::string graph_class;  // to_string(GraphClass)
  std::string algorithm;    // registered algorithm name ("sssp", ...)
  unsigned threads = 0;
  // --- answer ---
  std::string preset;        // registered scheduler/preset key
  double tasks_per_sec = 0;  // winner's throughput on the tuning machine
  double speedup_vs_seq = 0; // normalized metric, machine-transferable
  double confidence = 0;     // winner margin over runner-up, in [0, 1]
  // --- provenance ---
  std::string graph;         // registry spec that re-creates the input
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  double avg_degree = 0;
  std::uint64_t max_weight = 0;
  int reps = 0;
};

class MetricsTable {
 public:
  static constexpr int kFormatVersion = 1;
  /// Default on-disk location, relative to the repo root.
  static constexpr std::string_view kDefaultPath = "data/tuning/metrics_table.json";
  /// Environment override consulted by default_path().
  static constexpr std::string_view kPathEnvVar = "SMQ_TUNING_TABLE";

  int version = kFormatVersion;
  std::vector<MetricsRow> rows;

  /// The compiled-in fallback (embedded_table.cpp), used when no table
  /// file is reachable so `--sched auto` works from any directory.
  static MetricsTable embedded();

  /// $SMQ_TUNING_TABLE when set, else kDefaultPath.
  static std::string default_path();

  /// Parse a table file. Throws std::runtime_error on I/O or schema
  /// errors (including a version newer than this binary understands).
  static MetricsTable load(const std::string& path);

  /// Parse table JSON from memory; `origin` labels parse errors.
  static MetricsTable parse_text(std::string_view text, const std::string& origin);

  /// load(path) if the file exists, else embedded(). `origin`, when
  /// non-null, receives the path actually used or "embedded".
  static MetricsTable load_or_embedded(const std::string& path,
                                       std::string* origin = nullptr);

  void write(std::ostream& os) const;

  /// Atomic save: write to `path.tmp`, then rename over `path`. Rows
  /// are sorted by key first so regeneration is byte-deterministic.
  void save(const std::string& path) const;

  const MetricsRow* find(std::string_view graph_class, std::string_view algorithm,
                         unsigned threads) const noexcept;

  /// Insert, replacing any row with the same key.
  void upsert(MetricsRow row);

  /// Sort rows by (graph_class, algorithm, threads, preset).
  void sort();
};

/// How a resolution matched the table, from best to worst.
enum class MatchKind { kExact, kNearestThreads, kNearestFingerprint, kDefault };

std::string_view to_string(MatchKind kind) noexcept;

/// The outcome of resolving `--sched auto` for one workload.
struct Resolution {
  std::string preset;  // always a registered key
  MatchKind match = MatchKind::kDefault;
  double tasks_per_sec = 0;
  double speedup_vs_seq = 0;
  double confidence = 0;
  std::string why;  // human-readable explanation of the choice
};

/// Preset picked when the table has no usable row at all: the paper's
/// headline scheduler.
inline constexpr std::string_view kFallbackPreset = "smq";

/// Resolve a workload against the table. Lookup order: exact
/// (class, algorithm, threads) row; else the same class+algorithm at
/// the closest thread count (ties to the smaller count); else the
/// closest fingerprint across classes (fingerprint_distance, ties
/// broken by class/threads/preset order); else kFallbackPreset.
/// Rows whose preset `is_registered` rejects are ignored, so a stale
/// table cannot name a preset this binary doesn't have.
Resolution resolve_preset(
    const MetricsTable& table, const WorkloadFingerprint& fp,
    std::string_view algorithm, unsigned threads,
    const std::function<bool(const std::string&)>& is_registered);

}  // namespace smq::tuning
