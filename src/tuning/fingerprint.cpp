#include "tuning/fingerprint.h"

#include <algorithm>
#include <cmath>

namespace smq::tuning {

std::string_view to_string(GraphClass cls) noexcept {
  switch (cls) {
    case GraphClass::kRoad: return "road";
    case GraphClass::kUniform: return "uniform";
    case GraphClass::kSocial: return "social";
  }
  return "uniform";
}

std::optional<GraphClass> parse_graph_class(std::string_view name) noexcept {
  if (name == "road") return GraphClass::kRoad;
  if (name == "uniform") return GraphClass::kUniform;
  if (name == "social") return GraphClass::kSocial;
  return std::nullopt;
}

GraphClass classify_degrees(double avg_degree, std::uint64_t max_degree,
                            double degree_cv) noexcept {
  // Power-law tail: either a heavily skewed distribution or a hub far
  // above the mean. RMAT-style graphs land here (cv well above 1, hubs
  // hundreds of times the mean); Erdos-Renyi stays below both bars
  // (Poisson cv = 1/sqrt(mean), max ~ mean + a few sigma).
  const double hub_bar = 16.0 * std::max(avg_degree, 1.0);
  if (degree_cv > 1.0 || static_cast<double>(max_degree) > hub_bar) {
    return GraphClass::kSocial;
  }
  // Road networks and lattices: bounded degree (planar-ish graphs top
  // out around 8-12 even with shortcut edges) and a tight distribution.
  if (max_degree <= 12 && degree_cv <= 0.75) {
    return GraphClass::kRoad;
  }
  return GraphClass::kUniform;
}

WorkloadFingerprint fingerprint_graph(const Graph& g) {
  WorkloadFingerprint fp;
  fp.vertices = g.num_vertices();
  fp.edges = g.num_edges();
  fp.has_coordinates = !g.coordinates().empty();
  if (fp.vertices == 0) return fp;

  // Degree moments in one O(V) pass over the offsets array.
  double sum = 0.0, sum_sq = 0.0;
  std::uint64_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto d = static_cast<double>(g.out_degree(v));
    sum += d;
    sum_sq += d * d;
    max_deg = std::max<std::uint64_t>(max_deg, g.out_degree(v));
  }
  const double n = static_cast<double>(fp.vertices);
  const double mean = sum / n;
  const double variance = std::max(0.0, sum_sq / n - mean * mean);
  fp.avg_degree = mean;
  fp.max_degree = max_deg;
  fp.degree_cv = mean > 0 ? std::sqrt(variance) / mean : 0.0;

  // Edge-weight range from a strided sample: enough probes to find the
  // scale of the weights (the table only distinguishes unit / small-int
  // / wide ranges) without touching every page of a mapped graph.
  const auto adjacency = g.adjacency();
  constexpr std::size_t kMaxProbes = 1u << 16;
  const std::size_t stride = std::max<std::size_t>(1, adjacency.size() / kMaxProbes);
  std::uint64_t max_w = 0;
  for (std::size_t i = 0; i < adjacency.size(); i += stride) {
    max_w = std::max<std::uint64_t>(max_w, adjacency[i].weight);
  }
  fp.max_weight = max_w;

  fp.cls = classify_degrees(fp.avg_degree, fp.max_degree, fp.degree_cv);
  return fp;
}

namespace {

double log2_ratio(double a, double b) noexcept {
  return std::abs(std::log2((a + 1.0) / (b + 1.0)));
}

}  // namespace

double fingerprint_distance(const WorkloadFingerprint& a, GraphClass row_class,
                            std::uint64_t row_vertices, double row_avg_degree,
                            std::uint64_t row_max_weight) noexcept {
  // A class mismatch costs more than any plausible size gap between two
  // same-class graphs in the table, so same-class rows always win when
  // one exists; the size terms then order rows within a class.
  double d = (a.cls == row_class) ? 0.0 : 8.0;
  d += 0.25 * log2_ratio(static_cast<double>(a.vertices),
                         static_cast<double>(row_vertices));
  d += 1.0 * log2_ratio(a.avg_degree, row_avg_degree);
  d += 0.125 * log2_ratio(static_cast<double>(a.max_weight),
                          static_cast<double>(row_max_weight));
  return d;
}

}  // namespace smq::tuning
