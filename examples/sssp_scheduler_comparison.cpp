// Scheduler shoot-out on a road-style graph: runs SSSP under each
// scheduler family and reports wall time, executed tasks, and wasted
// work — a miniature of the paper's Figure 2.
//
//   ./examples/sssp_scheduler_comparison [--vertices N] [--threads T]
#include <iostream>

#include "algorithms/sssp.h"
#include "core/stealing_multiqueue.h"
#include "graph/generators.h"
#include "queues/classic_multiqueue.h"
#include "queues/obim.h"
#include "queues/reld.h"
#include "queues/spraylist.h"
#include "support/cli.h"
#include "support/timer.h"

namespace {

struct Row {
  std::string name;
  smq::ShortestPathResult result;
};

template <typename Sched>
Row run(const std::string& name, const smq::Graph& graph, Sched&& sched,
        unsigned threads) {
  return Row{name, smq::parallel_sssp(graph, 0, sched, threads)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const auto vertices =
      static_cast<VertexId>(args.get_int("vertices", 40000));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 4));

  std::cout << "Generating road-like graph with ~" << vertices
            << " vertices...\n";
  const Graph graph = make_road_like(vertices);
  const SequentialSsspResult ref = sequential_sssp(graph, 0);
  std::cout << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " arcs; " << ref.settled << " reachable.\n\n";

  std::vector<Row> rows;
  rows.push_back(run("SMQ (heap)", graph,
                     StealingMultiQueue<>(threads, {.steal_size = 4,
                                                    .p_steal = 0.125}),
                     threads));
  rows.push_back(
      run("Classic MQ (C=4)", graph, ClassicMultiQueue(threads, {}), threads));
  rows.push_back(run("OBIM", graph,
                     Obim(threads, {.chunk_size = 64, .delta_shift = 10}),
                     threads));
  rows.push_back(run("PMOD", graph,
                     Pmod(threads, {.chunk_size = 64, .delta_shift = 10}),
                     threads));
  rows.push_back(run("RELD", graph, ReldQueue(threads, {}), threads));
  rows.push_back(run("SprayList", graph, SprayList(threads, {}), threads));

  TablePrinter table({"scheduler", "time ms", "tasks", "work increase",
                      "wasted tasks"});
  for (const Row& row : rows) {
    // Sanity: every scheduler must produce the exact distances.
    std::uint64_t mismatches = 0;
    for (std::size_t v = 0; v < ref.distances.size(); ++v) {
      mismatches += row.result.distances[v] != ref.distances[v];
    }
    if (mismatches != 0) {
      std::cerr << row.name << ": WRONG RESULT (" << mismatches
                << " mismatches)\n";
      return 1;
    }
    table.add_row({row.name, TablePrinter::fmt(row.result.run.seconds * 1e3),
                   std::to_string(row.result.run.stats.pops),
                   TablePrinter::fmt(row.result.run.work_increase(ref.settled)),
                   std::to_string(row.result.run.stats.wasted)});
  }
  table.print(std::cout);
  std::cout << "\nAll schedulers returned exact distances.\n";
  return 0;
}
