// Scheduler shoot-out on a road-style graph: runs SSSP under *every*
// scheduler in the registry and reports wall time, executed tasks, and
// wasted work — a miniature of the paper's Figure 2 from one binary,
// with no compile-time scheduler list.
//
//   ./examples/sssp_scheduler_comparison [--vertices N] [--threads T]
//       [--sched name,name,...]
#include <iostream>

#include "algorithms/sssp.h"
#include "graph/generators.h"
#include "registry/scheduler_registry.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const auto vertices =
      static_cast<VertexId>(args.get_int("vertices", 40000));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 4));
  const ParamMap params = ParamMap::from_args(args);

  std::cout << "Generating road-like graph with ~" << vertices
            << " vertices...\n";
  const Graph graph = make_road_like(vertices);
  const SequentialSsspResult ref = sequential_sssp(graph, 0);
  std::cout << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " arcs; " << ref.settled << " reachable.\n\n";

  // Optional subset: --sched name,name,... (default: every entry).
  const std::string sched_filter = args.get("sched");
  auto selected = [&](const std::string& name) {
    if (sched_filter.empty()) return true;
    for (std::size_t pos = 0; pos < sched_filter.size();) {
      std::size_t comma = sched_filter.find(',', pos);
      if (comma == std::string::npos) comma = sched_filter.size();
      if (sched_filter.compare(pos, comma - pos, name) == 0) return true;
      pos = comma + 1;
    }
    return false;
  };

  TablePrinter table({"scheduler", "threads", "time ms", "tasks",
                      "work increase", "wasted tasks"});
  const SchedulerRegistry& registry = SchedulerRegistry::instance();
  std::size_t ran = 0;
  for (const SchedulerEntry& entry : registry.entries()) {
    if (!selected(entry.name)) continue;
    ++ran;
    const unsigned run_threads = effective_threads(entry, threads);
    AnyScheduler sched = entry.make(run_threads, params);
    const ShortestPathResult result =
        parallel_sssp(graph, 0, sched, run_threads);

    // Sanity: every scheduler must produce the exact distances.
    std::uint64_t mismatches = 0;
    for (std::size_t v = 0; v < ref.distances.size(); ++v) {
      mismatches += result.distances[v] != ref.distances[v];
    }
    if (mismatches != 0) {
      std::cerr << entry.name << ": WRONG RESULT (" << mismatches
                << " mismatches)\n";
      return 1;
    }
    table.add_row({entry.name, std::to_string(run_threads),
                   TablePrinter::fmt(result.run.seconds * 1e3),
                   std::to_string(result.run.stats.pops),
                   TablePrinter::fmt(result.run.work_increase(ref.settled)),
                   std::to_string(result.run.stats.wasted)});
  }
  if (ran == 0) {
    std::cerr << "no scheduler matches --sched " << sched_filter
              << " (names: see smq_run --list)\n";
    return 2;
  }
  table.print(std::cout);
  std::cout << "\nAll " << ran
            << " selected schedulers returned exact distances.\n";
  return 0;
}
