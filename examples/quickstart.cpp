// Quickstart: build a tiny weighted graph, run parallel SSSP under the
// Stealing Multi-Queue, and print the distances.
//
//   ./examples/quickstart [--threads N]
#include <cstdio>

#include "algorithms/sssp.h"
#include "core/stealing_multiqueue.h"
#include "graph/graph.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const unsigned threads =
      static_cast<unsigned>(args.get_int("threads", 4));

  //      1 --2-- 3
  //     /|       |
  //    0 4       1
  //     \|       |
  //      2 --7-- 4
  const Graph graph = Graph::from_edges(
      5, {{0, 1, 1}, {1, 0, 1}, {0, 2, 4}, {2, 0, 4}, {1, 2, 4}, {2, 1, 4},
          {1, 3, 2}, {3, 1, 2}, {2, 4, 7}, {4, 2, 7}, {3, 4, 1}, {4, 3, 1}});

  // The scheduler: one local priority queue per thread, stealing batches
  // of up to 4 tasks with probability 1/8 (the paper's defaults).
  StealingMultiQueue<> scheduler(threads, {.steal_size = 4, .p_steal = 0.125});

  const ShortestPathResult result =
      parallel_sssp(graph, /*source=*/0, scheduler, threads);

  std::printf("SSSP from vertex 0 on %u threads:\n", threads);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    std::printf("  dist(%u) = %llu\n", v,
                static_cast<unsigned long long>(result.distances[v]));
  }
  std::printf("tasks executed: %llu (wasted: %llu)\n",
              static_cast<unsigned long long>(result.run.stats.pops),
              static_cast<unsigned long long>(result.run.stats.wasted));
  return 0;
}
