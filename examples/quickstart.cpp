// Quickstart: build a tiny weighted graph, pick a scheduler from the
// registry by name, run parallel SSSP, and print the distances.
//
//   ./examples/quickstart [--threads N] [--sched NAME] [--list]
//
// --list prints every registered scheduler/algorithm/graph source with
// its tunables (the same listing as `smq_run --list`).
#include <cstdio>
#include <iostream>

#include "algorithms/sssp.h"
#include "graph/graph.h"
#include "registry/listing.h"
#include "registry/scheduler_registry.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  if (args.has_flag("list")) {
    print_registry_listing(std::cout);
    return 0;
  }
  const unsigned threads =
      static_cast<unsigned>(args.get_int("threads", 4));
  const std::string sched_name = args.get("sched", "smq");

  //      1 --2-- 3
  //     /|       |
  //    0 4       1
  //     \|       |
  //      2 --7-- 4
  const Graph graph = Graph::from_edges(
      5, {{0, 1, 1}, {1, 0, 1}, {0, 2, 4}, {2, 0, 4}, {1, 2, 4}, {2, 1, 4},
          {1, 3, 2}, {3, 1, 2}, {2, 4, 7}, {4, 2, 7}, {3, 4, 1}, {4, 3, 1}});

  // Any registered scheduler works here; "smq" is the paper's Stealing
  // Multi-Queue with its default tuning (steal batches of 4, p=1/8).
  // Tunables come from the command line: --steal-size 4 --p-steal 1/8.
  AnyScheduler scheduler;
  try {
    scheduler = SchedulerRegistry::instance().create(
        sched_name, threads, ParamMap::from_args(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s (try --list)\n", e.what());
    return 2;
  }

  // Single-threaded baselines clamp the pool (e.g. --sched sequential).
  const unsigned run_threads = scheduler.num_threads();
  const ShortestPathResult result =
      parallel_sssp(graph, /*source=*/0, scheduler, run_threads);

  std::printf("SSSP from vertex 0 under '%s' on %u threads:\n",
              sched_name.c_str(), run_threads);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    std::printf("  dist(%u) = %llu\n", v,
                static_cast<unsigned long long>(result.distances[v]));
  }
  std::printf("tasks executed: %llu (wasted: %llu)\n",
              static_cast<unsigned long long>(result.run.stats.pops),
              static_cast<unsigned long long>(result.run.stats.wasted));
  return 0;
}
