// Minimum spanning tree with priority-scheduled parallel Boruvka
// (priority = component degree, as in the paper's MST workload),
// validated against sequential Kruskal.
//
//   ./examples/mst_boruvka [--vertices N] [--threads T]
#include <iostream>

#include "algorithms/boruvka.h"
#include "core/stealing_multiqueue.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const auto vertices = static_cast<VertexId>(args.get_int("vertices", 40000));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 4));

  const Graph graph = make_road_like(vertices);
  std::cout << "MST over " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " arcs\n";

  Timer seq_timer;
  const SequentialMstResult kruskal = sequential_kruskal(graph);
  const double seq_ms = seq_timer.millis();
  std::cout << "Kruskal:  weight " << kruskal.total_weight << " ("
            << kruskal.edges_in_forest << " edges) in " << seq_ms << " ms\n";

  StealingMultiQueue<> scheduler(threads, {.steal_size = 4, .p_steal = 0.25});
  const MstResult boruvka = parallel_boruvka(graph, scheduler, threads);
  std::cout << "Boruvka:  weight " << boruvka.total_weight << " ("
            << boruvka.edges_in_forest << " edges) in "
            << boruvka.run.seconds * 1e3 << " ms on " << threads
            << " threads; " << boruvka.run.stats.pops << " tasks, "
            << boruvka.run.stats.wasted << " wasted\n";

  if (boruvka.total_weight != kruskal.total_weight ||
      boruvka.edges_in_forest != kruskal.edges_in_forest) {
    std::cerr << "ERROR: forest mismatch!\n";
    return 1;
  }
  std::cout << "forests agree.\n";
  return 0;
}
