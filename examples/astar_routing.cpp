// Point-to-point routing with parallel A* on a road-style map, showing
// how the admissible equirectangular heuristic prunes the search
// relative to full Dijkstra — the paper's A* workload in miniature.
//
//   ./examples/astar_routing [--vertices N] [--threads T]
#include <iostream>

#include "algorithms/astar.h"
#include "algorithms/sssp.h"
#include "core/stealing_multiqueue.h"
#include "graph/generators.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const auto vertices = static_cast<VertexId>(args.get_int("vertices", 90000));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 4));

  const Graph graph = make_road_like(vertices);
  const VertexId source = 0;
  const VertexId target = graph.num_vertices() - 1;  // opposite corner
  std::cout << "Routing " << source << " -> " << target << " over "
            << graph.num_vertices() << " vertices\n";

  // Baselines: exact sequential A* and full Dijkstra.
  const SequentialAStarResult seq = sequential_astar(graph, source, target);
  const SequentialSsspResult dijkstra = sequential_sssp(graph, source);
  std::cout << "sequential A*:     distance " << seq.distance << ", expanded "
            << seq.expanded << " nodes\n";
  std::cout << "full Dijkstra:     settles  " << dijkstra.settled
            << " nodes (A* pruned "
            << 100.0 * (1.0 - static_cast<double>(seq.expanded) /
                                  static_cast<double>(dijkstra.settled))
            << "%)\n";

  StealingMultiQueue<> scheduler(threads,
                                 {.steal_size = 4, .p_steal = 0.125});
  const AStarResult par =
      parallel_astar(graph, source, target, scheduler, threads);
  std::cout << "parallel A* (SMQ): distance " << par.distance << " in "
            << par.run.seconds * 1e3 << " ms, " << par.run.stats.pops
            << " tasks (" << par.run.stats.wasted << " wasted)\n";

  if (par.distance != dijkstra.distances[target]) {
    std::cerr << "ERROR: parallel A* distance mismatch!\n";
    return 1;
  }
  std::cout << "distances agree with Dijkstra.\n";
  return 0;
}
