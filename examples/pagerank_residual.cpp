// Residual-priority PageRank on a power-law graph — the paper's
// "iterative machine learning" future-work direction (Section 6):
// scheduling high-residual vertices first converges with far less work
// than unordered processing, and the SMQ's rank quality shows up as
// fewer re-activations.
//
//   ./examples/pagerank_residual [--scale S] [--threads T]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "algorithms/pagerank.h"
#include "core/stealing_multiqueue.h"
#include "graph/generators.h"
#include "queues/reld.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace smq;
  const ArgParser args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 12));
  const unsigned threads = static_cast<unsigned>(args.get_int("threads", 4));
  const double tolerance = args.get_double("tolerance", 1e-4);

  const Graph graph = make_rmat(scale, {.seed = 9});
  std::cout << "PageRank over RMAT scale " << scale << ": "
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges\n";

  PageRankOptions opts;
  opts.tolerance = tolerance;
  const SequentialPageRankResult ref = sequential_pagerank(graph, opts, 500);
  std::cout << "power iteration converged in " << ref.iterations
            << " rounds (" << ref.iterations * graph.num_vertices()
            << " vertex updates)\n";

  StealingMultiQueue<> smq(threads, {.steal_size = 4, .p_steal = 0.125});
  const PageRankResult via_smq = parallel_pagerank(graph, smq, threads, opts);

  ReldQueue reld(threads, {});
  const PageRankResult via_reld =
      parallel_pagerank(graph, reld, threads, opts);

  auto report = [&](const char* name, const PageRankResult& r) {
    double max_err = 0;
    for (std::size_t v = 0; v < ref.ranks.size(); ++v) {
      max_err = std::max(max_err, std::abs(r.ranks[v] - ref.ranks[v]));
    }
    std::cout << name << ": " << r.run.stats.pops << " tasks ("
              << r.run.stats.wasted << " wasted) in "
              << r.run.seconds * 1e3 << " ms, max error " << max_err << "\n";
  };
  report("SMQ ", via_smq);
  report("RELD", via_reld);

  const double top =
      *std::max_element(ref.ranks.begin(), ref.ranks.end());
  std::cout << "highest rank value: " << top << "\n";
  return 0;
}
